file(REMOVE_RECURSE
  "../bench/bench_fig5_demand_boxplot"
  "../bench/bench_fig5_demand_boxplot.pdb"
  "CMakeFiles/bench_fig5_demand_boxplot.dir/bench_fig5_demand_boxplot.cpp.o"
  "CMakeFiles/bench_fig5_demand_boxplot.dir/bench_fig5_demand_boxplot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_demand_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
