# Empty compiler generated dependencies file for bench_fig5_demand_boxplot.
# This may be replaced when dependencies are built.
