file(REMOVE_RECURSE
  "../bench/bench_table2_datacenters"
  "../bench/bench_table2_datacenters.pdb"
  "CMakeFiles/bench_table2_datacenters.dir/bench_table2_datacenters.cpp.o"
  "CMakeFiles/bench_table2_datacenters.dir/bench_table2_datacenters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_datacenters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
