# Empty dependencies file for bench_sec62_eval_makespan.
# This may be replaced when dependencies are built.
