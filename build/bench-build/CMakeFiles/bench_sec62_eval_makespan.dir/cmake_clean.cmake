file(REMOVE_RECURSE
  "../bench/bench_sec62_eval_makespan"
  "../bench/bench_sec62_eval_makespan.pdb"
  "CMakeFiles/bench_sec62_eval_makespan.dir/bench_sec62_eval_makespan.cpp.o"
  "CMakeFiles/bench_sec62_eval_makespan.dir/bench_sec62_eval_makespan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_eval_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
