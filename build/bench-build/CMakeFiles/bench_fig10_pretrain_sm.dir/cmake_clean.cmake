file(REMOVE_RECURSE
  "../bench/bench_fig10_pretrain_sm"
  "../bench/bench_fig10_pretrain_sm.pdb"
  "CMakeFiles/bench_fig10_pretrain_sm.dir/bench_fig10_pretrain_sm.cpp.o"
  "CMakeFiles/bench_fig10_pretrain_sm.dir/bench_fig10_pretrain_sm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pretrain_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
