# Empty dependencies file for bench_fig10_pretrain_sm.
# This may be replaced when dependencies are built.
