# Empty dependencies file for bench_ablation_proactive.
# This may be replaced when dependencies are built.
