file(REMOVE_RECURSE
  "../bench/bench_ablation_proactive"
  "../bench/bench_ablation_proactive.pdb"
  "CMakeFiles/bench_ablation_proactive.dir/bench_ablation_proactive.cpp.o"
  "CMakeFiles/bench_ablation_proactive.dir/bench_ablation_proactive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
