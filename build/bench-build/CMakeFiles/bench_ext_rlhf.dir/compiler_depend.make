# Empty compiler generated dependencies file for bench_ext_rlhf.
# This may be replaced when dependencies are built.
