file(REMOVE_RECURSE
  "../bench/bench_ext_rlhf"
  "../bench/bench_ext_rlhf.pdb"
  "CMakeFiles/bench_ext_rlhf.dir/bench_ext_rlhf.cpp.o"
  "CMakeFiles/bench_ext_rlhf.dir/bench_ext_rlhf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rlhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
