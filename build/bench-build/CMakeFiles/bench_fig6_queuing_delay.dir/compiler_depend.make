# Empty compiler generated dependencies file for bench_fig6_queuing_delay.
# This may be replaced when dependencies are built.
