file(REMOVE_RECURSE
  "../bench/bench_sec61_checkpointing"
  "../bench/bench_sec61_checkpointing.pdb"
  "CMakeFiles/bench_sec61_checkpointing.dir/bench_sec61_checkpointing.cpp.o"
  "CMakeFiles/bench_sec61_checkpointing.dir/bench_sec61_checkpointing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
