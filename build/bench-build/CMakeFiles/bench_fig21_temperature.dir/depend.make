# Empty dependencies file for bench_fig21_temperature.
# This may be replaced when dependencies are built.
