file(REMOVE_RECURSE
  "../bench/bench_fig21_temperature"
  "../bench/bench_fig21_temperature.pdb"
  "CMakeFiles/bench_fig21_temperature.dir/bench_fig21_temperature.cpp.o"
  "CMakeFiles/bench_fig21_temperature.dir/bench_fig21_temperature.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
