# Empty compiler generated dependencies file for bench_fig12_pipeline_mem.
# This may be replaced when dependencies are built.
