file(REMOVE_RECURSE
  "../bench/bench_fig12_pipeline_mem"
  "../bench/bench_fig12_pipeline_mem.pdb"
  "CMakeFiles/bench_fig12_pipeline_mem.dir/bench_fig12_pipeline_mem.cpp.o"
  "CMakeFiles/bench_fig12_pipeline_mem.dir/bench_fig12_pipeline_mem.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pipeline_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
