# Empty compiler generated dependencies file for bench_fig2_duration_util.
# This may be replaced when dependencies are built.
