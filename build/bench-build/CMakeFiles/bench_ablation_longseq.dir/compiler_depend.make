# Empty compiler generated dependencies file for bench_ablation_longseq.
# This may be replaced when dependencies are built.
