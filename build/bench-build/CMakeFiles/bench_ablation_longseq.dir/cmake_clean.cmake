file(REMOVE_RECURSE
  "../bench/bench_ablation_longseq"
  "../bench/bench_ablation_longseq.pdb"
  "CMakeFiles/bench_ablation_longseq.dir/bench_ablation_longseq.cpp.o"
  "CMakeFiles/bench_ablation_longseq.dir/bench_ablation_longseq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_longseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
