# Empty dependencies file for bench_fig17_final_statuses.
# This may be replaced when dependencies are built.
