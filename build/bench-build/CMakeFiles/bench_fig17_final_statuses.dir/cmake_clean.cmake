file(REMOVE_RECURSE
  "../bench/bench_fig17_final_statuses"
  "../bench/bench_fig17_final_statuses.pdb"
  "CMakeFiles/bench_fig17_final_statuses.dir/bench_fig17_final_statuses.cpp.o"
  "CMakeFiles/bench_fig17_final_statuses.dir/bench_fig17_final_statuses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_final_statuses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
