file(REMOVE_RECURSE
  "../bench/bench_fig22_moe"
  "../bench/bench_fig22_moe.pdb"
  "CMakeFiles/bench_fig22_moe.dir/bench_fig22_moe.cpp.o"
  "CMakeFiles/bench_fig22_moe.dir/bench_fig22_moe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
