file(REMOVE_RECURSE
  "../bench/bench_ablation_preemption"
  "../bench/bench_ablation_preemption.pdb"
  "CMakeFiles/bench_ablation_preemption.dir/bench_ablation_preemption.cpp.o"
  "CMakeFiles/bench_ablation_preemption.dir/bench_ablation_preemption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
