file(REMOVE_RECURSE
  "../bench/bench_fig16_loading_contention"
  "../bench/bench_fig16_loading_contention.pdb"
  "CMakeFiles/bench_fig16_loading_contention.dir/bench_fig16_loading_contention.cpp.o"
  "CMakeFiles/bench_fig16_loading_contention.dir/bench_fig16_loading_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_loading_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
