# Empty compiler generated dependencies file for bench_fig16_loading_contention.
# This may be replaced when dependencies are built.
