# Empty compiler generated dependencies file for bench_fig11_mem_snapshot.
# This may be replaced when dependencies are built.
