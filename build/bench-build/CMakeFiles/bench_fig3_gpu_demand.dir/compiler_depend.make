# Empty compiler generated dependencies file for bench_fig3_gpu_demand.
# This may be replaced when dependencies are built.
