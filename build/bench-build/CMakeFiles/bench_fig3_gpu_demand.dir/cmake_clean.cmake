file(REMOVE_RECURSE
  "../bench/bench_fig3_gpu_demand"
  "../bench/bench_fig3_gpu_demand.pdb"
  "CMakeFiles/bench_fig3_gpu_demand.dir/bench_fig3_gpu_demand.cpp.o"
  "CMakeFiles/bench_fig3_gpu_demand.dir/bench_fig3_gpu_demand.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gpu_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
