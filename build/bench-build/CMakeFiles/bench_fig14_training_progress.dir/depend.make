# Empty dependencies file for bench_fig14_training_progress.
# This may be replaced when dependencies are built.
