file(REMOVE_RECURSE
  "../bench/bench_fig14_training_progress"
  "../bench/bench_fig14_training_progress.pdb"
  "CMakeFiles/bench_fig14_training_progress.dir/bench_fig14_training_progress.cpp.o"
  "CMakeFiles/bench_fig14_training_progress.dir/bench_fig14_training_progress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_training_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
