file(REMOVE_RECURSE
  "../bench/bench_fig19_20_1024gpu"
  "../bench/bench_fig19_20_1024gpu.pdb"
  "CMakeFiles/bench_fig19_20_1024gpu.dir/bench_fig19_20_1024gpu.cpp.o"
  "CMakeFiles/bench_fig19_20_1024gpu.dir/bench_fig19_20_1024gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_20_1024gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
