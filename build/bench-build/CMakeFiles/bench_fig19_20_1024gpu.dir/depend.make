# Empty dependencies file for bench_fig19_20_1024gpu.
# This may be replaced when dependencies are built.
