file(REMOVE_RECURSE
  "../bench/bench_table1_clusters"
  "../bench/bench_table1_clusters.pdb"
  "CMakeFiles/bench_table1_clusters.dir/bench_table1_clusters.cpp.o"
  "CMakeFiles/bench_table1_clusters.dir/bench_table1_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
