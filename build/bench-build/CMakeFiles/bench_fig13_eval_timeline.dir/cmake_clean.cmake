file(REMOVE_RECURSE
  "../bench/bench_fig13_eval_timeline"
  "../bench/bench_fig13_eval_timeline.pdb"
  "CMakeFiles/bench_fig13_eval_timeline.dir/bench_fig13_eval_timeline.cpp.o"
  "CMakeFiles/bench_fig13_eval_timeline.dir/bench_fig13_eval_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_eval_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
