file(REMOVE_RECURSE
  "../bench/bench_sec61_diagnosis"
  "../bench/bench_sec61_diagnosis.pdb"
  "CMakeFiles/bench_sec61_diagnosis.dir/bench_sec61_diagnosis.cpp.o"
  "CMakeFiles/bench_sec61_diagnosis.dir/bench_sec61_diagnosis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
