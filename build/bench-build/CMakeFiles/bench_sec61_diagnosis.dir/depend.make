# Empty dependencies file for bench_sec61_diagnosis.
# This may be replaced when dependencies are built.
