# Empty dependencies file for bench_fig9_power_breakdown.
# This may be replaced when dependencies are built.
