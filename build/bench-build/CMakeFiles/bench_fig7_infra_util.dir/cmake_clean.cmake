file(REMOVE_RECURSE
  "../bench/bench_fig7_infra_util"
  "../bench/bench_fig7_infra_util.pdb"
  "CMakeFiles/bench_fig7_infra_util.dir/bench_fig7_infra_util.cpp.o"
  "CMakeFiles/bench_fig7_infra_util.dir/bench_fig7_infra_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_infra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
