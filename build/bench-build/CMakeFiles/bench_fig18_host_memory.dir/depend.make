# Empty dependencies file for bench_fig18_host_memory.
# This may be replaced when dependencies are built.
