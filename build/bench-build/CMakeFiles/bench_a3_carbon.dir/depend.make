# Empty dependencies file for bench_a3_carbon.
# This may be replaced when dependencies are built.
