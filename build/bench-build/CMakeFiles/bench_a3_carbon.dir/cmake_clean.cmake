file(REMOVE_RECURSE
  "../bench/bench_a3_carbon"
  "../bench/bench_a3_carbon.pdb"
  "CMakeFiles/bench_a3_carbon.dir/bench_a3_carbon.cpp.o"
  "CMakeFiles/bench_a3_carbon.dir/bench_a3_carbon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
