# Empty dependencies file for bench_ablation_reservation.
# This may be replaced when dependencies are built.
