file(REMOVE_RECURSE
  "../bench/bench_ablation_reservation"
  "../bench/bench_ablation_reservation.pdb"
  "CMakeFiles/bench_ablation_reservation.dir/bench_ablation_reservation.cpp.o"
  "CMakeFiles/bench_ablation_reservation.dir/bench_ablation_reservation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
