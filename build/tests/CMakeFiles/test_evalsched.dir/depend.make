# Empty dependencies file for test_evalsched.
# This may be replaced when dependencies are built.
