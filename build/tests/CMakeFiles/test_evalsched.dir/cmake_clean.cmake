file(REMOVE_RECURSE
  "CMakeFiles/test_evalsched.dir/test_evalsched.cpp.o"
  "CMakeFiles/test_evalsched.dir/test_evalsched.cpp.o.d"
  "test_evalsched"
  "test_evalsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evalsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
