
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acme_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/acme_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/acme_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acme_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/acme_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/acme_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/acme_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/acme_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acme_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/evalsched/CMakeFiles/acme_evalsched.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/acme_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acme_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/acme_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
