
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/model_math.cpp" "src/parallel/CMakeFiles/acme_parallel.dir/model_math.cpp.o" "gcc" "src/parallel/CMakeFiles/acme_parallel.dir/model_math.cpp.o.d"
  "/root/repo/src/parallel/schedule.cpp" "src/parallel/CMakeFiles/acme_parallel.dir/schedule.cpp.o" "gcc" "src/parallel/CMakeFiles/acme_parallel.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
