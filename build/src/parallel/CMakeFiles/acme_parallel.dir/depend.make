# Empty dependencies file for acme_parallel.
# This may be replaced when dependencies are built.
