file(REMOVE_RECURSE
  "CMakeFiles/acme_parallel.dir/model_math.cpp.o"
  "CMakeFiles/acme_parallel.dir/model_math.cpp.o.d"
  "CMakeFiles/acme_parallel.dir/schedule.cpp.o"
  "CMakeFiles/acme_parallel.dir/schedule.cpp.o.d"
  "libacme_parallel.a"
  "libacme_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
