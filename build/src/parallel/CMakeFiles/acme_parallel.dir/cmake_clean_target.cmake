file(REMOVE_RECURSE
  "libacme_parallel.a"
)
