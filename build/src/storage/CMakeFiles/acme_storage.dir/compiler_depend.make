# Empty compiler generated dependencies file for acme_storage.
# This may be replaced when dependencies are built.
