file(REMOVE_RECURSE
  "CMakeFiles/acme_storage.dir/network.cpp.o"
  "CMakeFiles/acme_storage.dir/network.cpp.o.d"
  "CMakeFiles/acme_storage.dir/shm_cache.cpp.o"
  "CMakeFiles/acme_storage.dir/shm_cache.cpp.o.d"
  "libacme_storage.a"
  "libacme_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
