
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/network.cpp" "src/storage/CMakeFiles/acme_storage.dir/network.cpp.o" "gcc" "src/storage/CMakeFiles/acme_storage.dir/network.cpp.o.d"
  "/root/repo/src/storage/shm_cache.cpp" "src/storage/CMakeFiles/acme_storage.dir/shm_cache.cpp.o" "gcc" "src/storage/CMakeFiles/acme_storage.dir/shm_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acme_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/acme_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
