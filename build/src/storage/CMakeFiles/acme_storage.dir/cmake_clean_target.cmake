file(REMOVE_RECURSE
  "libacme_storage.a"
)
