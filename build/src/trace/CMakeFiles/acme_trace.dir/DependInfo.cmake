
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/acme_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/acme_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/comparison.cpp" "src/trace/CMakeFiles/acme_trace.dir/comparison.cpp.o" "gcc" "src/trace/CMakeFiles/acme_trace.dir/comparison.cpp.o.d"
  "/root/repo/src/trace/synthesizer.cpp" "src/trace/CMakeFiles/acme_trace.dir/synthesizer.cpp.o" "gcc" "src/trace/CMakeFiles/acme_trace.dir/synthesizer.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/acme_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/acme_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/workload_profile.cpp" "src/trace/CMakeFiles/acme_trace.dir/workload_profile.cpp.o" "gcc" "src/trace/CMakeFiles/acme_trace.dir/workload_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
