file(REMOVE_RECURSE
  "CMakeFiles/acme_trace.dir/analysis.cpp.o"
  "CMakeFiles/acme_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/acme_trace.dir/comparison.cpp.o"
  "CMakeFiles/acme_trace.dir/comparison.cpp.o.d"
  "CMakeFiles/acme_trace.dir/synthesizer.cpp.o"
  "CMakeFiles/acme_trace.dir/synthesizer.cpp.o.d"
  "CMakeFiles/acme_trace.dir/trace_io.cpp.o"
  "CMakeFiles/acme_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/acme_trace.dir/workload_profile.cpp.o"
  "CMakeFiles/acme_trace.dir/workload_profile.cpp.o.d"
  "libacme_trace.a"
  "libacme_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
