# Empty compiler generated dependencies file for acme_trace.
# This may be replaced when dependencies are built.
