file(REMOVE_RECURSE
  "libacme_trace.a"
)
