file(REMOVE_RECURSE
  "CMakeFiles/acme_sched.dir/scheduler.cpp.o"
  "CMakeFiles/acme_sched.dir/scheduler.cpp.o.d"
  "libacme_sched.a"
  "libacme_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
