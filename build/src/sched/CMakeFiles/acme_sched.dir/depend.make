# Empty dependencies file for acme_sched.
# This may be replaced when dependencies are built.
