file(REMOVE_RECURSE
  "libacme_sched.a"
)
