# Empty compiler generated dependencies file for acme_ckpt.
# This may be replaced when dependencies are built.
