file(REMOVE_RECURSE
  "libacme_ckpt.a"
)
