
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/async_writer.cpp" "src/ckpt/CMakeFiles/acme_ckpt.dir/async_writer.cpp.o" "gcc" "src/ckpt/CMakeFiles/acme_ckpt.dir/async_writer.cpp.o.d"
  "/root/repo/src/ckpt/ledger.cpp" "src/ckpt/CMakeFiles/acme_ckpt.dir/ledger.cpp.o" "gcc" "src/ckpt/CMakeFiles/acme_ckpt.dir/ledger.cpp.o.d"
  "/root/repo/src/ckpt/timing.cpp" "src/ckpt/CMakeFiles/acme_ckpt.dir/timing.cpp.o" "gcc" "src/ckpt/CMakeFiles/acme_ckpt.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/acme_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
