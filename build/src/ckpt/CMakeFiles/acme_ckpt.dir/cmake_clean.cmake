file(REMOVE_RECURSE
  "CMakeFiles/acme_ckpt.dir/async_writer.cpp.o"
  "CMakeFiles/acme_ckpt.dir/async_writer.cpp.o.d"
  "CMakeFiles/acme_ckpt.dir/ledger.cpp.o"
  "CMakeFiles/acme_ckpt.dir/ledger.cpp.o.d"
  "CMakeFiles/acme_ckpt.dir/timing.cpp.o"
  "CMakeFiles/acme_ckpt.dir/timing.cpp.o.d"
  "libacme_ckpt.a"
  "libacme_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
