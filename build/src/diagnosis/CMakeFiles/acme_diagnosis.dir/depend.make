# Empty dependencies file for acme_diagnosis.
# This may be replaced when dependencies are built.
