file(REMOVE_RECURSE
  "CMakeFiles/acme_diagnosis.dir/embedding.cpp.o"
  "CMakeFiles/acme_diagnosis.dir/embedding.cpp.o.d"
  "CMakeFiles/acme_diagnosis.dir/failure_agent.cpp.o"
  "CMakeFiles/acme_diagnosis.dir/failure_agent.cpp.o.d"
  "CMakeFiles/acme_diagnosis.dir/log_agent.cpp.o"
  "CMakeFiles/acme_diagnosis.dir/log_agent.cpp.o.d"
  "CMakeFiles/acme_diagnosis.dir/log_template.cpp.o"
  "CMakeFiles/acme_diagnosis.dir/log_template.cpp.o.d"
  "CMakeFiles/acme_diagnosis.dir/rule_registry.cpp.o"
  "CMakeFiles/acme_diagnosis.dir/rule_registry.cpp.o.d"
  "libacme_diagnosis.a"
  "libacme_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
