file(REMOVE_RECURSE
  "libacme_diagnosis.a"
)
