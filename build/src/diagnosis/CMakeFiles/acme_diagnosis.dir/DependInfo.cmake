
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/embedding.cpp" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/embedding.cpp.o" "gcc" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/embedding.cpp.o.d"
  "/root/repo/src/diagnosis/failure_agent.cpp" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/failure_agent.cpp.o" "gcc" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/failure_agent.cpp.o.d"
  "/root/repo/src/diagnosis/log_agent.cpp" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/log_agent.cpp.o" "gcc" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/log_agent.cpp.o.d"
  "/root/repo/src/diagnosis/log_template.cpp" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/log_template.cpp.o" "gcc" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/log_template.cpp.o.d"
  "/root/repo/src/diagnosis/rule_registry.cpp" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/rule_registry.cpp.o" "gcc" "src/diagnosis/CMakeFiles/acme_diagnosis.dir/rule_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acme_failure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
