# Empty compiler generated dependencies file for acme_core.
# This may be replaced when dependencies are built.
