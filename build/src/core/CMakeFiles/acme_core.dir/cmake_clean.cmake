file(REMOVE_RECURSE
  "CMakeFiles/acme_core.dir/experiments.cpp.o"
  "CMakeFiles/acme_core.dir/experiments.cpp.o.d"
  "libacme_core.a"
  "libacme_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
