file(REMOVE_RECURSE
  "libacme_core.a"
)
