# Empty compiler generated dependencies file for acme_recovery.
# This may be replaced when dependencies are built.
