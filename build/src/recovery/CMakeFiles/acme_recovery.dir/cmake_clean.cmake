file(REMOVE_RECURSE
  "CMakeFiles/acme_recovery.dir/loss_spike.cpp.o"
  "CMakeFiles/acme_recovery.dir/loss_spike.cpp.o.d"
  "CMakeFiles/acme_recovery.dir/runner.cpp.o"
  "CMakeFiles/acme_recovery.dir/runner.cpp.o.d"
  "CMakeFiles/acme_recovery.dir/two_round_test.cpp.o"
  "CMakeFiles/acme_recovery.dir/two_round_test.cpp.o.d"
  "libacme_recovery.a"
  "libacme_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
