file(REMOVE_RECURSE
  "libacme_recovery.a"
)
