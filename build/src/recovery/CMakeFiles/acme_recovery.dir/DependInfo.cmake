
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/loss_spike.cpp" "src/recovery/CMakeFiles/acme_recovery.dir/loss_spike.cpp.o" "gcc" "src/recovery/CMakeFiles/acme_recovery.dir/loss_spike.cpp.o.d"
  "/root/repo/src/recovery/runner.cpp" "src/recovery/CMakeFiles/acme_recovery.dir/runner.cpp.o" "gcc" "src/recovery/CMakeFiles/acme_recovery.dir/runner.cpp.o.d"
  "/root/repo/src/recovery/two_round_test.cpp" "src/recovery/CMakeFiles/acme_recovery.dir/two_round_test.cpp.o" "gcc" "src/recovery/CMakeFiles/acme_recovery.dir/two_round_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/acme_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/acme_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/acme_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/acme_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/acme_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
