
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/fleet_sampler.cpp" "src/telemetry/CMakeFiles/acme_telemetry.dir/fleet_sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/acme_telemetry.dir/fleet_sampler.cpp.o.d"
  "/root/repo/src/telemetry/job_profiler.cpp" "src/telemetry/CMakeFiles/acme_telemetry.dir/job_profiler.cpp.o" "gcc" "src/telemetry/CMakeFiles/acme_telemetry.dir/job_profiler.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/telemetry/CMakeFiles/acme_telemetry.dir/timeseries.cpp.o" "gcc" "src/telemetry/CMakeFiles/acme_telemetry.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/acme_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/acme_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/acme_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
