file(REMOVE_RECURSE
  "libacme_telemetry.a"
)
