file(REMOVE_RECURSE
  "CMakeFiles/acme_telemetry.dir/fleet_sampler.cpp.o"
  "CMakeFiles/acme_telemetry.dir/fleet_sampler.cpp.o.d"
  "CMakeFiles/acme_telemetry.dir/job_profiler.cpp.o"
  "CMakeFiles/acme_telemetry.dir/job_profiler.cpp.o.d"
  "CMakeFiles/acme_telemetry.dir/timeseries.cpp.o"
  "CMakeFiles/acme_telemetry.dir/timeseries.cpp.o.d"
  "libacme_telemetry.a"
  "libacme_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
