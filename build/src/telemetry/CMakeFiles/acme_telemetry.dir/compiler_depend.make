# Empty compiler generated dependencies file for acme_telemetry.
# This may be replaced when dependencies are built.
