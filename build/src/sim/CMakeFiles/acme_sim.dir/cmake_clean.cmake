file(REMOVE_RECURSE
  "CMakeFiles/acme_sim.dir/engine.cpp.o"
  "CMakeFiles/acme_sim.dir/engine.cpp.o.d"
  "libacme_sim.a"
  "libacme_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
