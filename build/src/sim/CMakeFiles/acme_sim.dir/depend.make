# Empty dependencies file for acme_sim.
# This may be replaced when dependencies are built.
