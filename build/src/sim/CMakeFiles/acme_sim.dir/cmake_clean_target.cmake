file(REMOVE_RECURSE
  "libacme_sim.a"
)
