# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("cluster")
subdirs("storage")
subdirs("trace")
subdirs("sched")
subdirs("telemetry")
subdirs("parallel")
subdirs("failure")
subdirs("ckpt")
subdirs("diagnosis")
subdirs("recovery")
subdirs("evalsched")
subdirs("core")
