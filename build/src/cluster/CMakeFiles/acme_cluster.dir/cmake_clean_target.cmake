file(REMOVE_RECURSE
  "libacme_cluster.a"
)
