file(REMOVE_RECURSE
  "CMakeFiles/acme_cluster.dir/power.cpp.o"
  "CMakeFiles/acme_cluster.dir/power.cpp.o.d"
  "CMakeFiles/acme_cluster.dir/spec.cpp.o"
  "CMakeFiles/acme_cluster.dir/spec.cpp.o.d"
  "CMakeFiles/acme_cluster.dir/state.cpp.o"
  "CMakeFiles/acme_cluster.dir/state.cpp.o.d"
  "libacme_cluster.a"
  "libacme_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
