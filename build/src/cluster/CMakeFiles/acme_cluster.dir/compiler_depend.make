# Empty compiler generated dependencies file for acme_cluster.
# This may be replaced when dependencies are built.
