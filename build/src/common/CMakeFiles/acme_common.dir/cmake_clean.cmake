file(REMOVE_RECURSE
  "CMakeFiles/acme_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/acme_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/acme_common.dir/csv.cpp.o"
  "CMakeFiles/acme_common.dir/csv.cpp.o.d"
  "CMakeFiles/acme_common.dir/dist.cpp.o"
  "CMakeFiles/acme_common.dir/dist.cpp.o.d"
  "CMakeFiles/acme_common.dir/rng.cpp.o"
  "CMakeFiles/acme_common.dir/rng.cpp.o.d"
  "CMakeFiles/acme_common.dir/stats.cpp.o"
  "CMakeFiles/acme_common.dir/stats.cpp.o.d"
  "CMakeFiles/acme_common.dir/table.cpp.o"
  "CMakeFiles/acme_common.dir/table.cpp.o.d"
  "CMakeFiles/acme_common.dir/units.cpp.o"
  "CMakeFiles/acme_common.dir/units.cpp.o.d"
  "libacme_common.a"
  "libacme_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
