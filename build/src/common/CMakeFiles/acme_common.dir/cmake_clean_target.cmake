file(REMOVE_RECURSE
  "libacme_common.a"
)
