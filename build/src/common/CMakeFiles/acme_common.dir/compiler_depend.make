# Empty compiler generated dependencies file for acme_common.
# This may be replaced when dependencies are built.
