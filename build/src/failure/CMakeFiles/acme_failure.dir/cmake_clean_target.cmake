file(REMOVE_RECURSE
  "libacme_failure.a"
)
