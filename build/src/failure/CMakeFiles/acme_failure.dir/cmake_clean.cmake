file(REMOVE_RECURSE
  "CMakeFiles/acme_failure.dir/injector.cpp.o"
  "CMakeFiles/acme_failure.dir/injector.cpp.o.d"
  "CMakeFiles/acme_failure.dir/log_synth.cpp.o"
  "CMakeFiles/acme_failure.dir/log_synth.cpp.o.d"
  "CMakeFiles/acme_failure.dir/taxonomy.cpp.o"
  "CMakeFiles/acme_failure.dir/taxonomy.cpp.o.d"
  "libacme_failure.a"
  "libacme_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
