# Empty compiler generated dependencies file for acme_failure.
# This may be replaced when dependencies are built.
