
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/injector.cpp" "src/failure/CMakeFiles/acme_failure.dir/injector.cpp.o" "gcc" "src/failure/CMakeFiles/acme_failure.dir/injector.cpp.o.d"
  "/root/repo/src/failure/log_synth.cpp" "src/failure/CMakeFiles/acme_failure.dir/log_synth.cpp.o" "gcc" "src/failure/CMakeFiles/acme_failure.dir/log_synth.cpp.o.d"
  "/root/repo/src/failure/taxonomy.cpp" "src/failure/CMakeFiles/acme_failure.dir/taxonomy.cpp.o" "gcc" "src/failure/CMakeFiles/acme_failure.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
