# Empty compiler generated dependencies file for acme_evalsched.
# This may be replaced when dependencies are built.
