file(REMOVE_RECURSE
  "CMakeFiles/acme_evalsched.dir/coordinator.cpp.o"
  "CMakeFiles/acme_evalsched.dir/coordinator.cpp.o.d"
  "CMakeFiles/acme_evalsched.dir/datasets.cpp.o"
  "CMakeFiles/acme_evalsched.dir/datasets.cpp.o.d"
  "libacme_evalsched.a"
  "libacme_evalsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_evalsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
