file(REMOVE_RECURSE
  "libacme_evalsched.a"
)
