# Empty compiler generated dependencies file for acme_analyze.
# This may be replaced when dependencies are built.
