file(REMOVE_RECURSE
  "CMakeFiles/acme_analyze.dir/acme_analyze.cpp.o"
  "CMakeFiles/acme_analyze.dir/acme_analyze.cpp.o.d"
  "acme_analyze"
  "acme_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acme_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
