file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_pretraining.dir/fault_tolerant_pretraining.cpp.o"
  "CMakeFiles/fault_tolerant_pretraining.dir/fault_tolerant_pretraining.cpp.o.d"
  "fault_tolerant_pretraining"
  "fault_tolerant_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
