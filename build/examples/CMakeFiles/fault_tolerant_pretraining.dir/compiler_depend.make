# Empty compiler generated dependencies file for fault_tolerant_pretraining.
# This may be replaced when dependencies are built.
