file(REMOVE_RECURSE
  "CMakeFiles/evaluation_coordinator.dir/evaluation_coordinator.cpp.o"
  "CMakeFiles/evaluation_coordinator.dir/evaluation_coordinator.cpp.o.d"
  "evaluation_coordinator"
  "evaluation_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
