# Empty dependencies file for evaluation_coordinator.
# This may be replaced when dependencies are built.
