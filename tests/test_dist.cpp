#include "common/dist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace acme::common {
namespace {

TEST(LognormalFromStats, AnalyticRoundTrip) {
  const LognormalFromStats d(10.0, 25.0);
  EXPECT_NEAR(d.median(), 10.0, 1e-9);
  EXPECT_NEAR(d.mean(), 25.0, 1e-9);
}

TEST(LognormalFromStats, DegeneratesWhenMeanBelowMedian) {
  // Impossible pair for a lognormal (appears in noisy Table 3 rows): sigma
  // collapses and the distribution returns the median.
  const LognormalFromStats d(15.6, 14.5);
  EXPECT_DOUBLE_EQ(d.sigma(), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 15.6);
}

TEST(LognormalFromStats, RejectsNonPositiveMedian) {
  EXPECT_THROW(LognormalFromStats(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LognormalFromStats(-2.0, 1.0), std::invalid_argument);
}

// Property sweep: empirical median and mean of samples track the fitted pair
// across a range of (median, mean) shapes from the paper's tables.
class LognormalFit
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LognormalFit, EmpiricalStatsMatch) {
  const auto [median, mean] = GetParam();
  const LognormalFromStats d(median, mean);
  Rng rng(99);
  std::vector<double> samples;
  const int n = 200000;
  samples.reserve(n);
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    samples.push_back(d.sample(rng));
    sum += samples.back();
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2] / median, 1.0, 0.05);
  EXPECT_NEAR(sum / n / mean, 1.0, 0.12);  // heavy tails converge slowly
}

INSTANTIATE_TEST_SUITE_P(
    Table3Shapes, LognormalFit,
    ::testing::Values(std::pair{155.3, 868.1},   // NVLink TTF
                      std::pair{586.0, 923.2},   // CUDA TTF
                      std::pair{0.5, 51.9},      // Connection TTF
                      std::pair{2.0, 78.3},      // CUDA TTR
                      std::pair{120.0, 900.0},   // eval durations
                      std::pair{1.0, 1.0}));     // degenerate point mass

TEST(BoundedPareto, SamplesStayInBounds) {
  const BoundedPareto d(1.2, 10.0, 1000.0);
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(BoundedPareto, HeavyTailSkew) {
  const BoundedPareto d(1.0, 1.0, 1e6);
  Rng rng(6);
  double sum = 0;
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    samples.push_back(d.sample(rng));
    sum += samples.back();
  }
  std::nth_element(samples.begin(), samples.begin() + 25000, samples.end());
  // Mean far exceeds median for alpha=1 bounded Pareto.
  EXPECT_GT(sum / 50000.0, samples[25000] * 3);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 3.0, 2.0), std::invalid_argument);
}

TEST(DiscreteDist, SamplesOnlyListedValues) {
  const DiscreteDist d({1, 2, 4, 8}, {1, 1, 1, 1});
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_TRUE(v == 1 || v == 2 || v == 4 || v == 8);
  }
}

TEST(DiscreteDist, FrequenciesFollowWeights) {
  const DiscreteDist d({10, 20}, {9, 1});
  Rng rng(8);
  int tens = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (d.sample(rng) == 10) ++tens;
  EXPECT_NEAR(tens / static_cast<double>(n), 0.9, 0.01);
}

TEST(DiscreteDist, RejectsMismatchedSizes) {
  EXPECT_THROW(DiscreteDist({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(DiscreteDist({}, {}), std::invalid_argument);
}

TEST(LognormalMixture, InterpolatesComponents) {
  const LognormalMixture mix(LognormalFromStats(1.0, 1.0),
                             LognormalFromStats(100.0, 100.0), 0.5);
  Rng rng(9);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (mix.sample(rng) < 10.0) ++small;
  EXPECT_NEAR(small / static_cast<double>(n), 0.5, 0.02);
}

TEST(LognormalMixture, WeightOneUsesOnlyFirst) {
  const LognormalMixture mix(LognormalFromStats(2.0, 2.0),
                             LognormalFromStats(50.0, 50.0), 1.0);
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_NEAR(mix.sample(rng), 2.0, 1e-9);
}

}  // namespace
}  // namespace acme::common
