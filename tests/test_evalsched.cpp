#include <gtest/gtest.h>

#include "common/check.h"
#include "evalsched/coordinator.h"
#include "evalsched/datasets.h"

namespace acme::evalsched {
namespace {

TEST(Datasets, SuiteHas63Entries) {
  EXPECT_EQ(dataset_suite().size(), 63u);
}

TEST(Datasets, AllPositiveAndNamed) {
  std::set<std::string> names;
  for (const auto& d : dataset_suite()) {
    EXPECT_GT(d.inference_seconds, 0.0) << d.name;
    EXPECT_GE(d.metric_cpu_seconds, 0.0) << d.name;
    EXPECT_GT(d.preprocess_seconds, 0.0) << d.name;
    names.insert(d.name);
  }
  EXPECT_EQ(names.size(), dataset_suite().size());
}

TEST(Datasets, CodingAndJudgeSetsAreMetricHeavy) {
  double max_small_metric = 0;
  for (const auto& d : dataset_suite()) {
    if (d.name == "mbpp") {
      EXPECT_GT(d.metric_cpu_seconds, 600.0);
    }
    if (d.name == "chatbot-arena") {
      EXPECT_GT(d.metric_cpu_seconds, 900.0);
    }
    if (d.name == "mmlu") max_small_metric = d.metric_cpu_seconds;
  }
  EXPECT_LT(max_small_metric, 60.0);
}

// --- Fig 13: single-trial stage anatomy ---

TEST(Fig13, HumanEvalStageFractionsMatchPaper) {
  TrialCoordinator coordinator(TrialCoordinator::baseline_config(1));
  std::vector<Dataset> only_humaneval;
  for (const auto& d : dataset_suite())
    if (d.name == "humaneval") only_humaneval.push_back(d);
  ASSERT_EQ(only_humaneval.size(), 1u);
  const auto report = coordinator.run(only_humaneval);

  double total = 0, pre_infer = 0, infer = 0, metric = 0;
  for (const auto& s : report.humaneval_timeline) {
    total += s.duration;
    if (s.stage == "inference") infer += s.duration;
    else if (s.stage == "metric") metric += s.duration;
    else pre_infer += s.duration;
  }
  ASSERT_GT(total, 0.0);
  // Paper: ~29.5% model loading + preprocessing, ~19.0% idle metric tail,
  // roughly half the time actually inferring.
  EXPECT_NEAR(pre_infer / total, 0.295, 0.06);
  EXPECT_NEAR(metric / total, 0.19, 0.05);
  EXPECT_NEAR(infer / total, 0.51, 0.07);
}

// --- §6.2 makespans ---

TEST(Makespan, CoordinatorBeatsBaselineOneNode) {
  auto base = TrialCoordinator(TrialCoordinator::baseline_config(1)).run();
  auto ours = TrialCoordinator(TrialCoordinator::coordinator_config(1)).run();
  const double speedup = base.makespan / ours.makespan;
  // Paper: 1.3x with a single node.
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 1.6);
}

TEST(Makespan, CoordinatorBeatsBaselineFourNodes) {
  auto base = TrialCoordinator(TrialCoordinator::baseline_config(4)).run();
  auto ours = TrialCoordinator(TrialCoordinator::coordinator_config(4)).run();
  const double speedup = base.makespan / ours.makespan;
  // Paper: up to 1.8x with four nodes.
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 2.3);
}

TEST(Makespan, SpeedupGrowsWithNodes) {
  const double s1 = TrialCoordinator(TrialCoordinator::baseline_config(1)).run().makespan /
                    TrialCoordinator(TrialCoordinator::coordinator_config(1)).run().makespan;
  const double s4 = TrialCoordinator(TrialCoordinator::baseline_config(4)).run().makespan /
                    TrialCoordinator(TrialCoordinator::coordinator_config(4)).run().makespan;
  EXPECT_GT(s4, s1);
}

TEST(Makespan, CoordinatorCutsGpuIdleTime) {
  auto base = TrialCoordinator(TrialCoordinator::baseline_config(1)).run();
  auto ours = TrialCoordinator(TrialCoordinator::coordinator_config(1)).run();
  // Decoupling the metric stage removes the GPU-idle tail (Fig 13: 19%).
  EXPECT_GT(base.gpu_idle_fraction(), 0.3);
  EXPECT_LT(ours.gpu_idle_fraction(), base.gpu_idle_fraction() / 2);
}

TEST(Makespan, BundlingReducesTrialCount) {
  auto base = TrialCoordinator(TrialCoordinator::baseline_config(1)).run();
  auto ours = TrialCoordinator(TrialCoordinator::coordinator_config(1)).run();
  EXPECT_EQ(base.trials, 63);
  EXPECT_LT(ours.trials, 30);
}

// Each decoupling contributes: ablation over the three techniques.
TEST(Ablation, EachTechniqueHelpsAtItsScale) {
  auto with_flags = [](int nodes, bool load, bool metric, bool packing) {
    EvalConfig c = TrialCoordinator::baseline_config(nodes);
    c.decouple_loading = load;
    c.decouple_metric = metric;
    c.elastic_packing = packing;
    c.cache_tokenized = packing;  // caching ships with the coordinator
    return TrialCoordinator(c).run().makespan;
  };
  // Loading and metric decoupling pay off even on a single GPU-bound node.
  const double none = with_flags(1, false, false, false);
  const double only_load = with_flags(1, true, false, false);
  const double load_metric = with_flags(1, true, true, false);
  EXPECT_LT(only_load, none);
  EXPECT_LT(load_metric, only_load);
  // Elastic packing/splitting removes the judge-set tail that otherwise
  // floors the makespan once GPUs are plentiful (its design target).
  const double wide_without = with_flags(4, true, true, false);
  const double wide_full = with_flags(4, true, true, true);
  EXPECT_LT(wide_full, wide_without * 0.75);
}

TEST(Coordinator, HandlesTinySuite) {
  std::vector<Dataset> suite = {dataset_suite()[10], dataset_suite()[11]};
  auto report = TrialCoordinator(TrialCoordinator::coordinator_config(1)).run(suite);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_LE(report.trials, 2);
}

TEST(Coordinator, RejectsZeroNodes) {
  EvalConfig c = TrialCoordinator::baseline_config(1);
  c.nodes = 0;
  EXPECT_THROW(TrialCoordinator{c}, common::CheckError);
}

TEST(Coordinator, MoreGpusNeverSlower) {
  const double one = TrialCoordinator(TrialCoordinator::coordinator_config(1)).run().makespan;
  const double four = TrialCoordinator(TrialCoordinator::coordinator_config(4)).run().makespan;
  EXPECT_LE(four, one);
}


TEST(CpuPool, FiniteSlotsSerializeMetricJobs) {
  // One CPU slot: decoupled metric jobs queue behind each other, so the
  // makespan grows toward the metric total.
  std::vector<Dataset> suite = {{"a", 5, 10, 100, false},
                                {"b", 5, 10, 100, false},
                                {"c", 5, 10, 100, false}};
  EvalConfig wide = TrialCoordinator::coordinator_config(1);
  wide.elastic_packing = false;  // one dataset per trial for clarity
  EvalConfig narrow = wide;
  narrow.metric_cpu_slots = 1;
  const auto unlimited = TrialCoordinator(wide).run(suite);
  const auto serialized = TrialCoordinator(narrow).run(suite);
  EXPECT_GT(serialized.makespan, unlimited.makespan + 150.0);
  // With one slot the three 100 s metrics run back to back.
  EXPECT_GE(serialized.makespan, 300.0);
}

TEST(CpuPool, AmpleSlotsMatchUnlimited) {
  EvalConfig unlimited = TrialCoordinator::coordinator_config(2);
  EvalConfig ample = unlimited;
  ample.metric_cpu_slots = 1024;
  EXPECT_DOUBLE_EQ(TrialCoordinator(unlimited).run().makespan,
                   TrialCoordinator(ample).run().makespan);
}

}  // namespace
}  // namespace acme::evalsched
