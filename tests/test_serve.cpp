// acme::serve unit tests: arrival-process statistics, the KV-cache memory
// anatomy against the parallel-side ground truth, prefill/decode accounting
// through the continuous-batching spine, and the SLO-goodput edge cases
// (no traffic, saturation, replica killed mid-batch).
#include <gtest/gtest.h>

#include <cmath>

#include "core/acme.h"

namespace acme {
namespace {

serve::ServeConfig small_config() {
  serve::ServeConfig cfg;
  cfg.replicas = 2;
  cfg.traffic.mean_rps = 8.0;
  cfg.traffic.diurnal_amplitude = 0.25;
  cfg.traffic.diurnal_period_seconds = 600.0;
  cfg.traffic.burst_multiplier = 2.0;
  cfg.traffic.burst_fraction = 0.1;
  cfg.horizon_seconds = 300.0;
  return cfg;
}

serve::FleetReport run_fleet(const serve::ServeConfig& cfg,
                             std::uint64_t seed) {
  sim::Engine engine;
  serve::ServeFleet fleet(engine, cfg, seed);
  fleet.start();
  engine.run();
  return fleet.report();
}

TEST(Traffic, LongRunMeanMatchesProfile) {
  // The base-rate normalization must make the long-run mean equal mean_rps
  // no matter how much diurnal swing or MMPP burstiness shapes the process.
  serve::TrafficProfile profile;
  profile.mean_rps = 50.0;
  profile.diurnal_amplitude = 0.5;
  profile.diurnal_period_seconds = 3600.0;
  profile.burst_multiplier = 3.0;
  profile.burst_fraction = 0.1;
  serve::ArrivalProcess arrivals(profile, 7);
  const double horizon = 40000.0;  // many periods, many burst dwells
  double t = arrivals.next_interarrival(0.0);
  std::uint64_t count = 0;
  while (t <= horizon) {
    ++count;
    t += arrivals.next_interarrival(t);
  }
  const double observed = static_cast<double>(count) / horizon;
  EXPECT_NEAR(observed, profile.mean_rps, 0.05 * profile.mean_rps);
}

TEST(Traffic, FlatProfileIsPlainPoisson) {
  serve::TrafficProfile profile;
  profile.mean_rps = 20.0;
  profile.diurnal_amplitude = 0.0;
  profile.burst_multiplier = 1.0;
  profile.burst_fraction = 0.0;
  serve::ArrivalProcess arrivals(profile, 11);
  const double horizon = 20000.0;
  double t = arrivals.next_interarrival(0.0);
  std::uint64_t count = 0;
  double sum = 0, sum_sq = 0;
  double prev = 0;
  while (t <= horizon) {
    const double gap = t - prev;
    sum += gap;
    sum_sq += gap * gap;
    prev = t;
    ++count;
    t += arrivals.next_interarrival(t);
  }
  ASSERT_GT(count, 100000u);
  const double n = static_cast<double>(count);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  // Exponential interarrivals: variance == mean^2 (CV == 1).
  EXPECT_NEAR(mean, 1.0 / profile.mean_rps, 0.05 * mean);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(Traffic, NoTrafficNeverArrives) {
  serve::TrafficProfile profile;
  profile.mean_rps = 0.0;
  serve::ArrivalProcess arrivals(profile, 3);
  EXPECT_TRUE(std::isinf(arrivals.next_interarrival(0.0)));
}

TEST(Traffic, RequestShapesRespectClamps) {
  serve::TrafficProfile profile;
  profile.prompt_tokens_mean = 4.0;  // tiny means stress the clamps
  profile.output_tokens_mean = 1.0;
  serve::ArrivalProcess arrivals(profile, 5);
  for (int i = 0; i < 2000; ++i) {
    const serve::RequestSample s = arrivals.sample_request();
    EXPECT_GE(s.prompt_tokens, 1);
    EXPECT_GE(s.output_tokens, 2);  // first token is prefill's; >= 1 decode
    EXPECT_LE(s.prompt_tokens, profile.max_tokens);
    EXPECT_LE(s.output_tokens, profile.max_tokens);
  }
}

TEST(ReplicaModel, KvAnatomyMatchesParallelGroundTruth) {
  // The serving memory model must reuse the training-side anatomy: resident
  // weights are the fp16 2Psi term, and the KV capacity is exactly what HBM
  // remains after weights + workspace, divided by the per-token K/V state.
  const parallel::TransformerConfig model = parallel::llm_7b();
  serve::ReplicaHardware hw;
  const comm::CollectiveModel fabric(comm::seren_fabric());
  const serve::ReplicaCostModel cost(model, hw, fabric);

  EXPECT_DOUBLE_EQ(cost.weight_bytes(),
                   parallel::mixed_precision_anatomy(model.params()).param_bytes);
  EXPECT_DOUBLE_EQ(cost.kv_bytes_per_token(),
                   2.0 * 2.0 * model.layers * model.hidden);
  const double usable =
      hw.gpus * (hw.gpu_memory_bytes - hw.workspace_bytes_per_gpu) -
      cost.weight_bytes();
  EXPECT_EQ(cost.kv_capacity_tokens(),
            static_cast<std::uint64_t>(usable / cost.kv_bytes_per_token()));
  // A 7B on 8x80GB must hold hundreds of thousands of KV tokens.
  EXPECT_GT(cost.kv_capacity_tokens(), 100000u);
}

TEST(ReplicaModel, PhasePricingIsMonotone) {
  const serve::ReplicaCostModel cost(parallel::llm_7b(), {},
                                     comm::CollectiveModel(comm::seren_fabric()));
  EXPECT_GT(cost.prefill_seconds(1), 0.0);
  EXPECT_LT(cost.prefill_seconds(128), cost.prefill_seconds(4096));
  // More in-flight requests and more resident KV both slow a decode step.
  EXPECT_LE(cost.decode_step_seconds(1, 1000),
            cost.decode_step_seconds(64, 1000));
  EXPECT_LT(cost.decode_step_seconds(8, 1000),
            cost.decode_step_seconds(8, 400000));
}

TEST(ServeFleet, TokenAccountingBalances) {
  const serve::FleetReport r = run_fleet(small_config(), 99);
  ASSERT_GT(r.offered, 0u);
  // Every offered request is exactly one of completed / rejected / failed
  // once the engine drains.
  EXPECT_EQ(r.offered, r.completed + r.rejected + r.failed);
  EXPECT_EQ(r.failed, 0u);  // nothing kills replicas in this run
  ASSERT_GT(r.completed, 0u);
  // Each completed request contributed >= 1 prompt token and exactly
  // (output - 1) >= 1 decode tokens; decode work is epoch-coalesced so
  // steps >= epochs and tokens >= steps (every step advances >= 1 request).
  EXPECT_GE(r.prefill_tokens, r.completed);
  EXPECT_GE(r.decode_tokens, r.completed);
  EXPECT_GE(r.decode_steps, r.epochs);
  EXPECT_GE(r.decode_tokens, r.decode_steps);
  // Latency ordering: ttft <= e2e at matching quantiles, p50 <= p99.
  EXPECT_LE(r.ttft_p50, r.ttft_p99);
  EXPECT_LE(r.e2e_p50, r.e2e_p99);
  EXPECT_LE(r.ttft_p50, r.e2e_p50);
  EXPECT_GT(r.mean_batch_occupancy, 0.0);
}

TEST(ServeFleet, ZeroTrafficAttainsVacuously) {
  serve::ServeConfig cfg = small_config();
  cfg.traffic.mean_rps = 0.0;
  const serve::FleetReport r = run_fleet(cfg, 1);
  EXPECT_EQ(r.offered, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_DOUBLE_EQ(r.slo_attainment(), 1.0);  // nothing violated
  EXPECT_DOUBLE_EQ(r.goodput_rps(), 0.0);
}

TEST(ServeFleet, LightLoadAttainsSlo) {
  serve::ServeConfig cfg = small_config();
  cfg.traffic.mean_rps = 2.0;  // far below two replicas' capacity
  cfg.traffic.burst_multiplier = 1.0;
  cfg.traffic.burst_fraction = 0.0;
  const serve::FleetReport r = run_fleet(cfg, 21);
  ASSERT_GT(r.offered, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_GE(r.slo_attainment(), 0.99);
  EXPECT_NEAR(r.goodput_rps(), r.offered_rps(), 0.05 * r.offered_rps());
}

TEST(ServeFleet, SaturationDegradesGoodputNotJustLatency) {
  serve::ServeConfig cfg = small_config();
  cfg.replicas = 1;
  cfg.traffic.mean_rps = 400.0;  // an order of magnitude past one replica
  const serve::FleetReport r = run_fleet(cfg, 33);
  EXPECT_GT(r.rejected, 0u);  // queue cap must engage
  EXPECT_LT(r.slo_attainment(), 0.5);
  EXPECT_LT(r.goodput_rps(), r.offered_rps() * 0.5);
}

TEST(ServeFleet, KillFailsInFlightAndRewarmRestores) {
  serve::ServeConfig cfg = small_config();
  cfg.traffic.mean_rps = 30.0;  // keeps both replicas busy
  sim::Engine engine;
  serve::ServeFleet fleet(engine, cfg, 77);
  fleet.start();
  engine.schedule_at(60.0, [&fleet] {
    EXPECT_TRUE(fleet.replica_up(0));
    fleet.kill_replica(0, 120.0);
    EXPECT_FALSE(fleet.replica_up(0));
    EXPECT_EQ(fleet.up_replicas(), 1);
  });
  engine.schedule_at(120.0, [&fleet] {
    EXPECT_FALSE(fleet.replica_up(0));  // still re-warming
  });
  engine.run();
  EXPECT_TRUE(fleet.replica_up(0));  // rewarm at t=180 restored it
  EXPECT_EQ(fleet.up_replicas(), 2);
  const serve::FleetReport r = fleet.report();
  EXPECT_EQ(r.replica_kills, 1);
  EXPECT_EQ(r.rewarms, 1);
  EXPECT_GT(r.failed, 0u);  // in-flight + queued work died with the replica
  EXPECT_EQ(r.offered, r.completed + r.rejected + r.failed);
  EXPECT_GT(r.completed, 0u);  // the surviving replica kept serving
}

TEST(ServeFleet, OutageRejectsAllTrafficUntilRewarm) {
  serve::ServeConfig cfg = small_config();
  cfg.replicas = 1;
  sim::Engine engine;
  serve::ServeFleet fleet(engine, cfg, 5);
  fleet.start();
  // Down from t=10 past the whole arrival horizon: every arrival after the
  // kill finds no up replica and bounces. The engine still drains the rewarm
  // event after arrivals stop, so the fleet ends healthy.
  engine.schedule_at(10.0, [&fleet, &cfg] {
    fleet.kill_replica(0, 2.0 * cfg.horizon_seconds);
    EXPECT_EQ(fleet.up_replicas(), 0);
  });
  engine.run();
  EXPECT_TRUE(fleet.replica_up(0));
  const serve::FleetReport r = fleet.report();
  EXPECT_EQ(r.rewarms, 1);
  EXPECT_GT(r.rejected, 0u);  // no up replica -> every later arrival bounces
  EXPECT_EQ(r.offered, r.completed + r.rejected + r.failed);
}

TEST(ServeFleet, DigestIsSeedDeterministic) {
  const serve::ServeConfig cfg = small_config();
  const serve::FleetReport a = run_fleet(cfg, 1234);
  const serve::FleetReport b = run_fleet(cfg, 1234);
  const serve::FleetReport c = run_fleet(cfg, 4321);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_NE(a.digest(), c.digest());
}

}  // namespace
}  // namespace acme
