// ThreadSanitizer stress runner for the parallel window runtime — a plain
// main (no gtest) so the TSan CI job sees only instrumented code.
//
// Randomized kill/recover/backfill churn at 8 workers: each iteration draws
// a scenario mutation (seed, failure cadence, checkpoint interval, recovery
// mode) and runs the full seren world — live Table 3 failure injection,
// §6.1 recovery, scheduler backfill — once serially and once through
// World::run_parallel on a shared 8-wide work-stealing pool, checking the
// report digests byte-identical. A sharded-replay round (4-8 pods drained
// concurrently on the same pool) covers the multi-partition merge, where
// the actual cross-thread traffic lives. Exits non-zero on any digest
// divergence; TSan itself fails the job on a data race.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.h"
#include "common/rng.h"
#include "core/acme.h"

using namespace acme;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++failures;
  }
}

// One churny world: failures on, cadence/checkpointing/recovery randomized.
world::ScenarioSpec mutate_spec(common::Rng& rng) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 128;  // 1/128 job volume: fast enough under TSan, still busy
  spec.seed = rng.next();
  spec.inject_failures = true;
  spec.failure_interval_scale = rng.uniform(0.4, 2.0);
  spec.ckpt_interval_seconds = rng.uniform(10 * 60.0, 60 * 60.0);
  spec.async_ckpt = rng.uniform() < 0.5;
  spec.auto_recovery = rng.uniform() < 0.75;  // manual TTR path too
  spec.fleet_samples = 500;
  return spec;
}

void stress_world_churn(task::Pool& pool, common::Rng& rng) {
  const world::ScenarioSpec spec = mutate_spec(rng);
  const world::WorldReport serial = world::run_world(spec);
  world::World parallel_world(spec);
  const world::WorldReport parallel = parallel_world.run_parallel(pool);
  check(parallel.digest() == serial.digest(),
        "world digest identical at workers=8 (seed " +
            std::to_string(spec.seed) + ")");
  check(serial.failures_injected > 0,
        "churn actually injected failures (seed " +
            std::to_string(spec.seed) + ")");
}

void stress_sharded_replay(task::Pool& pool, common::Rng& rng) {
  const core::ClusterSetup setup = core::seren_setup();
  const std::uint64_t seed = rng.next();
  const std::size_t shards = 4 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const double window = rng.uniform() < 0.5
                            ? rng.uniform(3600.0, 7 * 24 * 3600.0)
                            : 0;  // 0 = one window drains all
  const core::ShardedReplay serial =
      core::run_sharded_replay(setup, 256, seed, shards, nullptr, window);
  const core::ShardedReplay parallel =
      core::run_sharded_replay(setup, 256, seed, shards, &pool, window);
  check(parallel.digest() == serial.digest(),
        "sharded replay digest identical at workers=8 (seed " +
            std::to_string(seed) + ", " + std::to_string(shards) + " shards)");
  check(parallel.windows.events == serial.windows.events,
        "event counts identical across drains");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 4;
  std::uint64_t seed = 42;
  common::FlagSet flags("tsan_replay_stress");
  flags.add("--iters", &iters, "churn iterations (each runs world + shards)");
  flags.add("--seed", &seed, "base seed for the mutation stream");
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "tsan_replay_stress: %s\n%s", error.c_str(),
                 flags.usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    return 0;
  }

  task::Pool pool(8);
  common::Rng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    stress_world_churn(pool, rng);
    stress_sharded_replay(pool, rng);
    std::printf("tsan_replay_stress: iteration %llu/%llu ok\n",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(iters));
  }
  if (failures == 0) std::printf("tsan_replay_stress: OK\n");
  return failures == 0 ? 0 : 1;
}
