#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"
#include "trace/analysis.h"
#include "trace/comparison.h"
#include "trace/synthesizer.h"
#include "trace/trace_io.h"
#include "trace/workload_profile.h"

namespace acme::trace {
namespace {

using common::kMinute;

Trace seren_trace(double scale = 20.0) {
  static Trace cached = [] {
    auto profile = scaled(seren_profile(), 20.0);
    profile.cpu_jobs = 0;
    return TraceSynthesizer(profile).generate();
  }();
  (void)scale;
  return cached;
}

Trace kalos_trace() {
  static Trace cached = [] {
    auto profile = kalos_profile();
    profile.cpu_jobs = 0;
    return TraceSynthesizer(profile).generate();
  }();
  return cached;
}

// --- Calibration against the paper's published statistics (DESIGN.md §4) ---

TEST(Calibration, SerenTypeMixMatchesFig4) {
  const auto shares = type_shares(seren_trace());
  EXPECT_NEAR(shares.at(WorkloadType::kEvaluation).count_fraction, 0.78, 0.05);
  EXPECT_NEAR(shares.at(WorkloadType::kPretrain).count_fraction, 0.009, 0.006);
  // Pretraining holds ~69.5% of Seren GPU time.
  EXPECT_GT(shares.at(WorkloadType::kPretrain).gpu_time_fraction, 0.60);
  EXPECT_LT(shares.at(WorkloadType::kPretrain).gpu_time_fraction, 0.82);
  // Evaluation: huge count, tiny GPU time.
  EXPECT_LT(shares.at(WorkloadType::kEvaluation).gpu_time_fraction, 0.05);
}

TEST(Calibration, KalosTypeMixMatchesFig4) {
  const auto shares = type_shares(kalos_trace());
  EXPECT_NEAR(shares.at(WorkloadType::kEvaluation).count_fraction, 0.90, 0.05);
  // Pretraining ~3.2% of jobs but ~94% of GPU time.
  EXPECT_GT(shares.at(WorkloadType::kPretrain).gpu_time_fraction, 0.88);
  EXPECT_LT(shares.at(WorkloadType::kPretrain).count_fraction, 0.09);
  // Evaluation ~0.8% of GPU time.
  EXPECT_LT(shares.at(WorkloadType::kEvaluation).gpu_time_fraction, 0.02);
}

TEST(Calibration, MedianJobDurationAboutTwoMinutes) {
  for (const auto& trace : {seren_trace(), kalos_trace()}) {
    const double median = durations(trace).median();
    EXPECT_GT(median, 0.7 * kMinute);
    EXPECT_LT(median, 4.0 * kMinute);
  }
}

TEST(Calibration, AverageGpuDemandMatchesTable2) {
  // Paper: 5.7 (Seren) and 26.8 (Kalos) average requested GPUs.
  EXPECT_NEAR(average_gpu_demand(seren_trace()), 5.7, 3.0);
  EXPECT_NEAR(average_gpu_demand(kalos_trace()), 26.8, 8.0);
}

TEST(Calibration, DemandSkewMatchesFig3) {
  const auto& trace = kalos_trace();
  auto per_job = demand_per_job(trace);
  auto weighted = demand_weighted_by_gpu_time(trace);
  // Most jobs are small; <7% request more than 8 GPUs.
  EXPECT_GT(per_job.cdf(8.0), 0.93);
  // Single-GPU jobs hold <2% of GPU time; >=256-GPU jobs hold >=90%.
  EXPECT_LT(weighted.cdf(1.0), 0.02);
  EXPECT_GT(1.0 - weighted.cdf(255.0), 0.90);
}

TEST(Calibration, StatusSharesMatchFig17) {
  const auto shares = status_shares(seren_trace());
  EXPECT_NEAR(shares.at(JobStatus::kFailed).count_fraction, 0.40, 0.06);
  // Completed jobs consume only ~20-45% of GPU resources; canceled jobs are
  // few but hold the majority.
  EXPECT_LT(shares.at(JobStatus::kCompleted).gpu_time_fraction, 0.50);
  EXPECT_GT(shares.at(JobStatus::kCanceled).gpu_time_fraction, 0.35);
  EXPECT_LT(shares.at(JobStatus::kCanceled).count_fraction, 0.12);
}

TEST(Calibration, FewJobsExceedOneDay) {
  const auto d = durations(seren_trace());
  EXPECT_LT(1.0 - d.cdf(common::kDay), 0.05);
}

TEST(Calibration, PretrainDemandCorrelatesWithType) {
  // Fig 5: evaluation <= 8 GPUs; pretraining in the hundreds.
  const auto& trace = kalos_trace();
  EXPECT_LE(demand_of(trace, WorkloadType::kEvaluation).quantile(0.95), 8.0);
  EXPECT_GE(demand_of(trace, WorkloadType::kPretrain).median(), 128.0);
}

TEST(Synthesizer, DeterministicForSeed) {
  auto profile = scaled(seren_profile(), 200.0);
  SynthesizerOptions options;
  options.seed = 77;
  const auto a = TraceSynthesizer(profile, options).generate();
  const auto b = TraceSynthesizer(profile, options).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
  }
}

TEST(Synthesizer, DifferentSeedsDiffer) {
  auto profile = scaled(seren_profile(), 200.0);
  SynthesizerOptions a_opt, b_opt;
  a_opt.seed = 1;
  b_opt.seed = 2;
  const auto a = TraceSynthesizer(profile, a_opt).generate();
  const auto b = TraceSynthesizer(profile, b_opt).generate();
  double sum_a = 0, sum_b = 0;
  for (const auto& j : a) sum_a += j.submit_time + j.duration;
  for (const auto& j : b) sum_b += j.submit_time + j.duration;
  EXPECT_NE(sum_a, sum_b);
}

TEST(Synthesizer, SubmissionsSortedWithinHorizon) {
  const auto trace = seren_trace();
  for (std::size_t i = 1; i < trace.size(); ++i)
    ASSERT_LE(trace[i - 1].submit_time, trace[i].submit_time);
  for (const auto& j : trace) {
    ASSERT_GE(j.submit_time, 0.0);
    ASSERT_LE(j.submit_time, scaled(seren_profile(), 20.0).trace_days * common::kDay);
    ASSERT_GT(j.duration, 0.0);
  }
}

TEST(Synthesizer, CpuJobsIncludedWhenRequested) {
  auto profile = scaled(kalos_profile(), 10.0);
  SynthesizerOptions options;
  options.include_cpu_jobs = true;
  const auto trace = TraceSynthesizer(profile, options).generate();
  std::size_t cpu = 0;
  for (const auto& j : trace)
    if (!j.is_gpu_job()) ++cpu;
  EXPECT_GT(cpu, profile.cpu_jobs / 2);
}

TEST(Synthesizer, CampaignJobsCarryModelTags) {
  for (const auto& j : kalos_trace()) {
    if (j.type == WorkloadType::kPretrain) {
      EXPECT_FALSE(j.model_tag().empty());
      EXPECT_GE(j.gpus, 32);
    }
  }
}

// --- Trace I/O ---

TEST(TraceIo, CsvRoundTrip) {
  auto profile = scaled(seren_profile(), 2000.0);
  const auto trace = TraceSynthesizer(profile).generate();
  std::stringstream buf;
  write_csv(buf, trace);
  const auto back = read_csv(buf);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].id, trace[i].id);
    EXPECT_EQ(back[i].type, trace[i].type);
    EXPECT_EQ(back[i].status, trace[i].status);
    EXPECT_EQ(back[i].gpus, trace[i].gpus);
    EXPECT_NEAR(back[i].duration, trace[i].duration, 1e-3);
    EXPECT_EQ(back[i].model_tag_id, trace[i].model_tag_id);
  }
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream buf("not,a,trace\n1,2,3\n");
  EXPECT_THROW(read_csv(buf), std::exception);
}

// --- Comparison datacenters (Table 2, Fig 2) ---

TEST(Comparison, Table2Metadata) {
  EXPECT_EQ(philly_profile().total_gpus, 2490);
  EXPECT_EQ(helios_profile().total_gpus, 6416);
  EXPECT_EQ(pai_profile().total_gpus, 6742);
  EXPECT_DOUBLE_EQ(pai_profile().avg_gpus, 0.7);
}

TEST(Comparison, DurationOrderingMatchesFig2a) {
  // Acme's median (~2 min) is 1.7-7.2x shorter than the others'.
  common::Rng rng(3);
  for (const auto& profile : {philly_profile(), helios_profile(), pai_profile()}) {
    common::SampleStats s;
    for (int i = 0; i < 20000; ++i) s.add(profile.sample_duration(rng));
    EXPECT_GT(s.median(), 1.7 * 2 * kMinute) << profile.name;
    EXPECT_LT(s.median(), 7.5 * 2 * kMinute) << profile.name;
  }
}

TEST(Comparison, PhillyAverageAboutTwelveTimesAcme) {
  common::Rng rng(4);
  common::SampleStats philly;
  for (int i = 0; i < 50000; ++i) philly.add(philly_profile().sample_duration(rng));
  const double acme_avg = durations(seren_trace()).mean();
  EXPECT_GT(philly.mean() / acme_avg, 6.0);
  EXPECT_LT(philly.mean() / acme_avg, 25.0);
}

TEST(Comparison, UtilizationMediansMatchFig2b) {
  common::Rng rng(5);
  common::SampleStats philly, pai;
  for (int i = 0; i < 50000; ++i) {
    philly.add(philly_profile().sample_util(rng));
    pai.add(pai_profile().sample_util(rng));
  }
  EXPECT_NEAR(philly.median(), 48.0, 8.0);
  EXPECT_NEAR(pai.median(), 4.0, 4.0);
}


// Property: downscaling preserves the calibrated type mix (the campaign
// volume scales with the shrunken horizon alongside the Poisson arrivals).
class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, TypeMixStableUnderScaling) {
  auto profile = scaled(seren_profile(), GetParam());
  profile.cpu_jobs = 0;
  const auto trace = TraceSynthesizer(profile).generate();
  const auto shares = type_shares(trace);
  EXPECT_NEAR(shares.at(WorkloadType::kPretrain).count_fraction, 0.010, 0.008);
  EXPECT_GT(shares.at(WorkloadType::kPretrain).gpu_time_fraction, 0.5);
  EXPECT_NEAR(shares.at(WorkloadType::kEvaluation).count_fraction, 0.78, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Factors, ScaleSweep, ::testing::Values(10.0, 20.0, 40.0));

}  // namespace
}  // namespace acme::trace
