#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/units.h"
#include "parallel/model_math.h"
#include "recovery/loss_spike.h"
#include "recovery/runner.h"
#include "recovery/two_round_test.h"

namespace acme::recovery {
namespace {

using common::kDay;

std::vector<cluster::NodeId> node_range(int n) {
  std::vector<cluster::NodeId> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = i;
  return out;
}

// --- Two-round localization (§6.1-3) ---

TEST(TwoRound, SingleFaultyNodeFound) {
  const auto nodes = node_range(8);
  auto result = two_round_localize(nodes, [](cluster::NodeId id) { return id == 5; });
  EXPECT_EQ(result.faulty, (std::vector<cluster::NodeId>{5}));
  EXPECT_EQ(result.suspects.size(), 2u);  // the failing pair
  EXPECT_EQ(result.round1_worlds, 4);
}

TEST(TwoRound, NoFaultsMeansOneRoundOnly) {
  const auto nodes = node_range(10);
  auto result = two_round_localize(nodes, [](cluster::NodeId) { return false; }, 90.0);
  EXPECT_TRUE(result.faulty.empty());
  EXPECT_TRUE(result.suspects.empty());
  EXPECT_DOUBLE_EQ(result.duration_seconds, 90.0);
}

TEST(TwoRound, OddNodeCountUsesThreeNodeWorld) {
  const auto nodes = node_range(7);
  auto result = two_round_localize(nodes, [](cluster::NodeId id) { return id == 6; });
  EXPECT_EQ(result.round1_worlds, 3);  // 2+2+3
  EXPECT_EQ(result.faulty, (std::vector<cluster::NodeId>{6}));
  // The whole 3-node world was suspect; only the true fault survives.
  EXPECT_EQ(result.suspects.size(), 3u);
}

TEST(TwoRound, AllNodesFaultyStillFlagged) {
  const auto nodes = node_range(6);
  auto result = two_round_localize(nodes, [](cluster::NodeId) { return true; });
  EXPECT_EQ(result.faulty.size(), 6u);
}

TEST(TwoRound, EmptyProbeSetSafe) {
  auto result = two_round_localize({}, [](cluster::NodeId) { return true; });
  EXPECT_TRUE(result.faulty.empty());
  EXPECT_DOUBLE_EQ(result.duration_seconds, 0.0);
}

TEST(TwoRound, DurationAccountsRounds) {
  const auto nodes = node_range(16);
  auto clean = two_round_localize(nodes, [](cluster::NodeId) { return false; }, 60.0);
  auto dirty = two_round_localize(nodes, [](cluster::NodeId id) { return id == 0; }, 60.0);
  EXPECT_DOUBLE_EQ(clean.duration_seconds, 60.0);
  EXPECT_DOUBLE_EQ(dirty.duration_seconds, 120.0);
}

TEST(TwoRound, FabricDurationScalesWithProbeCount) {
  const comm::CollectiveModel model(comm::kalos_fabric());
  auto one_fault = [](cluster::NodeId id) { return id == 0; };
  const auto small = two_round_localize(node_range(16), one_fault, model);
  const auto large = two_round_localize(node_range(256), one_fault, model);
  // Same protocol, same fault — but localizing over a 256-node probe set
  // pays a bigger bring-up than over 16 nodes (not a constant 90 s each).
  EXPECT_LT(small.duration_seconds, large.duration_seconds);
  EXPECT_EQ(small.faulty, large.faulty);
  // Round 2 involves only the suspects and their witnesses, so it is far
  // cheaper than round 1 over the full probe set.
  const auto clean = two_round_localize(node_range(256),
                                        [](cluster::NodeId) { return false; }, model);
  EXPECT_LT(large.duration_seconds, 2.0 * clean.duration_seconds);
}

TEST(TwoRound, FabricAgreesWithLegacyDefaultAtFullScale) {
  const comm::CollectiveModel model(comm::kalos_fabric());
  // Probing all 256 nodes of a 2048-GPU job: one fabric-derived round is the
  // old flat 90 s plus the probe all-gather itself.
  const auto result = two_round_localize(node_range(256),
                                         [](cluster::NodeId) { return false; }, model);
  EXPECT_GT(result.duration_seconds, 90.0);
  EXPECT_LT(result.duration_seconds, 95.0);
}

// Property: for arbitrary fault patterns, the confirmed set equals the true
// set exactly (no false positives, no misses) whenever a clean witness
// exists.
struct LocalizeCase {
  int nodes;
  int faults;
  std::uint64_t seed;
};

class TwoRoundProperty : public ::testing::TestWithParam<LocalizeCase> {};

TEST_P(TwoRoundProperty, ExactIdentification) {
  const auto param = GetParam();
  common::Rng rng(param.seed);
  auto ids = node_range(param.nodes);
  std::set<cluster::NodeId> faulty;
  while (static_cast<int>(faulty.size()) < param.faults)
    faulty.insert(static_cast<cluster::NodeId>(
        rng.uniform_int(0, param.nodes - 1)));
  auto result = two_round_localize(
      ids, [&](cluster::NodeId id) { return faulty.count(id) > 0; });
  const std::set<cluster::NodeId> found(result.faulty.begin(), result.faulty.end());
  EXPECT_EQ(found, faulty);
}

INSTANTIATE_TEST_SUITE_P(
    FaultPatterns, TwoRoundProperty,
    ::testing::Values(LocalizeCase{2, 1, 1}, LocalizeCase{3, 1, 2},
                      LocalizeCase{5, 2, 3}, LocalizeCase{8, 1, 4},
                      LocalizeCase{64, 3, 5}, LocalizeCase{301, 2, 6},
                      LocalizeCase{302, 5, 7}, LocalizeCase{17, 4, 8}));

// --- Loss spike detector (§5.3) ---

TEST(LossSpike, SilentOnHealthyDescent) {
  LossSpikeDetector detector;
  double loss = 3.0;
  for (std::uint64_t s = 0; s < 2000; ++s) {
    loss *= 0.9995;
    EXPECT_FALSE(detector.observe(s, loss).has_value());
  }
}

TEST(LossSpike, BriefJitterIgnored) {
  LossSpikeDetector detector;
  for (std::uint64_t s = 0; s < 300; ++s) {
    double loss = 2.0 - 0.001 * static_cast<double>(s % 100);
    if (s == 150) loss = 3.5;  // one-step blip
    EXPECT_FALSE(detector.observe(s, loss).has_value()) << s;
  }
}

TEST(LossSpike, SustainedSpikeFiresOnceWithOnset) {
  LossSpikeDetector detector({.spike_factor = 1.15, .sustain_steps = 20, .window = 100});
  std::uint64_t fired_at = 0;
  int fire_count = 0;
  for (std::uint64_t s = 0; s < 400; ++s) {
    const double loss = s < 200 ? 2.0 : 3.0;  // spike onset at 200
    if (auto onset = detector.observe(s, loss)) {
      ++fire_count;
      fired_at = *onset;
    }
  }
  EXPECT_EQ(fire_count, 1);
  EXPECT_EQ(fired_at, 200u);
}

TEST(LossSpike, ResetsAfterRecovery) {
  LossSpikeDetector detector({.spike_factor = 1.15, .sustain_steps = 10, .window = 50});
  int fires = 0;
  for (std::uint64_t s = 0; s < 600; ++s) {
    double loss = 2.0;
    if ((s >= 100 && s < 130) || (s >= 400 && s < 430)) loss = 3.0;
    if (detector.observe(s, loss)) ++fires;
  }
  EXPECT_EQ(fires, 2);
}

TEST(LossSpike, ManualResetClearsState) {
  LossSpikeDetector detector({.spike_factor = 1.15, .sustain_steps = 5, .window = 50});
  for (std::uint64_t s = 0; s < 50; ++s) detector.observe(s, 2.0);
  detector.reset();
  // After reset the first observation re-seeds the window; elevated values
  // are the new baseline, so no spurious fire.
  for (std::uint64_t s = 50; s < 80; ++s)
    EXPECT_FALSE(detector.observe(s, 3.0).has_value());
}

// --- Fault-tolerant runner (§6.1 end to end, Fig 14) ---

RunnerConfig runner_config(bool auto_recovery) {
  RunnerConfig cfg;
  cfg.model = parallel::llm_123b();
  cfg.gpus = 2048;
  cfg.auto_recovery = auto_recovery;
  cfg.async_ckpt = auto_recovery;
  cfg.graceful_cancel = auto_recovery;
  cfg.horizon_seconds = 20 * kDay;
  cfg.seed = 11;
  return cfg;
}

TEST(Runner, AutoRecoveryCutsManualInterventions) {
  const auto manual = FaultTolerantRunner(runner_config(false)).run();
  const auto automatic = FaultTolerantRunner(runner_config(true)).run();
  ASSERT_GT(manual.failures, 5);
  // Paper: diagnosis + auto-restart reduces manual intervention by ~90%.
  EXPECT_LT(automatic.manual_interventions,
            manual.manual_interventions * 0.5);
  EXPECT_GT(automatic.goodput(), manual.goodput());
  EXPECT_GT(automatic.final_step, manual.final_step);
}

TEST(Runner, ProgressMonotoneExceptRollbacks) {
  const auto report = FaultTolerantRunner(runner_config(true)).run();
  ASSERT_GE(report.progress.size(), 2u);
  for (std::size_t i = 1; i < report.progress.size(); ++i)
    ASSERT_GE(report.progress[i].first, report.progress[i - 1].first);
  // Rollbacks exist but training ends far ahead of zero.
  EXPECT_GT(report.final_step, 10000u);
}

TEST(Runner, InfrastructureFailuresDominat) {
  const auto report = FaultTolerantRunner(runner_config(true)).run();
  // §5.2: mid-run pretraining failures are mostly infrastructure.
  EXPECT_GT(report.infra_failures, report.failures / 2);
  EXPECT_GT(report.nodes_cordoned, 0);
}

TEST(Runner, DiagnosisAccurateOnline) {
  const auto report = FaultTolerantRunner(runner_config(true)).run();
  EXPECT_GT(report.diagnosis_correct, report.failures * 8 / 10);
}

TEST(Runner, RollbackBoundedByCheckpointCadence) {
  auto cfg = runner_config(true);
  cfg.horizon_seconds = 10 * kDay;
  const auto report = FaultTolerantRunner(cfg).run();
  const double steps_per_interval = cfg.ckpt_interval_seconds / cfg.step_seconds;
  for (const auto& event : report.events) {
    if (event.kind == "failure") {
      // Lost work <= one checkpoint interval plus the async persist lag.
      ASSERT_LE(event.steps_lost, steps_per_interval * 2.5 + 1) << event.detail;
    }
  }
}

TEST(Runner, AsyncCheckpointingShrinksStallTime) {
  auto sync_cfg = runner_config(true);
  sync_cfg.async_ckpt = false;
  auto async_cfg = runner_config(true);
  const auto sync_report = FaultTolerantRunner(sync_cfg).run();
  const auto async_report = FaultTolerantRunner(async_cfg).run();
  EXPECT_LT(async_report.time_ckpt_stall, sync_report.time_ckpt_stall / 3);
}

TEST(Runner, DeterministicForSeed) {
  const auto a = FaultTolerantRunner(runner_config(true)).run();
  const auto b = FaultTolerantRunner(runner_config(true)).run();
  EXPECT_EQ(a.final_step, b.final_step);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.events.size(), b.events.size());
}


TEST(Runner, ProactiveValidationDefusesFaults) {
  auto base = runner_config(true);
  base.horizon_seconds = 30 * kDay;
  auto proactive = base;
  proactive.proactive_validation = true;
  const auto without = FaultTolerantRunner(base).run();
  const auto with = FaultTolerantRunner(proactive).run();
  EXPECT_GT(with.proactive_catches, 0);
  EXPECT_EQ(without.proactive_catches, 0);
  // Defused faults mean fewer crash-rollbacks.
  EXPECT_LT(with.steps_lost_to_rollback, without.steps_lost_to_rollback);
  EXPECT_GE(with.goodput(), without.goodput() - 0.01);
}

TEST(Runner, ProactiveOnlyActsWithAutoRecovery) {
  auto cfg = runner_config(false);  // manual recovery
  cfg.proactive_validation = true;
  const auto report = FaultTolerantRunner(cfg).run();
  EXPECT_EQ(report.proactive_catches, 0);
}

}  // namespace
}  // namespace acme::recovery
