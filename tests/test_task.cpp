// acme::task pool primitives and the window-partitioner property test.
//
// The pool half checks the work-stealing substrate directly: parallel_for
// coverage, WaitGroup barrier + exception transport, steal rebalancing of an
// imbalanced spawn burst, nested spawn, ring growth past the initial
// capacity. The property half is the determinism contract that matters: for
// random partition sets, random event chains (with cancellations) and random
// lookahead windows, sim::WindowRunner's merged commit stream must equal the
// serial single-heap reference — the global (time, key, seq) sort of every
// partition's serial pop order — at every pool width, and the commit digest
// must pin the exact 16-byte (time-bits, key, seq) packing.
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/digest.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "sim/window.h"
#include "task/task.h"

namespace acme {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- pool ----

TEST(TaskPool, ZeroWorkersPicksAtLeastOneThread) {
  task::Pool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  task::Pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 7,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, ParallelForZeroAndTinyRanges) {
  task::Pool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(3, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for(5, 0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);  // grain 0 is clamped to 1
}

TEST(TaskPool, SpawnRunsEveryTaskOnce) {
  task::Pool pool(3);
  std::atomic<int> count{0};
  task::WaitGroup wg;
  for (std::size_t i = 0; i < 500; ++i)
    pool.spawn(wg, i, [&] { count.fetch_add(1); });
  wg.wait();
  EXPECT_EQ(count.load(), 500);
  EXPECT_GE(pool.tasks_run(), 500u);
}

TEST(TaskPool, WaitGroupRethrowsFirstTaskErrorAndStaysReusable) {
  task::Pool pool(2);
  task::WaitGroup wg;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i)
    pool.spawn(wg, static_cast<std::size_t>(i), [&, i] {
      ran.fetch_add(1);
      if (i == 5) throw std::runtime_error("partition blew up");
    });
  EXPECT_THROW(wg.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // the barrier still waited for every task

  // The error was consumed by wait(); the group is reusable.
  pool.spawn(wg, 0, [&] { ran.fetch_add(1); });
  EXPECT_NO_THROW(wg.wait());
  EXPECT_EQ(ran.load(), 17);
}

TEST(TaskPool, StealsRebalanceAnImbalancedSpawnBurst) {
  // Every task lands on worker 0's deque; the other workers have nothing to
  // pop and must steal. Each task holds its worker briefly so the burst
  // cannot be drained before the thieves wake up.
  task::Pool pool(4);
  task::WaitGroup wg;
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i)
    pool.spawn(wg, 0, [&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      count.fetch_add(1);
    });
  wg.wait();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GT(pool.steals(), 0u);
}

TEST(TaskPool, NestedSpawnOnTheSharedGroup) {
  // Outer tasks spawn inner tasks on the same pool and group; the
  // coordinating thread's single wait() covers both generations. (Workers
  // never block on the group — only the coordinator waits.)
  task::Pool pool(4);
  task::WaitGroup wg;
  std::atomic<int> inner{0};
  for (std::size_t o = 0; o < 8; ++o)
    pool.spawn(wg, o, [&pool, &wg, &inner, o] {
      for (std::size_t i = 0; i < 8; ++i)
        pool.spawn(wg, o + i, [&inner] { inner.fetch_add(1); });
    });
  wg.wait();
  EXPECT_EQ(inner.load(), 64);
}

TEST(TaskPool, RingGrowsPastTheInitialCapacityUnreserved) {
  task::Pool pool(2);
  std::atomic<int> count{0};
  task::WaitGroup wg;
  for (std::size_t i = 0; i < 10000; ++i)
    pool.spawn(wg, 0, [&] { count.fetch_add(1); });
  wg.wait();
  EXPECT_EQ(count.load(), 10000);
}

TEST(TaskWaitGroup, BarrierWithoutPool) {
  task::WaitGroup wg;
  wg.add(2);
  std::thread a([&] { wg.done(); });
  std::thread b([&] { wg.done(); });
  wg.wait();  // returns only after both done() calls
  a.join();
  b.join();
}

// ---------------------------------------------- window property test ----

// A deterministic per-partition schedule: root events at fixed times, each
// possibly heading a chain of follow-ups (scheduled from inside the firing
// callback, like real subsystems do), plus doomed events cancelled at setup
// so the stale-entry path in next_event_time()/run_window() gets exercised.
struct PartitionPlan {
  struct Root {
    double time = 0;
    double offset = 0;  // follow-up spacing
    int chain = 0;      // follow-ups after the root
  };
  std::vector<Root> roots;
  std::vector<double> doomed;  // scheduled then immediately cancelled
};

PartitionPlan make_plan(common::Rng& rng, double horizon) {
  PartitionPlan plan;
  const int roots = static_cast<int>(rng.uniform_int(1, 30));
  for (int i = 0; i < roots; ++i) {
    PartitionPlan::Root r;
    r.time = rng.uniform(0, horizon);
    r.offset = rng.uniform(0.01, horizon / 4);
    r.chain = static_cast<int>(rng.uniform_int(0, 4));
    plan.roots.push_back(r);
  }
  const int doomed = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < doomed; ++i)
    plan.doomed.push_back(rng.uniform(0, horizon));
  return plan;
}

void schedule_chain(sim::Engine& engine, double t, double offset,
                    int remaining) {
  engine.schedule_at(t, [&engine, t, offset, remaining] {
    if (remaining > 0)
      schedule_chain(engine, t + offset, offset, remaining - 1);
  });
}

void apply_plan(sim::Engine& engine, const PartitionPlan& plan) {
  for (const auto& r : plan.roots)
    schedule_chain(engine, r.time, r.offset, r.chain);
  for (double t : plan.doomed) {
    sim::EventHandle h = engine.schedule_at(t, [] {});
    ASSERT_TRUE(engine.cancel(h));
  }
}

using MergedCommit = std::tuple<double, std::uint32_t, std::uint32_t>;

// The serial single-heap reference: each partition's full commit log is its
// engine's serial pop order; the global merge is one sort by (time, key,
// seq). Also folds the reference digest with the same 16-byte packing the
// runner uses, so the digest format itself is pinned here.
void reference_merge(const std::vector<PartitionPlan>& plans,
                     std::vector<MergedCommit>* merged,
                     std::uint64_t* digest) {
  merged->clear();
  for (std::size_t k = 0; k < plans.size(); ++k) {
    sim::Engine engine;
    apply_plan(engine, plans[k]);
    std::vector<sim::Commit> log;
    engine.run_window(kInf, log);
    for (const sim::Commit& c : log)
      merged->emplace_back(c.time, static_cast<std::uint32_t>(k), c.seq);
  }
  std::sort(merged->begin(), merged->end());
  common::Fnv1a fold;
  for (const auto& [time, key, seq] : *merged) {
    std::uint64_t time_bits = 0;
    std::memcpy(&time_bits, &time, sizeof(time_bits));
    unsigned char buf[16];
    std::memcpy(buf, &time_bits, 8);
    std::memcpy(buf + 8, &key, 4);
    std::memcpy(buf + 12, &seq, 4);
    fold.update(
        std::string_view(reinterpret_cast<const char*>(buf), sizeof(buf)));
  }
  *digest = fold.digest();
}

TEST(WindowPartitioner, MergedOrderEqualsSerialSingleHeapReference) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    common::Rng rng(9000 + trial);
    const double horizon = rng.uniform(10, 200);
    const std::size_t partitions = 1 + static_cast<std::size_t>(trial % 4);
    std::vector<PartitionPlan> plans;
    for (std::size_t k = 0; k < partitions; ++k)
      plans.push_back(make_plan(rng, horizon));

    std::vector<MergedCommit> reference;
    std::uint64_t reference_digest = 0;
    reference_merge(plans, &reference, &reference_digest);
    ASSERT_FALSE(reference.empty());

    // Seeded random lookaheads, always including the one-window drain.
    std::vector<double> lookaheads = {kInf, rng.uniform(0.05, horizon / 8),
                                      rng.uniform(horizon / 8, horizon)};
    for (double lookahead : lookaheads) {
      for (std::size_t workers : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{4}}) {
        std::vector<std::unique_ptr<sim::Engine>> engines;
        sim::WindowRunner runner;
        std::vector<MergedCommit> merged;
        for (std::size_t k = 0; k < partitions; ++k) {
          engines.push_back(std::make_unique<sim::Engine>());
          apply_plan(*engines[k], plans[k]);
          runner.add_partition(*engines[k], static_cast<std::uint32_t>(k));
        }
        runner.set_sink([&merged](std::uint32_t key, const sim::Commit& c) {
          merged.emplace_back(c.time, key, c.seq);
        });
        std::optional<task::Pool> pool;
        if (workers > 0) pool.emplace(workers);
        const sim::WindowStats stats =
            runner.run(pool ? &*pool : nullptr, lookahead);
        ASSERT_EQ(merged, reference)
            << "trial " << trial << " lookahead " << lookahead << " workers "
            << workers;
        ASSERT_EQ(runner.commit_digest(), reference_digest);
        ASSERT_EQ(stats.events, reference.size());
      }
    }
  }
}

TEST(WindowPartitioner, DigestAccumulatesAcrossResumedRuns) {
  // Splitting one drain into run(); schedule-more; run() again must give the
  // same cumulative digest as the uninterrupted drain — the property that
  // lets a restored world resume mid-stream (World::run_parallel). Insertion
  // order is identical in both tellings, so the (time, seq) streams match.
  const auto schedule_batch = [](sim::Engine& e, int from, int to) {
    for (int i = from; i < to; ++i)
      e.schedule_at(i * 1.5, [] {});
  };
  std::uint64_t straight = 0;
  {
    sim::Engine e;
    schedule_batch(e, 0, 20);
    sim::WindowRunner runner;
    runner.add_partition(e, 0);
    runner.run(nullptr, kInf);
    straight = runner.commit_digest();
  }
  sim::Engine e;
  schedule_batch(e, 0, 10);
  sim::WindowRunner runner;
  runner.add_partition(e, 0);
  const sim::WindowStats first = runner.run(nullptr, 7.0);
  EXPECT_EQ(first.events, 10u);
  schedule_batch(e, 10, 20);  // "restored" work lands on the same stream
  const sim::WindowStats second = runner.run(nullptr, 7.0);
  EXPECT_EQ(second.events, 10u);  // run() returns per-call deltas
  EXPECT_EQ(runner.commit_digest(), straight);
  EXPECT_EQ(runner.stats().events, 20u);  // stats() stays cumulative
}

TEST(WindowPartitioner, FiniteLookaheadMakesProgressAtLargeTimestamps) {
  // At large t0 a small Δ rounds t0 + Δ back to exactly t0 (ulp(1e16) = 2),
  // which used to leave every partition outside the half-open window and
  // spin run() forever. The runner must widen to the next representable
  // instant and drain the t0 event.
  constexpr double kHuge = 1e16;
  ASSERT_EQ(kHuge + 1.0, kHuge);  // the rounding that triggers the bug
  sim::Engine e;
  int fired = 0;
  e.schedule_at(kHuge, [&fired] { ++fired; });
  e.schedule_at(kHuge + 4.0, [&fired] { ++fired; });
  sim::WindowRunner runner;
  runner.add_partition(e, 0);
  const sim::WindowStats stats = runner.run(nullptr, 1.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.windows, 2u);  // one degenerate window per event
}

TEST(WindowPartitioner, DeltaMaxWindowEventsIsPerCall) {
  // run() returns a delta; its busiest-round figure must describe THAT call,
  // not the all-time max (which stats() keeps).
  sim::Engine e;
  for (int i = 0; i < 6; ++i) e.schedule_at(i * 1.0, [] {});
  sim::WindowRunner runner;
  runner.add_partition(e, 0);
  const sim::WindowStats first = runner.run(nullptr, kInf);
  EXPECT_EQ(first.max_window_events, 6u);
  for (int i = 6; i < 9; ++i) e.schedule_at(i * 1.0, [] {});
  const sim::WindowStats second = runner.run(nullptr, kInf);
  EXPECT_EQ(second.max_window_events, 3u);
  EXPECT_EQ(runner.stats().max_window_events, 6u);  // cumulative keeps 6
}

TEST(WindowPartitioner, AddPartitionAfterRunStartedIsRejected) {
  sim::Engine a;
  a.schedule_at(1.0, [] {});
  sim::WindowRunner runner;
  runner.add_partition(a, 0);
  runner.run(nullptr, kInf);
  sim::Engine b;
  EXPECT_THROW(runner.add_partition(b, 1), common::CheckError);
}

}  // namespace
}  // namespace acme
