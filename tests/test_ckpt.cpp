#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "ckpt/async_writer.h"
#include "ckpt/ledger.h"
#include "ckpt/timing.h"
#include "parallel/model_math.h"

namespace acme::ckpt {
namespace {

// --- Timing model (§6.1-1) ---

TEST(Timing, AsyncBlocksFarLessThanSync) {
  CheckpointTimingModel model;
  const double params_7b = parallel::llm_7b().params();
  const double params_123b = parallel::llm_123b().params();
  // 7B on 64 GPUs, 123B on 2048 GPUs (the paper's configurations).
  const double sync_7b = model.sync_blocking_seconds(params_7b, 64);
  const double async_7b = model.async_blocking_seconds(params_7b, 64);
  const double sync_123b = model.sync_blocking_seconds(params_123b, 2048);
  const double async_123b = model.async_blocking_seconds(params_123b, 2048);
  EXPECT_GT(sync_7b / async_7b, 3.0);
  EXPECT_GT(sync_123b / async_123b, 30.0);
  // Bigger models benefit far more (paper: 3.6x ~ 58.7x).
  EXPECT_GT(sync_123b / async_123b, sync_7b / async_7b);
  EXPECT_LT(sync_123b / async_123b, 80.0);
}

TEST(Timing, SyncBoundByStorageFabric) {
  CheckpointTimingModel model;
  const double params = parallel::llm_123b().params();
  // One node: NIC-bound. Many nodes: backend-bound.
  const double one_node = model.sync_blocking_seconds(params, 8);
  const double many_nodes = model.sync_blocking_seconds(params, 2048);
  EXPECT_GT(one_node, many_nodes * 10);
  // Backend cap: adding nodes past saturation stops helping.
  EXPECT_NEAR(model.sync_blocking_seconds(params, 2048),
              model.sync_blocking_seconds(params, 4096), 1e-9);
}

TEST(Timing, AsyncBlockingDominatedByQuiesceForBigWorlds) {
  CheckpointTimingModel model;
  const double params = parallel::llm_123b().params();
  const double blocking = model.async_blocking_seconds(params, 2048);
  EXPECT_LT(blocking, 1.0);
  EXPECT_GT(blocking, model.config().quiesce_seconds);
}

TEST(Timing, OverheadFractionAtThirtyMinuteInterval) {
  CheckpointTimingModel model;
  const double params = parallel::llm_123b().params();
  const double sync = model.sync_blocking_seconds(params, 2048);
  const double async_b = model.async_blocking_seconds(params, 2048);
  const double interval = 30 * 60.0;
  EXPECT_GT(model.overhead_fraction(sync, interval), 0.01);
  EXPECT_LT(model.overhead_fraction(async_b, interval), 0.001);
}

TEST(Timing, BytesAccounting) {
  CheckpointTimingModel model;
  EXPECT_DOUBLE_EQ(model.total_bytes(1e9), 14e9);  // 2 + 12 bytes per param
  EXPECT_DOUBLE_EQ(model.bytes_per_gpu(1e9, 64), 14e9 / 64);
}

// --- Real async writer ---

std::vector<std::byte> make_state(std::size_t n, std::byte fill) {
  return std::vector<std::byte>(n, fill);
}

TEST(AsyncWriter, PersistsToFilesInOrder) {
  const auto dir = std::filesystem::temp_directory_path() / "acme_ckpt_test1";
  std::filesystem::remove_all(dir);
  FileSink sink(dir.string());
  {
    AsyncCheckpointWriter writer(sink, 4);
    for (std::uint64_t step = 100; step <= 300; step += 100) {
      auto state = make_state(1024, std::byte{static_cast<unsigned char>(step / 100)});
      EXPECT_TRUE(writer.snapshot(step, state));
    }
    writer.flush();
    const auto stats = writer.stats();
    EXPECT_EQ(stats.snapshots, 3u);
    EXPECT_EQ(stats.persisted, 3u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.last_persisted_step, 300u);
  }
  for (std::uint64_t step = 100; step <= 300; step += 100) {
    const auto path = dir / ("ckpt-" + std::to_string(step) + ".bin");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_EQ(std::filesystem::file_size(path), 1024u);
  }
  // Contents intact: first byte identifies the step.
  std::ifstream in(dir / "ckpt-200.bin", std::ios::binary);
  char c = 0;
  in.read(&c, 1);
  EXPECT_EQ(c, 2);
  std::filesystem::remove_all(dir);
}

TEST(AsyncWriter, BoundedQueueEvictsOldest) {
  NullSink sink(64.0);  // slow: 64 B/s
  AsyncCheckpointWriter writer(sink, 2);
  const auto state = make_state(64, std::byte{1});  // 1 s per persist
  EXPECT_TRUE(writer.snapshot(1, state));
  // Flood faster than the sink drains: the queue must evict, not grow.
  bool any_evicted = false;
  for (std::uint64_t s = 2; s <= 12; ++s)
    if (!writer.snapshot(s, state)) any_evicted = true;
  EXPECT_TRUE(any_evicted);
  writer.flush();
  const auto stats = writer.stats();
  EXPECT_EQ(stats.snapshots, 12u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.persisted + stats.dropped, 12u);
}

TEST(AsyncWriter, SnapshotReturnsQuicklyRelativeToPersist) {
  NullSink sink(1e6);  // 1 MB/s -> ~1 s to persist 1 MB
  AsyncCheckpointWriter writer(sink, 3);
  const auto state = make_state(1 << 20, std::byte{7});
  const auto t0 = std::chrono::steady_clock::now();
  writer.snapshot(1, state);
  const auto stall = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(stall).count(), 0.2);
  writer.flush();
  EXPECT_EQ(sink.persisted_count(), 1u);
}

TEST(AsyncWriter, FlushOnEmptyIsImmediate) {
  NullSink sink;
  AsyncCheckpointWriter writer(sink, 2);
  writer.flush();
  EXPECT_EQ(writer.stats().snapshots, 0u);
}

TEST(FileSinkTest, AtomicPublishLeavesNoTmp) {
  const auto dir = std::filesystem::temp_directory_path() / "acme_ckpt_test2";
  std::filesystem::remove_all(dir);
  FileSink sink(dir.string());
  const auto state = make_state(128, std::byte{9});
  EXPECT_TRUE(sink.persist(5, state));
  EXPECT_TRUE(std::filesystem::exists(dir / "ckpt-5.bin"));
  EXPECT_FALSE(std::filesystem::exists(dir / "ckpt-5.bin.tmp"));
  std::filesystem::remove_all(dir);
}

// --- Ledger ---

TEST(Ledger, LatestDurableRespectsPersistLag) {
  CheckpointLedger ledger;
  ledger.record(100, 10.0, 20.0);
  ledger.record(200, 30.0, 45.0);
  EXPECT_FALSE(ledger.latest_durable(5.0).has_value());
  EXPECT_EQ(ledger.latest_durable(20.0)->step, 100u);
  EXPECT_EQ(ledger.latest_durable(40.0)->step, 100u);  // 200 still persisting
  EXPECT_EQ(ledger.latest_durable(45.0)->step, 200u);
}

TEST(Ledger, DurableBeforeStepForLossSpikes) {
  CheckpointLedger ledger;
  ledger.record(100, 10, 11);
  ledger.record(200, 20, 21);
  ledger.record(300, 30, 31);
  // Spike onset at step 250: roll back past it.
  EXPECT_EQ(ledger.durable_before_step(250, 100.0)->step, 200u);
  EXPECT_EQ(ledger.durable_before_step(50, 100.0), std::nullopt);
}

TEST(Ledger, InvalidateAfterDropsAbandonedTimeline) {
  CheckpointLedger ledger;
  ledger.record(100, 10, 11);
  ledger.record(200, 20, 21);
  ledger.invalidate_after(100);
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.latest_durable(100.0)->step, 100u);
  // Re-recording the rolled-back range is legal again.
  ledger.record(150, 40, 41);
  EXPECT_EQ(ledger.latest_durable(100.0)->step, 150u);
}

TEST(Ledger, RejectsOutOfOrderAndNegativeLag) {
  CheckpointLedger ledger;
  ledger.record(100, 10, 11);
  EXPECT_THROW(ledger.record(50, 20, 21), common::CheckError);
  EXPECT_THROW(ledger.record(200, 30, 29), common::CheckError);
}

}  // namespace
}  // namespace acme::ckpt
