// ThreadSanitizer stress runner for acme::mc — a plain main (no gtest) so
// the TSan CI job exercises the pool, the replication plan and concurrent
// Rng::fork without any uninstrumented test-framework code in the picture.
// Exits non-zero on any determinism violation; TSan itself fails the job on
// a data race.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "mc/aggregate.h"
#include "mc/replication.h"
#include "mc/thread_pool.h"

using namespace acme;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void stress_pool() {
  mc::ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(500, 7, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  check(sum.load() == 20L * (499L * 500L / 2), "pool sums every index");
  pool.cancel();
  pool.submit([] {});
  check(pool.dropped() >= 1, "post-cancel submit dropped");
}

void stress_replication() {
  const auto body = [](common::Rng& rng, std::size_t replica) {
    double acc = static_cast<double>(replica);
    for (int i = 0; i < 5000; ++i) acc += rng.uniform();
    return acc;
  };
  mc::ReplicationOptions serial;
  serial.replicas = 32;
  serial.threads = 1;
  serial.seed = 99;
  mc::ReplicationOptions parallel = serial;
  parallel.threads = 4;
  parallel.chunk = 3;
  const auto a = mc::run_replicas<double>(serial, body);
  const auto b = mc::run_replicas<double>(parallel, body);
  for (std::size_t i = 0; i < a.results.size(); ++i)
    check(a.results[i] == b.results[i], "replica bit-identical across thread counts");

  mc::MetricAggregator ma, mb;
  mc::fold_metric(a, [](double v) { return v; }, ma);
  mc::fold_metric(b, [](double v) { return v; }, mb);
  check(ma.mean() == mb.mean() && ma.p99() == mb.p99(),
        "aggregates identical across thread counts");
}

void stress_rng_fork() {
  // Forking from distinct parent copies on many threads must be race-free
  // and must reproduce the serial fork exactly.
  const common::Rng parent(4242);
  std::vector<std::uint64_t> serial(8), threaded(8);
  for (std::size_t i = 0; i < serial.size(); ++i)
    serial[i] = parent.fork("t" + std::to_string(i)).next();
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < threaded.size(); ++i) {
    threads.emplace_back([&threaded, i, copy = parent] {
      threaded[i] = copy.fork("t" + std::to_string(i)).next();
    });
  }
  for (auto& t : threads) t.join();
  check(serial == threaded, "threaded forks match serial forks");
}

}  // namespace

int main() {
  stress_pool();
  stress_replication();
  stress_rng_fork();
  if (failures == 0) std::printf("tsan_mc_stress: OK\n");
  return failures == 0 ? 0 : 1;
}
