#include <gtest/gtest.h>

#include "cluster/power.h"
#include "cluster/spec.h"
#include "cluster/state.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace acme::cluster {
namespace {

// --- Specs (paper Table 1) ---

TEST(Spec, SerenMatchesTable1) {
  const auto s = seren_spec();
  EXPECT_EQ(s.node_count, 286);
  EXPECT_EQ(s.node.gpus, 8);
  EXPECT_EQ(s.node.cpus, 128);
  EXPECT_DOUBLE_EQ(s.node.host_memory_gb, 1024.0);
  EXPECT_EQ(s.total_gpus(), 2288);
  EXPECT_EQ(s.scheduler, SchedulerKind::kSlurm);
}

TEST(Spec, KalosMatchesTable1) {
  const auto k = kalos_spec();
  EXPECT_EQ(k.node_count, 302);
  EXPECT_DOUBLE_EQ(k.node.host_memory_gb, 2048.0);
  EXPECT_EQ(k.total_gpus(), 2416);
  EXPECT_EQ(k.node.compute_nics, 4);
  EXPECT_EQ(k.node.storage_nics, 1);
  EXPECT_EQ(k.scheduler, SchedulerKind::kKubernetes);
}

TEST(Spec, AcmeTotalGpus) {
  EXPECT_EQ(seren_spec().total_gpus() + kalos_spec().total_gpus(), 4704);
}

// --- Resource ledger ---

TEST(ClusterState, SubNodeBestFitPacksFullestNode) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 3;
  ClusterState state(spec);
  auto a = state.try_allocate(6);
  ASSERT_TRUE(a.has_value());
  // Next 2-GPU job should land on the node with 2 free (best fit), not an
  // empty one.
  auto b = state.try_allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->slices[0].node, a->slices[0].node);
  EXPECT_EQ(state.empty_healthy_nodes(), 2);
}

TEST(ClusterState, GangAllocationUsesWholeNodes) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 5;
  ClusterState state(spec);
  auto a = state.try_allocate(24);  // 3 whole nodes
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slices.size(), 3u);
  for (const auto& s : a->slices) EXPECT_EQ(s.gpus, 8);
  EXPECT_EQ(state.free_gpus(), 16);
}

TEST(ClusterState, GangWithRemainderTakesPartialSlice) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 3;
  ClusterState state(spec);
  auto a = state.try_allocate(12);  // 1 full node + half a node
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_gpus(), 12);
  EXPECT_EQ(a->slices.size(), 2u);
  EXPECT_EQ(a->slices[1].gpus, 4);
}

TEST(ClusterState, FailsWhenFragmented) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  // Occupy 1 GPU (lands on node A via best fit), then the whole other node.
  ASSERT_TRUE(state.try_allocate(1).has_value());
  ASSERT_TRUE(state.try_allocate(8).has_value());
  EXPECT_EQ(state.free_gpus(), 7);
  // No empty node remains for a gang; a 7-GPU sub-node job still fits.
  EXPECT_FALSE(state.try_allocate(8).has_value());
  EXPECT_TRUE(state.try_allocate(7).has_value());
}

TEST(ClusterState, ReleaseRestoresAndChecksDoubleFree) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  auto a = state.try_allocate(8);
  ASSERT_TRUE(a.has_value());
  state.release(*a);
  EXPECT_EQ(state.free_gpus(), 16);
  EXPECT_THROW(state.release(*a), common::CheckError);
}

TEST(ClusterState, CordonExcludesFromPlacementAndCounts) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  state.cordon(0);
  EXPECT_EQ(state.free_gpus(), 8);
  EXPECT_EQ(state.free_gpus_including_cordoned(), 16);
  auto a = state.try_allocate(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slices[0].node, 1);
  EXPECT_FALSE(state.try_allocate(1).has_value());
  state.uncordon(0);
  EXPECT_TRUE(state.try_allocate(1).has_value());
  EXPECT_EQ(state.cordoned_nodes().size(), 0u);
}

TEST(ClusterState, CordonWhileAllocatedReleasesCorrectly) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 1;
  ClusterState state(spec);
  auto a = state.try_allocate(4);
  ASSERT_TRUE(a.has_value());
  state.cordon(0);
  state.release(*a);  // release on a cordoned node must not corrupt counters
  EXPECT_EQ(state.free_gpus(), 0);
  state.uncordon(0);
  EXPECT_EQ(state.free_gpus(), 8);
}

TEST(ClusterState, CordonUncordonRoundTripRestoresBucketsExactly) {
  // Repeated cordon/uncordon cycles — including while partially allocated —
  // must leave the free-GPU counters AND the bucket index exactly where they
  // started: best-fit placement after the round trips picks the same node a
  // fresh ledger would.
  ClusterSpec spec = seren_spec();
  spec.node_count = 4;
  ClusterState state(spec);
  auto a = state.try_allocate(6);  // node 0 has 2 free: the best-fit target
  ASSERT_TRUE(a.has_value());
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (NodeId n = 0; n < 4; ++n) state.cordon(n);
    EXPECT_EQ(state.free_gpus(), 0);
    EXPECT_EQ(state.cordoned_count(), 4);
    EXPECT_EQ(state.empty_healthy_nodes(), 0);
    EXPECT_FALSE(state.can_allocate(1));
    for (NodeId n = 3; n >= 0; --n) state.uncordon(n);
    EXPECT_EQ(state.cordoned_count(), 0);
    EXPECT_EQ(state.free_gpus(), 4 * 8 - 6);
    EXPECT_EQ(state.free_gpus_including_cordoned(), 4 * 8 - 6);
    EXPECT_EQ(state.empty_healthy_nodes(), 3);
  }
  // Bucket membership survived the churn: a 2-GPU job best-fits node 0.
  auto b = state.try_allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->slices[0].node, a->slices[0].node);
  state.release(*a);
  state.release(*b);
  EXPECT_EQ(state.free_gpus(), state.total_gpus());
}

TEST(ClusterState, TryAllocateIntoMatchesTryAllocate) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 6;
  ClusterState by_value(spec);
  ClusterState in_place(spec);
  Allocation out;
  for (const int gpus : {3, 24, 7, 12, 8, 1}) {
    auto a = by_value.try_allocate(gpus);
    const bool ok = in_place.try_allocate_into(gpus, 12, out);
    ASSERT_EQ(a.has_value(), ok) << "gpus=" << gpus;
    if (!ok) continue;
    ASSERT_EQ(a->slices.size(), out.slices.size());
    for (std::size_t i = 0; i < out.slices.size(); ++i) {
      EXPECT_EQ(a->slices[i].node, out.slices[i].node);
      EXPECT_EQ(a->slices[i].gpus, out.slices[i].gpus);
      EXPECT_EQ(a->slices[i].cpus, out.slices[i].cpus);
    }
    in_place.release(out);
    by_value.release(*a);
  }
  EXPECT_EQ(in_place.free_gpus(), in_place.total_gpus());
}

TEST(ClusterState, TryAllocateIntoReusesSpilledSliceBuffer) {
  // A wide gang spills the Allocation's two-slice inline buffer; after a
  // release + clear, reallocating into the same object must reuse the spilled
  // block instead of growing a fresh one — the scheduler's restart path
  // (evict -> re-place) relies on this to stay allocation-free.
  ClusterSpec spec = seren_spec();
  spec.node_count = 6;
  ClusterState state(spec);
  Allocation out;
  ASSERT_TRUE(state.try_allocate_into(40, 12, out));  // 5 whole nodes
  ASSERT_EQ(out.slices.size(), 5u);
  EXPECT_FALSE(out.slices.inline_storage());
  const auto* block = out.slices.data();
  const std::size_t cap = out.slices.capacity();
  state.release(out);
  ASSERT_TRUE(state.try_allocate_into(40, 12, out));
  EXPECT_EQ(out.slices.data(), block);  // same heap block, no reallocation
  EXPECT_EQ(out.slices.capacity(), cap);
  // Failure (only one empty node left) empties the output but keeps its
  // spilled capacity for the next attempt.
  Allocation probe = out;
  ASSERT_FALSE(state.try_allocate_into(16, 12, probe));
  EXPECT_TRUE(probe.empty());
  EXPECT_EQ(probe.slices.capacity(), cap);
}

// Property: a random allocate/release workload never oversubscribes and ends
// balanced.
class StatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatePropertyTest, ConservationUnderRandomWorkload) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 16;
  ClusterState state(spec);
  common::Rng rng(GetParam());
  std::vector<Allocation> live;
  for (int i = 0; i < 3000; ++i) {
    if (rng.bernoulli(0.6)) {
      const int gpus = static_cast<int>(rng.uniform_int(1, 40));
      if (auto a = state.try_allocate(gpus)) live.push_back(*a);
    } else if (!live.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      state.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    int used = 0;
    for (const auto& a : live) used += a.total_gpus();
    ASSERT_EQ(state.free_gpus_including_cordoned(), state.total_gpus() - used);
    for (int n = 0; n < state.node_count(); ++n) {
      ASSERT_GE(state.node(n).gpus_free, 0);
      ASSERT_LE(state.node(n).gpus_free, state.node(n).gpus_total);
    }
  }
  for (const auto& a : live) state.release(a);
  EXPECT_EQ(state.free_gpus(), state.total_gpus());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatePropertyTest, ::testing::Values(1, 7, 99));

// --- Power & thermal models (paper Fig 8, 9, 21, A.3) ---

TEST(GpuPower, IdleDrawsAboutSixtyWatts) {
  GpuPowerModel model;
  common::Rng rng(1);
  common::SampleStats s;
  for (int i = 0; i < 2000; ++i) s.add(model.power_w(0.0, 0.0, rng));
  EXPECT_NEAR(s.mean(), 60.0, 5.0);
}

TEST(GpuPower, FullLoadExceedsTdpSometimes) {
  GpuPowerModel model;
  common::Rng rng(2);
  int over_tdp = 0;
  const int n = 5000;
  double max_seen = 0;
  for (int i = 0; i < n; ++i) {
    const double p = model.power_w(0.97, 0.85, rng);
    if (p > 400.0) ++over_tdp;
    max_seen = std::max(max_seen, p);
  }
  // Heavily loaded GPUs exceed TDP regularly but stay under 600 W.
  EXPECT_GT(over_tdp, n / 10);
  EXPECT_LE(max_seen, 600.0);
}

TEST(GpuPower, MonotoneInUtilization) {
  GpuPowerModel model;
  common::Rng rng(3);
  common::SampleStats low, high;
  for (int i = 0; i < 2000; ++i) {
    low.add(model.power_w(0.3, 0.5, rng));
    high.add(model.power_w(0.8, 0.5, rng));
  }
  EXPECT_GT(high.mean(), low.mean() + 50);
}

TEST(Thermal, MemoryHotterThanCore) {
  GpuThermalModel model;
  common::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double core = model.core_temp_c(400.0, 30.0, rng);
    EXPECT_GT(model.mem_temp_c(core, rng), core);
  }
}

TEST(Thermal, HeavyLoadExceeds65C) {
  GpuThermalModel model;
  common::Rng rng(5);
  common::SampleStats s;
  for (int i = 0; i < 1000; ++i)
    s.add(model.core_temp_c(550.0, 32.0, rng));
  EXPECT_GT(s.quantile(0.5), 65.0);
}

TEST(ServerPower, BreakdownFractionsMatchFig9) {
  ServerPowerModel model(seren_spec().node);
  // 8 GPUs near TDP: GPUs should be ~2/3 of the server, CPUs ~11%, PSU ~10%.
  const auto b = model.gpu_server(8 * 400.0, 0.10);
  EXPECT_NEAR(b.gpu_w / b.total(), 2.0 / 3.0, 0.08);
  EXPECT_NEAR(b.cpu_w / b.total(), 0.112, 0.08);
  EXPECT_NEAR(b.psu_loss_w / b.total(), 0.096, 0.02);
}

TEST(ServerPower, GpuServerAboutFiveTimesCpuServer) {
  ServerPowerModel model(seren_spec().node);
  const double gpu_server = model.gpu_server(8 * 330.0, 0.10).total();
  const double cpu_server = model.cpu_server_w(0.3);
  EXPECT_NEAR(gpu_server / cpu_server, 5.0, 1.5);
}

TEST(Carbon, MatchesAppendixA3) {
  CarbonModel carbon;
  // Paper: Seren consumed ~673 MWh in May 2023 -> 321.7 tCO2e.
  EXPECT_NEAR(carbon.emissions_tco2e(673.0), 321.7, 1.0);
  EXPECT_DOUBLE_EQ(carbon.facility_energy_mwh(100.0), 125.0);
}

}  // namespace
}  // namespace acme::cluster
