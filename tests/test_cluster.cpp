#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/domain.h"
#include "cluster/power.h"
#include "cluster/spec.h"
#include "cluster/state.h"
#include "comm/collective.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "trace/job.h"

namespace acme::cluster {
namespace {

// --- Specs (paper Table 1) ---

TEST(Spec, SerenMatchesTable1) {
  const auto s = seren_spec();
  EXPECT_EQ(s.node_count, 286);
  EXPECT_EQ(s.node.gpus, 8);
  EXPECT_EQ(s.node.cpus, 128);
  EXPECT_DOUBLE_EQ(s.node.host_memory_gb, 1024.0);
  EXPECT_EQ(s.total_gpus(), 2288);
  EXPECT_EQ(s.scheduler, SchedulerKind::kSlurm);
}

TEST(Spec, KalosMatchesTable1) {
  const auto k = kalos_spec();
  EXPECT_EQ(k.node_count, 302);
  EXPECT_DOUBLE_EQ(k.node.host_memory_gb, 2048.0);
  EXPECT_EQ(k.total_gpus(), 2416);
  EXPECT_EQ(k.node.compute_nics, 4);
  EXPECT_EQ(k.node.storage_nics, 1);
  EXPECT_EQ(k.scheduler, SchedulerKind::kKubernetes);
}

TEST(Spec, AcmeTotalGpus) {
  EXPECT_EQ(seren_spec().total_gpus() + kalos_spec().total_gpus(), 4704);
}

// --- Resource ledger ---

TEST(ClusterState, SubNodeBestFitPacksFullestNode) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 3;
  ClusterState state(spec);
  auto a = state.try_allocate(6);
  ASSERT_TRUE(a.has_value());
  // Next 2-GPU job should land on the node with 2 free (best fit), not an
  // empty one.
  auto b = state.try_allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->slices[0].node, a->slices[0].node);
  EXPECT_EQ(state.empty_healthy_nodes(), 2);
}

TEST(ClusterState, GangAllocationUsesWholeNodes) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 5;
  ClusterState state(spec);
  auto a = state.try_allocate(24);  // 3 whole nodes
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slices.size(), 3u);
  for (const auto& s : a->slices) EXPECT_EQ(s.gpus, 8);
  EXPECT_EQ(state.free_gpus(), 16);
}

TEST(ClusterState, GangWithRemainderTakesPartialSlice) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 3;
  ClusterState state(spec);
  auto a = state.try_allocate(12);  // 1 full node + half a node
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->total_gpus(), 12);
  EXPECT_EQ(a->slices.size(), 2u);
  EXPECT_EQ(a->slices[1].gpus, 4);
}

TEST(ClusterState, FailsWhenFragmented) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  // Occupy 1 GPU (lands on node A via best fit), then the whole other node.
  ASSERT_TRUE(state.try_allocate(1).has_value());
  ASSERT_TRUE(state.try_allocate(8).has_value());
  EXPECT_EQ(state.free_gpus(), 7);
  // No empty node remains for a gang; a 7-GPU sub-node job still fits.
  EXPECT_FALSE(state.try_allocate(8).has_value());
  EXPECT_TRUE(state.try_allocate(7).has_value());
}

TEST(ClusterState, ReleaseRestoresAndChecksDoubleFree) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  auto a = state.try_allocate(8);
  ASSERT_TRUE(a.has_value());
  state.release(*a);
  EXPECT_EQ(state.free_gpus(), 16);
  EXPECT_THROW(state.release(*a), common::CheckError);
}

TEST(ClusterState, CordonExcludesFromPlacementAndCounts) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 2;
  ClusterState state(spec);
  state.cordon(0);
  EXPECT_EQ(state.free_gpus(), 8);
  EXPECT_EQ(state.free_gpus_including_cordoned(), 16);
  auto a = state.try_allocate(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slices[0].node, 1);
  EXPECT_FALSE(state.try_allocate(1).has_value());
  state.uncordon(0);
  EXPECT_TRUE(state.try_allocate(1).has_value());
  EXPECT_EQ(state.cordoned_nodes().size(), 0u);
}

TEST(ClusterState, CordonWhileAllocatedReleasesCorrectly) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 1;
  ClusterState state(spec);
  auto a = state.try_allocate(4);
  ASSERT_TRUE(a.has_value());
  state.cordon(0);
  state.release(*a);  // release on a cordoned node must not corrupt counters
  EXPECT_EQ(state.free_gpus(), 0);
  state.uncordon(0);
  EXPECT_EQ(state.free_gpus(), 8);
}

TEST(ClusterState, CordonUncordonRoundTripRestoresBucketsExactly) {
  // Repeated cordon/uncordon cycles — including while partially allocated —
  // must leave the free-GPU counters AND the bucket index exactly where they
  // started: best-fit placement after the round trips picks the same node a
  // fresh ledger would.
  ClusterSpec spec = seren_spec();
  spec.node_count = 4;
  ClusterState state(spec);
  auto a = state.try_allocate(6);  // node 0 has 2 free: the best-fit target
  ASSERT_TRUE(a.has_value());
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (NodeId n = 0; n < 4; ++n) state.cordon(n);
    EXPECT_EQ(state.free_gpus(), 0);
    EXPECT_EQ(state.cordoned_count(), 4);
    EXPECT_EQ(state.empty_healthy_nodes(), 0);
    EXPECT_FALSE(state.can_allocate(1));
    for (NodeId n = 3; n >= 0; --n) state.uncordon(n);
    EXPECT_EQ(state.cordoned_count(), 0);
    EXPECT_EQ(state.free_gpus(), 4 * 8 - 6);
    EXPECT_EQ(state.free_gpus_including_cordoned(), 4 * 8 - 6);
    EXPECT_EQ(state.empty_healthy_nodes(), 3);
  }
  // Bucket membership survived the churn: a 2-GPU job best-fits node 0.
  auto b = state.try_allocate(2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->slices[0].node, a->slices[0].node);
  state.release(*a);
  state.release(*b);
  EXPECT_EQ(state.free_gpus(), state.total_gpus());
}

TEST(ClusterState, TryAllocateIntoMatchesTryAllocate) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 6;
  ClusterState by_value(spec);
  ClusterState in_place(spec);
  Allocation out;
  for (const int gpus : {3, 24, 7, 12, 8, 1}) {
    auto a = by_value.try_allocate(gpus);
    const bool ok = in_place.try_allocate_into(gpus, 12, out);
    ASSERT_EQ(a.has_value(), ok) << "gpus=" << gpus;
    if (!ok) continue;
    ASSERT_EQ(a->slices.size(), out.slices.size());
    for (std::size_t i = 0; i < out.slices.size(); ++i) {
      EXPECT_EQ(a->slices[i].node, out.slices[i].node);
      EXPECT_EQ(a->slices[i].gpus, out.slices[i].gpus);
      EXPECT_EQ(a->slices[i].cpus, out.slices[i].cpus);
    }
    in_place.release(out);
    by_value.release(*a);
  }
  EXPECT_EQ(in_place.free_gpus(), in_place.total_gpus());
}

TEST(ClusterState, TryAllocateIntoReusesSpilledSliceBuffer) {
  // A wide gang spills the Allocation's two-slice inline buffer; after a
  // release + clear, reallocating into the same object must reuse the spilled
  // block instead of growing a fresh one — the scheduler's restart path
  // (evict -> re-place) relies on this to stay allocation-free.
  ClusterSpec spec = seren_spec();
  spec.node_count = 6;
  ClusterState state(spec);
  Allocation out;
  ASSERT_TRUE(state.try_allocate_into(40, 12, out));  // 5 whole nodes
  ASSERT_EQ(out.slices.size(), 5u);
  EXPECT_FALSE(out.slices.inline_storage());
  const auto* block = out.slices.data();
  const std::size_t cap = out.slices.capacity();
  state.release(out);
  ASSERT_TRUE(state.try_allocate_into(40, 12, out));
  EXPECT_EQ(out.slices.data(), block);  // same heap block, no reallocation
  EXPECT_EQ(out.slices.capacity(), cap);
  // Failure (only one empty node left) empties the output but keeps its
  // spilled capacity for the next attempt.
  Allocation probe = out;
  ASSERT_FALSE(state.try_allocate_into(16, 12, probe));
  EXPECT_TRUE(probe.empty());
  EXPECT_EQ(probe.slices.capacity(), cap);
}

// Property: a random allocate/release workload never oversubscribes and ends
// balanced.
class StatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatePropertyTest, ConservationUnderRandomWorkload) {
  ClusterSpec spec = seren_spec();
  spec.node_count = 16;
  ClusterState state(spec);
  common::Rng rng(GetParam());
  std::vector<Allocation> live;
  for (int i = 0; i < 3000; ++i) {
    if (rng.bernoulli(0.6)) {
      const int gpus = static_cast<int>(rng.uniform_int(1, 40));
      if (auto a = state.try_allocate(gpus)) live.push_back(*a);
    } else if (!live.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      state.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    int used = 0;
    for (const auto& a : live) used += a.total_gpus();
    ASSERT_EQ(state.free_gpus_including_cordoned(), state.total_gpus() - used);
    for (int n = 0; n < state.node_count(); ++n) {
      ASSERT_GE(state.node(n).gpus_free, 0);
      ASSERT_LE(state.node(n).gpus_free, state.node(n).gpus_total);
    }
  }
  for (const auto& a : live) state.release(a);
  EXPECT_EQ(state.free_gpus(), state.total_gpus());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatePropertyTest, ::testing::Values(1, 7, 99));

// --- Power & thermal models (paper Fig 8, 9, 21, A.3) ---

TEST(GpuPower, IdleDrawsAboutSixtyWatts) {
  GpuPowerModel model;
  common::Rng rng(1);
  common::SampleStats s;
  for (int i = 0; i < 2000; ++i) s.add(model.power_w(0.0, 0.0, rng));
  EXPECT_NEAR(s.mean(), 60.0, 5.0);
}

TEST(GpuPower, FullLoadExceedsTdpSometimes) {
  GpuPowerModel model;
  common::Rng rng(2);
  int over_tdp = 0;
  const int n = 5000;
  double max_seen = 0;
  for (int i = 0; i < n; ++i) {
    const double p = model.power_w(0.97, 0.85, rng);
    if (p > 400.0) ++over_tdp;
    max_seen = std::max(max_seen, p);
  }
  // Heavily loaded GPUs exceed TDP regularly but stay under 600 W.
  EXPECT_GT(over_tdp, n / 10);
  EXPECT_LE(max_seen, 600.0);
}

TEST(GpuPower, MonotoneInUtilization) {
  GpuPowerModel model;
  common::Rng rng(3);
  common::SampleStats low, high;
  for (int i = 0; i < 2000; ++i) {
    low.add(model.power_w(0.3, 0.5, rng));
    high.add(model.power_w(0.8, 0.5, rng));
  }
  EXPECT_GT(high.mean(), low.mean() + 50);
}

TEST(Thermal, MemoryHotterThanCore) {
  GpuThermalModel model;
  common::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double core = model.core_temp_c(400.0, 30.0, rng);
    EXPECT_GT(model.mem_temp_c(core, rng), core);
  }
}

TEST(Thermal, HeavyLoadExceeds65C) {
  GpuThermalModel model;
  common::Rng rng(5);
  common::SampleStats s;
  for (int i = 0; i < 1000; ++i)
    s.add(model.core_temp_c(550.0, 32.0, rng));
  EXPECT_GT(s.quantile(0.5), 65.0);
}

TEST(ServerPower, BreakdownFractionsMatchFig9) {
  ServerPowerModel model(seren_spec().node);
  // 8 GPUs near TDP: GPUs should be ~2/3 of the server, CPUs ~11%, PSU ~10%.
  const auto b = model.gpu_server(8 * 400.0, 0.10);
  EXPECT_NEAR(b.gpu_w / b.total(), 2.0 / 3.0, 0.08);
  EXPECT_NEAR(b.cpu_w / b.total(), 0.112, 0.08);
  EXPECT_NEAR(b.psu_loss_w / b.total(), 0.096, 0.02);
}

TEST(ServerPower, GpuServerAboutFiveTimesCpuServer) {
  ServerPowerModel model(seren_spec().node);
  const double gpu_server = model.gpu_server(8 * 330.0, 0.10).total();
  const double cpu_server = model.cpu_server_w(0.3);
  EXPECT_NEAR(gpu_server / cpu_server, 5.0, 1.5);
}

TEST(Carbon, MatchesAppendixA3) {
  CarbonModel carbon;
  // Paper: Seren consumed ~673 MWh in May 2023 -> 321.7 tCO2e.
  EXPECT_NEAR(carbon.emissions_tco2e(673.0), 321.7, 1.0);
  EXPECT_DOUBLE_EQ(carbon.facility_energy_mwh(100.0), 125.0);
}

// --- Hierarchical domain tree (DESIGN.md §14) ---

TEST(DomainTree, LevelLayoutPartitionsNodesExactly) {
  const DomainShape shape{2, 4, 4};
  const DomainTree tree(64, shape);
  EXPECT_FALSE(tree.trivial());
  EXPECT_EQ(tree.node_count(), 64);
  EXPECT_EQ(tree.domains(DomainKind::kDatacenter).size(), 2u);
  EXPECT_EQ(tree.domains(DomainKind::kPod).size(), 8u);
  EXPECT_EQ(tree.domains(DomainKind::kSwitch).size(), 16u);
  EXPECT_EQ(tree.domain_count(), 1u + 2u + 8u + 16u);
  // Every level tiles [0, 64) contiguously, ids ascending with first_node.
  for (DomainKind kind : {DomainKind::kDatacenter, DomainKind::kPod,
                          DomainKind::kSwitch}) {
    NodeId next = 0;
    for (DomainId d : tree.domains(kind)) {
      EXPECT_EQ(tree.kind(d), kind);
      EXPECT_EQ(tree.first_node(d), next);
      EXPECT_GT(tree.domain_nodes(d), 0);
      next += static_cast<NodeId>(tree.domain_nodes(d));
    }
    EXPECT_EQ(next, 64u) << to_string(kind);
  }
  // Parents point one level up.
  for (DomainId d : tree.domains(DomainKind::kSwitch))
    EXPECT_EQ(tree.kind(tree.parent(d)), DomainKind::kPod);
  for (DomainId d : tree.domains(DomainKind::kPod))
    EXPECT_EQ(tree.kind(tree.parent(d)), DomainKind::kDatacenter);
  for (DomainId d : tree.domains(DomainKind::kDatacenter))
    EXPECT_EQ(tree.kind(tree.parent(d)), DomainKind::kRoot);
}

TEST(DomainTree, AncestorMatchesSpanBruteForce) {
  // Uneven split: 67 nodes over 3 DCs x 3 pods, 4-node switch groups. The
  // O(1) per-node ancestor arrays must agree with a brute-force scan of the
  // per-level spans.
  const DomainTree tree(67, DomainShape{3, 3, 4});
  for (NodeId node = 0; node < 67; ++node) {
    for (DomainKind kind : {DomainKind::kDatacenter, DomainKind::kPod,
                            DomainKind::kSwitch}) {
      DomainId expect = kInvalidDomain;
      for (DomainId d : tree.domains(kind)) {
        const NodeId first = tree.first_node(d);
        if (node >= first &&
            node < first + static_cast<NodeId>(tree.domain_nodes(d)))
          expect = d;
      }
      EXPECT_EQ(tree.ancestor(node, kind), expect)
          << "node " << node << " kind " << to_string(kind);
    }
    EXPECT_EQ(tree.ancestor(node, DomainKind::kRoot), 0u);
  }
}

TEST(DomainTree, SpannedCountsMatchBruteForce) {
  const DomainTree tree(96, DomainShape{3, 4, 2});
  common::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Contiguous span.
    const int first = static_cast<int>(rng.uniform_int(0, 95));
    const int count = static_cast<int>(rng.uniform_int(1, 96 - first));
    std::set<DomainId> pods, dcs;
    for (int n = first; n < first + count; ++n) {
      pods.insert(tree.pod_of(static_cast<NodeId>(n)));
      dcs.insert(tree.datacenter_of(static_cast<NodeId>(n)));
    }
    EXPECT_EQ(tree.pods_spanned(static_cast<NodeId>(first), count),
              static_cast<int>(pods.size()));
    EXPECT_EQ(tree.datacenters_spanned(static_cast<NodeId>(first), count),
              static_cast<int>(dcs.size()));
    // Arbitrary node set (non-contiguous multi-pod placement).
    std::vector<NodeId> nodes;
    const int size = static_cast<int>(rng.uniform_int(1, 24));
    for (int i = 0; i < size; ++i)
      nodes.push_back(static_cast<NodeId>(rng.uniform_int(0, 95)));
    pods.clear();
    dcs.clear();
    for (NodeId n : nodes) {
      pods.insert(tree.pod_of(n));
      dcs.insert(tree.datacenter_of(n));
    }
    EXPECT_EQ(tree.pods_spanned(nodes.data(), nodes.size()),
              static_cast<int>(pods.size()));
    EXPECT_EQ(tree.datacenters_spanned(nodes.data(), nodes.size()),
              static_cast<int>(dcs.size()));
  }
}

TEST(DomainTree, TrivialShapeIsFlat) {
  const DomainTree tree(16, DomainShape{});
  EXPECT_TRUE(tree.trivial());
  EXPECT_EQ(tree.domains(DomainKind::kDatacenter).size(), 1u);
  EXPECT_EQ(tree.domains(DomainKind::kPod).size(), 1u);
  EXPECT_EQ(tree.domains(DomainKind::kSwitch).size(), 1u);
  EXPECT_EQ(tree.pods_spanned(0, 16), 1);
  EXPECT_EQ(tree.datacenters_spanned(0, 16), 1);
}

TEST(DomainTree, SubtreeCordonUncordonExactness) {
  // Cordoning a domain's [first_node, first_node + span) must cordon exactly
  // the nodes whose pod ancestor is that domain — no neighbours — and
  // uncordoning restores the ledger exactly.
  ClusterSpec spec = seren_spec();
  spec.node_count = 32;
  spec.topology = DomainShape{2, 2, 4};
  const DomainTree tree(spec);
  ClusterState state(spec);
  const int total_free = state.free_gpus();
  for (DomainId pod : tree.domains(DomainKind::kPod)) {
    const NodeId first = tree.first_node(pod);
    const int count = tree.domain_nodes(pod);
    for (int i = 0; i < count; ++i) state.cordon(first + static_cast<NodeId>(i));
    EXPECT_EQ(state.cordoned_count(), count);
    for (NodeId n = 0; n < 32; ++n)
      EXPECT_EQ(state.is_cordoned(n), tree.pod_of(n) == pod) << "node " << n;
    for (int i = 0; i < count; ++i)
      state.uncordon(first + static_cast<NodeId>(i));
    EXPECT_EQ(state.cordoned_count(), 0);
    EXPECT_EQ(state.free_gpus(), total_free);
  }
}

TEST(DomainTree, CorrelatedKillMembershipMatchesBruteForce) {
  // The scheduler's global-span resident query (what a domain outage kills)
  // must equal a brute-force filter of all running jobs by their translated
  // allocation slices, for every pod subtree.
  cluster::ClusterSpec spec = seren_spec();
  spec.node_count = 16;
  spec.topology = DomainShape{2, 2, 2};
  const DomainTree tree(spec);
  sched::SchedulerConfig config;
  config.pretrain_reservation = 0.5;
  config.eval_cap_fraction = 0.5;
  sim::Engine engine;
  sched::SchedulerReplay replay(engine, spec, config);
  trace::Trace jobs;
  common::Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    trace::JobRecord j;
    j.id = static_cast<std::uint64_t>(i + 1);
    j.type = (i % 3 == 0) ? trace::WorkloadType::kPretrain
                          : trace::WorkloadType::kDebug;
    j.gpus = static_cast<int>(rng.uniform_int(1, 32));
    j.submit_time = static_cast<double>(i);
    j.duration = 500.0 + static_cast<double>(rng.uniform_int(0, 500));
    j.status = trace::JobStatus::kCompleted;
    jobs.push_back(j);
  }
  replay.begin_replay(std::move(jobs));
  while (engine.now() < 120.0 && engine.step(120.0)) {
  }
  const int offset = replay.reserved_node_count();
  std::vector<std::size_t> all, got;
  replay.running_jobs_on_nodes(0, replay.total_node_count(), all);
  ASSERT_FALSE(all.empty());
  for (DomainId pod : tree.domains(DomainKind::kPod)) {
    const int first = static_cast<int>(tree.first_node(pod));
    const int count = tree.domain_nodes(pod);
    std::vector<std::size_t> expect;
    for (std::size_t idx : all) {
      bool hit = false;
      for (const auto& slice : replay.allocation_of(idx).slices) {
        const int node =
            slice.node + (replay.allocation_on_reserved(idx) ? 0 : offset);
        if (node >= first && node < first + count) hit = true;
      }
      if (hit) expect.push_back(idx);
    }
    replay.running_jobs_on_nodes(first, count, got);
    EXPECT_EQ(got, expect) << "pod " << pod;
  }
  engine.run();
  (void)replay.finish_replay();
}

TEST(DomainTree, LocalizationTtrGrowsWithBlastRadius) {
  // Recovery localization probes the whole cordoned subtree, so TTR must be
  // monotone in the blast radius: switch group < pod < datacenter spans.
  ClusterSpec spec = seren_spec();
  spec.node_count = 1024;
  spec.topology = DomainShape{2, 8, 8};
  comm::CollectiveModel model(comm::fabric_from_cluster(spec));
  const double switch_ttr = model.probe_round_seconds(8);
  const double pod_ttr = model.probe_round_seconds(64);
  const double dc_ttr = model.probe_round_seconds(512);
  EXPECT_LT(switch_ttr, pod_ttr);
  EXPECT_LT(pod_ttr, dc_ttr);
}

}  // namespace
}  // namespace acme::cluster
