// acme::snap — format round-trips, loud-failure paths, and save/restore of
// the leaf state holders (engine spine, rng, cluster ledger). World-level
// snapshot oracles live in test_determinism; parser hardening in test_world.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cluster/state.h"
#include "common/check.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "snap/format.h"

namespace {

using acme::common::CheckError;
using acme::snap::SnapshotReader;
using acme::snap::SnapshotWriter;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string one_section_bytes() {
  SnapshotWriter w;
  w.begin_section("alpha");
  w.write_u32(7);
  w.write_f64(2.5);
  w.end_section();
  return w.finish();
}

TEST(SnapFormat, PrimitivesRoundTrip) {
  SnapshotWriter w;
  w.begin_section("prims");
  w.write_bool(true);
  w.write_bool(false);
  w.write_u32(0xdeadbeefu);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_f64(3.141592653589793);
  w.write_string("hello snapshot");
  std::vector<std::uint32_t> pod{5, 4, 3, 2, 1};
  w.write_pod_vec(pod);
  w.end_section();
  w.begin_section("second");
  w.write_u32(11);
  w.end_section();

  SnapshotReader r(w.finish());
  EXPECT_EQ(r.version(), acme::snap::kFormatVersion);
  r.enter_section("prims");
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.141592653589793);
  EXPECT_EQ(r.read_string(), "hello snapshot");
  std::vector<std::uint32_t> back;
  r.read_pod_vec(back);
  EXPECT_EQ(back, pod);
  r.leave_section();
  r.enter_section("second");
  EXPECT_EQ(r.read_u32(), 11u);
  r.leave_section();
  EXPECT_TRUE(r.at_end());
}

TEST(SnapFormat, RejectsBadMagic) {
  std::string bytes = one_section_bytes();
  bytes[0] = 'X';
  EXPECT_THROW(SnapshotReader{std::move(bytes)}, CheckError);
}

TEST(SnapFormat, RejectsVersionSkew) {
  std::string bytes = one_section_bytes();
  bytes[8] = static_cast<char>(bytes[8] + 1);  // version u32, little end
  EXPECT_THROW(SnapshotReader{std::move(bytes)}, CheckError);
}

TEST(SnapFormat, RejectsCorruptedPayload) {
  std::string bytes = one_section_bytes();
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);  // payload tail
  SnapshotReader r(std::move(bytes));
  EXPECT_THROW(r.enter_section("alpha"), CheckError);
}

TEST(SnapFormat, RejectsTruncation) {
  std::string bytes = one_section_bytes();
  bytes.resize(bytes.size() - 4);
  SnapshotReader r(std::move(bytes));
  EXPECT_THROW(r.enter_section("alpha"), CheckError);
}

TEST(SnapFormat, RejectsSectionNameMismatch) {
  SnapshotReader r(one_section_bytes());
  EXPECT_THROW(r.enter_section("beta"), CheckError);
}

TEST(SnapFormat, RejectsTagMismatch) {
  SnapshotReader r(one_section_bytes());
  r.enter_section("alpha");
  EXPECT_THROW(r.read_f64(), CheckError);  // first value is a u32
}

TEST(SnapFormat, RejectsPartialConsumption) {
  SnapshotReader r(one_section_bytes());
  r.enter_section("alpha");
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_THROW(r.leave_section(), CheckError);  // f64 still unread
}

TEST(SnapFormat, RejectsPodElementSizeSkew) {
  SnapshotWriter w;
  w.begin_section("pods");
  std::vector<std::uint32_t> pod{1, 2, 3};
  w.write_pod_vec(pod);
  w.end_section();
  SnapshotReader r(w.finish());
  r.enter_section("pods");
  std::vector<std::uint64_t> wrong;
  EXPECT_THROW(r.read_pod_vec(wrong), CheckError);
}

TEST(SnapRng, StateRoundTripContinuesTheStream) {
  acme::common::Rng rng(987654321);
  for (int i = 0; i < 17; ++i) rng.next();
  acme::common::Rng clone;
  clone.set_state(rng.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next(), clone.next());
  // fork() mixes seed_material, which the state carries too.
  EXPECT_EQ(rng.fork("branch").next(), clone.fork("branch").next());
}

// The engine snapshot serializes queue structure only; callbacks are
// re-installed via rebind(). Pop order (and thus the whole downstream
// simulation) must be byte-identical.
TEST(SnapEngine, RoundTripPreservesFireOrder) {
  acme::sim::Engine a;
  std::vector<std::pair<int, double>> fired_a;
  std::vector<acme::sim::EventHandle> handles;
  // Ascending pushes land in the sorted run, descending in the heap; mix
  // both, plus a same-timestamp pair to pin insertion-order tie-breaks.
  const double times[] = {1.0, 2.0, 3.0, 2.5, 0.5, 2.5};
  for (int i = 0; i < 6; ++i)
    handles.push_back(a.schedule_at(
        times[i], [&fired_a, &a, i] { fired_a.push_back({i, a.now()}); }));
  // Cancel one and fire one before the snapshot so the free list, stale heap
  // entries and the clock are all non-trivial.
  ASSERT_TRUE(a.cancel(handles[3]));
  ASSERT_TRUE(a.step(kInf));  // fires event 4 (t = 0.5)
  ASSERT_EQ(fired_a.size(), 1u);

  SnapshotWriter w;
  a.save(w);
  SnapshotReader r(w.finish());

  acme::sim::Engine b;
  std::vector<std::pair<int, double>> fired_b;
  b.restore(r);
  EXPECT_EQ(b.now(), a.now());
  EXPECT_EQ(b.pending(), a.pending());
  // Rebind the still-pending events (0, 1, 2, 5) with the restored handles.
  for (const int i : {0, 1, 2, 5})
    b.rebind(handles[static_cast<std::size_t>(i)],
             [&fired_b, &b, i] { fired_b.push_back({i, b.now()}); });
  EXPECT_EQ(b.unbound(), 0u);

  while (a.step(kInf)) {
  }
  while (b.step(kInf)) {
  }
  fired_b.insert(fired_b.begin(), fired_a.front());  // pre-snapshot firing
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(a.now(), b.now());
}

TEST(SnapEngine, RestoreIntoLiveEngineFailsLoudly) {
  acme::sim::Engine a;
  a.schedule_at(1.0, [] {});
  SnapshotWriter w;
  a.save(w);
  SnapshotReader r(w.finish());

  acme::sim::Engine busy;
  busy.schedule_at(5.0, [] {});
  EXPECT_THROW(busy.restore(r), CheckError);
}

TEST(SnapEngine, ResetThenRestoreWorks) {
  acme::sim::Engine a;
  int hits = 0;
  auto h = a.schedule_at(2.0, [&hits] { ++hits; });
  SnapshotWriter w;
  a.save(w);

  acme::sim::Engine b;
  b.schedule_at(1.0, [] {});
  while (b.step(kInf)) {
  }
  EXPECT_THROW(
      {
        SnapshotReader r(w.finish());
        b.restore(r);  // clock advanced: still not fresh
      },
      CheckError);
  b.reset();
  SnapshotWriter w2;
  a.save(w2);
  SnapshotReader r2(w2.finish());
  b.restore(r2);
  b.rebind(h, [&hits] { ++hits; });
  EXPECT_EQ(b.unbound(), 0u);
  while (b.step(kInf)) {
  }
  EXPECT_EQ(hits, 1);
}

TEST(SnapEngine, RebindRejectsStaleAndDoubleBinds) {
  acme::sim::Engine a;
  auto h = a.schedule_at(1.0, [] {});
  SnapshotWriter w;
  a.save(w);
  SnapshotReader r(w.finish());
  acme::sim::Engine b;
  b.restore(r);
  b.rebind(h, [] {});
  EXPECT_THROW(b.rebind(h, [] {}), CheckError);  // already bound
  acme::sim::EventHandle stale;                  // seq 0: never pending
  EXPECT_THROW(b.rebind(stale, [] {}), CheckError);
}

TEST(SnapCluster, LedgerRoundTripMatchesPlacementDecisions) {
  acme::cluster::ClusterSpec spec;
  spec.node_count = 8;
  acme::cluster::ClusterState a(spec);
  auto big = a.try_allocate(2 * spec.node.gpus);  // two whole nodes
  ASSERT_TRUE(big.has_value());
  auto small = a.try_allocate(3);
  ASSERT_TRUE(small.has_value());
  a.cordon(5);

  SnapshotWriter w;
  a.save(w);
  SnapshotReader r(w.finish());
  acme::cluster::ClusterState b(spec);
  b.restore(r);

  EXPECT_EQ(b.free_gpus(), a.free_gpus());
  EXPECT_EQ(b.free_gpus_including_cordoned(), a.free_gpus_including_cordoned());
  EXPECT_EQ(b.empty_healthy_nodes(), a.empty_healthy_nodes());
  EXPECT_EQ(b.cordoned_count(), 1);
  EXPECT_TRUE(b.is_cordoned(5));
  // The restored bucket index must drive identical best-fit decisions.
  auto next_a = a.try_allocate(4);
  auto next_b = b.try_allocate(4);
  ASSERT_TRUE(next_a.has_value());
  ASSERT_TRUE(next_b.has_value());
  ASSERT_EQ(next_a->slices.size(), next_b->slices.size());
  for (std::size_t i = 0; i < next_a->slices.size(); ++i) {
    EXPECT_EQ(next_a->slices[i].node, next_b->slices[i].node);
    EXPECT_EQ(next_a->slices[i].gpus, next_b->slices[i].gpus);
  }
}

TEST(SnapCluster, RestoreRejectsNodeCountMismatch) {
  acme::cluster::ClusterSpec spec;
  spec.node_count = 4;
  acme::cluster::ClusterState a(spec);
  SnapshotWriter w;
  a.save(w);
  SnapshotReader r(w.finish());
  acme::cluster::ClusterSpec other = spec;
  other.node_count = 5;
  acme::cluster::ClusterState b(other);
  EXPECT_THROW(b.restore(r), CheckError);
}

}  // namespace
