#include <gtest/gtest.h>

#include "common/check.h"
#include "telemetry/fleet_sampler.h"
#include "telemetry/job_profiler.h"
#include "telemetry/timeseries.h"
#include <sstream>

namespace acme::telemetry {
namespace {

// --- TimeSeries / MetricStore ---

TEST(TimeSeries, AppendAndStepLookup) {
  TimeSeries ts("gpu_util");
  ts.append(0, 10);
  ts.append(15, 20);
  ts.append(30, 30);
  EXPECT_DOUBLE_EQ(ts.at(-1), 0.0);
  EXPECT_DOUBLE_EQ(ts.at(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(14.9), 10.0);
  EXPECT_DOUBLE_EQ(ts.at(15), 20.0);
  EXPECT_DOUBLE_EQ(ts.at(1000), 30.0);
}

TEST(TimeSeries, RejectsOutOfOrder) {
  TimeSeries ts("x");
  ts.append(10, 1);
  EXPECT_THROW(ts.append(5, 2), common::CheckError);
}

TEST(TimeSeries, MeanOverStepIntegration) {
  TimeSeries ts("x");
  ts.append(0, 0);
  ts.append(10, 10);
  // [0,10): 0, [10,20): 10 -> mean over [0,20) = 5.
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 20), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(10, 20), 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(5, 15), 5.0);
}

TEST(TimeSeries, ValuesExport) {
  TimeSeries ts("x");
  for (int i = 0; i < 10; ++i) ts.append(i, i);
  EXPECT_EQ(ts.values().count(), 10u);
  EXPECT_DOUBLE_EQ(ts.values().median(), 4.5);
}

TEST(MetricStore, CreatesAndFinds) {
  MetricStore store;
  store.series("a").append(0, 1);
  store.series("b").append(0, 2);
  EXPECT_NE(store.find("a"), nullptr);
  EXPECT_EQ(store.find("c"), nullptr);
  EXPECT_EQ(store.names().size(), 2u);
  store.series("a").append(1, 3);  // same series, no duplicate
  EXPECT_EQ(store.names().size(), 2u);
}

// --- Fleet sampler calibration (Fig 2b, 7, 8, 21) ---

FleetSamplerConfig kalos_like_config() {
  FleetSamplerConfig config;
  config.spec = cluster::kalos_spec();
  config.busy_fraction = 0.80;
  config.gputime_mix = {{trace::WorkloadType::kPretrain, 0.94},
                        {trace::WorkloadType::kEvaluation, 0.01},
                        {trace::WorkloadType::kDebug, 0.05}};
  return config;
}

FleetMetrics sample_kalos(std::size_t n = 20000) {
  static FleetMetrics metrics = [] {
    FleetSampler sampler(kalos_like_config());
    common::Rng rng(1);
    return sampler.sample(20000, rng);
  }();
  (void)n;
  return metrics;
}

TEST(FleetSampler, PolarizedGpuUtilization) {
  auto m = sample_kalos();
  // Fig 2b: mass concentrates at 0 and ~100; busy cluster -> high median.
  const double at_zero = m.gpu_util.cdf(5.0);
  const double at_high = 1.0 - m.gpu_util.cdf(90.0);
  EXPECT_GT(at_zero + at_high, 0.8);
  EXPECT_GT(m.gpu_util.median(), 90.0);
}

TEST(FleetSampler, MedianSmActivityNearFortyPercent) {
  auto m = sample_kalos();
  EXPECT_NEAR(m.sm_activity.median(), 0.40, 0.10);
  // TC activity tracks below SM activity.
  EXPECT_LT(m.tc_activity.median(), m.sm_activity.median());
}

TEST(FleetSampler, GpuMemoryHighOnBusyFleet) {
  auto m = sample_kalos();
  // Kalos: ~50% of GPUs above 60 GB (75% of 80 GB).
  EXPECT_NEAR(1.0 - m.gpu_mem_gb.cdf(60.0), 0.5, 0.15);
}

TEST(FleetSampler, AssociatedResourcesUnderutilized) {
  auto m = sample_kalos();
  EXPECT_LT(m.host_mem_frac.quantile(0.9), 0.5);   // host memory below 50%
  EXPECT_LT(m.cpu_util.median(), 0.2);             // CPUs mostly idle
  // IB idle >60% of the time; active bandwidth rarely above 25% of peak.
  EXPECT_GT(m.ib_send_frac.cdf(0.005), 0.55);
  EXPECT_LT(1.0 - m.ib_send_frac.cdf(0.25), 0.08);
}

TEST(FleetSampler, SendRecvSymmetric) {
  auto m = sample_kalos();
  EXPECT_NEAR(m.ib_send_frac.mean(), m.ib_recv_frac.mean(), 0.01);
}

TEST(FleetSampler, PowerDistributionMatchesFig8) {
  auto m = sample_kalos();
  // Idle GPUs (~20% at busy=0.8) cluster near 60 W.
  EXPECT_NEAR(m.gpu_power_w.cdf(80.0), 0.2, 0.1);
  // A visible share exceeds the 400 W TDP; none beyond 600 W.
  const double over_tdp = 1.0 - m.gpu_power_w.cdf(400.0);
  EXPECT_GT(over_tdp, 0.05);
  EXPECT_LT(over_tdp, 0.45);
  EXPECT_LE(m.gpu_power_w.max(), 600.0);
}

TEST(FleetSampler, MemoryTempAboveCoreTemp) {
  auto m = sample_kalos();
  EXPECT_GT(m.gpu_mem_temp_c.median(), m.gpu_core_temp_c.median() + 3.0);
  // Heavy-load population exceeds 65 C (Fig 21).
  EXPECT_GT(1.0 - m.gpu_core_temp_c.cdf(65.0), 0.2);
}

TEST(FleetSampler, ServerPowerScalesWithLoad) {
  auto busy_cfg = kalos_like_config();
  auto idle_cfg = kalos_like_config();
  idle_cfg.busy_fraction = 0.05;
  common::Rng rng(2);
  auto busy = FleetSampler(busy_cfg).sample(3000, rng);
  auto idle = FleetSampler(idle_cfg).sample(3000, rng);
  EXPECT_GT(busy.server_power_w.mean(), idle.server_power_w.mean() * 1.8);
}

TEST(FleetSampler, IdleClusterReadsZeroUtil) {
  auto cfg = kalos_like_config();
  cfg.busy_fraction = 0.0;
  common::Rng rng(3);
  auto m = FleetSampler(cfg).sample(2000, rng);
  EXPECT_LT(m.gpu_util.quantile(0.95), 5.0);
  EXPECT_DOUBLE_EQ(m.sm_activity.max(), 0.0);
}

TEST(FleetSampler, RejectsEmptyMix) {
  FleetSamplerConfig cfg;
  cfg.spec = cluster::seren_spec();
  EXPECT_THROW(FleetSampler{cfg}, common::CheckError);
}


// --- JobProfiler + CSV export ---

TEST(JobProfiler, RecordsSmAndPowerSeries) {
  parallel::PretrainExecutionModel model(parallel::llm_7b());
  parallel::HierZeroConfig cfg;
  cfg.world = 256;
  MetricStore store;
  JobProfiler profiler({.sample_interval = 0.01});
  const auto n = profiler.profile(model.step_hier_zero(cfg), "job", store);
  ASSERT_GT(n, 10u);
  const auto* sm = store.find("job.sm_activity");
  const auto* power = store.find("job.power_w");
  ASSERT_NE(sm, nullptr);
  ASSERT_NE(power, nullptr);
  EXPECT_EQ(sm->size(), n);
  EXPECT_EQ(power->size(), n);
  // Power tracks activity: busy samples draw far beyond idle.
  EXPECT_GT(power->values().max(), 200.0);
  for (const auto& p : sm->points()) {
    ASSERT_GE(p.value, 0.0);
    ASSERT_LE(p.value, 1.0);
  }
}

TEST(JobProfiler, CsvExportRoundTripsRowCount) {
  parallel::PretrainExecutionModel model(parallel::llm_7b());
  parallel::HierZeroConfig cfg;
  cfg.world = 256;
  MetricStore store;
  JobProfiler profiler({.sample_interval = 0.05});
  const auto n = profiler.profile(model.step_hier_zero(cfg), "j", store);
  std::stringstream buf;
  write_csv(buf, store);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(buf, line)) ++rows;
  EXPECT_EQ(rows, 1 + 2 * n);  // header + two series
}

TEST(JobProfiler, HorizonOverrideRespected) {
  parallel::PretrainExecutionModel model(parallel::llm_7b());
  parallel::HierZeroConfig cfg;
  cfg.world = 256;
  MetricStore store;
  JobProfiler profiler({.sample_interval = 0.01, .horizon = 1.0});
  EXPECT_EQ(profiler.profile(model.step_hier_zero(cfg), "h", store), 100u);
}

}  // namespace
}  // namespace acme::telemetry
