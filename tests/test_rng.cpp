#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace acme::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng a(7);
  Rng child1 = a.fork("stream");
  a.next();
  a.next();
  Rng child2 = a.fork("stream");  // parent advanced, fork must not change
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkLabelsProduceDistinctStreams) {
  Rng a(7);
  Rng x = a.fork("x"), y = a.fork("y");
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (x.next() == y.next()) ++equal;
  EXPECT_LT(equal, 5);
}

// fork() must be a pure function of (seed material, label): any equal-seed
// generator forks the same child stream no matter where the call site is or
// how far the parent has advanced. This is what lets two different modules
// fork "replica-3" and draw identical streams.
TEST(Rng, ForkStableAcrossCallSites) {
  Rng a(1234), b(1234);
  b.next();  // advance one parent only
  Rng from_a = a.fork("replica-3");
  Rng from_b = b.fork("replica-3");
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(from_a.next(), from_b.next());
}

TEST(Rng, NestedForksAreIndependentStreams) {
  Rng root(55);
  Rng child = root.fork("child");
  Rng grandchild = child.fork("child");  // same label, different parent seed
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (child.next() == grandchild.next()) ++equal;
  EXPECT_LT(equal, 5);
}

// fork() from multiple threads on distinct parent copies is race-free (it is
// const and touches only the copy), and every thread reproduces the serial
// fork exactly. Run under TSan by the CI sanitizer job.
TEST(Rng, ForkFromThreadsOnDistinctCopiesMatchesSerial) {
  const Rng parent(777);
  constexpr int kThreads = 8;
  constexpr int kDraws = 256;
  std::vector<std::vector<std::uint64_t>> serial(kThreads), threaded(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng child = parent.fork("thread-" + std::to_string(t));
    for (int i = 0; i < kDraws; ++i) serial[static_cast<std::size_t>(t)].push_back(child.next());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&threaded, t, copy = parent] {
      Rng child = copy.fork("thread-" + std::to_string(t));
      auto& out = threaded[static_cast<std::size_t>(t)];
      for (int i = 0; i < kDraws; ++i) out.push_back(child.next());
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(serial[static_cast<std::size_t>(t)], threaded[static_cast<std::size_t>(t)]) << "thread " << t;
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // every value hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(14);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 3), 5);  // inverted range collapses to lo
}

TEST(Rng, NormalMomentsConverge) {
  Rng rng(15);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(16);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(18);
  std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
  Rng rng(19);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Property: lognormal(mu, 0) degenerates to exp(mu).
TEST(Rng, LognormalZeroSigmaIsDeterministic) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(rng.lognormal(std::log(42.0), 0.0), 42.0);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST_P(RngSeedSweep, NextIsNotConstant) {
  Rng rng(GetParam());
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace acme::common
