// acme::obs unit tests: trace-event well-formedness, histogram bucket math,
// Prometheus exposition escaping and round-trip, disabled-mode no-op
// guarantees, the FNV-1a digest helper, and strict bench CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/acme.h"

namespace acme::obs {
namespace {

// Every test runs against the process-global registry/tracer, so scrub state
// on both sides of each test body.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

// ------------------------------------------------------------------ metrics

TEST_F(ObsTest, CounterIncrementsAndResets) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, HistogramBucketMathMatchesPrometheusLeSemantics) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 10.0, 99.0, 1000.0}) h.observe(v);
  // `le` buckets are cumulative and upper-bound inclusive.
  EXPECT_EQ(h.cumulative(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.cumulative(1), 4u);  // + 5.0, 10.0
  EXPECT_EQ(h.cumulative(2), 5u);  // + 99.0
  EXPECT_EQ(h.cumulative(3), 6u);  // +Inf == count()
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 99.0 + 1000.0, 1e-6);
}

TEST_F(ObsTest, HistogramSumUsesFixedPointGrain) {
  // Values round to 1e-6 per observation so concurrent sums commute.
  Histogram h({1.0});
  h.observe(0.1234567891);
  EXPECT_NEAR(h.sum(), 0.123457, 1e-9);
}

TEST_F(ObsTest, BucketLayoutHelpers) {
  EXPECT_EQ(Histogram::exponential_buckets(1.0, 4.0, 3),
            (std::vector<double>{1.0, 4.0, 16.0}));
  EXPECT_EQ(Histogram::linear_buckets(0.0, 2.5, 3),
            (std::vector<double>{0.0, 2.5, 5.0}));
}

TEST_F(ObsTest, RegistryIsIdempotentPerIdentity) {
  auto& a = metrics().counter("test_idem_total", "help");
  auto& b = metrics().counter("test_idem_total", "help");
  EXPECT_EQ(&a, &b);
  // Same name, different labels: a different series.
  auto& c = metrics().counter("test_idem_total", "help", {{"k", "v"}});
  EXPECT_NE(&a, &c);
  // Same identity as a different kind: programming error.
  EXPECT_THROW(metrics().gauge("test_idem_total", "help"), common::CheckError);
  // Same histogram identity with a different bucket layout: also an error.
  metrics().histogram("test_idem_hist", "help", {1.0, 2.0});
  EXPECT_THROW(metrics().histogram("test_idem_hist", "help", {1.0, 3.0}),
               common::CheckError);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsHandles) {
  auto& c = metrics().counter("test_reset_total", "help");
  c.inc(7);
  reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed in place
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// ------------------------------------------------- Prometheus text format

TEST_F(ObsTest, PrometheusEscapesHelpAndLabelValues) {
  metrics()
      .counter("test_escape_total", "help with \\ and\nnewline",
               {{"path", "a\\b \"quoted\"\nline"}})
      .inc(3);
  const std::string text = metrics().prometheus_text();
  EXPECT_NE(text.find("# HELP test_escape_total help with \\\\ and\\nnewline"),
            std::string::npos);
  EXPECT_NE(text.find("path=\"a\\\\b \\\"quoted\\\"\\nline\""),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusRoundTripsThroughParser) {
  metrics().counter("test_rt_total", "a counter", {{"op", "all_reduce"}}).inc(5);
  metrics().gauge("test_rt_gauge", "a gauge").set(2.5);
  auto& h = metrics().histogram("test_rt_seconds", "a histogram", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(50.0);

  std::string error;
  const auto samples = parse_prometheus(metrics().prometheus_text(), &error);
  ASSERT_TRUE(samples.has_value()) << error;

  auto value_of = [&](const std::string& name, const Labels& labels) -> double {
    for (const auto& s : *samples)
      if (s.name == name && s.labels == labels) return s.value;
    ADD_FAILURE() << "sample not found: " << name;
    return NAN;
  };
  EXPECT_EQ(value_of("test_rt_total", {{"op", "all_reduce"}}), 5.0);
  EXPECT_EQ(value_of("test_rt_gauge", {}), 2.5);
  EXPECT_EQ(value_of("test_rt_seconds_bucket", {{"le", "0.1"}}), 1.0);
  EXPECT_EQ(value_of("test_rt_seconds_bucket", {{"le", "1"}}), 2.0);
  EXPECT_EQ(value_of("test_rt_seconds_bucket", {{"le", "+Inf"}}), 3.0);
  EXPECT_EQ(value_of("test_rt_seconds_count", {}), 3.0);
  EXPECT_NEAR(value_of("test_rt_seconds_sum", {}), 50.55, 1e-9);
}

TEST_F(ObsTest, PrometheusBytesAreDeterministic) {
  metrics().counter("test_det_b_total", "b").inc(2);
  metrics().counter("test_det_a_total", "a").inc(1);
  const std::string first = metrics().prometheus_text();
  EXPECT_EQ(first, metrics().prometheus_text());
  // Sorted by name regardless of registration order.
  EXPECT_LT(first.find("test_det_a_total"), first.find("test_det_b_total"));
}

TEST_F(ObsTest, ParserRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_prometheus("metric{unclosed=\"v\" 1\n", &error).has_value());
  EXPECT_FALSE(parse_prometheus("metric_without_value\n", &error).has_value());
}

// ------------------------------------------------------------------- traces

TEST_F(ObsTest, ScopedSpansBalanceAndNest) {
  set_enabled(true);
  {
    ACME_OBS_SPAN("test", "outer");
    ACME_OBS_SPAN_ARG("test", "inner", "k", "v");
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[2].name, "inner");  // LIFO close order
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_FALSE(TraceRecorder::well_formed_error(events).has_value());
}

TEST_F(ObsTest, WellFormednessCatchesViolations) {
  using P = TraceEvent::Phase;
  auto ev = [](const char* name, P phase, double ts, std::uint32_t tid,
               std::uint64_t id = 0) {
    TraceEvent e;
    e.name = name;
    e.category = "test";
    e.phase = phase;
    e.ts_us = ts;
    e.tid = tid;
    e.id = id;
    return e;
  };
  // Unbalanced: B without E.
  EXPECT_TRUE(TraceRecorder::well_formed_error({ev("a", P::kBegin, 1, 1)})
                  .has_value());
  // E without B.
  EXPECT_TRUE(
      TraceRecorder::well_formed_error({ev("a", P::kEnd, 1, 1)}).has_value());
  // Mismatched close name.
  EXPECT_TRUE(TraceRecorder::well_formed_error(
                  {ev("a", P::kBegin, 1, 1), ev("b", P::kEnd, 2, 1)})
                  .has_value());
  // Non-monotone timestamps on one tid.
  EXPECT_TRUE(TraceRecorder::well_formed_error(
                  {ev("a", P::kInstant, 5, 1), ev("b", P::kInstant, 1, 1)})
                  .has_value());
  // Async begin without end.
  EXPECT_TRUE(TraceRecorder::well_formed_error({ev("t", P::kAsyncBegin, 1, 1, 7)})
                  .has_value());
  // The fixed versions all pass.
  EXPECT_FALSE(TraceRecorder::well_formed_error(
                   {ev("a", P::kBegin, 1, 1), ev("a", P::kEnd, 2, 1),
                    ev("t", P::kAsyncBegin, 3, 1, 7),
                    ev("t", P::kAsyncEnd, 4, 1, 7)})
                   .has_value());
}

TEST_F(ObsTest, TraceJsonIsWellFormedChromeFormat) {
  set_enabled(true);
  {
    ACME_OBS_SPAN_ARG("cat", "span \"quoted\"\\", "key", "line1\nline2");
  }
  tracer().instant("cat", "instant");
  tracer().counter("cat", "depth", 3.5);
  const std::string json = tracer().to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  // String escaping survives.
  EXPECT_NE(json.find("span \\\"quoted\\\"\\\\"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  // Instant events carry the thread scope.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  // Counter events carry their sample as an unquoted numeric "value" arg
  // (the Chrome counter-track convention: the event name is the track, the
  // args dict holds the series).
  EXPECT_NE(json.find("\"value\": 3.5"), std::string::npos);
}

TEST_F(ObsTest, TraceBufferDropsNewestPastCapacity) {
  TraceRecorder small(4);
  for (int i = 0; i < 10; ++i) small.instant("t", "e" + std::to_string(i));
  EXPECT_EQ(small.event_count(), 4u);
  EXPECT_EQ(small.dropped(), 6u);
  EXPECT_EQ(small.events()[0].name, "e0");  // oldest kept
}

TEST_F(ObsTest, ThreadsGetDistinctTidsAndMonotoneTimestamps) {
  set_enabled(true);
  auto spin = [] {
    for (int i = 0; i < 50; ++i) {
      ACME_OBS_SPAN("mt", "work");
    }
  };
  std::thread a(spin), b(spin);
  spin();
  a.join();
  b.join();
  const auto events = tracer().events();
  EXPECT_EQ(events.size(), 300u);
  EXPECT_FALSE(TraceRecorder::well_formed_error(events).has_value());
}

// ------------------------------------------------------- disabled behaviour

TEST_F(ObsTest, DisabledSpansAndHooksAreNoOps) {
  ASSERT_FALSE(enabled());
  {
    ACME_OBS_SPAN("test", "invisible");
  }
  EXPECT_EQ(tracer().event_count(), 0u);
}

TEST_F(ObsTest, MidSpanToggleCannotUnbalanceTrace) {
  // Disabling inside an open span must still emit the matching E.
  set_enabled(true);
  {
    ACME_OBS_SPAN("test", "toggled");
    set_enabled(false);
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(TraceRecorder::well_formed_error(events).has_value());

  // Enabling inside a span opened while disabled must NOT emit a stray E.
  reset();
  {
    ACME_OBS_SPAN("test", "stray");
    set_enabled(true);
  }
  EXPECT_EQ(tracer().event_count(), 0u);
  set_enabled(false);
}

TEST_F(ObsTest, InstrumentedSubsystemsRecordNothingWhileDisabled) {
  ASSERT_FALSE(enabled());
  sim::Engine engine;
  for (int i = 0; i < 100; ++i) engine.schedule_at(i, [] {});
  engine.run();
  comm::CollectiveModel model(comm::kalos_fabric());
  comm::World w;
  w.gpus = 64;
  (void)model.all_reduce(w, 1e9);
  EXPECT_EQ(tracer().event_count(), 0u);
  EXPECT_EQ(metrics().prometheus_text().find("acme_sim_events_fired_total"),
            std::string::npos);
}

// ------------------------------------------------------------------ digest

TEST_F(ObsTest, TCiSurvivesWelfordStateRoundTrip) {
  // The t-based 95% CI is a pure function of the Welford moments, so a
  // snapshot round-trip of StreamingStats must leave the reported CI (and
  // the MetricAggregator built on top) bitwise unchanged — this is what
  // keeps restored worlds' aggregate tables byte-identical.
  common::Rng rng(991);
  common::StreamingStats moments;
  for (int i = 0; i < 64; ++i) moments.add(rng.uniform(5.0, 15.0));
  common::StreamingStats rebuilt;
  rebuilt.set_state(moments.state());
  EXPECT_EQ(common::ci95_halfwidth(moments), common::ci95_halfwidth(rebuilt));
  EXPECT_GT(common::ci95_halfwidth(rebuilt), 0.0);
  // Continuing both accumulators keeps the CI locked together.
  common::Rng tail_a = rng;
  common::Rng tail_b = rng;
  for (int i = 0; i < 64; ++i) moments.add(tail_a.uniform(5.0, 15.0));
  for (int i = 0; i < 64; ++i) rebuilt.add(tail_b.uniform(5.0, 15.0));
  EXPECT_EQ(common::ci95_halfwidth(moments), common::ci95_halfwidth(rebuilt));
}

TEST_F(ObsTest, Fnv1aKnownVectors) {
  EXPECT_EQ(common::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(common::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(common::fnv1a("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(common::fnv1a("hello world"), 0x779a65e7023cd2e7ull);
}

TEST_F(ObsTest, Fnv1aIncrementalMatchesOneShot) {
  common::Fnv1a inc;
  inc.update("hello ").update("world");
  EXPECT_EQ(inc.digest(), common::fnv1a("hello world"));
  EXPECT_EQ(common::fnv1a_hex(0xcbf29ce484222325ull), "cbf29ce484222325");
  EXPECT_EQ(common::fnv1a_hex(0x1ull), "0000000000000001");
}

// ------------------------------------------------------------------- CLI

TEST_F(ObsTest, FlagSetRejectsUnknownFlagWithSuggestion) {
  std::string out = "default";
  common::FlagSet flags("prog");
  flags.add("--trace-out", &out, "trace path");
  const char* argv[] = {"prog", "--trace-ou", "x.json"};
  std::string error;
  EXPECT_FALSE(flags.parse(3, const_cast<char**>(argv), &error));
  EXPECT_NE(error.find("--trace-ou"), std::string::npos);
  EXPECT_NE(error.find("did you mean --trace-out"), std::string::npos);
  EXPECT_EQ(out, "default");  // nothing assigned on failure
}

TEST_F(ObsTest, FlagSetRejectsPositionalsAndMissingValues) {
  std::uint64_t n = 3;
  common::FlagSet flags("prog");
  flags.add("--n", &n, "a number");
  std::string error;
  const char* positional[] = {"prog", "stray"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(positional), &error));
  const char* missing[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(missing), &error));
  const char* bad[] = {"prog", "--n", "12x"};
  EXPECT_FALSE(flags.parse(3, const_cast<char**>(bad), &error));
  EXPECT_EQ(n, 3u);
}

TEST_F(ObsTest, FlagSetParsesValuesAndHelp) {
  std::uint64_t n = 0;
  double d = 0;
  std::string s;
  common::FlagSet flags("prog", "test program");
  flags.add("--n", &n, "a number");
  flags.add("--d", &d, "a double");
  flags.add("--s", &s, "a string");
  const char* argv[] = {"prog", "--n", "7", "--d", "2.5", "--s", "x", "--help"};
  ASSERT_TRUE(flags.parse(8, const_cast<char**>(argv)));
  EXPECT_EQ(n, 7u);
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(s, "x");
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("usage: prog"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
}

}  // namespace
}  // namespace acme::obs
