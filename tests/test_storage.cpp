#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/engine.h"
#include "storage/network.h"
#include "storage/shm_cache.h"

namespace acme::storage {
namespace {

StorageNetworkConfig small_config() {
  StorageNetworkConfig c;
  c.backend_bytes_per_sec = 100.0;
  c.node_nic_bytes_per_sec = 10.0;
  return c;
}

TEST(StorageNetwork, SingleFlowGetsNodeNicRate) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  double done_at = -1;
  net.start_flow(0, 50.0, [&] { done_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);  // 50 bytes at 10 B/s node cap
}

TEST(StorageNetwork, EightFlowsOnOneNodeShareNic) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  std::vector<double> done(8, -1);
  for (int i = 0; i < 8; ++i)
    net.start_flow(0, 10.0, [&, i] { done[static_cast<std::size_t>(i)] = engine.now(); });
  engine.run();
  // 8 equal flows, 10 B/s NIC: each at 1.25 B/s -> 8 s.
  for (double d : done) EXPECT_NEAR(d, 8.0, 1e-6);
}

TEST(StorageNetwork, FlowsOnDistinctNodesIndependentUntilBackend) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i)
    net.start_flow(i, 10.0, [&, i] { done[static_cast<std::size_t>(i)] = engine.now(); });
  engine.run();
  // 4 nodes x 10 B/s = 40 <= backend 100: each runs at full NIC rate.
  for (double d : done) EXPECT_NEAR(d, 1.0, 1e-6);
}

TEST(StorageNetwork, BackendCapBindsAcrossManyNodes) {
  sim::Engine engine;
  StorageNetworkConfig c = small_config();  // backend 100
  StorageNetwork net(engine, c);
  std::vector<double> done(20, -1);
  for (int i = 0; i < 20; ++i)
    net.start_flow(i, 10.0, [&, i] { done[static_cast<std::size_t>(i)] = engine.now(); });
  engine.run();
  // 20 flows, backend 100 B/s -> 5 B/s each -> 2 s.
  for (double d : done) EXPECT_NEAR(d, 2.0, 1e-6);
}

TEST(StorageNetwork, LateArrivalRebalancesFairly) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  double first = -1, second = -1;
  net.start_flow(0, 10.0, [&] { first = engine.now(); });
  engine.schedule_at(0.5, [&] {
    net.start_flow(0, 10.0, [&] { second = engine.now(); });
  });
  engine.run();
  // First: 5 bytes alone in 0.5 s, then 5 more at the fair share of 5 B/s
  // -> finishes at 1.5 s. Second: 5 bytes at 5 B/s until the first leaves,
  // then the last 5 at the full 10 B/s -> finishes at 2.0 s.
  EXPECT_NEAR(first, 1.5, 1e-6);
  EXPECT_NEAR(second, 2.0, 1e-6);
}

TEST(StorageNetwork, CancelStopsCallback) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  bool fired = false;
  auto id = net.start_flow(0, 100.0, [&] { fired = true; });
  engine.schedule_at(1.0, [&] { net.cancel(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(StorageNetwork, CancelAfterCompletionIsNoOp) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  int fired = 0;
  const auto id = net.start_flow(0, 10.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  // The flow already completed; cancelling its stale id must neither throw
  // nor disturb the (empty) flow table.
  net.cancel(id);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(net.active_flows(), 0u);
  // And the network still works afterwards.
  net.start_flow(0, 10.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(StorageNetwork, ZeroByteFlowRejected) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  EXPECT_THROW(net.start_flow(0, 0.0, [] {}), common::CheckError);
  EXPECT_THROW(net.start_flow(0, -1.0, [] {}), common::CheckError);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(StorageNetwork, FairShareRecoversAfterMidFlightDeparture) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());  // node NIC 10 B/s
  double survivor_done = -1;
  const auto doomed = net.start_flow(0, 100.0, [] {});
  const auto survivor = net.start_flow(0, 10.0, [&] { survivor_done = engine.now(); });
  double rate_before = -1, rate_after = -1;
  engine.schedule_at(0.5, [&] {
    rate_before = net.flow_rate(survivor);
    net.cancel(doomed);
    rate_after = net.flow_rate(survivor);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(rate_before, 5.0);   // two flows sharing the 10 B/s NIC
  EXPECT_DOUBLE_EQ(rate_after, 10.0);   // departure hands back the full NIC
  // 2.5 bytes at 5 B/s, then 7.5 bytes at 10 B/s -> done at 1.25 s.
  EXPECT_NEAR(survivor_done, 1.25, 1e-9);
  EXPECT_DOUBLE_EQ(net.flow_rate(doomed), 0.0);  // unknown id reads zero
}

TEST(StorageNetwork, CompletionCallbackCanStartNewFlow) {
  sim::Engine engine;
  StorageNetwork net(engine, small_config());
  double chained_done = -1;
  net.start_flow(0, 10.0, [&] {
    net.start_flow(0, 10.0, [&] { chained_done = engine.now(); });
  });
  engine.run();
  EXPECT_NEAR(chained_done, 2.0, 1e-6);
}

// The Fig 16-left shape: per-trial loading speed collapses ~8x going from 1
// to 8 single-GPU trials on one node, then stays flat from 8 to 256 GPUs
// (each node's NIC is the bottleneck for its own 8 trials).
TEST(StorageNetwork, Fig16LoadingContentionShape) {
  const auto config = seren_storage_config();
  auto per_trial_speed = [&](int trials) {
    sim::Engine engine;
    StorageNetwork net(engine, config);
    const double bytes = 14.6e9;
    std::vector<double> done;
    done.resize(static_cast<std::size_t>(trials), 0);
    for (int i = 0; i < trials; ++i) {
      const int node = i / 8;
      net.start_flow(node, bytes,
                     [&, i] { done[static_cast<std::size_t>(i)] = engine.now(); });
    }
    engine.run();
    double total = 0;
    for (double d : done) total += bytes / d;
    return total / trials;  // mean per-trial throughput
  };
  const double v1 = per_trial_speed(1);
  const double v8 = per_trial_speed(8);
  const double v64 = per_trial_speed(64);
  const double v256 = per_trial_speed(256);
  EXPECT_NEAR(v1 / v8, 8.0, 0.2);      // sharp decline 1 -> 8
  EXPECT_NEAR(v8 / v64, 1.0, 0.05);    // flat 8 -> 64
  EXPECT_NEAR(v8 / v256, 1.0, 0.35);   // near-flat to 256 (backend bends it)
}

// --- ShmCache ---

TEST(ShmCache, PutContainsErase) {
  ShmCache cache(100.0);
  EXPECT_TRUE(cache.put(0, "model-7b", 14.6));
  EXPECT_TRUE(cache.contains(0, "model-7b"));
  EXPECT_FALSE(cache.contains(1, "model-7b"));  // per-node
  cache.erase(0, "model-7b");
  EXPECT_FALSE(cache.contains(0, "model-7b"));
}

TEST(ShmCache, EvictsOldestWhenFull) {
  ShmCache cache(30.0);
  EXPECT_TRUE(cache.put(0, "a", 15.0));
  EXPECT_TRUE(cache.put(0, "b", 15.0));
  EXPECT_TRUE(cache.put(0, "c", 15.0));  // evicts "a"
  EXPECT_FALSE(cache.contains(0, "a"));
  EXPECT_TRUE(cache.contains(0, "b"));
  EXPECT_TRUE(cache.contains(0, "c"));
  EXPECT_NEAR(cache.used_gb(0), 30.0, 1e-9);
}

TEST(ShmCache, RejectsOversizedArtifact) {
  ShmCache cache(10.0);
  EXPECT_FALSE(cache.put(0, "huge", 11.0));
  EXPECT_DOUBLE_EQ(cache.used_gb(0), 0.0);
}

TEST(ShmCache, DuplicatePutIsIdempotent) {
  ShmCache cache(20.0);
  EXPECT_TRUE(cache.put(0, "m", 8.0));
  EXPECT_TRUE(cache.put(0, "m", 8.0));
  EXPECT_DOUBLE_EQ(cache.used_gb(0), 8.0);
}

TEST(ShmCache, ClearNode) {
  ShmCache cache(20.0);
  cache.put(0, "m", 8.0);
  cache.put(1, "m", 8.0);
  cache.clear_node(0);
  EXPECT_FALSE(cache.contains(0, "m"));
  EXPECT_TRUE(cache.contains(1, "m"));
}


// Property: under a random arrival/cancel workload, (a) all surviving flows
// complete, (b) completion order respects work conservation (total bytes
// delivered never exceeds capacity x time).
class StorageStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageStress, RandomFlowsAllCompleteWithinCapacity) {
  sim::Engine engine;
  StorageNetworkConfig config;
  config.backend_bytes_per_sec = 50.0;
  config.node_nic_bytes_per_sec = 10.0;
  StorageNetwork net(engine, config);
  common::Rng rng(GetParam());

  double total_bytes = 0;
  int completed = 0;
  int launched = 0;
  std::vector<FlowId> cancellable;
  const auto launch_flow = [&] {
    const double bytes = rng.uniform(1.0, 200.0);
    const int node = static_cast<int>(rng.uniform_int(0, 9));
    total_bytes += bytes;
    ++launched;
    const FlowId id = net.start_flow(node, bytes, [&] { ++completed; });
    if (rng.bernoulli(0.2)) cancellable.push_back(id);
  };
  // Staggered arrivals over 100 s.
  for (int i = 0; i < 60; ++i) {
    const double at = rng.uniform(0, 100);
    engine.schedule_at(at, [&launch_flow] { launch_flow(); });
  }
  engine.schedule_at(50.0, [&] {
    for (FlowId id : cancellable) net.cancel(id);
  });
  engine.run();
  const double elapsed = engine.now();
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_GT(completed, 0);
  EXPECT_LE(completed, launched);
  // Work conservation: the backend cannot have moved more than cap x time.
  EXPECT_LE(total_bytes * 0.5, config.backend_bytes_per_sec * elapsed + 200.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageStress, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace acme::storage
