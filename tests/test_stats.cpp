#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace acme::common {
namespace {

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MergeMatchesDirectAccumulation) {
  Rng rng(31);
  StreamingStats direct, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.lognormal(0.5, 1.2);
    direct.add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  StreamingStats merged = a;
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_NEAR(merged.mean(), direct.mean(), 1e-12 * std::abs(direct.mean()));
  EXPECT_NEAR(merged.variance(), direct.variance(),
              1e-9 * direct.variance());
  EXPECT_DOUBLE_EQ(merged.min(), direct.min());
  EXPECT_DOUBLE_EQ(merged.max(), direct.max());
  EXPECT_NEAR(merged.sum(), direct.sum(), 1e-9 * std::abs(direct.sum()));
}

TEST(StreamingStats, MergeWithEmptySides) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  StreamingStats b = a;
  b.merge(empty);  // no-op
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  StreamingStats c;
  c.merge(a);  // adopt
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 3.0);
}

TEST(StreamingStats, SampleVarianceUsesBesselCorrection) {
  StreamingStats s;
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  StreamingStats single;
  single.add(5.0);
  EXPECT_DOUBLE_EQ(single.sample_variance(), 0.0);
}

TEST(TCritical, TableAndAsymptote) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(4), 2.776);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(t_critical_95(50), 2.000);
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.960);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
  // Monotone non-increasing in df.
  for (std::size_t df = 2; df < 200; ++df)
    EXPECT_LE(t_critical_95(df), t_critical_95(df - 1));
}

TEST(Ci95Halfwidth, MatchesManualFormula) {
  StreamingStats s;
  for (double v : {10.0, 12.0, 11.0, 13.0}) s.add(v);
  const double se = std::sqrt(s.sample_variance() / 4.0);
  EXPECT_NEAR(ci95_halfwidth(s), 3.182 * se, 1e-12);
  StreamingStats one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(one), 0.0);
}

TEST(SampleStats, QuantilesAgainstKnownValues) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(SampleStats, StreamingAndSampleAgreeOnMean) {
  StreamingStats stream;
  SampleStats sample;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.lognormal(1.0, 1.0);
    stream.add(v);
    sample.add(v);
  }
  EXPECT_NEAR(stream.mean(), sample.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(stream.min(), sample.min());
  EXPECT_DOUBLE_EQ(stream.max(), sample.max());
}

TEST(SampleStats, CdfIsMonotoneProperty) {
  SampleStats s;
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) s.add(rng.normal(10, 5));
  double prev = -1;
  for (double x : lin_space(-10, 30, 100)) {
    const double c = s.cdf(x);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(s.cdf(s.max()), 1.0);
}

TEST(SampleStats, QuantileCdfInverseProperty) {
  SampleStats s;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) s.add(rng.uniform(0, 100));
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = s.quantile(q);
    EXPECT_NEAR(s.cdf(x), q, 0.02);
  }
}

TEST(SampleStats, WeightedQuantileAndMean) {
  SampleStats s;
  s.add_weighted(1.0, 1.0);
  s.add_weighted(10.0, 9.0);
  EXPECT_NEAR(s.mean(), 9.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);  // mass concentrated at 10
  EXPECT_NEAR(s.cdf(5.0), 0.1, 1e-9);
}

TEST(SampleStats, MixedWeightedAfterUnweighted) {
  SampleStats s;
  s.add(2.0);
  s.add_weighted(4.0, 3.0);
  EXPECT_NEAR(s.mean(), (2.0 + 12.0) / 4.0, 1e-9);
}

TEST(SampleStats, InterleavedQueriesAndInserts) {
  // Querying sorts lazily; later inserts must still be seen.
  SampleStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(BoxplotStats, FiveNumberSummary) {
  SampleStats s;
  for (int i = 1; i <= 11; ++i) s.add(i);
  s.add(100.0);  // outlier beyond 1.5 IQR
  const auto box = BoxplotStats::from(s);
  EXPECT_GT(box.q3, box.median);
  EXPECT_GT(box.median, box.q1);
  EXPECT_LE(box.whisker_hi, box.q3 + 1.5 * (box.q3 - box.q1) + 1e-9);
  EXPECT_LT(box.whisker_hi, 100.0);  // outlier excluded from whisker
  EXPECT_DOUBLE_EQ(box.whisker_lo, 1.0);
}

TEST(BoxplotStats, EmptyIsZeroed) {
  const auto box = BoxplotStats::from(SampleStats{});
  EXPECT_DOUBLE_EQ(box.median, 0.0);
}

TEST(Histogram, BinningAndFractions) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 10.0);
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_DOUBLE_EQ(h.count(i), 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(i), 0.1);
  }
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0, 10, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0, 1, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
}

TEST(SpaceHelpers, LogSpaceEndpointsAndGrowth) {
  const auto xs = log_space(1.0, 1000.0, 4);
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_NEAR(xs[0], 1.0, 1e-9);
  EXPECT_NEAR(xs[1], 10.0, 1e-6);
  EXPECT_NEAR(xs[3], 1000.0, 1e-6);
}

TEST(SpaceHelpers, LinSpaceEvenSteps) {
  const auto xs = lin_space(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(SpaceHelpers, RejectBadArguments) {
  EXPECT_THROW(log_space(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(log_space(10.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(lin_space(0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace acme::common
