// acme::world integration: scenario round-trips, the shared-engine
// composition, and the failure -> recovery -> queue interaction that only an
// integrated replay can show.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>

#include "core/acme.h"
#include "snap/format.h"

namespace acme {
namespace {

world::ScenarioSpec fast_seren(bool failures) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.name = failures ? "fast-seren" : "fast-seren-quiet";
  spec.scale = 40.0;  // ~4.5 trace days: fast but plenty of failures
  spec.inject_failures = failures;
  spec.fleet_samples = 2000;
  return spec;
}

const world::WorldReport& quiet_report() {
  static const world::WorldReport report = world::run_world(fast_seren(false));
  return report;
}

const world::WorldReport& failing_report() {
  static const world::WorldReport report = world::run_world(fast_seren(true));
  return report;
}

TEST(Scenario, JsonRoundTrip) {
  world::ScenarioSpec spec = world::kalos_scenario();
  spec.name = "rt";
  spec.scale = 0.125;
  spec.seed = 1234567;
  spec.inject_failures = false;
  spec.failure_interval_scale = 2.5;
  spec.ckpt_interval_seconds = 1234.5;
  spec.fleet_samples = 77;
  std::string error;
  auto parsed = world::scenario_from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->cluster, spec.cluster);
  EXPECT_EQ(parsed->scale, spec.scale);
  EXPECT_EQ(parsed->sample_interval_seconds, spec.sample_interval_seconds);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->inject_failures, spec.inject_failures);
  EXPECT_EQ(parsed->failure_interval_scale, spec.failure_interval_scale);
  EXPECT_EQ(parsed->auto_recovery, spec.auto_recovery);
  EXPECT_EQ(parsed->ckpt_interval_seconds, spec.ckpt_interval_seconds);
  EXPECT_EQ(parsed->async_ckpt, spec.async_ckpt);
  EXPECT_EQ(parsed->fleet_samples, spec.fleet_samples);
  EXPECT_EQ(parsed->to_json(), spec.to_json());
}

TEST(Scenario, ParserRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":8,\"typo\":1}", &error));
  EXPECT_NE(error.find("typo"), std::string::npos);
  EXPECT_FALSE(world::scenario_from_json("{\"cluster\":\"mars\"}", &error));
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":-1}", &error));
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":\"8\"}", &error));
  EXPECT_FALSE(world::scenario_from_json("{}trailing", &error));
  EXPECT_FALSE(world::scenario_from_json("not json", &error));
  EXPECT_TRUE(world::scenario_from_json("{}", &error).has_value());
}

TEST(Scenario, ServeFieldsRoundTrip) {
  world::ScenarioSpec spec = world::serve_seren_scenario();
  spec.name = "serve-rt";
  spec.serve_replicas = 12;
  spec.serve_gpus_per_replica = 4;
  spec.serve_model = "moe";
  spec.serve_rps = 123.5;
  spec.serve_diurnal_amplitude = 0.75;
  spec.serve_burst_multiplier = 2.5;
  spec.serve_burst_fraction = 0.2;
  spec.serve_duration_seconds = 7200.0;
  spec.serve_slo_ttft_seconds = 1.5;
  spec.serve_slo_tpot_seconds = 0.05;
  std::string error;
  auto parsed = world::scenario_from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->pretrain, spec.pretrain);
  EXPECT_EQ(parsed->serve_replicas, spec.serve_replicas);
  EXPECT_EQ(parsed->serve_gpus_per_replica, spec.serve_gpus_per_replica);
  EXPECT_EQ(parsed->serve_model, spec.serve_model);
  EXPECT_EQ(parsed->serve_rps, spec.serve_rps);
  EXPECT_EQ(parsed->serve_diurnal_amplitude, spec.serve_diurnal_amplitude);
  EXPECT_EQ(parsed->serve_burst_multiplier, spec.serve_burst_multiplier);
  EXPECT_EQ(parsed->serve_burst_fraction, spec.serve_burst_fraction);
  EXPECT_EQ(parsed->serve_duration_seconds, spec.serve_duration_seconds);
  EXPECT_EQ(parsed->serve_slo_ttft_seconds, spec.serve_slo_ttft_seconds);
  EXPECT_EQ(parsed->serve_slo_tpot_seconds, spec.serve_slo_tpot_seconds);
  EXPECT_EQ(parsed->to_json(), spec.to_json());
}

TEST(Scenario, ParserSuggestsNearMissKeys) {
  std::string error;
  EXPECT_FALSE(world::scenario_from_json("{\"serve_replica\":4}", &error));
  EXPECT_NE(error.find("did you mean \"serve_replicas\""), std::string::npos)
      << error;
  EXPECT_FALSE(world::scenario_from_json("{\"sacle\":2}", &error));
  EXPECT_NE(error.find("did you mean \"scale\""), std::string::npos) << error;
  // Nothing plausible nearby: no suggestion, but still a clear rejection.
  EXPECT_FALSE(world::scenario_from_json("{\"zzzzzzzzzz\":1}", &error));
  EXPECT_NE(error.find("unknown scenario key"), std::string::npos);
  EXPECT_EQ(error.find("did you mean"), std::string::npos) << error;
}

TEST(Scenario, ParserRejectsDuplicateKeys) {
  std::string error;
  EXPECT_FALSE(
      world::scenario_from_json("{\"scale\":8,\"scale\":9}", &error));
  EXPECT_NE(error.find("duplicate scenario key \"scale\""), std::string::npos)
      << error;
}

TEST(Scenario, ServeValidationRejectsNonsense) {
  std::string error;
  // A world with neither pretraining nor serving does nothing.
  EXPECT_FALSE(world::scenario_from_json("{\"pretrain\":false}", &error));
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":4,\"serve_model\":\"70b\"}", &error));
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":4,\"serve_rps\":-1}", &error));
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":4,\"serve_burst_fraction\":1.0}", &error));
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":4,\"serve_diurnal_amplitude\":1.5}", &error));
  EXPECT_TRUE(world::scenario_from_json("{\"serve_replicas\":4}", &error)
                  .has_value())
      << error;
}

TEST(World, ServeOnlyRunReportsFleetCounters) {
  world::ScenarioSpec spec = world::serve_seren_scenario();
  spec.name = "serve-unit";
  spec.serve_replicas = 2;
  spec.serve_rps = 10.0;
  spec.serve_duration_seconds = 300.0;
  const world::WorldReport report = world::run_world(spec);
  ASSERT_TRUE(report.served);
  EXPECT_GT(report.serve.offered, 0u);
  EXPECT_EQ(report.serve.offered, report.serve.completed +
                                      report.serve.rejected +
                                      report.serve.failed);
  EXPECT_GT(report.serve.completed, 0u);
  EXPECT_GT(report.serve.slo_attainment(), 0.9);
  // No scheduler replay ran: the training-side report stays empty.
  EXPECT_EQ(report.replay.jobs.size(), 0u);
  EXPECT_EQ(report.failures_injected, 0);
}

TEST(World, ColocatedRunServesAndTrainsOnOneSpine) {
  world::ScenarioSpec spec = world::colocated_seren_scenario();
  spec.name = "colo-unit";
  spec.scale = 40.0;  // fast replay tier, same as fast_seren
  spec.fleet_samples = 500;
  spec.serve_replicas = 2;
  spec.serve_rps = 10.0;
  spec.serve_duration_seconds = 600.0;
  const world::WorldReport report = world::run_world(spec);
  ASSERT_TRUE(report.served);
  EXPECT_GT(report.serve.completed, 0u);
  // The pretraining campaign ran alongside on the carved-down cluster.
  EXPECT_GT(report.replay.jobs.size(), 0u);
  EXPECT_GT(report.replay.makespan, 0.0);
  EXPECT_GT(report.busy_fraction, 0.0);
}

TEST(Scenario, RegistryServesPresetsAndCustomSpecs) {
  auto seren = world::find_scenario("seren");
  ASSERT_TRUE(seren.has_value());
  EXPECT_EQ(seren->cluster, "seren");
  EXPECT_EQ(seren->scale, 8.0);
  ASSERT_TRUE(world::find_scenario("kalos").has_value());
  EXPECT_FALSE(world::find_scenario("nonesuch").has_value());

  world::ScenarioSpec custom = world::kalos_scenario();
  custom.name = "kalos-quiet";
  custom.inject_failures = false;
  world::register_scenario(custom);
  auto found = world::find_scenario("kalos-quiet");
  ASSERT_TRUE(found.has_value());
  EXPECT_FALSE(found->inject_failures);
  const auto names = world::scenario_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "kalos-quiet"), names.end());
}

TEST(Scenario, FractionalScaleMatchesDivisorForm) {
  // 0.125 of the trace and 1/8-scale are the same replay.
  const auto setup = core::seren_setup();
  const auto divisor = core::run_six_month_replay(setup, 40.0, 900.0, 7);
  const auto fraction = core::run_six_month_replay(setup, 0.025, 900.0, 7);
  ASSERT_EQ(divisor.replay.jobs.size(), fraction.replay.jobs.size());
  EXPECT_EQ(divisor.replay.makespan, fraction.replay.makespan);
  EXPECT_EQ(divisor.busy_fraction, fraction.busy_fraction);
}

TEST(Scenario, NonPositiveScaleRejected) {
  const auto setup = core::seren_setup();
  EXPECT_THROW(core::run_six_month_replay(setup, 0.0), common::CheckError);
  EXPECT_THROW(core::run_six_month_replay(setup, -2.0), common::CheckError);
}

TEST(Scenario, ParserRejectsNonFiniteNumbers) {
  // std::stod accepts "nan" and "inf"; the parser must not, for every double
  // field — NaN even slips through `x > 0` range checks (comparison false).
  std::string error;
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":nan}", &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos);
  EXPECT_NE(error.find("scale"), std::string::npos);
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":inf}", &error));
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":-inf}", &error));
  EXPECT_FALSE(
      world::scenario_from_json("{\"failure_interval_scale\":nan}", &error));
  EXPECT_FALSE(
      world::scenario_from_json("{\"ckpt_interval_seconds\":inf}", &error));
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":1,\"serve_rps\":nan}", &error));
  EXPECT_NE(error.find("serve_rps"), std::string::npos);
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":1,\"serve_slo_ttft_seconds\":inf}", &error));
}

TEST(Scenario, ParserSuggestsAbsoluteValueForDroppedSigns) {
  std::string error;
  EXPECT_FALSE(world::scenario_from_json("{\"scale\":-8}", &error));
  EXPECT_NE(error.find("did you mean 8"), std::string::npos);
  EXPECT_FALSE(
      world::scenario_from_json("{\"ckpt_interval_seconds\":-1800}", &error));
  EXPECT_NE(error.find("did you mean 1800"), std::string::npos);
  EXPECT_FALSE(world::scenario_from_json(
      "{\"serve_replicas\":1,\"serve_rps\":-20}", &error));
  EXPECT_NE(error.find("did you mean 20"), std::string::npos);
}

TEST(World, SnapshotFileRoundTripAndSpecRecovery) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 60.0;
  spec.fleet_samples = 100;
  spec.seed = 31337;
  world::World a(spec);
  a.run_until(12 * common::kHour);
  const std::string path = ::testing::TempDir() + "acme_world_snap.bin";
  a.save_file(path);

  // A tool holding only the file recovers the spec, then restores into a
  // world built from it.
  const world::ScenarioSpec recovered = world::snapshot_spec(path);
  EXPECT_EQ(recovered.to_json(), spec.to_json());
  world::World b(recovered);
  b.restore_file(path);
  a.run_until(std::numeric_limits<double>::infinity());
  b.run_until(std::numeric_limits<double>::infinity());
  EXPECT_EQ(a.finish().digest(), b.finish().digest());

  // Restoring a mismatched spec fails loudly.
  world::ScenarioSpec other = spec;
  other.seed = 31338;
  world::World c(other);
  EXPECT_THROW(c.restore_file(path), common::CheckError);
  std::remove(path.c_str());
}

TEST(World, BranchFutureDivergesOnlyTheFuture) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 60.0;
  spec.fleet_samples = 0;
  spec.seed = 424242;
  world::World parent(spec);
  parent.run_until(12 * common::kHour);
  snap::SnapshotWriter w;
  parent.save(w);
  const std::string bytes = w.finish();

  const auto run_branch = [&](const char* label) {
    snap::SnapshotReader r{std::string(bytes)};
    world::World child(spec);
    child.restore(r);
    if (label != nullptr) child.branch_future(label);
    child.run_until(std::numeric_limits<double>::infinity());
    return child.finish();
  };
  const world::WorldReport replayed = run_branch(nullptr);
  const world::WorldReport branch_a = run_branch("what-if-a");
  const world::WorldReport branch_a2 = run_branch("what-if-a");
  const world::WorldReport branch_b = run_branch("what-if-b");
  // No label replays the parent's future; same label is reproducible;
  // different labels diverge (different failure arrivals => different
  // digests).
  parent.run_until(std::numeric_limits<double>::infinity());
  EXPECT_EQ(parent.finish().digest(), replayed.digest());
  EXPECT_EQ(branch_a.digest(), branch_a2.digest());
  EXPECT_NE(branch_a.digest(), replayed.digest());
  EXPECT_NE(branch_a.digest(), branch_b.digest());
}

TEST(World, IntegratedRunInjectsAndRecovers) {
  const auto& report = failing_report();
  EXPECT_EQ(report.replay.unstarted, 0u);
  EXPECT_GT(report.failures_injected, 0);
  EXPECT_EQ(report.replay.failure_kills, report.failures_injected);
  EXPECT_GT(report.lost_work_gpu_seconds, 0.0);
  EXPECT_GT(report.recovery_stall_seconds, 0.0);
  EXPECT_GT(report.goodput, 0.5);
  EXPECT_LT(report.goodput, 1.0);
  EXPECT_GT(report.busy_fraction, 0.3);
  // Fleet telemetry came from the same replay's occupancy.
  EXPECT_EQ(report.fleet.gpu_util.count(), 2000u);
}

TEST(World, QuietRunIsCleanBaseline) {
  const auto& report = quiet_report();
  EXPECT_EQ(report.failures_injected, 0);
  EXPECT_EQ(report.replay.failure_kills, 0);
  EXPECT_EQ(report.lost_work_gpu_seconds, 0.0);
  EXPECT_EQ(report.goodput, 1.0);
}

TEST(World, FailuresStretchTheReplay) {
  // Killed jobs re-run lost work and pay recovery stalls on the same
  // engine, so the integrated makespan can only grow.
  EXPECT_GT(failing_report().replay.makespan, quiet_report().replay.makespan);
}

// The acceptance scenario, pinned down deterministically at the scheduler
// layer: a pretraining campaign holds most of the cluster while an
// evaluation batch queues behind it. A mid-run failure (kill_job on the
// shared spine) rolls the campaign back and stalls it through recovery —
// and the queued evaluation trials start measurably later than in the
// failure-free run of the identical trace.
TEST(World, KilledPretrainDelaysQueuedEvaluations) {
  const cluster::ClusterSpec spec = cluster::seren_spec();
  sched::SchedulerConfig config;
  // Thin reservation: the campaign overflows onto the shared partition,
  // where the evaluation batch must wait behind it.
  config.pretrain_reservation = 0.05;
  config.eval_cap_fraction = 1.0;
  trace::Trace input;
  trace::JobRecord campaign;
  campaign.type = trace::WorkloadType::kPretrain;
  campaign.gpus = 2048;
  campaign.submit_time = 0;
  campaign.duration = 10000;
  campaign.set_model_tag("llm-123b");
  input.push_back(campaign);
  for (int i = 0; i < 8; ++i) {
    trace::JobRecord eval;
    eval.type = trace::WorkloadType::kEvaluation;
    eval.gpus = 512;  // more than the 240 GPUs the campaign leaves free
    eval.submit_time = 100;
    eval.duration = 300;
    input.push_back(eval);
  }

  const auto eval_delay_mean = [](const sched::ReplayResult& result) {
    common::SampleStats stats;
    for (const auto& job : result.jobs)
      if (job.type == trace::WorkloadType::kEvaluation)
        stats.add(job.queue_delay);
    return stats.mean();
  };

  sim::Engine clean_engine;
  sched::SchedulerReplay clean(clean_engine, spec, config);
  const auto clean_result = clean.replay(input);

  sim::Engine faulty_engine;
  sched::SchedulerReplay faulty(faulty_engine, spec, config);
  faulty.begin_replay(input);
  faulty_engine.schedule_at(5000.0, [&faulty] {
    ASSERT_EQ(faulty.running_pretrain_jobs().size(), 1u);
    const std::size_t victim = faulty.running_pretrain_jobs().front();
    EXPECT_EQ(faulty.active_job(victim).model_tag(), "llm-123b");
    faulty.kill_job(victim, /*rollback_cap_seconds=*/1800,
                    /*restart_overhead_seconds=*/600);
  });
  faulty_engine.run();
  const auto faulty_result = faulty.finish_replay();

  EXPECT_EQ(faulty_result.failure_kills, 1);
  // Rollback loses min(progress, cap) * gpus of work.
  EXPECT_NEAR(faulty_result.failure_lost_gpu_seconds, 1800.0 * 2048, 1.0);
  EXPECT_NEAR(faulty_result.failure_restart_seconds, 600.0, 1e-9);
  // The campaign re-runs 1800 s of lost work plus the 600 s stall, and every
  // queued evaluation trial inherits that delay through the shared queues.
  EXPECT_GT(eval_delay_mean(faulty_result), eval_delay_mean(clean_result) + 2000);
  EXPECT_GT(faulty_result.makespan, clean_result.makespan + 2000);
}

// The evaluation coordinator on an injected spine must reproduce its legacy
// private-engine run when nothing else shares the engine.
TEST(World, CoordinatorLaunchMatchesLegacyRun) {
  const auto config = evalsched::TrialCoordinator::coordinator_config(2);
  evalsched::TrialCoordinator coordinator(config);
  const auto legacy = coordinator.run();

  sim::Engine engine;
  storage::StorageNetwork net(engine, config.storage);
  evalsched::EvalReport launched;
  bool done = false;
  coordinator.launch(engine, net, evalsched::dataset_suite(),
                     [&](const evalsched::EvalReport& report) {
                       launched = report;
                       done = true;
                     });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_DOUBLE_EQ(launched.makespan, legacy.makespan);
  EXPECT_DOUBLE_EQ(launched.gpu_busy_seconds, legacy.gpu_busy_seconds);
  EXPECT_EQ(launched.trials, legacy.trials);
}

TEST(World, McReplicasAreIndependent)  {
  mc::ReplicationOptions options;
  options.replicas = 2;
  options.threads = 1;
  world::ScenarioSpec spec = fast_seren(true);
  spec.scale = 80.0;
  const auto run = world::run_world_mc(spec, options);
  ASSERT_EQ(run.results.size(), 2u);
  // Different replica seeds produce different traces.
  EXPECT_NE(run.results[0].replay.makespan, run.results[1].replay.makespan);
  for (const auto& report : run.results) EXPECT_EQ(report.replay.unstarted, 0u);
}

}  // namespace
}  // namespace acme
