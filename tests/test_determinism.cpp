// Golden determinism: with self-observability enabled, the metric registry
// snapshot is a pure function of the simulated work — byte-identical across
// repeated runs with the same seed AND across mc worker-pool thread counts.
// This is the contract that keeps --metrics-out diffable between runs: all
// metric values are integer-atomic or fixed-point, and wall-clock readings
// go only to the tracer, never to metrics.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/digest.h"
#include "core/acme.h"
#include "snap/format.h"

namespace acme {
namespace {

struct Snapshot {
  std::string prom;
  std::string json;
  std::uint64_t digest;
};

// Runs the (downscaled) Seren six-month replay through the mc engine with
// obs enabled and returns the registry bytes. Resets obs state afterwards so
// tests can call it repeatedly.
Snapshot replay_snapshot(std::size_t threads) {
  obs::reset();
  obs::set_enabled(true);
  mc::ReplicationOptions options;
  options.replicas = 4;
  options.threads = threads;
  options.seed = 20240;
  const auto run =
      core::run_six_month_replay_mc(core::seren_setup(), options, 40.0);
  EXPECT_EQ(run.results.size(), 4u);
  Snapshot snap;
  snap.prom = obs::metrics().prometheus_text();
  snap.json = obs::metrics().json_snapshot();
  snap.digest = common::fnv1a(snap.prom);
  obs::set_enabled(false);
  obs::reset();
  return snap;
}

TEST(Determinism, RepeatedReplaySnapshotsAreByteIdentical) {
  const Snapshot a = replay_snapshot(1);
  const Snapshot b = replay_snapshot(1);
  EXPECT_EQ(a.digest, b.digest) << "FNV-1a digests differ:\n"
                                << common::fnv1a_hex(a.digest) << " vs "
                                << common::fnv1a_hex(b.digest);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.json, b.json);
  EXPECT_FALSE(a.prom.empty());
}

TEST(Determinism, SnapshotIsIndependentOfMcThreadCount) {
  const Snapshot serial = replay_snapshot(1);
  const Snapshot pooled = replay_snapshot(4);
  EXPECT_EQ(serial.prom, pooled.prom)
      << "registry bytes depend on worker-pool width";
  EXPECT_EQ(serial.json, pooled.json);
  EXPECT_EQ(serial.digest, pooled.digest);
}

// Same contract for the integrated world: a scenario run — trace synthesis,
// shared-engine replay, live failure injection, recovery pricing, fleet
// sampling — leaves byte-identical registry bytes across repeats and across
// mc worker-pool widths.
Snapshot world_snapshot(std::size_t threads) {
  obs::reset();
  obs::set_enabled(true);
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 2000;
  mc::ReplicationOptions options;
  options.replicas = 4;
  options.threads = threads;
  options.seed = 20241;
  const auto run = world::run_world_mc(spec, options);
  EXPECT_EQ(run.results.size(), 4u);
  for (const auto& report : run.results) EXPECT_GT(report.failures_injected, 0);
  Snapshot snap;
  snap.prom = obs::metrics().prometheus_text();
  snap.json = obs::metrics().json_snapshot();
  snap.digest = common::fnv1a(snap.prom);
  obs::set_enabled(false);
  obs::reset();
  return snap;
}

TEST(Determinism, WorldRunsAreByteIdenticalAcrossRepeatsAndThreads) {
  const Snapshot a = world_snapshot(1);
  const Snapshot b = world_snapshot(1);
  const Snapshot pooled = world_snapshot(4);
  EXPECT_EQ(a.prom, b.prom);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.prom, pooled.prom)
      << "world registry bytes depend on worker-pool width";
  EXPECT_EQ(a.json, pooled.json);
  EXPECT_EQ(a.digest, pooled.digest);
  // The failure chain actually exercised the injection counters.
  EXPECT_NE(a.prom.find("acme_world_failures_total"), std::string::npos);
  EXPECT_NE(a.prom.find("acme_sched_failure_kills_total"), std::string::npos);
}

// And for the serving world: a co-located scenario (serve fleet + pretrain
// replay + failure routing on one spine) must leave byte-identical registry
// bytes AND a byte-identical FleetReport digest across repeats, seeds only
// changing both together, and mc pool widths changing neither.
struct ServeSnapshot {
  Snapshot obs;
  std::uint64_t fleet_digest = 0;
};

ServeSnapshot serve_snapshot(std::size_t threads, std::uint64_t seed) {
  obs::reset();
  obs::set_enabled(true);
  world::ScenarioSpec spec = world::colocated_seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  spec.serve_replicas = 2;
  spec.serve_rps = 20.0;
  spec.serve_duration_seconds = 900.0;
  mc::ReplicationOptions options;
  options.replicas = 4;
  options.threads = threads;
  options.seed = seed;
  const auto run = world::run_world_mc(spec, options);
  EXPECT_EQ(run.results.size(), 4u);
  ServeSnapshot snap;
  for (const auto& report : run.results) {
    EXPECT_TRUE(report.served);
    EXPECT_GT(report.serve.offered, 0u);
    // Fold replica digests so any divergence in any replica shows up.
    snap.fleet_digest ^= report.serve.digest();
  }
  snap.obs.prom = obs::metrics().prometheus_text();
  snap.obs.json = obs::metrics().json_snapshot();
  snap.obs.digest = common::fnv1a(snap.obs.prom);
  obs::set_enabled(false);
  obs::reset();
  return snap;
}

TEST(Determinism, ServeWorldIsByteIdenticalAcrossRepeatsAndThreads) {
  const ServeSnapshot a = serve_snapshot(1, 20242);
  const ServeSnapshot b = serve_snapshot(1, 20242);
  const ServeSnapshot pooled = serve_snapshot(4, 20242);
  const ServeSnapshot reseeded = serve_snapshot(1, 20243);
  EXPECT_EQ(a.obs.prom, b.obs.prom);
  EXPECT_EQ(a.obs.json, b.obs.json);
  EXPECT_EQ(a.fleet_digest, b.fleet_digest);
  EXPECT_EQ(a.obs.prom, pooled.obs.prom)
      << "serve registry bytes depend on worker-pool width";
  EXPECT_EQ(a.fleet_digest, pooled.fleet_digest);
  EXPECT_NE(a.fleet_digest, reseeded.fleet_digest);
  EXPECT_NE(a.obs.digest, reseeded.obs.digest);
  // The serve instrumentation actually fired.
  EXPECT_NE(a.obs.prom.find("acme_serve_requests_offered_total"),
            std::string::npos);
  EXPECT_NE(a.obs.prom.find("acme_serve_epochs_total"), std::string::npos);
}

// --- Snapshot determinism oracle (DESIGN.md §12) ---
//
// Saving a world at a mid-run quiescent point, restoring into a fresh World
// and running to completion must produce a WorldReport digest byte-identical
// to the uninterrupted run; and the XOR-fold of per-replica digests from
// run_world_mc must match at 1 and 4 pool threads AND match replicas driven
// manually through the save/restore path (which also pins the replica seed
// derivation: Rng(seed).fork("replica-<i>").next()).

std::uint64_t interrupted_digest(const world::ScenarioSpec& spec, double mid) {
  world::World a(spec);
  a.run_until(mid);
  snap::SnapshotWriter w;
  a.save(w);
  snap::SnapshotReader r(w.finish());
  world::World b(spec);
  b.restore(r);
  b.run_until(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(b.done());
  return b.finish().digest();
}

std::uint64_t mc_digest_fold(const world::ScenarioSpec& spec,
                             std::uint64_t seed, std::size_t threads) {
  mc::ReplicationOptions options;
  options.replicas = 2;
  options.threads = threads;
  options.seed = seed;
  const auto run = world::run_world_mc(spec, options);
  std::uint64_t fold = 0;
  for (const auto& report : run.results) fold ^= report.digest();
  return fold;
}

void expect_snapshot_oracle(const world::ScenarioSpec& spec,
                            std::uint64_t seed) {
  const std::uint64_t serial = mc_digest_fold(spec, seed, 1);
  const std::uint64_t pooled = mc_digest_fold(spec, seed, 4);
  EXPECT_EQ(serial, pooled) << spec.name
                            << ": digests depend on worker-pool width";

  const common::Rng root(seed);
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    common::Rng rng = root.fork("replica-" + std::to_string(i));
    world::ScenarioSpec replica_spec = spec;
    replica_spec.seed = rng.next();
    const world::WorldReport straight = world::World(replica_spec).run();
    const std::uint64_t straight_digest = straight.digest();
    // Midpoint of whatever timeline this scenario actually has.
    double mid = straight.replay.makespan * 0.5;
    if (spec.serving()) mid = std::max(mid, spec.serve_duration_seconds * 0.5);
    const std::uint64_t resumed = interrupted_digest(replica_spec, mid);
    EXPECT_EQ(straight_digest, resumed)
        << spec.name << " replica " << i
        << ": snapshot-at-midpoint diverged from the uninterrupted run";
    fold ^= resumed;
  }
  EXPECT_EQ(fold, serial)
      << spec.name << ": manual replica derivation diverged from run_world_mc";
}

TEST(Determinism, SnapshotOracleSeren) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  expect_snapshot_oracle(spec, 20244);
}

TEST(Determinism, SnapshotOracleColocatedSeren) {
  world::ScenarioSpec spec = world::colocated_seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  spec.serve_replicas = 2;
  spec.serve_rps = 20.0;
  spec.serve_duration_seconds = 900.0;
  expect_snapshot_oracle(spec, 20245);
}

TEST(Determinism, SnapshotOracleServeSeren) {
  world::ScenarioSpec spec = world::serve_seren_scenario();
  spec.serve_rps = 20.0;
  spec.serve_duration_seconds = 900.0;
  expect_snapshot_oracle(spec, 20246);
}

// Hyperscale preset: the domain-outage chain (cordons, correlated kills,
// repair re-arm) and the tiered fabric must survive snapshot-at-midpoint and
// any worker width exactly like the flat presets.
TEST(Determinism, SnapshotOracleHyperscaleSmall) {
  world::ScenarioSpec spec = world::hyperscale_small_scenario();
  spec.fleet_samples = 500;
  expect_snapshot_oracle(spec, 20247);
}

// --- Parallel window runtime determinism matrix (DESIGN.md §13) ---
//
// The tentpole invariant: a world's report digest is byte-identical at any
// window-drain pool width, for every scenario preset, straight or through a
// snapshot-at-midpoint → restore → resume — and composing the window workers
// under mc replication changes nothing either. Workers only move WHEN a
// partition executes, never what it commits.

std::uint64_t parallel_digest(const world::ScenarioSpec& spec,
                              std::size_t workers) {
  if (workers == 1) return world::World(spec).run().digest();
  task::Pool pool(workers);
  world::World w(spec);
  return w.run_parallel(pool).digest();
}

std::uint64_t parallel_resumed_digest(const world::ScenarioSpec& spec,
                                      double mid, std::size_t workers) {
  world::World a(spec);
  a.run_until(mid);
  snap::SnapshotWriter w;
  a.save(w);
  snap::SnapshotReader r(w.finish());
  world::World b(spec);
  b.restore(r);
  if (workers == 1) {
    b.run_until(std::numeric_limits<double>::infinity());
    return b.finish().digest();
  }
  task::Pool pool(workers);
  return b.run_parallel(pool).digest();
}

void expect_workers_matrix(const world::ScenarioSpec& spec) {
  const world::WorldReport straight = world::World(spec).run();
  const std::uint64_t oracle = straight.digest();
  double mid = straight.replay.makespan * 0.5;
  if (spec.serving()) mid = std::max(mid, spec.serve_duration_seconds * 0.5);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(parallel_digest(spec, workers), oracle)
        << spec.name << ": digest depends on window-drain width (workers="
        << workers << ")";
    EXPECT_EQ(parallel_resumed_digest(spec, mid, workers), oracle)
        << spec.name << ": snapshot->restore->parallel-resume diverged "
        << "(workers=" << workers << ")";
  }
}

TEST(Determinism, WorkersMatrixSeren) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  expect_workers_matrix(spec);
}

TEST(Determinism, WorkersMatrixKalos) {
  world::ScenarioSpec spec = world::kalos_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  expect_workers_matrix(spec);
}

TEST(Determinism, WorkersMatrixColocatedSeren) {
  world::ScenarioSpec spec = world::colocated_seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  spec.serve_replicas = 2;
  spec.serve_rps = 20.0;
  spec.serve_duration_seconds = 900.0;
  expect_workers_matrix(spec);
}

TEST(Determinism, WorkersMatrixServeSeren) {
  world::ScenarioSpec spec = world::serve_seren_scenario();
  spec.serve_rps = 20.0;
  spec.serve_duration_seconds = 900.0;
  expect_workers_matrix(spec);
}

TEST(Determinism, WorkersMatrixHyperscaleSmall) {
  world::ScenarioSpec spec = world::hyperscale_small_scenario();
  spec.fleet_samples = 500;
  expect_workers_matrix(spec);
}

TEST(Determinism, McComposedWithWindowWorkersMatchesSerial) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  const auto fold = [&](std::size_t threads, std::size_t workers) {
    mc::ReplicationOptions options;
    options.replicas = 2;
    options.threads = threads;
    options.workers = workers;
    options.seed = 20247;
    const auto run = world::run_world_mc(spec, options);
    std::uint64_t digest = 0;
    for (const auto& report : run.results) digest ^= report.digest();
    return digest;
  };
  const std::uint64_t serial = fold(1, 1);
  // threads x workers composition (effective_workers may clamp on small
  // boxes; the digest must not notice either way)...
  EXPECT_EQ(fold(4, 2), serial)
      << "mc(threads=4) x workers=2 diverged from serial";
  // ...and the unclamped oversubscription path (threads=1 passes the width
  // through verbatim, so this drains replicas at 8 workers on any box).
  EXPECT_EQ(fold(1, 8), serial)
      << "mc(threads=1) x workers=8 diverged from serial";
}

TEST(Determinism, FleetDigestIndependentOfWorkers) {
  world::ScenarioSpec spec = world::seren_scenario();
  spec.scale = 40.0;
  spec.fleet_samples = 500;
  world::FleetOptions serial;
  serial.groups = 3;
  serial.workers = 1;
  const world::FleetRunReport a = world::run_world_fleet(spec, serial);
  world::FleetOptions wide = serial;
  wide.workers = 8;
  const world::FleetRunReport b = world::run_world_fleet(spec, wide);
  ASSERT_EQ(a.groups.size(), 3u);
  EXPECT_EQ(a.digest(), b.digest())
      << "fleet digest depends on window-drain width";
  EXPECT_GT(b.windows.parallel_windows, 0u)
      << "3 groups at 8 workers never actually overlapped";

  // A single-group fleet keeps the spec verbatim: group 0's report is the
  // plain run_world report.
  world::FleetOptions solo;
  solo.groups = 1;
  solo.workers = 8;
  const world::FleetRunReport c = world::run_world_fleet(spec, solo);
  EXPECT_EQ(c.groups[0].digest(), world::run_world(spec).digest());
}

TEST(Determinism, SnapshotReflectsSimulatedWork) {
  const Snapshot snap = replay_snapshot(2);
  // The instrumented subsystems must actually have fired during the replay.
  EXPECT_NE(snap.prom.find("acme_sim_events_fired_total"), std::string::npos);
  EXPECT_NE(snap.prom.find("acme_sched_placements_total"), std::string::npos);
  EXPECT_NE(snap.prom.find("acme_mc_replicas_total"), std::string::npos);
  // And the bytes must round-trip through the Prometheus parser.
  std::string error;
  const auto samples = obs::parse_prometheus(snap.prom, &error);
  ASSERT_TRUE(samples.has_value()) << error;
  EXPECT_FALSE(samples->empty());
}

}  // namespace
}  // namespace acme
