#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "common/units.h"
#include "failure/injector.h"
#include "failure/log_synth.h"
#include "failure/taxonomy.h"

namespace acme::failure {
namespace {

using common::kMinute;

// --- Taxonomy (Table 3) ---

TEST(Taxonomy, HasAll29Rows) {
  EXPECT_EQ(failure_table().size(), 29u);
  std::set<std::string> names;
  for (const auto& s : failure_table()) names.insert(s.reason);
  EXPECT_EQ(names.size(), 29u);  // unique reasons
}

TEST(Taxonomy, CategoryCountsMatchTable3) {
  int infra = 0, framework = 0, script = 0;
  for (const auto& s : failure_table()) {
    switch (s.category) {
      case FailureCategory::kInfrastructure: ++infra; break;
      case FailureCategory::kFramework: ++framework; break;
      case FailureCategory::kScript: ++script; break;
    }
  }
  EXPECT_EQ(infra, 9);
  EXPECT_EQ(framework, 9);
  EXPECT_EQ(script, 11);
}

TEST(Taxonomy, SpotCheckPublishedNumbers) {
  const auto& nvlink = spec_for("NVLink Error");
  EXPECT_EQ(nvlink.count, 54);
  EXPECT_DOUBLE_EQ(nvlink.demand_avg, 800);
  EXPECT_DOUBLE_EQ(nvlink.ttf_median_min, 155.3);
  EXPECT_TRUE(nvlink.needs_node_detection);

  const auto& type_error = spec_for("Type Error");
  EXPECT_EQ(type_error.count, 620);
  EXPECT_EQ(type_error.category, FailureCategory::kScript);
  EXPECT_FALSE(type_error.needs_node_detection);

  EXPECT_THROW(spec_for("Fictional Error"), std::out_of_range);
}

TEST(Taxonomy, EverySpecHasSignatures) {
  for (const auto& s : failure_table()) {
    EXPECT_FALSE(s.log_signatures.empty()) << s.reason;
    EXPECT_TRUE(s.in_seren || s.in_kalos) << s.reason;
  }
}

TEST(Taxonomy, NodeDetectionOnlyForHardware) {
  for (const auto& s : failure_table()) {
    if (s.needs_node_detection) {
      EXPECT_EQ(s.category, FailureCategory::kInfrastructure) << s.reason;
    }
  }
}

TEST(Taxonomy, ClusterRestrictionsFromTable3) {
  EXPECT_FALSE(spec_for("NCCL Timeout Error").in_seren);
  EXPECT_FALSE(spec_for("Node Failure").in_kalos);
  EXPECT_FALSE(spec_for("Model Loading Error").in_seren);
}

// --- Injector ---

TEST(Injector, ReasonMixFollowsCounts) {
  FailureInjector injector(1);
  common::Rng rng(2);
  std::map<std::string, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[injector.sample(rng).spec->reason]++;
  double total_weight = 0;
  for (const auto& s : failure_table()) total_weight += s.count;
  // Type Error (620) should dominate; NCCL Remote Error (3) should be rare.
  EXPECT_NEAR(counts["Type Error"] / static_cast<double>(n),
              620.0 / total_weight, 0.02);
  EXPECT_LT(counts["NCCL Remote Error"], n / 200);
}

TEST(Injector, ClusterFilterRespected) {
  FailureInjector injector(1);
  common::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(injector.sample_for_cluster(false, rng).spec->in_seren);
    EXPECT_TRUE(injector.sample_for_cluster(true, rng).spec->in_kalos);
  }
}

TEST(Injector, PretrainPoolExcludesScriptErrors) {
  FailureInjector injector(1);
  common::Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    const auto ev = injector.sample_pretrain_failure(1024, rng);
    EXPECT_NE(ev.spec->category, FailureCategory::kScript) << ev.spec->reason;
    EXPECT_EQ(ev.gpu_demand, 1024);
  }
}

TEST(Injector, DemandSnapsToRequestShapes) {
  FailureInjector injector(1);
  common::Rng rng(5);
  const auto& spec = spec_for("NVLink Error");
  for (int i = 0; i < 2000; ++i) {
    const int d = injector.sample_demand(spec, rng);
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 2048);
    if (d > 8) {
      ASSERT_EQ(d % 8, 0) << d;
    }
  }
}

// Property sweep over Table 3 rows: sampled TTF medians/means track the
// published statistics (the lognormal fit round-trips through sampling).
class TtfFitSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(TtfFitSweep, SampledStatsMatchRow) {
  const auto& spec = spec_for(GetParam());
  FailureInjector injector(1);
  common::Rng rng(6);
  common::SampleStats ttf;
  for (int i = 0; i < 60000; ++i)
    ttf.add(injector.sample_ttf(spec, rng) / kMinute);
  EXPECT_NEAR(ttf.median() / spec.ttf_median_min, 1.0, 0.08);
  const double expected_mean = std::max(spec.ttf_avg_min, spec.ttf_median_min);
  // Sample means of heavy-tailed lognormals converge slowly; widen the band
  // as the mean/median ratio (i.e. sigma) grows.
  const double tolerance = expected_mean / spec.ttf_median_min > 20 ? 0.6 : 0.25;
  EXPECT_NEAR(ttf.mean() / expected_mean, 1.0, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Table3Rows, TtfFitSweep,
                         ::testing::Values("NVLink Error", "CUDA Error",
                                           "ECC Error", "Connection Error",
                                           "Assertion Error", "File Not Found Error",
                                           "Out of Memory Error"));

// --- Log synthesizer ---

TEST(LogSynth, FailedRunContainsRootSignature) {
  LogSynthesizer synth;
  common::Rng rng(7);
  for (const auto& spec : failure_table()) {
    const auto log = synth.failed_run(spec, rng);
    EXPECT_EQ(log.root_cause, spec.reason);
    bool found = false;
    for (const auto& line : log.lines)
      if (line.find(spec.log_signatures.front()) != std::string::npos) found = true;
    EXPECT_TRUE(found) << spec.reason;
  }
}

TEST(LogSynth, ScriptErrorsFailFast) {
  LogSynthesizer synth;
  common::Rng rng(8);
  const auto script = synth.failed_run(spec_for("Type Error"), rng);
  const auto infra = synth.failed_run(spec_for("ECC Error"), rng);
  // Script failures produce far shorter logs (few training steps).
  EXPECT_LT(script.lines.size() * 5, infra.lines.size());
}

TEST(LogSynth, InfraLogsContainCollateralNoise) {
  LogSynthesizer synth;
  common::Rng rng(9);
  const auto log = synth.failed_run(spec_for("CUDA Error"), rng);
  int error_lines = 0;
  for (const auto& line : log.lines)
    if (line.find("Error") != std::string::npos ||
        line.find("WARN") != std::string::npos)
      ++error_lines;
  // Root signature lines plus collateral rank noise.
  EXPECT_GE(error_lines, 3);
}

TEST(LogSynth, HealthyRunHasNoTraceback) {
  LogSynthesizer synth;
  common::Rng rng(10);
  const auto log = synth.healthy_run(rng);
  EXPECT_TRUE(log.root_cause.empty());
  for (const auto& line : log.lines)
    EXPECT_EQ(line.find("Traceback"), std::string::npos);
}

TEST(LogSynth, TrainingMetricsDominateHealthyLogs) {
  LogSynthesizer synth;
  common::Rng rng(11);
  const auto log = synth.healthy_run(rng);
  std::size_t steps = 0;
  for (const auto& line : log.lines)
    if (line.rfind("step=", 0) == 0) ++steps;
  EXPECT_GE(steps, 390u);
}


TEST(LogSynth, DeterministicForIdenticalRngState) {
  LogSynthesizer synth;
  common::Rng a(123), b(123);
  const auto la = synth.failed_run(spec_for("CUDA Error"), a);
  const auto lb = synth.failed_run(spec_for("CUDA Error"), b);
  ASSERT_EQ(la.lines.size(), lb.lines.size());
  for (std::size_t i = 0; i < la.lines.size(); ++i) EXPECT_EQ(la.lines[i], lb.lines[i]);
}

TEST(Injector, TtrNeverNegative) {
  FailureInjector injector(1);
  common::Rng rng(12);
  for (const auto& spec : failure_table())
    for (int i = 0; i < 200; ++i) ASSERT_GE(injector.sample_ttr(spec, rng), 0.0);
}

}  // namespace
}  // namespace acme::failure
