// Tests for the presentation substrate: tables, CSV, units, ASCII plots.
#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_plot.h"
#include "common/rng.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/units.h"

namespace acme::common {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Reason", "Num", "Total%"});
  t.add_row({"NVLink Error", "54", "30.25%"});
  t.add_row({"CUDA Error", "21", "15.77%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Reason"), std::string::npos);
  EXPECT_NE(out.find("NVLink Error"), std::string::npos);
  EXPECT_NE(out.find("30.25%"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.2531), "25.3%");
  EXPECT_EQ(Table::integer(41.7), "42");
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Csv, RoundTripWithQuoting) {
  std::stringstream buf;
  CsvWriter writer(buf);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  writer.write_row({"1", "2", "3", "4"});

  CsvReader reader(buf);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "with,comma");
  EXPECT_EQ(row[2], "with\"quote");
  EXPECT_EQ(row[3], "multi\nline");
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row[0], "1");
  EXPECT_FALSE(reader.read_row(row));
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, HandlesCrlf) {
  std::stringstream buf("a,b\r\nc,d\r\n");
  CsvReader reader(buf);
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row[1], "b");
  ASSERT_TRUE(reader.read_row(row));
  EXPECT_EQ(row[0], "c");
}

TEST(Units, DurationFormatting) {
  EXPECT_EQ(format_duration(30.0), "30.0 s");
  EXPECT_EQ(format_duration(120.0), "2.0 min");
  EXPECT_EQ(format_duration(7200.0), "2.0 h");
  EXPECT_EQ(format_duration(2 * kDay), "2.0 d");
}

TEST(Units, ByteFormatting) {
  EXPECT_EQ(format_bytes(500), "500 B");
  EXPECT_EQ(format_bytes(2.5e6), "2.5 MB");
  EXPECT_EQ(format_bytes(60e9), "60.0 GB");
  EXPECT_EQ(format_bytes(1.74e12), "1.74 TB");
}

TEST(Units, BandwidthConversion) {
  EXPECT_DOUBLE_EQ(gbps_to_Bps(200.0), 25e9);
}

TEST(AsciiPlot, LinesContainAxesAndLegend) {
  Series s1{"seren", {1, 10, 100}, {0.1, 0.5, 0.9}};
  Series s2{"kalos", {1, 10, 100}, {0.2, 0.6, 1.0}};
  const std::string out = plot_lines({s1, s2}, 40, 10, true, "duration", "CDF");
  EXPECT_NE(out.find("seren"), std::string::npos);
  EXPECT_NE(out.find("kalos"), std::string::npos);
  EXPECT_NE(out.find("(log x)"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotIsSafe) {
  EXPECT_EQ(plot_lines({}, 40, 10, false, "", ""), "(empty plot)\n");
}

TEST(AsciiPlot, BarsScaleToMax) {
  const std::string out =
      plot_bars({{"gpu", 100.0}, {"cpu", 50.0}}, 20, "W");
  EXPECT_NE(out.find("####################"), std::string::npos);
  EXPECT_NE(out.find("W"), std::string::npos);
}

TEST(AsciiPlot, SparklineLengthAndRange) {
  std::vector<double> v(100, 0.5);
  const std::string line = sparkline(v, 20);
  EXPECT_GE(line.size(), 19u);
  EXPECT_EQ(sparkline({}, 10), "");
}


// Property: CSV round-trips arbitrary cell content, including the quoting
// corner cases, for many random tables.
class CsvFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzz, RandomTablesRoundTrip) {
  Rng rng(GetParam());
  const char alphabet[] = "abc,\"\n\r x01";
  std::vector<std::vector<std::string>> rows;
  const int n_rows = 1 + static_cast<int>(rng.uniform_int(0, 20));
  const int n_cols = 1 + static_cast<int>(rng.uniform_int(0, 6));
  for (int r = 0; r < n_rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < n_cols; ++c) {
      std::string cell;
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < len; ++i)
        cell += alphabet[rng.uniform_int(0, static_cast<std::int64_t>(sizeof(alphabet)) - 2)];
      // A bare trailing CR would be folded into the row terminator; that is
      // documented CSV behaviour, so avoid generating it.
      while (!cell.empty() && cell.back() == '\r') cell.pop_back();
      row.push_back(cell);
    }
    rows.push_back(row);
  }
  std::stringstream buf;
  CsvWriter writer(buf);
  for (const auto& row : rows) writer.write_row(row);
  CsvReader reader(buf);
  std::vector<std::string> row;
  for (const auto& expected : rows) {
    ASSERT_TRUE(reader.read_row(row));
    ASSERT_EQ(row.size(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c) EXPECT_EQ(row[c], expected[c]);
  }
  EXPECT_FALSE(reader.read_row(row));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace acme::common
