#include <gtest/gtest.h>

#include "common/rng.h"
#include "diagnosis/embedding.h"
#include "diagnosis/failure_agent.h"
#include "diagnosis/log_agent.h"
#include "diagnosis/log_template.h"
#include "diagnosis/rule_registry.h"
#include "failure/injector.h"
#include "failure/log_synth.h"

namespace acme::diagnosis {
namespace {

// --- Templates / filter rules ---

TEST(LogTemplate, NormalizesVolatileTokens) {
  EXPECT_EQ(line_template("step=412 loss=2.0131 lr=3.00e-04"), "<*> <*> <*>");
  EXPECT_EQ(line_template("rank 7: initialized process group"),
            "rank <*> initialized process group");
  EXPECT_EQ(line_template("loading tokenizer from /mnt/petrel/tok.model"),
            "loading tokenizer from <*>");
  EXPECT_EQ(line_template("flash attention enabled"), "flash attention enabled");
}

TEST(LogTemplate, SameShapeLinesCollide) {
  EXPECT_EQ(line_template("step=1 loss=2.5"), line_template("step=999 loss=1.8"));
}

TEST(FilterRules, CompressDropsOnlyMatchingLines) {
  FilterRules rules;
  rules.add(line_template("step=1 loss=2.0"));
  const std::vector<std::string> lines = {
      "step=55 loss=1.93", "Traceback (most recent call last):",
      "step=56 loss=1.92"};
  const auto out = rules.compress(lines);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "Traceback (most recent call last):");
}

// --- LogAgent (template mining with self-consistency) ---

TEST(LogAgent, MinesRoutineTemplatesFromHealthyLog) {
  failure::LogSynthesizer synth;
  common::Rng rng(1);
  const auto log = synth.healthy_run(rng);
  FilterRules rules;
  LogAgent agent;
  const auto promoted = agent.update_rules(log.lines, rules);
  EXPECT_GE(promoted.size(), 1u);
  // The training metric line is by far the most frequent: must be promoted.
  EXPECT_TRUE(rules.matches("step=12 loss=2.4 lr=3.0e-4 grad_norm=1.0 tgs=4000.0 tflops=180.0"));
}

TEST(LogAgent, CompressionFactorOnLongRuns) {
  failure::LogSynthesizer synth({.steps = 2000});
  common::Rng rng(2);
  const auto log = synth.healthy_run(rng);
  FilterRules rules;
  LogAgent agent;
  agent.update_rules(log.lines, rules);
  const auto compressed = rules.compress(log.lines);
  // Paper: hundreds of MB of metric records shrink to a handful of lines.
  EXPECT_LT(compressed.size() * 20, log.lines.size());
}

TEST(LogAgent, NeverPromotesErrorLines) {
  FilterRules rules;
  LogAgent agent;
  std::vector<std::string> segment;
  for (int i = 0; i < 60; ++i)
    segment.push_back("RuntimeError: NCCL communicator was aborted on rank " +
                      std::to_string(i));
  agent.update_rules(segment, rules);
  EXPECT_FALSE(rules.matches("RuntimeError: NCCL communicator was aborted on rank 3"));
}

TEST(LogAgent, SelfConsistencyRejectsLowSupport) {
  FilterRules rules;
  LogAgent agent({.min_support = 30, .voters = 3, .votes_required = 2});
  std::vector<std::string> segment;
  for (int i = 0; i < 5; ++i) segment.push_back("rare line variant " + std::to_string(i));
  for (int i = 0; i < 200; ++i) segment.push_back("common line " + std::to_string(i));
  agent.update_rules(segment, rules);
  EXPECT_FALSE(rules.matches("rare line variant 2"));
  EXPECT_TRUE(rules.matches("common line 7"));
}

TEST(LogAgent, ErrorHeuristicCoversCommonShapes) {
  EXPECT_TRUE(LogAgent::looks_like_error("RuntimeError: boom"));
  EXPECT_TRUE(LogAgent::looks_like_error("Traceback (most recent call last):"));
  EXPECT_TRUE(LogAgent::looks_like_error("NCCL WARN NET/IB : port down"));
  EXPECT_FALSE(LogAgent::looks_like_error("step=3 loss=2.2"));
}

// --- Embeddings / vector store ---

TEST(Embedding, IdenticalTextMaxSimilarity) {
  const auto a = embed_lines({"CUDA error: illegal memory access", "rank 3 died"});
  const auto b = embed_lines({"CUDA error: illegal memory access", "rank 9 died"});
  // Template normalization makes rank ids irrelevant.
  EXPECT_NEAR(cosine(a, b), 1.0, 1e-5);
}

TEST(Embedding, DifferentErrorsSeparate) {
  const auto cuda = embed_lines({"RuntimeError: CUDA error: an illegal memory access"});
  const auto file = embed_lines({"FileNotFoundError: [Errno 2] No such file"});
  EXPECT_LT(cosine(cuda, file), 0.6);
}

TEST(Embedding, NormalizedToUnitLength) {
  const auto e = embed_lines({"some log line with words"});
  float norm = 0;
  for (float v : e) norm += v * v;
  EXPECT_NEAR(norm, 1.0f, 1e-4f);
}

TEST(VectorStore, TopKOrderingAndLabels) {
  VectorStore store;
  store.add(embed_text("alpha beta gamma"), "A");
  store.add(embed_text("delta epsilon zeta"), "B");
  store.add(embed_text("alpha beta delta"), "C");
  const auto hits = store.query(embed_text("alpha beta gamma"), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(*hits[0].label, "A");
  EXPECT_GE(hits[0].similarity, hits[1].similarity);
}

TEST(VectorStore, VoteWeighsBySimilarity) {
  VectorStore store;
  store.add(embed_text("cuda illegal memory access"), "CUDA Error");
  store.add(embed_text("cuda illegal memory fault"), "CUDA Error");
  store.add(embed_text("no such file or directory"), "File Not Found Error");
  EXPECT_EQ(store.vote(embed_text("cuda illegal memory access encountered"), 3),
            "CUDA Error");
}

TEST(VectorStore, VoteRespectsSimilarityFloor) {
  VectorStore store;
  store.add(embed_text("completely unrelated tokens"), "X");
  EXPECT_EQ(store.vote(embed_text("qqq www eee"), 1, 0.9f), "");
}

TEST(VectorStore, EmptyStoreSafe) {
  VectorStore store;
  EXPECT_TRUE(store.query(embed_text("x"), 3).empty());
  EXPECT_EQ(store.vote(embed_text("x"), 3), "");
}

// --- FailureAgent end to end ---

std::vector<const failure::FailureSpec*> all_specs() {
  std::vector<const failure::FailureSpec*> out;
  for (const auto& s : failure::failure_table()) out.push_back(&s);
  return out;
}

TEST(FailureAgent, SeededRulesDiagnoseSyntheticLogs) {
  FailureAgent agent;
  agent.seed_rules(all_specs());
  failure::LogSynthesizer synth;
  failure::FailureInjector injector;
  common::Rng rng(3);
  int correct = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const auto event = injector.sample(rng);
    const auto log = synth.failed_run(*event.spec, rng);
    const auto d = agent.diagnose(log.lines);
    if (d.reason == log.root_cause) ++correct;
    EXPECT_EQ(d.source, "rules");
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.95);
}

TEST(FailureAgent, VerdictCarriesRecoveryMetadata) {
  FailureAgent agent;
  agent.seed_rules(all_specs());
  failure::LogSynthesizer synth;
  common::Rng rng(4);
  const auto log = synth.failed_run(failure::spec_for("NVLink Error"), rng);
  const auto d = agent.diagnose(log.lines);
  EXPECT_EQ(d.reason, "NVLink Error");
  EXPECT_TRUE(d.infrastructure);
  EXPECT_TRUE(d.needs_node_detection);
  EXPECT_NE(d.suggestion.find("cordon"), std::string::npos);

  const auto script = synth.failed_run(failure::spec_for("Type Error"), rng);
  const auto ds = agent.diagnose(script.lines);
  EXPECT_FALSE(ds.infrastructure);
  EXPECT_FALSE(ds.needs_node_detection);
}

TEST(FailureAgent, RetrievalHandlesUnseenReasonAfterIncidents) {
  // No rules at all: the agent must fall back to the vector store.
  FailureAgent agent;
  failure::LogSynthesizer synth;
  common::Rng rng(5);
  const auto& cuda = failure::spec_for("CUDA Error");
  const auto& fnf = failure::spec_for("File Not Found Error");
  for (int i = 0; i < 5; ++i) {
    agent.add_incident(synth.failed_run(cuda, rng).lines, cuda.reason);
    agent.add_incident(synth.failed_run(fnf, rng).lines, fnf.reason);
  }
  const auto probe = synth.failed_run(cuda, rng);
  const auto d = agent.diagnose(probe.lines);
  EXPECT_EQ(d.reason, "CUDA Error");
  EXPECT_EQ(d.source, "retrieval");
}

TEST(FailureAgent, UndiagnosedWhenNothingKnown) {
  FailureAgent agent;
  const auto d = agent.diagnose({"some novel error nobody has seen"});
  EXPECT_EQ(d.source, "none");
  EXPECT_TRUE(d.reason.empty());
}

TEST(FailureAgent, LearnPromotesRuleAndImprovesNextDiagnosis) {
  FailureAgent agent;  // empty rule set
  failure::LogSynthesizer synth;
  common::Rng rng(6);
  const auto& spec = failure::spec_for("Dataloader Killed");
  const auto first = synth.failed_run(spec, rng);
  EXPECT_TRUE(agent.diagnose(first.lines).reason.empty());

  const auto learned = agent.learn(first.lines, spec.reason);
  EXPECT_FALSE(learned.empty());
  EXPECT_GE(agent.rule_count(), 1u);
  EXPECT_EQ(agent.incident_count(), 1u);

  // A fresh occurrence is now diagnosed (by rules or retrieval).
  const auto second = synth.failed_run(spec, rng);
  const auto d = agent.diagnose(second.lines);
  EXPECT_EQ(d.reason, spec.reason);
}

TEST(FailureAgent, ContinuousLearningLoopConverges) {
  // Stream mixed failures with no seeded rules; learn after each. Accuracy
  // over the last quarter must far exceed the first quarter.
  FailureAgent agent;
  failure::LogSynthesizer synth;
  failure::FailureInjector injector;
  common::Rng rng(7);
  const int n = 200;
  int early_correct = 0, late_correct = 0;
  for (int i = 0; i < n; ++i) {
    const auto event = injector.sample(rng);
    const auto log = synth.failed_run(*event.spec, rng);
    const auto d = agent.diagnose(log.lines);
    const bool ok = d.reason == log.root_cause;
    if (i < n / 4 && ok) ++early_correct;
    if (i >= 3 * n / 4 && ok) ++late_correct;
    agent.learn(log.lines, log.root_cause);
  }
  EXPECT_GT(late_correct, early_correct + 10);
  EXPECT_GT(late_correct, (n / 4) * 7 / 10);
}


// --- FilterRuleRegistry: rule reuse across repetitive tasks ---

TEST(RuleRegistry, ReusesRulesAcrossResubmissions) {
  FilterRuleRegistry registry;
  failure::LogSynthesizer synth;
  common::Rng rng(8);
  const auto first = synth.healthy_run(rng);
  const auto again = synth.healthy_run(rng);
  registry.compress("llm-123b", first.lines);
  EXPECT_EQ(registry.misses(), 1u);
  const auto compressed = registry.compress("llm-123b", again.lines);
  EXPECT_EQ(registry.hits(), 1u);
  EXPECT_EQ(registry.signatures(), 1u);
  EXPECT_LT(compressed.size() * 5, again.lines.size());
}

TEST(RuleRegistry, SignaturesAreIsolated) {
  FilterRuleRegistry registry;
  failure::LogSynthesizer synth;
  common::Rng rng(9);
  registry.compress("llm-123b", synth.healthy_run(rng).lines);
  registry.compress("llm-7b", synth.healthy_run(rng).lines);
  EXPECT_EQ(registry.signatures(), 2u);
  EXPECT_EQ(registry.misses(), 2u);
  EXPECT_NE(registry.rules_for("llm-123b"), nullptr);
  EXPECT_EQ(registry.rules_for("unknown"), nullptr);
}

TEST(RuleRegistry, RulesKeepRefining) {
  FilterRuleRegistry registry;
  failure::LogSynthesizer synth;
  common::Rng rng(10);
  registry.compress("m", synth.healthy_run(rng).lines);
  const std::size_t before = registry.rules_for("m")->size();
  // A new routine pattern appears in a resubmission.
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i)
    lines.push_back("new-metric epoch=" + std::to_string(i) + " ppl=12.5");
  registry.compress("m", lines);
  EXPECT_GT(registry.rules_for("m")->size(), before);
}

}  // namespace
}  // namespace acme::diagnosis
