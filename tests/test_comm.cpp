#include <gtest/gtest.h>

#include "comm/collective.h"
#include "comm/topology.h"
#include "common/check.h"

namespace acme::comm {
namespace {

constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * kMiB;

CollectiveModel kalos_model() { return CollectiveModel(kalos_fabric()); }

// --- Fabric topology ---

TEST(FabricTopology, DerivedFromClusterSpecs) {
  const FabricConfig seren = seren_fabric();
  const FabricConfig kalos = kalos_fabric();
  // Seren: one HDR HCA shared with storage; Kalos: four dedicated ones.
  EXPECT_TRUE(seren.nic_shared_with_storage);
  EXPECT_FALSE(kalos.nic_shared_with_storage);
  EXPECT_EQ(seren.compute_nics, 1);
  EXPECT_EQ(kalos.compute_nics, 4);
  FabricTopology st(seren), kt(kalos);
  EXPECT_GT(kt.node_nic_bytes_per_sec(0), 4.0 * st.node_nic_bytes_per_sec(0));
  // NVLink islands are identical across the two clusters.
  EXPECT_DOUBLE_EQ(st.nvlink_bytes_per_sec(0), kt.nvlink_bytes_per_sec(0));
}

TEST(FabricTopology, NodesForPlacement) {
  FabricTopology topo(kalos_fabric());
  EXPECT_EQ(topo.nodes_for(8, 0), 1);    // packed: one full node
  EXPECT_EQ(topo.nodes_for(64, 0), 8);
  EXPECT_EQ(topo.nodes_for(64, 1), 64);  // one rank per node (dp rings)
  EXPECT_EQ(topo.nodes_for(9, 0), 2);    // ceiling
}

TEST(FabricTopology, LinkScaleHooks) {
  FabricTopology topo(kalos_fabric());
  const double healthy = topo.node_nic_bytes_per_sec(3);
  topo.set_link_scale(3, 0.5);
  EXPECT_DOUBLE_EQ(topo.node_nic_bytes_per_sec(3), healthy * 0.5);
  EXPECT_DOUBLE_EQ(topo.min_link_scale(0, 8), 0.5);
  EXPECT_DOUBLE_EQ(topo.min_link_scale(4, 8), 1.0);  // span excludes node 3
  topo.set_link_scale(3, 1.0);  // back to healthy
  EXPECT_DOUBLE_EQ(topo.node_nic_bytes_per_sec(3), healthy);
  topo.set_link_scale(1, 0.25);
  topo.clear_link_scales();
  EXPECT_DOUBLE_EQ(topo.min_link_scale(0, 64), 1.0);
  EXPECT_THROW(topo.set_link_scale(0, 0.0), common::CheckError);
  EXPECT_THROW(topo.set_link_scale(0, -1.0), common::CheckError);
}

// --- Collective cost models ---

TEST(Collective, RingAllReduceMonotoneInMessageSize) {
  const auto model = kalos_model();
  World w;
  w.gpus = 64;
  double prev = 0;
  for (double bytes : {1 * kMiB, 8 * kMiB, 64 * kMiB, 512 * kMiB, 4 * kGiB}) {
    const double t = model.all_reduce(w, bytes).seconds();
    EXPECT_GT(t, prev) << "bytes=" << bytes;
    prev = t;
  }
}

TEST(Collective, RingAllReduceMonotoneInWorldSize) {
  const auto model = kalos_model();
  const double bytes = 256 * kMiB;
  double prev = 0;
  for (int gpus : {2, 4, 8, 16, 32, 64, 128, 256}) {
    World w;
    w.gpus = gpus;
    const double t = model.all_reduce(w, bytes).seconds();
    EXPECT_GT(t, prev) << "gpus=" << gpus;
    prev = t;
  }
}

TEST(Collective, CrossingNodeBoundaryIsExpensive) {
  const auto model = kalos_model();
  World intra, inter;
  intra.gpus = 8;
  inter.gpus = 16;
  const double bytes = 1 * kGiB;
  // Going from an NVLink island to a two-node IB world costs far more than
  // the (p-1)/p traffic growth alone would.
  EXPECT_GT(model.all_reduce(inter, bytes).seconds(),
            2.0 * model.all_reduce(intra, bytes).seconds());
}

TEST(Collective, HierarchicalAllGatherBeatsFlatRingMultiNode) {
  const auto model = kalos_model();
  World w;
  w.gpus = 64;  // 8 Kalos nodes
  const double bytes = 1 * kGiB;
  const auto flat = model.all_gather(w, bytes, Algorithm::kRing);
  const auto hier = model.all_gather(w, bytes, Algorithm::kHierarchical);
  EXPECT_LT(hier.seconds(), flat.seconds());
  // Single-node worlds have no inter-node stage; hierarchical degenerates to
  // the flat ring.
  World island;
  island.gpus = 8;
  EXPECT_DOUBLE_EQ(model.all_gather(island, bytes, Algorithm::kHierarchical).seconds(),
                   model.all_gather(island, bytes, Algorithm::kRing).seconds());
}

TEST(Collective, ReduceScatterMirrorsAllGather) {
  const auto model = kalos_model();
  World w;
  w.gpus = 64;
  for (auto alg : {Algorithm::kRing, Algorithm::kHierarchical}) {
    EXPECT_DOUBLE_EQ(model.reduce_scatter(w, kGiB, alg).seconds(),
                     model.all_gather(w, kGiB, alg).seconds());
  }
}

TEST(Collective, TreeWinsTinyMessagesRingWinsLarge) {
  const auto model = kalos_model();
  World w;
  w.gpus = 128;
  const double tiny = 8 * 1024.0;
  EXPECT_LT(model.all_reduce(w, tiny, Algorithm::kTree).seconds(),
            model.all_reduce(w, tiny, Algorithm::kRing).seconds());
  EXPECT_GT(model.all_reduce(w, kGiB, Algorithm::kTree).seconds(),
            model.all_reduce(w, kGiB, Algorithm::kRing).seconds());
}

TEST(Collective, DegradedLinkSlowsOnlyTraversingCollectives) {
  auto model = kalos_model();
  World through, elsewhere;
  through.gpus = 32;  // nodes 0-3
  elsewhere.gpus = 32;
  elsewhere.first_node = 4;  // nodes 4-7
  const double bytes = 1 * kGiB;
  const double through_before = model.all_reduce(through, bytes).seconds();
  const double elsewhere_before = model.all_reduce(elsewhere, bytes).seconds();
  model.topology().set_link_scale(2, 0.25);
  EXPECT_GT(model.all_reduce(through, bytes).seconds(), 2.0 * through_before);
  EXPECT_DOUBLE_EQ(model.all_reduce(elsewhere, bytes).seconds(), elsewhere_before);
  model.topology().clear_link_scales();
  EXPECT_DOUBLE_EQ(model.all_reduce(through, bytes).seconds(), through_before);
}

TEST(Collective, NicShareDividesBandwidth) {
  const auto model = kalos_model();
  World lone, shared;
  lone.gpus = shared.gpus = 64;
  lone.ranks_per_node = shared.ranks_per_node = 1;
  shared.nic_share = 8;
  const auto a = model.all_reduce(lone, kGiB);
  const auto b = model.all_reduce(shared, kGiB);
  EXPECT_NEAR(b.bandwidth_seconds, 8.0 * a.bandwidth_seconds,
              1e-9 * b.bandwidth_seconds);
  EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
}

TEST(Collective, SerenInterNodeSlowerThanKalos) {
  const CollectiveModel seren(seren_fabric());
  const CollectiveModel kalos(kalos_fabric());
  World w;
  w.gpus = 64;
  // One shared HDR HCA vs four dedicated ones: > 4x slower across nodes.
  EXPECT_GT(seren.all_reduce(w, kGiB).seconds(),
            4.0 * kalos.all_reduce(w, kGiB).seconds());
}

TEST(Collective, DegenerateWorlds) {
  const auto model = kalos_model();
  World solo;
  solo.gpus = 1;
  EXPECT_DOUBLE_EQ(model.all_reduce(solo, kGiB).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(model.all_gather(solo, kGiB).seconds(), 0.0);
  World w;
  w.gpus = 8;
  // Zero bytes still pays the per-hop latency.
  const auto c = model.all_reduce(w, 0.0);
  EXPECT_DOUBLE_EQ(c.bandwidth_seconds, 0.0);
  EXPECT_GT(c.latency_seconds, 0.0);
  World bad;
  bad.gpus = 0;
  EXPECT_THROW(model.all_reduce(bad, kGiB), common::CheckError);
}

TEST(Collective, BusBandwidthApproachesLinkRate) {
  const auto model = kalos_model();
  World island;
  island.gpus = 8;
  const double bytes = 4 * kGiB;
  const auto ar = model.all_reduce(island, bytes);
  const double busbw = bus_bandwidth_allreduce(island.gpus, bytes, ar.seconds());
  const double link = model.topology().nvlink_bytes_per_sec(0);
  // Large messages amortize latency: bus bandwidth within 5% of the link
  // rate but never above it.
  EXPECT_LT(busbw, link);
  EXPECT_GT(busbw, 0.95 * link);
  const auto ag = model.all_gather(island, bytes);
  const double ag_busbw = bus_bandwidth_allgather(island.gpus, bytes, ag.seconds());
  EXPECT_LT(ag_busbw, link);
  EXPECT_GT(ag_busbw, 0.95 * link);
}

// --- Bring-up & probe rounds ---

TEST(Bringup, FullScaleWorldCostsNinetySeconds) {
  const auto model = kalos_model();
  World full;
  full.gpus = 2048;  // 256 nodes: the historical hard-coded 90 s
  EXPECT_NEAR(model.bringup_seconds(full), 90.0, 1e-9);
  World small;
  small.gpus = 64;
  EXPECT_LT(model.bringup_seconds(small), 90.0);
  EXPECT_GT(model.bringup_seconds(small), 30.0);
}

TEST(Bringup, ProbeRoundScalesWithProbeCount) {
  const auto model = kalos_model();
  const double small = model.probe_round_seconds(16);
  const double large = model.probe_round_seconds(256);
  EXPECT_LT(small, large);
  // The data phase is bounded by the worst three-node world, so the gap is
  // exactly the extra bring-up.
  EXPECT_NEAR(large - small, (60.0 / 256.0) * (256 - 16), 1e-9);
  EXPECT_THROW(model.probe_round_seconds(0), common::CheckError);
}

}  // namespace
}  // namespace acme::comm
