#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "parallel/model_math.h"
#include "parallel/schedule.h"

namespace acme::parallel {
namespace {

// --- Model math ---

TEST(ModelMath, ParameterCountsMatchFamilyNames) {
  EXPECT_NEAR(llm_7b().params() / 1e9, 7.3, 0.7);
  EXPECT_NEAR(llm_104b().params() / 1e9, 104.0, 12.0);
  EXPECT_NEAR(llm_123b().params() / 1e9, 123.0, 5.0);
}

TEST(ModelMath, MoeActiveParamsBelowTotal) {
  const auto moe = moe_mistral_7b();
  EXPECT_GT(moe.params(), 2.5 * moe.active_params() / 2.0);
  EXPECT_LT(moe.active_params(), moe.params());
}

TEST(ModelMath, FlopsPerTokenMatmulPlusAttention) {
  const auto cfg = llm_7b();
  const double attention = 12.0 * cfg.layers * double(cfg.hidden) * cfg.seq_len;
  EXPECT_DOUBLE_EQ(cfg.train_flops_per_token(), 6.0 * cfg.params() + attention);
  // Long contexts shift the balance: at 128k the attention term dominates.
  TransformerConfig long_cfg = cfg;
  long_cfg.seq_len = 131072;
  EXPECT_GT(long_cfg.train_flops_per_token(), 2.0 * cfg.train_flops_per_token());
}

TEST(ModelMath, MixedPrecisionAnatomyIs2_2_12) {
  const auto a = mixed_precision_anatomy(1e9);
  EXPECT_DOUBLE_EQ(a.param_bytes, 2e9);
  EXPECT_DOUBLE_EQ(a.grad_bytes, 2e9);
  EXPECT_DOUBLE_EQ(a.optimizer_bytes, 12e9);
  EXPECT_DOUBLE_EQ(a.total(), 16e9);
  EXPECT_THROW(mixed_precision_anatomy(0.0), common::CheckError);
}

TEST(ModelMath, CheckpointIsTbScale) {
  // Paper §6.1: "LLMs can produce TB-scale model states".
  EXPECT_GT(checkpoint_bytes(llm_123b().params()), 1.5e12);
  EXPECT_LT(checkpoint_bytes(llm_7b().params()), 0.2e12);
}

TEST(ModelMath, ActivationFormulaAgainstHandComputation) {
  TransformerConfig cfg;
  cfg.seq_len = 2048;
  cfg.hidden = 1024;
  cfg.heads = 16;
  cfg.layers = 1;
  // sbh(10 + 24/t + 5as/(ht)) with b=1, t=1.
  const double expected =
      2048.0 * 1024.0 * (10.0 + 24.0 + 5.0 * 16 * 2048 / 1024.0);
  EXPECT_DOUBLE_EQ(activation_bytes_per_layer(cfg, 1, 1, false), expected);
  // Tensor parallelism divides the parallelizable terms.
  EXPECT_LT(activation_bytes_per_layer(cfg, 1, 8, false),
            activation_bytes_per_layer(cfg, 1, 1, false) / 2);
  // Recompute keeps only the 2sbh layer input.
  EXPECT_DOUBLE_EQ(activation_bytes_per_layer(cfg, 1, 8, true),
                   2.0 * 2048 * 1024);
}

// --- Step timelines (Fig 10 / 19) ---

PretrainExecutionModel model_123b() { return PretrainExecutionModel(llm_123b()); }

TEST(StepTimeline, V2FasterThanV1ByAboutSixteenPercent) {
  auto m = model_123b();
  const double v1 = m.step_3d(ThreeDConfig{}).step_time();
  const double v2 = m.step_hier_zero(HierZeroConfig{}).step_time();
  EXPECT_GT(v1 / v2, 1.08);
  EXPECT_LT(v1 / v2, 1.30);
}

TEST(StepTimeline, V2HigherSustainedSmAndFewerIdlePeriods) {
  auto m = model_123b();
  const auto v1 = m.step_3d(ThreeDConfig{});
  const auto v2 = m.step_hier_zero(HierZeroConfig{});
  EXPECT_GT(v2.mean_sm(), v1.mean_sm());
  EXPECT_GT(v1.idle_fraction(), v2.idle_fraction());
  // Mean SM activity sits near the paper's ~40% DCGM reading for V1.
  EXPECT_NEAR(v1.mean_sm(), 0.40, 0.08);
}

TEST(StepTimeline, SamePatternAt1024Gpus) {
  // Appendix A.4: 1024-GPU profiles mirror the 2048-GPU ones.
  auto m = model_123b();
  ThreeDConfig td;
  td.world = 1024;
  HierZeroConfig hz;
  hz.world = 1024;
  const double ratio = m.step_3d(td).step_time() / m.step_hier_zero(hz).step_time();
  EXPECT_GT(ratio, 1.08);
  EXPECT_LT(ratio, 1.30);
}

TEST(StepTimeline, BubbleFractionShrinksWithMoreMicrobatches) {
  auto m = model_123b();
  ThreeDConfig few;
  few.micro_batches = 8;
  ThreeDConfig many;
  many.micro_batches = 64;
  EXPECT_GT(m.step_3d(few).idle_fraction(0.25),
            m.step_3d(many).idle_fraction(0.25));
}

TEST(StepTimeline, SamplingRespectsResolutionAndBounds) {
  auto m = model_123b();
  const auto tl = m.step_3d(ThreeDConfig{});
  common::Rng rng(1);
  const auto samples = tl.sample(0.001, 2.0, rng);
  EXPECT_EQ(samples.size(), 2000u);
  for (double v : samples) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(StepTimeline, MoeDominatedByAllToAll) {
  PretrainExecutionModel moe(moe_mistral_7b());
  const auto tl = moe.step_moe(1024, 25e9);  // Seren: single 200 Gb/s NIC
  auto dense = PretrainExecutionModel(llm_7b());
  HierZeroConfig hz;
  hz.world = 1024;
  // Fig 22: much lower utilization than the dense runs.
  EXPECT_LT(tl.mean_sm(), dense.step_hier_zero(hz).mean_sm() * 0.6);
  EXPECT_GT(tl.idle_fraction(), 0.2);
}

TEST(StepTimeline, MoeRequiresMoeConfig) {
  EXPECT_THROW(model_123b().step_moe(1024, 25e9), common::CheckError);
}

// --- Memory models (Fig 11 / 12 / 20) ---

TEST(Memory, StaticSplitMatchesShardingMath) {
  auto m = model_123b();
  ThreeDConfig td;  // tp=8, pp=4, dp=64 on 2048
  const double params = llm_123b().params();
  EXPECT_NEAR(m.static_bytes_3d(td),
              4.0 * params / 32.0 + 12.0 * params / (32.0 * 64.0), 1.0);
  HierZeroConfig hz;
  EXPECT_NEAR(m.static_bytes_hier_zero(hz), 16.0 * params / 64.0, 1.0);
}

TEST(Memory, ActivationsDominateIn3dButNotZero) {
  // Fig 11: "the memory requirement for activations in 3D parallelism is
  // substantially higher".
  auto m = model_123b();
  ThreeDConfig td;
  HierZeroConfig hz;
  EXPECT_GT(m.activation_bytes_3d(td), 4 * m.activation_bytes_hier_zero(hz));
  EXPECT_GT(m.static_bytes_hier_zero(hz), m.static_bytes_3d(td));
}

TEST(Memory, EverythingFitsIn80GB) {
  auto m = model_123b();
  ThreeDConfig td;
  HierZeroConfig hz;
  EXPECT_LT(m.static_bytes_3d(td) + m.activation_bytes_3d(td), 80e9);
  EXPECT_LT(m.static_bytes_hier_zero(hz) + m.activation_bytes_hier_zero(hz), 80e9);
}

TEST(Memory, PerRankMemoryDecreasesAlongPipeline) {
  // Fig 12: rank 0 holds the most in-flight activations under 1F1B.
  auto m = model_123b();
  ThreeDConfig td;
  const auto ranks = m.per_rank_memory_1f1b(td);
  ASSERT_EQ(ranks.size(), 4u);
  for (std::size_t r = 1; r < ranks.size(); ++r) EXPECT_LT(ranks[r], ranks[r - 1]);
  EXPECT_LT(ranks[0], 80e9);
  // The imbalance is substantial: rank 0 roughly 2x rank 3.
  EXPECT_GT(ranks[0] / ranks[3], 1.5);
}

TEST(Memory, SnapshotShapesMatchFig11) {
  auto m = model_123b();
  const auto snap3d = m.memory_snapshot_3d(ThreeDConfig{}, 100);
  const auto snapz = m.memory_snapshot_hier_zero(HierZeroConfig{}, 100);
  ASSERT_EQ(snap3d.time.size(), 100u);
  // Static floor constant; dynamic rises then falls within the step.
  for (double s : snap3d.static_bytes)
    EXPECT_DOUBLE_EQ(s, snap3d.static_bytes.front());
  const double peak3d =
      *std::max_element(snap3d.dynamic_bytes.begin(), snap3d.dynamic_bytes.end());
  const double peakz =
      *std::max_element(snapz.dynamic_bytes.begin(), snapz.dynamic_bytes.end());
  EXPECT_DOUBLE_EQ(peak3d, m.activation_bytes_3d(ThreeDConfig{}));
  EXPECT_GT(peak3d, 4 * peakz);
  EXPECT_NEAR(snap3d.dynamic_bytes.front(), 0.0, 1e9);
  EXPECT_NEAR(snap3d.dynamic_bytes.back(), 0.0, peak3d * 0.05);
}

// Property sweep: step models stay self-consistent across world sizes.
class WorldSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorldSweep, TimelinesPositiveAndOrdered) {
  auto m = model_123b();
  ThreeDConfig td;
  td.world = GetParam();
  HierZeroConfig hz;
  hz.world = GetParam();
  const auto v1 = m.step_3d(td);
  const auto v2 = m.step_hier_zero(hz);
  EXPECT_GT(v1.step_time(), 0.0);
  EXPECT_GT(v2.step_time(), 0.0);
  EXPECT_GT(v1.step_time(), v2.step_time());
  for (const auto& p : v1.phases) {
    ASSERT_GE(p.duration, 0.0);
    ASSERT_GE(p.sm_level, 0.0);
    ASSERT_LE(p.sm_level, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldSweep, ::testing::Values(256, 512, 1024, 2048));


// --- Long-sequence extensions (sequence & context parallelism) ---

TEST(LongSequence, SequenceParallelismShrinksResidualActivations) {
  auto m = PretrainExecutionModel(llm_123b());
  ThreeDConfig plain;
  ThreeDConfig sp = plain;
  sp.sequence_parallel = true;
  EXPECT_LT(m.activation_bytes_3d(sp), m.activation_bytes_3d(plain));
  // The attention-score term is unaffected; savings come from the 10sbh
  // residual share, so the reduction is real but bounded.
  EXPECT_GT(m.activation_bytes_3d(sp), m.activation_bytes_3d(plain) * 0.3);
}

TEST(LongSequence, ContextParallelDividesActivationMemory) {
  TransformerConfig model = llm_123b();
  model.seq_len = 32768;
  PretrainExecutionModel exec(model);
  HierZeroConfig plain;
  HierZeroConfig cp = plain;
  cp.context_parallel = 4;
  const double act_plain = exec.activation_bytes_hier_zero(plain);
  const double act_cp = exec.activation_bytes_hier_zero(cp);
  // Superlinear: the attention term is quadratic in the per-GPU sequence.
  EXPECT_GT(act_plain / act_cp, 4.0);
  EXPECT_LT(exec.static_bytes_hier_zero(cp) + act_cp, 80e9);
}

TEST(LongSequence, AttentionFlopsGrowWithContext) {
  TransformerConfig short_ctx = llm_7b();
  TransformerConfig long_ctx = llm_7b();
  long_ctx.seq_len = 65536;
  EXPECT_GT(long_ctx.train_flops_per_token(),
            1.5 * short_ctx.train_flops_per_token());
}

TEST(LongSequence, ContextParallelStepSlowerPerToken) {
  // cp pays ring-attention communication: fewer tokens per step AND a small
  // efficiency penalty, so tokens/sec drop.
  TransformerConfig model = llm_123b();
  model.seq_len = 32768;
  PretrainExecutionModel exec(model);
  HierZeroConfig plain;
  HierZeroConfig cp = plain;
  cp.context_parallel = 8;
  const double plain_tps =
      (2048.0 * model.seq_len) / exec.step_hier_zero(plain).step_time();
  const double cp_tps =
      (2048.0 / 8 * model.seq_len) / exec.step_hier_zero(cp).step_time();
  EXPECT_LT(cp_tps, plain_tps);
}

TEST(LongSequence, RejectsIndivisibleContextParallel) {
  PretrainExecutionModel exec(llm_123b());
  HierZeroConfig bad;
  bad.world = 2048;
  bad.context_parallel = 3;
  EXPECT_THROW(exec.step_hier_zero(bad), common::CheckError);
}


// --- RLHF iteration model (§7 future work) ---

TEST(Rlhf, GenerationDominatesAtLowSm) {
  PretrainExecutionModel m(llm_7b());
  const auto tl = m.step_rlhf(PretrainExecutionModel::RlhfConfig{});
  double gen = 0;
  for (const auto& p : tl.phases)
    if (p.kind == "rollout-decode") gen += p.duration;
  EXPECT_GT(gen / tl.step_time(), 0.6);
  EXPECT_LT(tl.mean_sm(), 0.3);
  // Dense pretraining keeps SMs far busier.
  HierZeroConfig dense;
  dense.world = 1024;
  EXPECT_GT(m.step_hier_zero(dense).mean_sm(), 2 * tl.mean_sm());
}

TEST(Rlhf, LongerRolloutsLengthenGeneration) {
  PretrainExecutionModel m(llm_7b());
  PretrainExecutionModel::RlhfConfig small;
  PretrainExecutionModel::RlhfConfig big = small;
  big.rollout_tokens = small.rollout_tokens * 4;
  EXPECT_GT(m.step_rlhf(big).step_time(), 2 * m.step_rlhf(small).step_time());
}

TEST(Rlhf, RejectsDegenerateConfig) {
  PretrainExecutionModel m(llm_7b());
  PretrainExecutionModel::RlhfConfig bad;
  bad.world = 0;
  EXPECT_THROW(m.step_rlhf(bad), common::CheckError);
}

// --- Fabric-derived communication phases ---

TEST(Fabric, DegradedNvlinkLengthensStep) {
  PretrainExecutionModel healthy(llm_123b());
  PretrainExecutionModel degraded(llm_123b());
  // The tensor-parallel group lives on node 0's NVLink island; slowing that
  // island stretches the tp-comm-stall phase and the whole step.
  degraded.collectives().topology().set_link_scale(0, 0.2);
  const ThreeDConfig cfg;
  const double base = healthy.step_3d(cfg).step_time();
  const double slow = degraded.step_3d(cfg).step_time();
  EXPECT_GT(slow, base * 1.05);
}

TEST(Fabric, SerenFabricSlowsGradientSync) {
  // Same model and layout, but Seren's single shared HDR HCA makes the
  // exposed gradient all-reduce longer than on Kalos' four NICs.
  PretrainExecutionModel kalos(llm_123b(), comm::kalos_fabric());
  PretrainExecutionModel seren(llm_123b(), comm::seren_fabric());
  const ThreeDConfig cfg;
  auto allreduce_of = [](const StepTimeline& tl) {
    for (const auto& p : tl.phases)
      if (p.kind == "grad-allreduce") return p.duration;
    return 0.0;
  };
  EXPECT_GT(allreduce_of(seren.step_3d(cfg)),
            2.0 * allreduce_of(kalos.step_3d(cfg)));
  EXPECT_GT(seren.step_3d(cfg).step_time(), kalos.step_3d(cfg).step_time());
}

TEST(Fabric, GradAllreducePhaseTracksCollectiveModel) {
  PretrainExecutionModel m(llm_123b());
  const ThreeDConfig cfg;
  const auto tl = m.step_3d(cfg);
  // The exposed all-reduce phase must be a fixed share of the wire cost the
  // collective model predicts for the dp ring layout.
  comm::World dp_world;
  dp_world.gpus = cfg.data_parallel();
  dp_world.ranks_per_node = 1;
  dp_world.nic_share = 8;
  const double grad_bytes =
      2.0 * m.config().params() / (cfg.tensor_parallel * cfg.pipeline_parallel);
  const double wire = m.collectives().all_reduce(dp_world, grad_bytes).seconds();
  for (const auto& p : tl.phases) {
    if (p.kind != "grad-allreduce") continue;
    EXPECT_GT(p.duration, 0.1 * wire);
    EXPECT_LT(p.duration, wire);
  }
}

}  // namespace
}  // namespace acme::parallel
