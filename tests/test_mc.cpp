#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "common/stats.h"
#include "core/experiments.h"
#include "mc/aggregate.h"
#include "mc/replication.h"
#include "mc/report.h"
#include "mc/thread_pool.h"

namespace acme::mc {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), 10,
                    [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ChunkZeroIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(7, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 7);
}

TEST(ThreadPool, CancelDropsPendingTasks) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  for (int i = 0; i < 50; ++i) pool.submit([] {});
  pool.cancel();
  release = true;
  pool.wait_idle();
  EXPECT_TRUE(pool.cancelled());
  EXPECT_GE(pool.dropped(), 1u);
  // Submissions after cancel are dropped too.
  const std::size_t before = pool.dropped();
  pool.submit([] { FAIL(); });
  EXPECT_EQ(pool.dropped(), before + 1);
}

TEST(ThreadPool, RunningTaskCanPollCancellation) {
  ThreadPool pool(1);
  std::atomic<bool> saw_cancel{false};
  std::atomic<bool> started{false};
  pool.submit([&] {
    started = true;
    while (!pool.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    saw_cancel = true;
  });
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.cancel();
  pool.wait_idle();
  EXPECT_TRUE(saw_cancel.load());
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

// ------------------------------------------------------------- P2 / metrics

TEST(P2Quantile, ExactForSmallCounts) {
  P2Quantile q(0.5);
  q.add(3);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1);
  q.add(2);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2Quantile, TracksUniformQuantiles) {
  common::Rng rng(77);
  P2Quantile p50(0.5), p90(0.9), p99(0.99);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform();
    p50.add(x);
    p90.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.5, 0.02);
  EXPECT_NEAR(p90.value(), 0.9, 0.02);
  EXPECT_NEAR(p99.value(), 0.99, 0.01);
}

TEST(P2Quantile, TracksLognormalMedian) {
  common::Rng rng(78);
  P2Quantile p50(0.5);
  for (int i = 0; i < 50000; ++i) p50.add(rng.lognormal(1.0, 0.8));
  EXPECT_NEAR(p50.value(), std::exp(1.0), 0.1 * std::exp(1.0));
}

TEST(P2Quantile, DeterministicForSameSequence) {
  P2Quantile a(0.9), b(0.9);
  common::Rng r1(5), r2(5);
  for (int i = 0; i < 1000; ++i) {
    a.add(r1.uniform());
    b.add(r2.uniform());
  }
  EXPECT_DOUBLE_EQ(a.value(), b.value());
}

TEST(MetricAggregator, MeanAndCi) {
  MetricAggregator agg;
  for (double v : {10.0, 12.0, 11.0, 13.0}) agg.add(v);
  EXPECT_EQ(agg.count(), 4u);
  EXPECT_DOUBLE_EQ(agg.mean(), 11.5);
  // t(3) * s/sqrt(4) with s = sqrt(5/3).
  const double s = std::sqrt(5.0 / 3.0);
  EXPECT_NEAR(agg.ci95(), 3.182 * s / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(agg.min(), 10.0);
  EXPECT_DOUBLE_EQ(agg.max(), 13.0);
}

TEST(MetricAggregator, CiZeroBeforeTwoSamples) {
  MetricAggregator agg;
  EXPECT_DOUBLE_EQ(agg.ci95(), 0.0);
  agg.add(5.0);
  EXPECT_DOUBLE_EQ(agg.ci95(), 0.0);
}

// ------------------------------------------------------------- Replication

// The determinism proof demanded by the issue: the same plan run with one
// thread and with >= 4 threads yields bit-identical per-replica results and
// identical merged aggregates.
TEST(ReplicationPlan, BitIdenticalAcrossThreadCounts) {
  const auto body = [](common::Rng& rng, std::size_t replica) {
    // A result that depends on every draw, so any stream perturbation shows.
    double acc = static_cast<double>(replica);
    for (int i = 0; i < 1000; ++i) acc += rng.uniform() * rng.normal();
    return acc;
  };
  ReplicationOptions serial;
  serial.replicas = 16;
  serial.threads = 1;
  serial.seed = 1234;
  ReplicationOptions parallel = serial;
  parallel.threads = 4;
  ReplicationOptions chunked = serial;
  chunked.threads = 5;
  chunked.chunk = 3;

  const auto a = run_replicas<double>(serial, body);
  const auto b = run_replicas<double>(parallel, body);
  const auto c = run_replicas<double>(chunked, body);
  ASSERT_EQ(a.results.size(), 16u);
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "replica " << i;
    EXPECT_EQ(a.results[i], c.results[i]) << "replica " << i;
  }

  MetricAggregator ma, mb;
  fold_metric(a, [](double v) { return v; }, ma);
  fold_metric(b, [](double v) { return v; }, mb);
  EXPECT_EQ(ma.mean(), mb.mean());
  EXPECT_EQ(ma.ci95(), mb.ci95());
  EXPECT_EQ(ma.p50(), mb.p50());
  EXPECT_EQ(ma.p99(), mb.p99());
}

TEST(ReplicationPlan, ReplicaStreamsAreIndependentOfReplicaCount) {
  const auto body = [](common::Rng& rng, std::size_t) { return rng.next(); };
  ReplicationOptions small;
  small.replicas = 4;
  small.threads = 1;
  ReplicationOptions big = small;
  big.replicas = 12;
  const auto a = run_replicas<std::uint64_t>(small, body);
  const auto b = run_replicas<std::uint64_t>(big, body);
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i], b.results[i]);
  // And the streams differ between replicas.
  std::set<std::uint64_t> distinct(b.results.begin(), b.results.end());
  EXPECT_EQ(distinct.size(), b.results.size());
}

TEST(ReplicationPlan, TimingAccountsEveryReplica) {
  ReplicationOptions options;
  options.replicas = 6;
  options.threads = 2;
  const auto run = run_replicas<int>(options, [](common::Rng& rng, std::size_t i) {
    // Compute-bound body: replica cost is measured in thread-CPU time, so a
    // sleeping replica would legitimately report ~0 seconds.
    double acc = 0;
    for (int k = 0; k < 200000; ++k) acc += rng.uniform();
    return static_cast<int>(i) + (acc > 0 ? 0 : 1);
  });
  EXPECT_EQ(run.replica_seconds.size(), 6u);
  for (double s : run.replica_seconds) EXPECT_GT(s, 0.0);
  EXPECT_GT(run.timing.serial_seconds, 0.0);
  EXPECT_GT(run.timing.wall_seconds, 0.0);
  EXPECT_EQ(run.timing.threads_used, 2u);
  EXPECT_GT(run.timing.speedup(), 0.0);
}

TEST(ReplicationPlan, SixMonthReplayMcIsDeterministic) {
  const auto setup = core::seren_setup();
  mc::ReplicationOptions serial;
  serial.replicas = 2;
  serial.threads = 1;
  mc::ReplicationOptions parallel = serial;
  parallel.threads = 4;
  // Heavy downscale: distributions unchanged, runtime trivial.
  const auto a = core::run_six_month_replay_mc(setup, serial, 64.0);
  const auto b = core::run_six_month_replay_mc(setup, parallel, 64.0);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].busy_fraction, b.results[i].busy_fraction);
    EXPECT_EQ(a.results[i].replay.jobs.size(), b.results[i].replay.jobs.size());
    EXPECT_EQ(a.results[i].replay.makespan, b.results[i].replay.makespan);
  }
  // Replicas saw different traces (independent seeds).
  EXPECT_NE(a.results[0].replay.makespan, a.results[1].replay.makespan);
}

// ------------------------------------------------------------------ Report

TEST(BenchReport, JsonContainsEveryField) {
  MetricAggregator agg;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) agg.add(v);
  BenchReport report("unit_test_bench");
  RunTiming timing;
  timing.wall_seconds = 2.0;
  timing.serial_seconds = 6.0;
  timing.threads_used = 4;
  report.set_timing(timing, 6);
  report.add_metric("latency", agg, "s");

  const std::string json = report.to_json();
  for (const char* key :
       {"\"bench\": \"unit_test_bench\"", "\"replicas\": 6", "\"threads\": 4",
        "\"wall_seconds\": 2", "\"serial_seconds\": 6", "\"speedup\": 3",
        "\"metric\": \"latency\"", "\"unit\": \"s\"", "\"mean\": 3.5",
        "\"ci95\":", "\"p50\":", "\"p90\":", "\"p99\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
}

TEST(BenchReport, NonFiniteValuesBecomeNull) {
  MetricAggregator agg;
  BenchReport report("nonfinite_bench");
  RunTiming timing;
  timing.wall_seconds = 0.0;  // speedup() falls back to 1.0
  report.set_timing(timing, 0);
  report.add_metric("empty", agg);
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(BenchReport, WriteRoundTrips) {
  MetricAggregator agg;
  agg.add(1.0);
  agg.add(2.0);
  BenchReport report("file_bench");
  report.add_metric("m", agg);
  const std::string path = ::testing::TempDir() + "acme_mc_report_test.json";
  ASSERT_TRUE(report.write(path));
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), report.to_json());
  std::remove(path.c_str());
}

TEST(BenchReport, WriteToBadPathFailsGracefully) {
  BenchReport report("bad_path");
  EXPECT_FALSE(report.write("/nonexistent-dir-xyz/report.json"));
}

// --------------------------------------------------------------------- CLI

TEST(McCli, ParsesAllFlags) {
  ReplicationOptions defaults;
  defaults.replicas = 8;
  const char* argv[] = {"bench",   "--replicas", "12",   "--threads", "3",
                        "--seed",  "99",         "--json", "out.json"};
  const auto cli = parse_mc_cli_strict(9, const_cast<char**>(argv), defaults);
  ASSERT_TRUE(cli.has_value());
  EXPECT_EQ(cli->options.replicas, 12u);
  EXPECT_EQ(cli->options.threads, 3u);
  EXPECT_EQ(cli->options.seed, 99u);
  EXPECT_EQ(cli->json_path, "out.json");
}

TEST(McCli, RejectsUnknownFlagWithSuggestion) {
  ReplicationOptions defaults;
  // The typo that motivated strict parsing: --replica silently did nothing.
  const char* argv[] = {"bench", "--replica", "12"};
  std::string error;
  const auto cli = parse_mc_cli_strict(3, const_cast<char**>(argv), defaults, &error);
  EXPECT_FALSE(cli.has_value());
  EXPECT_NE(error.find("--replica"), std::string::npos);
  EXPECT_NE(error.find("--replicas"), std::string::npos);  // did-you-mean
}

TEST(McCli, RejectsMissingValueAndBadNumber) {
  ReplicationOptions defaults;
  std::string error;
  const char* trailing[] = {"bench", "--replicas"};
  EXPECT_FALSE(
      parse_mc_cli_strict(2, const_cast<char**>(trailing), defaults, &error)
          .has_value());
  const char* bad[] = {"bench", "--seed", "not-a-number"};
  EXPECT_FALSE(parse_mc_cli_strict(3, const_cast<char**>(bad), defaults, &error)
                   .has_value());
}

}  // namespace
}  // namespace acme::mc
