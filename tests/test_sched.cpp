#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "cluster/spec.h"
#include "common/units.h"
#include "common/check.h"
#include "trace/analysis.h"
#include "trace/synthesizer.h"

namespace acme::sched {
namespace {

using common::kHour;
using common::kMinute;

trace::JobRecord make_job(std::uint64_t id, trace::WorkloadType type, int gpus,
                          double submit, double duration) {
  trace::JobRecord j;
  j.id = id;
  j.type = type;
  j.gpus = gpus;
  j.submit_time = submit;
  j.duration = duration;
  j.status = trace::JobStatus::kCompleted;
  return j;
}

cluster::ClusterSpec tiny_cluster(int nodes) {
  auto spec = cluster::seren_spec();
  spec.node_count = nodes;
  return spec;
}

SchedulerConfig tiny_config() {
  SchedulerConfig c;
  c.pretrain_reservation = 0.5;
  c.eval_cap_fraction = 0.25;
  return c;
}

TEST(Scheduler, UncontendedJobStartsImmediately) {
  SchedulerReplay replay(tiny_cluster(4), tiny_config());
  trace::Trace jobs{make_job(1, trace::WorkloadType::kDebug, 4, 10.0, 100.0)};
  auto result = replay.replay(jobs);
  EXPECT_DOUBLE_EQ(result.jobs[0].queue_delay, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 110.0);
  EXPECT_EQ(result.unstarted, 0u);
}

TEST(Scheduler, PretrainUsesReservationImmediately) {
  // Shared partition is saturated by best-effort work; the pretraining gang
  // must still start instantly on the reserved partition.
  SchedulerReplay replay(tiny_cluster(4), tiny_config());
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 1000.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kPretrain, 16, 1.0, 500.0));
  auto result = replay.replay(jobs);
  EXPECT_DOUBLE_EQ(result.jobs[1].queue_delay, 0.0);
}

TEST(Scheduler, BestEffortCannotTouchReservation) {
  // 4 nodes, 50% reserved: best-effort demand beyond 2 nodes must queue even
  // though reserved nodes sit idle.
  SchedulerReplay replay(tiny_cluster(4), tiny_config());
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 100.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 8, 0.0, 50.0));
  auto result = replay.replay(jobs);
  EXPECT_DOUBLE_EQ(result.jobs[0].queue_delay, 0.0);
  EXPECT_NEAR(result.jobs[1].queue_delay, 100.0, 1e-6);
}

TEST(Scheduler, EvalCapThrottlesBatch) {
  // Eval cap = 25% of 32 GPUs = 8: a burst of 4x4-GPU evals drains two at a
  // time even though the shared partition could hold all of them.
  SchedulerReplay replay(tiny_cluster(4), tiny_config());
  trace::Trace jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(
        make_job(static_cast<std::uint64_t>(i + 1), trace::WorkloadType::kEvaluation,
                 4, 0.0, 60.0));
  auto result = replay.replay(jobs);
  int immediate = 0, delayed = 0;
  for (const auto& j : result.jobs)
    (j.queue_delay < 1e-9 ? immediate : delayed)++;
  EXPECT_EQ(immediate, 2);
  EXPECT_EQ(delayed, 2);
}

TEST(Scheduler, EvalLowerPriorityThanNormal) {
  // Shared partition (1 node) busy until t=10; an eval and a debug job queue
  // behind it. When it frees, the normal class is scanned first.
  auto spec = tiny_cluster(2);
  SchedulerConfig config = tiny_config();  // shared = 1 node
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 8, 0.0, 10.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kEvaluation, 8, 1.0, 100.0));
  jobs.push_back(make_job(3, trace::WorkloadType::kDebug, 8, 2.0, 100.0));
  auto result = replay.replay(jobs);
  EXPECT_NEAR(result.jobs[2].queue_delay, 8.0, 1e-6);    // debug runs at 10
  EXPECT_NEAR(result.jobs[1].queue_delay, 109.0, 1e-6);  // eval waits for it
}

TEST(Scheduler, BackfillSkipsStuckHead) {
  // Head of the normal queue needs 2 nodes (16 GPUs); only 1 node free. A
  // later 4-GPU job backfills.
  auto spec = tiny_cluster(4);
  SchedulerConfig config;
  config.pretrain_reservation = 0.25;  // shared = 3 nodes
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 200.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 16, 1.0, 100.0));
  jobs.push_back(make_job(3, trace::WorkloadType::kDebug, 4, 2.0, 10.0));
  auto result = replay.replay(jobs);
  EXPECT_NEAR(result.jobs[2].queue_delay, 0.0, 1e-9);  // backfilled
  EXPECT_GT(result.jobs[1].queue_delay, 100.0);
}

TEST(Scheduler, BackfillDepthZeroPinsFcfs) {
  // With no backfill window the queue is strict FCFS: the 4-GPU job fits the
  // free node but must still wait behind the stuck 16-GPU head.
  auto spec = tiny_cluster(4);
  SchedulerConfig config;
  config.pretrain_reservation = 0.25;  // shared = 3 nodes
  config.backfill_depth = 0;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 200.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 16, 1.0, 100.0));
  jobs.push_back(make_job(3, trace::WorkloadType::kDebug, 4, 2.0, 10.0));
  auto result = replay.replay(jobs);
  // Job 3 starts only when job 2 does (t=200, after job 1 frees 2 nodes).
  EXPECT_NEAR(result.jobs[2].queue_delay, 198.0, 1e-6);
}

TEST(Scheduler, BackfillBudgetCountsFailuresExactly) {
  // The scan budget is the head plus backfill_depth failures. Two stuck jobs
  // ahead: depth 1 exhausts the budget before the small job; depth 2 reaches
  // it. Distinct widths (16 then 12) keep the second probe un-pruned, so the
  // budget itself — not monotone pruning — is what stops the scan.
  for (const int depth : {1, 2}) {
    auto spec = tiny_cluster(4);
    SchedulerConfig config;
    config.pretrain_reservation = 0.25;  // shared = 3 nodes = 24 GPUs
    config.backfill_depth = depth;
    SchedulerReplay replay(spec, config);
    trace::Trace jobs;
    jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 200.0));
    jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 16, 1.0, 100.0));
    jobs.push_back(make_job(3, trace::WorkloadType::kDebug, 12, 2.0, 100.0));
    jobs.push_back(make_job(4, trace::WorkloadType::kDebug, 4, 3.0, 10.0));
    auto result = replay.replay(jobs);
    if (depth == 1) {
      EXPECT_GT(result.jobs[3].queue_delay, 100.0) << "depth=" << depth;
    } else {
      EXPECT_NEAR(result.jobs[3].queue_delay, 0.0, 1e-9) << "depth=" << depth;
    }
  }
}

TEST(Scheduler, OversizedBestEffortEventuallyRunsAlone) {
  // A best-effort job bigger than the shared partition's eval cap... the
  // starvation escape lets an over-cap eval run once the class is empty.
  auto spec = tiny_cluster(4);
  SchedulerConfig config = tiny_config();  // eval cap 8
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kEvaluation, 4, 0.0, 50.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kEvaluation, 16, 0.0, 10.0));
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.unstarted, 0u);
  EXPECT_NEAR(result.jobs[1].queue_delay, 50.0, 1e-6);
}

TEST(Scheduler, CpuJobsBypass) {
  SchedulerReplay replay(tiny_cluster(2), tiny_config());
  trace::Trace jobs{make_job(1, trace::WorkloadType::kOther, 0, 0.0, 100.0)};
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.unstarted, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);  // nothing scheduled on GPUs
}

TEST(Scheduler, OccupancySamplerTracksLoad) {
  SchedulerReplay replay(tiny_cluster(2), tiny_config());
  trace::Trace jobs{make_job(1, trace::WorkloadType::kDebug, 8, 0.0, 100.0)};
  auto result = replay.replay(jobs, 10.0);
  ASSERT_GT(result.occupancy.size(), 5u);
  EXPECT_EQ(result.occupancy[1].busy_gpus, 8);
  EXPECT_EQ(result.occupancy[0].total_gpus, 16);
}

TEST(Scheduler, RejectsJobLargerThanCluster) {
  SchedulerReplay replay(tiny_cluster(2), tiny_config());
  trace::Trace jobs{make_job(1, trace::WorkloadType::kPretrain, 64, 0.0, 10.0)};
  EXPECT_THROW(replay.replay(jobs), common::CheckError);
}

// End-to-end: the scaled six-month Seren replay reproduces Fig 6's headline
// finding — evaluation trials wait longest despite being smallest.
TEST(SchedulerSixMonth, EvalQueuesLongestSeren) {
  auto profile = trace::scaled(trace::seren_profile(), 20.0);
  profile.cpu_jobs = 0;
  auto jobs = trace::TraceSynthesizer(profile).generate();
  SchedulerReplay replay(cluster::seren_spec(), seren_scheduler_config());
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.unstarted, 0u);

  const auto eval =
      trace::queue_delays_of(result.jobs, trace::WorkloadType::kEvaluation);
  const auto pretrain =
      trace::queue_delays_of(result.jobs, trace::WorkloadType::kPretrain);
  const auto sft = trace::queue_delays_of(result.jobs, trace::WorkloadType::kSFT);
  // Pretraining starts ~immediately thanks to the reservation.
  EXPECT_LT(pretrain.quantile(0.9), 1 * kMinute);
  // Evaluation's median delay dominates every other class's.
  EXPECT_GT(eval.median(), 10 * kMinute);
  EXPECT_GT(eval.median(), sft.median());
  EXPECT_GT(eval.median(), pretrain.median());
}

TEST(SchedulerSixMonth, NoJobLostAndConservation) {
  auto profile = trace::scaled(trace::kalos_profile(), 4.0);
  profile.cpu_jobs = 0;
  auto jobs = trace::TraceSynthesizer(profile).generate();
  SchedulerReplay replay(cluster::kalos_spec(), kalos_scheduler_config());
  auto result = replay.replay(jobs, 900.0);
  EXPECT_EQ(result.unstarted, 0u);
  EXPECT_EQ(result.jobs.size(), jobs.size());
  for (const auto& s : result.occupancy) {
    ASSERT_GE(s.busy_gpus, 0);
    ASSERT_LE(s.busy_gpus, s.total_gpus);
  }
  // Every GPU job got a start time no earlier than submission.
  for (const auto& j : result.jobs) {
    if (j.is_gpu_job()) {
      ASSERT_GE(j.queue_delay, 0.0);
    }
  }
}


// --- Preemptive baseline (§3.1: why preemption is unsuitable) ---

TEST(Preemption, PretrainEvictsBestEffort) {
  auto spec = tiny_cluster(4);
  SchedulerConfig config;
  config.pretrain_reservation = 0.0;  // no reservation: classic DL scheduler
  config.allow_preemption = true;
  config.preemption_overhead_seconds = 100.0;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  // Best-effort work fills the cluster; a pretraining gang arrives later.
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 1000.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 16, 0.0, 1000.0));
  jobs.push_back(make_job(3, trace::WorkloadType::kPretrain, 32, 50.0, 200.0));
  auto result = replay.replay(jobs);
  // The gang starts immediately by evicting both victims...
  EXPECT_NEAR(result.jobs[2].queue_delay, 0.0, 1e-6);
  EXPECT_EQ(result.preemptions, 2);
  // ...who lose their 50 s of progress each (16 GPUs x 50 s x 2).
  EXPECT_NEAR(result.wasted_gpu_seconds, 2 * 16 * 50.0, 1e-6);
  // Victims re-run from scratch plus the restart overhead after the gang.
  EXPECT_EQ(result.unstarted, 0u);
  EXPECT_NEAR(result.makespan, 50.0 + 200.0 + 1000.0 + 100.0, 1e-6);
}

TEST(Preemption, VictimOrderIsYoungestFirst) {
  // Three identical best-effort jobs start at t=0, 10, 20; the gang needs
  // exactly one node back. The running pool is FIFO, victims are taken from
  // the back, so the t=20 job (least progress) must be the one evicted:
  // wasted GPU time pins the choice — 8 GPUs x 10 s, not x 30 s.
  auto spec = tiny_cluster(3);
  SchedulerConfig config;
  config.pretrain_reservation = 0.0;
  config.allow_preemption = true;
  config.preemption_overhead_seconds = 0.0;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 8, 0.0, 1000.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kDebug, 8, 10.0, 1000.0));
  jobs.push_back(make_job(3, trace::WorkloadType::kDebug, 8, 20.0, 1000.0));
  jobs.push_back(make_job(4, trace::WorkloadType::kPretrain, 8, 30.0, 50.0));
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.preemptions, 1);
  EXPECT_NEAR(result.wasted_gpu_seconds, 8 * 10.0, 1e-6);
  // The victim keeps its original (zero-delay) start for delay accounting.
  EXPECT_NEAR(result.jobs[2].queue_delay, 0.0, 1e-9);
  // Victim reruns from scratch after the gang: 30 + 50 + 1000.
  EXPECT_NEAR(result.makespan, 1080.0, 1e-6);
}

TEST(Preemption, NoEvictionWhenRoomExists) {
  auto spec = tiny_cluster(4);
  SchedulerConfig config;
  config.pretrain_reservation = 0.0;
  config.allow_preemption = true;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 8, 0.0, 500.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kPretrain, 16, 1.0, 100.0));
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.preemptions, 0);
  EXPECT_DOUBLE_EQ(result.wasted_gpu_seconds, 0.0);
  EXPECT_NEAR(result.jobs[0].queue_delay, 0.0, 1e-9);
}

TEST(Preemption, InfeasibleGangDoesNotThrash) {
  // A pretraining job bigger than the whole shared partition must not evict
  // anyone (it can never fit).
  auto spec = tiny_cluster(4);
  SchedulerConfig config;
  config.pretrain_reservation = 0.5;  // shared = 2 nodes = 16 GPUs
  config.allow_preemption = true;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kDebug, 16, 0.0, 100.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kPretrain, 32, 1.0, 10.0));
  auto result = replay.replay(jobs);
  EXPECT_EQ(result.preemptions, 0);
  // The gang waits for its reservation instead (16 GPUs reserved < 32): it
  // ends up spilling across... cannot fit anywhere -> left unstarted.
  EXPECT_EQ(result.unstarted, 1u);
}

TEST(Preemption, DelayAccountingKeepsFirstStart) {
  auto spec = tiny_cluster(2);
  SchedulerConfig config;
  config.pretrain_reservation = 0.0;
  config.allow_preemption = true;
  config.preemption_overhead_seconds = 60.0;
  SchedulerReplay replay(spec, config);
  trace::Trace jobs;
  jobs.push_back(make_job(1, trace::WorkloadType::kEvaluation, 16, 0.0, 500.0));
  jobs.push_back(make_job(2, trace::WorkloadType::kPretrain, 16, 10.0, 50.0));
  auto result = replay.replay(jobs);
  // The eval started at t=0 (delay 0) even though it was evicted at t=10.
  EXPECT_NEAR(result.jobs[0].queue_delay, 0.0, 1e-9);
  EXPECT_EQ(result.preemptions, 1);
  // Eval re-runs after the gang: 10 + 50 + 500 + 60 overhead.
  EXPECT_NEAR(result.makespan, 620.0, 1e-6);
}


// Property: even under heavy preemptive churn, resources are conserved and
// every job eventually completes.
class PreemptionStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptionStress, ConservationUnderChurn) {
  auto spec = tiny_cluster(8);
  SchedulerConfig config;
  config.pretrain_reservation = 0.0;
  config.allow_preemption = true;
  config.preempt_pretraining_for_fairness = true;
  config.fairness_wait_seconds = 50.0;
  config.preemption_overhead_seconds = 20.0;
  SchedulerReplay replay(spec, config);

  common::Rng rng(GetParam());
  trace::Trace jobs;
  for (std::uint64_t i = 1; i <= 120; ++i) {
    const bool pretrain = rng.bernoulli(0.25);
    const int gpus = pretrain ? static_cast<int>(rng.uniform_int(2, 6)) * 8
                              : static_cast<int>(rng.uniform_int(1, 16));
    jobs.push_back(make_job(i,
                            pretrain ? trace::WorkloadType::kPretrain
                                     : trace::WorkloadType::kDebug,
                            gpus, rng.uniform(0, 2000), rng.uniform(30, 600)));
  }
  std::sort(jobs.begin(), jobs.end(), [](const auto& a, const auto& b) {
    return a.submit_time < b.submit_time;
  });
  auto result = replay.replay(jobs, 25.0);
  EXPECT_EQ(result.unstarted, 0u);
  for (const auto& s : result.occupancy) {
    ASSERT_GE(s.busy_gpus, 0);
    ASSERT_LE(s.busy_gpus, s.total_gpus);
  }
  EXPECT_GE(result.wasted_gpu_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptionStress, ::testing::Values(3, 5, 9));

}  // namespace
}  // namespace acme::sched
