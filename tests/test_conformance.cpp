// Calibration conformance: machine-checks the DESIGN.md §4 targets with
// tolerance bands. These tests pin the synthesizer and subsystem models to
// the paper's published numbers — perturbing a calibration constant in
// src/trace by ~20% must trip at least one band here.
#include <gtest/gtest.h>

#include "core/acme.h"

namespace acme {
namespace {

using common::kMinute;

// Synthesizer-only traces: shares and duration/demand distributions are
// properties of the workload model, no scheduler replay needed. Seren runs
// at 1/8 job scale (distributions unchanged), Kalos at full scale.
const trace::Trace& seren_jobs() {
  static const trace::Trace jobs =
      trace::TraceSynthesizer(trace::scaled(trace::seren_profile(), 8.0))
          .generate();
  return jobs;
}

const trace::Trace& kalos_jobs() {
  static const trace::Trace jobs =
      trace::TraceSynthesizer(trace::kalos_profile()).generate();
  return jobs;
}

// ------------------------------------------------- workload mixes (Fig 4)

TEST(Conformance, KalosWorkloadMix) {
  const auto shares = trace::type_shares(kalos_jobs());
  const auto& pretrain = shares.at(trace::WorkloadType::kPretrain);
  const auto& eval = shares.at(trace::WorkloadType::kEvaluation);
  // Paper: pretrain 3.2% of jobs / 94.0% of GPU time. The synthesizer lands
  // slightly higher on both (≈4.6% / 98%) because pretrain campaigns resubmit
  // after failures, which the paper's job counts also include.
  EXPECT_NEAR(pretrain.count_fraction, 0.046, 0.012);
  EXPECT_GT(pretrain.gpu_time_fraction, 0.94);
  // Paper: eval 92.9% of jobs / 0.8% of GPU time.
  EXPECT_NEAR(eval.count_fraction, 0.913, 0.025);
  EXPECT_LT(eval.gpu_time_fraction, 0.02);
}

TEST(Conformance, SerenWorkloadMix) {
  const auto shares = trace::type_shares(seren_jobs());
  const auto& pretrain = shares.at(trace::WorkloadType::kPretrain);
  // Paper: pretrain 0.9% of jobs / 69.5% of GPU time.
  EXPECT_NEAR(pretrain.count_fraction, 0.009, 0.004);
  EXPECT_NEAR(pretrain.gpu_time_fraction, 0.695, 0.080);
}

// --------------------------------------------- durations & demand (Fig 2/3)

TEST(Conformance, MedianJobDurationIsAboutTwoMinutes) {
  // Paper: median GPU-job duration ≈ 2 min on both clusters (the synthesizer
  // measures ≈1.6 min — evaluation jobs dominate the count).
  const double seren_median = trace::durations(seren_jobs()).median();
  const double kalos_median = trace::durations(kalos_jobs()).median();
  EXPECT_GT(seren_median, 1.2 * kMinute);
  EXPECT_LT(seren_median, 2.2 * kMinute);
  EXPECT_GT(kalos_median, 1.2 * kMinute);
  EXPECT_LT(kalos_median, 2.2 * kMinute);
}

TEST(Conformance, KalosDemandConcentration) {
  const auto& jobs = kalos_jobs();
  const double total = trace::total_gpu_time(jobs);
  double ge256 = 0, single = 0;
  std::size_t gpu_jobs = 0, over8 = 0;
  for (const auto& job : jobs) {
    if (!job.is_gpu_job()) continue;
    ++gpu_jobs;
    const double gpu_time = static_cast<double>(job.gpus) * job.duration;
    if (job.gpus >= 256) ge256 += gpu_time;
    if (job.gpus == 1) single += gpu_time;
    if (job.gpus > 8) ++over8;
  }
  // Paper: ≥256-GPU jobs hold ≥96% of Kalos GPU time (measured ≈92%);
  // single-GPU jobs <2%; <7% of jobs request more than 8 GPUs.
  EXPECT_GT(ge256 / total, 0.90);
  EXPECT_LT(single / total, 0.01);
  EXPECT_LT(static_cast<double>(over8) / static_cast<double>(gpu_jobs), 0.075);
}

// -------------------------------------------------- final statuses (Fig 17)

TEST(Conformance, FinalStatusShares) {
  const auto shares = trace::status_shares(seren_jobs());
  const auto& failed = shares.at(trace::JobStatus::kFailed);
  const auto& canceled = shares.at(trace::JobStatus::kCanceled);
  const auto& completed = shares.at(trace::JobStatus::kCompleted);
  // Paper: ~40% of jobs fail; canceled ≈7% of jobs yet hold >60% of GPU
  // resources (measured ≈51%); completed jobs consume only 20-30% of GPU
  // resources (measured ≈36%).
  EXPECT_NEAR(failed.count_fraction, 0.40, 0.06);
  EXPECT_NEAR(canceled.count_fraction, 0.06, 0.03);
  EXPECT_GT(canceled.gpu_time_fraction, 0.45);
  EXPECT_LT(completed.gpu_time_fraction, 0.40);
}

// ------------------------------------------------- failure shares (Table 3)

TEST(Conformance, InfrastructureFailureShares) {
  double infra_count = 0, total_count = 0;
  double infra_gpu_time = 0, total_gpu_time = 0;
  for (const auto& spec : failure::failure_table()) {
    const double count = spec.count;
    // GPU time a reason consumes before failing: demand × time-to-failure.
    const double gpu_time = count * spec.demand_avg * spec.ttf_avg_min;
    total_count += count;
    total_gpu_time += gpu_time;
    if (spec.category == failure::FailureCategory::kInfrastructure) {
      infra_count += count;
      infra_gpu_time += gpu_time;
    }
  }
  // Paper: infrastructure failures are 11% of failures but 82% of the GPU
  // time consumed by failed jobs.
  EXPECT_NEAR(infra_count / total_count, 0.11, 0.03);
  EXPECT_NEAR(infra_gpu_time / total_gpu_time, 0.82, 0.08);
}

// -------------------------------------------- checkpoint speedups (§6.1-1)

TEST(Conformance, AsyncCheckpointSpeedupBounds) {
  ckpt::CheckpointTimingModel timing;
  const double s7b = timing.sync_blocking_seconds(parallel::llm_7b().params(), 64) /
                     timing.async_blocking_seconds(parallel::llm_7b().params(), 64);
  const double s123b =
      timing.sync_blocking_seconds(parallel::llm_123b().params(), 2048) /
      timing.async_blocking_seconds(parallel::llm_123b().params(), 2048);
  // Paper: 3.6x (7B) up to 58.7x (123B). The deterministic timing model
  // spans ≈8.6x to ≈50x — it reproduces the order of magnitude and the
  // strong growth with scale rather than the exact endpoints.
  EXPECT_GT(s7b, 6.5);
  EXPECT_LT(s7b, 11.0);
  EXPECT_GT(s123b, 40.0);
  EXPECT_LT(s123b, 62.0);
  // The speedup grows with scale (larger worlds shard the snapshot thinner
  // while sync persists the full payload through the same storage NICs).
  EXPECT_GT(s123b, s7b);
}

// ------------------------------------------------ eval makespan (§6.2)

TEST(Conformance, EvalMakespanReductionRatios) {
  const auto& suite = evalsched::dataset_suite();
  auto ratio = [&](int nodes) {
    const double base =
        evalsched::TrialCoordinator(
            evalsched::TrialCoordinator::baseline_config(nodes))
            .run(suite)
            .makespan;
    const double ours =
        evalsched::TrialCoordinator(
            evalsched::TrialCoordinator::coordinator_config(nodes))
            .run(suite)
            .makespan;
    return base / ours;
  };
  // Paper: makespan shrinks 1.3x on 1 node and 1.8x on 4 nodes.
  const double one_node = ratio(1);
  const double four_nodes = ratio(4);
  EXPECT_GT(one_node, 1.15);
  EXPECT_LT(one_node, 1.60);
  EXPECT_GT(four_nodes, 1.50);
  EXPECT_LT(four_nodes, 2.20);
  EXPECT_GT(four_nodes, one_node);
}

}  // namespace
}  // namespace acme
