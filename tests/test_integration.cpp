// Cross-module integration tests: the six-month simulation end to end, the
// fleet-sampler wiring, and the full §6.1 failure-handling loop.
#include <gtest/gtest.h>

#include "core/acme.h"

namespace acme {
namespace {

using common::kMinute;

const core::SixMonthReplay& seren_replay() {
  static const core::SixMonthReplay replay =
      core::run_six_month_replay(core::seren_setup(), 20.0);
  return replay;
}

const core::SixMonthReplay& kalos_replay() {
  static const core::SixMonthReplay replay =
      core::run_six_month_replay(core::kalos_setup(), 4.0);
  return replay;
}

TEST(SixMonth, AllJobsScheduledAndAccounted) {
  for (const auto* replay : {&seren_replay(), &kalos_replay()}) {
    EXPECT_EQ(replay->replay.unstarted, 0u);
    EXPECT_GT(replay->replay.jobs.size(), 1000u);
    EXPECT_GT(replay->busy_fraction, 0.4);
    EXPECT_LT(replay->busy_fraction, 1.0);
  }
}

TEST(SixMonth, KalosBusierThanSeren) {
  // Kalos is pretraining-dominated and runs hotter.
  EXPECT_GT(kalos_replay().busy_fraction, 0.65);
}

TEST(SixMonth, EvalDelaysLongestInBothClusters) {
  for (const auto* replay : {&seren_replay(), &kalos_replay()}) {
    const auto& jobs = replay->replay.jobs;
    const auto eval = trace::queue_delays_of(jobs, trace::WorkloadType::kEvaluation);
    const auto pretrain = trace::queue_delays_of(jobs, trace::WorkloadType::kPretrain);
    EXPECT_GT(eval.median(), pretrain.median());
    EXPECT_GT(eval.median(), 2 * kMinute);
    EXPECT_LT(pretrain.median(), 1 * kMinute);
  }
}

TEST(SixMonth, FleetConfigDerivedFromReplay) {
  const auto config = core::fleet_config_from(core::kalos_setup(), kalos_replay());
  EXPECT_EQ(config.spec.name, "Kalos");
  EXPECT_GT(config.busy_fraction, 0.5);
  ASSERT_TRUE(config.gputime_mix.count(trace::WorkloadType::kPretrain));
  EXPECT_GT(config.gputime_mix.at(trace::WorkloadType::kPretrain), 0.8);

  telemetry::FleetSampler sampler(config);
  common::Rng rng(1);
  const auto metrics = sampler.sample(5000, rng);
  EXPECT_GT(metrics.gpu_util.median(), 80.0);
}

// The full §6.1 loop: inject a hardware failure mid-training, diagnose from
// the synthesized log, localize the faulty node with the two-round test,
// cordon it on the cluster state, and restart from the durable checkpoint.
TEST(FailureHandling, EndToEndAutoRecoveryLoop) {
  common::Rng rng(42);
  const auto& spec = failure::spec_for("NVLink Error");

  // 1. Failure fires; runtime log captured.
  failure::LogSynthesizer synth;
  const auto log = synth.failed_run(spec, rng);

  // 2. Compression + diagnosis.
  diagnosis::FilterRules rules;
  diagnosis::LogAgent log_agent;
  log_agent.update_rules(synth.healthy_run(rng).lines, rules);
  const auto compressed = rules.compress(log.lines);
  EXPECT_LT(compressed.size(), log.lines.size());

  diagnosis::FailureAgent agent;
  std::vector<const failure::FailureSpec*> specs;
  for (const auto& s : failure::failure_table()) specs.push_back(&s);
  agent.seed_rules(specs);
  const auto verdict = agent.diagnose(compressed);
  ASSERT_EQ(verdict.reason, "NVLink Error");
  ASSERT_TRUE(verdict.needs_node_detection);

  // 3. Localization over the job's nodes; node 17 is broken.
  cluster::ClusterState state(cluster::kalos_spec());
  auto probe = state.healthy_idle_nodes();
  probe.resize(128);  // the job's 1024-GPU footprint
  const auto localization = recovery::two_round_localize(
      probe, [](cluster::NodeId id) { return id == 17; });
  ASSERT_EQ(localization.faulty, (std::vector<cluster::NodeId>{17}));

  // 4. Cordon and verify the replacement allocation avoids the bad node.
  for (auto id : localization.faulty) state.cordon(id);
  const auto alloc = state.try_allocate(1024);
  ASSERT_TRUE(alloc.has_value());
  for (const auto& slice : alloc->slices) EXPECT_NE(slice.node, 17);

  // 5. Restart from the latest durable checkpoint.
  ckpt::CheckpointLedger ledger;
  ledger.record(1000, 100.0, 160.0);
  ledger.record(2000, 200.0, 260.0);
  const auto resume = ledger.latest_durable(230.0);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->step, 1000u);  // step 2000 was still persisting
}

TEST(FailureHandling, CheckpointWriterSurvivesRunnerScaleState) {
  // Glue check: the timing model's per-GPU shard for a 123B/2048-GPU job is
  // what a real writer would stage; stage and persist one for real.
  ckpt::CheckpointTimingModel timing;
  const double shard =
      timing.bytes_per_gpu(parallel::llm_123b().params(), 2048);
  EXPECT_LT(shard, 2e9);  // fits trivially in host memory

  ckpt::NullSink sink;
  ckpt::AsyncCheckpointWriter writer(sink, 2);
  std::vector<std::byte> state(1 << 16);
  writer.snapshot(1, state);
  writer.flush();
  EXPECT_EQ(writer.stats().persisted, 1u);
}

TEST(Environmental, SixMonthEnergyAndCarbonPlausible) {
  // Integrate server power over the replayed occupancy to an energy figure
  // in the neighborhood of the paper's 673 MWh/month for Seren.
  const auto& replay = seren_replay();
  const auto config = core::fleet_config_from(core::seren_setup(), replay);
  telemetry::FleetSampler sampler(config);
  common::Rng rng(3);
  const auto metrics = sampler.sample(4000, rng);
  const double mean_server_w = metrics.server_power_w.mean();
  const double month_mwh =
      mean_server_w * 286 * (30.0 * 24.0) / 1e6;  // W -> MWh over a month
  EXPECT_GT(month_mwh, 300.0);
  EXPECT_LT(month_mwh, 1400.0);
  const cluster::CarbonModel carbon;
  EXPECT_NEAR(carbon.emissions_tco2e(month_mwh) / month_mwh, 0.478, 1e-9);
}

}  // namespace
}  // namespace acme
