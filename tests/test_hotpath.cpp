// Unit coverage for the allocation-free replay hot path's building blocks:
// InlineFn capture-size edges, intrusive IndexList mutation-during-iteration,
// IndexBitSet word-boundary iteration, SmallVec spill reuse, and Engine
// reset/reserve semantics (the basis for Monte Carlo scratch reuse).
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/index_bitset.h"
#include "common/index_list.h"
#include "common/inline_fn.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "common/stats.h"
#include "mc/aggregate.h"
#include "sim/engine.h"

namespace acme {
namespace {

// --- InlineFn -------------------------------------------------------------

using Fn40 = common::InlineFn<40>;

struct Exactly40 {
  char bytes[40];
  void operator()() {}
};
struct OneOver {
  char bytes[41];
  void operator()() {}
};
struct OverAligned {
  alignas(32) char bytes[8];
  void operator()() {}
};
struct ThrowingMove {
  ThrowingMove() = default;
  ThrowingMove(ThrowingMove&&) noexcept(false) {}
  void operator()() {}
};

// The budget is enforced at compile time: exactly-at-capacity fits, one byte
// over (or an alignment/move contract violation) does not.
static_assert(Fn40::fits<Exactly40>());
static_assert(!Fn40::fits<OneOver>());
static_assert(!Fn40::fits<OverAligned>());
static_assert(!Fn40::fits<ThrowingMove>());

TEST(InlineFn, EmptyStatesAreFalsy) {
  Fn40 a;
  Fn40 b(nullptr);
  EXPECT_FALSE(a);
  EXPECT_FALSE(b);
  Fn40 c = [] {};
  EXPECT_TRUE(c);
  c = nullptr;
  EXPECT_FALSE(c);
}

TEST(InlineFn, CaptureAtExactCapacityInvokes) {
  struct Pad {
    char pad[32];
  };
  Pad pad{};
  pad.pad[0] = 7;
  int hits = 0;
  int* counter = &hits;
  // 32-byte pad + 8-byte pointer = the full 40-byte budget.
  auto lambda = [pad, counter] { *counter += pad.pad[0]; };
  static_assert(sizeof(lambda) == 40);
  static_assert(Fn40::fits<decltype(lambda)>());
  Fn40 fn = std::move(lambda);
  fn();
  fn();
  EXPECT_EQ(hits, 14);
}

TEST(InlineFn, MoveTransfersTrivialCapture) {
  int hits = 0;
  int* counter = &hits;
  Fn40 a = [counter] { ++*counter; };
  Fn40 b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  b();
  Fn40 c;
  c = std::move(b);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, NonTrivialCaptureDestroyedOnResetMoveAndReplace) {
  auto token = std::make_shared<int>(42);
  EXPECT_EQ(token.use_count(), 1);
  {
    Fn40 a = [token] { (void)*token; };
    EXPECT_EQ(token.use_count(), 2);
    Fn40 b = std::move(a);  // real move manager runs: count stays 2
    EXPECT_EQ(token.use_count(), 2);
    b.reset();
    EXPECT_EQ(token.use_count(), 1);
    b = [token] { (void)*token; };
    EXPECT_EQ(token.use_count(), 2);
    b.emplace([] {});  // replacing the occupant destroys it
    EXPECT_EQ(token.use_count(), 1);
    b = [token] { (void)*token; };
  }  // destructor releases the last copy
  EXPECT_EQ(token.use_count(), 1);
}

// --- IndexList ------------------------------------------------------------

TEST(IndexList, FifoOrderAndO1Erase) {
  common::IndexLinks links;
  links.assign(8);
  common::IndexList list;
  for (std::uint32_t i : {3u, 1u, 4u, 5u, 2u}) list.push_back(links, i);
  EXPECT_EQ(list.size(), 5u);
  list.erase(links, 4);  // middle
  list.erase(links, 3);  // head
  list.erase(links, 2);  // tail
  std::vector<std::uint32_t> out;
  list.copy_to(links, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(list.pop_front(links), 1u);
  EXPECT_EQ(list.pop_front(links), 5u);
  EXPECT_TRUE(list.empty());
}

TEST(IndexList, UnlinkCurrentDuringIteration) {
  common::IndexLinks links;
  links.assign(6);
  common::IndexList list;
  for (std::uint32_t i = 0; i < 6; ++i) list.push_back(links, i);
  // The scheduler's scan pattern: capture the successor before erasing.
  std::vector<std::uint32_t> visited;
  for (std::uint32_t i = list.front(); i != common::kIndexNpos;) {
    const std::uint32_t nxt = common::IndexList::next_of(links, i);
    visited.push_back(i);
    if (i % 2 == 0) list.erase(links, i);  // evict every even element
    i = nxt;
  }
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  std::vector<std::uint32_t> out;
  list.copy_to(links, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(IndexList, TailAppendDuringIterationIsVisited) {
  // try_start may evict victims that re-enter the queue at the tail while
  // try_dispatch is mid-scan; the captured successor must reach them.
  common::IndexLinks links;
  links.assign(4);
  common::IndexList list;
  list.push_back(links, 0);
  list.push_back(links, 1);
  std::vector<std::uint32_t> visited;
  bool appended = false;
  for (std::uint32_t i = list.front(); i != common::kIndexNpos;) {
    visited.push_back(i);
    if (!appended) {
      list.push_back(links, 3);  // victim re-enters at the tail mid-scan
      appended = true;
    }
    // Successor read after the append, so the new tail is already threaded.
    i = common::IndexList::next_of(links, i);
  }
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(IndexList, ClearRethreadsArenaForReuse) {
  common::IndexLinks links;
  links.assign(3);
  common::IndexList list;
  for (std::uint32_t i = 0; i < 3; ++i) list.push_back(links, i);
  list.clear(links);
  EXPECT_TRUE(list.empty());
  // Every link must be unthreaded so reinsertion starts clean.
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(links.prev[i], common::kIndexNpos);
    EXPECT_EQ(links.next[i], common::kIndexNpos);
  }
  list.push_back(links, 2);
  list.push_back(links, 0);
  std::vector<std::uint32_t> out;
  list.copy_to(links, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2, 0}));
}

// --- IndexBitSet ----------------------------------------------------------

TEST(IndexBitSet, IdempotentCountAndWordBoundaryIteration) {
  common::IndexBitSet set(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) set.insert(i);
  set.insert(63);  // duplicate: count must stay exact
  EXPECT_EQ(set.size(), 6u);
  set.erase(42);  // non-member: no-op
  EXPECT_EQ(set.size(), 6u);
  std::vector<int> out;
  set.append_to(out);
  EXPECT_EQ(out, (std::vector<int>{0, 63, 64, 127, 128, 199}));
  EXPECT_EQ(set.first(), 0u);
  EXPECT_EQ(set.next(63), 64u);
  EXPECT_EQ(set.next(128), 199u);
  EXPECT_EQ(set.next(199), common::IndexBitSet::npos);
  set.erase(0);
  set.erase(63);
  EXPECT_EQ(set.first(), 64u);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.first(), common::IndexBitSet::npos);
}

// --- SmallVec -------------------------------------------------------------

TEST(SmallVec, SpillPreservesElementsAndClearKeepsCapacity) {
  common::SmallVec<int, 2> v;
  EXPECT_TRUE(v.inline_storage());
  for (int i = 0; i < 7; ++i) v.push_back(i);
  EXPECT_FALSE(v.inline_storage());
  ASSERT_EQ(v.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  const std::size_t spilled_cap = v.capacity();
  EXPECT_GE(spilled_cap, 7u);
  // clear() must keep the heap block: refilling reuses the same capacity.
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), spilled_cap);
  EXPECT_FALSE(v.inline_storage());
  const int* block = v.data();
  for (int i = 0; i < 7; ++i) v.push_back(10 + i);
  EXPECT_EQ(v.data(), block);  // no reallocation on refill
  EXPECT_EQ(v.back(), 16);
}

TEST(SmallVec, ReserveSpillsOnceUpFront) {
  common::SmallVec<int, 2> v;
  v.reserve(5);
  EXPECT_GE(v.capacity(), 5u);
  const int* block = v.data();
  for (int i = 0; i < 5; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), block);  // pushes within the reservation never move
}

// --- Engine reset / reserve ----------------------------------------------

// Runs a deterministic schedule mix (out-of-order pushes, schedule-during-
// fire, a mid-flight cancel) and records the exact fire order and times.
std::vector<std::pair<double, int>> run_pattern(sim::Engine& eng) {
  std::vector<std::pair<double, int>> fired;
  sim::EventHandle doomed;
  for (int i = 0; i < 12; ++i) {
    const double t = static_cast<double>((i * 7) % 12);  // permuted times
    auto h = eng.schedule_at(t, [&fired, &eng, i] {
      fired.emplace_back(eng.now(), i);
      if (i % 3 == 0) {
        eng.schedule_after(0.5, [&fired, &eng, i] {
          fired.emplace_back(eng.now(), 100 + i);
        });
      }
    });
    if (i == 5) doomed = h;
  }
  EXPECT_TRUE(eng.cancel(doomed));
  eng.run();
  return fired;
}

TEST(EngineReset, ReusedEngineIsBitIdenticalToFresh) {
  sim::Engine fresh;
  const auto want = run_pattern(fresh);
  ASSERT_EQ(want.size(), 15u);  // 12 - 1 cancelled + 4 chained

  sim::Engine reused;
  ASSERT_EQ(run_pattern(reused), want);
  reused.reset();
  EXPECT_DOUBLE_EQ(reused.now(), 0.0);
  EXPECT_EQ(reused.pending(), 0u);
  EXPECT_EQ(reused.events_fired(), 0u);
  // Same schedule on the recycled storage: identical times AND order.
  EXPECT_EQ(run_pattern(reused), want);
}

TEST(EngineReset, DropsPendingEvents) {
  sim::Engine eng;
  int hits = 0;
  eng.schedule_at(1.0, [&hits] { ++hits; });
  eng.schedule_at(2.0, [&hits] { ++hits; });
  eng.reset();
  EXPECT_EQ(eng.pending(), 0u);
  eng.run();
  EXPECT_EQ(hits, 0);
}

TEST(EngineReserve, DoesNotChangeBehavior) {
  sim::Engine plain;
  sim::Engine reserved;
  reserved.reserve(64);
  EXPECT_EQ(run_pattern(reserved), run_pattern(plain));
}

// --- Streaming-accumulator state round-trips (snapshot support) ---
//
// A sketch whose state is exported mid-stream and re-imported into a fresh
// instance must finish a long tail of additions bit-identically to the
// uninterrupted one; otherwise a restored world's latency quantiles drift.

TEST(SnapshotState, WelfordRoundTripContinuesBitIdentically) {
  common::Rng rng(77);
  common::StreamingStats straight;
  for (int i = 0; i < 500; ++i) straight.add(rng.uniform() * 100.0);
  common::StreamingStats resumed;
  resumed.set_state(straight.state());
  common::Rng tail_a = rng;
  common::Rng tail_b = rng;
  for (int i = 0; i < 500; ++i) straight.add(tail_a.uniform() * 100.0);
  for (int i = 0; i < 500; ++i) resumed.add(tail_b.uniform() * 100.0);
  EXPECT_EQ(straight.count(), resumed.count());
  EXPECT_EQ(straight.mean(), resumed.mean());      // bitwise, not approx
  EXPECT_EQ(straight.stddev(), resumed.stddev());
  EXPECT_EQ(straight.min(), resumed.min());
  EXPECT_EQ(straight.max(), resumed.max());
  EXPECT_EQ(straight.sum(), resumed.sum());
}

TEST(SnapshotState, P2QuantileRoundTripContinuesBitIdentically) {
  common::Rng rng(78);
  mc::P2Quantile straight(0.99);
  for (int i = 0; i < 400; ++i) straight.add(rng.exponential(1.0));
  mc::P2Quantile resumed(0.99);
  resumed.set_state(straight.state());
  common::Rng tail_a = rng;
  common::Rng tail_b = rng;
  for (int i = 0; i < 400; ++i) straight.add(tail_a.exponential(1.0));
  for (int i = 0; i < 400; ++i) resumed.add(tail_b.exponential(1.0));
  EXPECT_EQ(straight.value(), resumed.value());  // bitwise
}

TEST(SnapshotState, P2QuantileRejectsMismatchedQuantile) {
  mc::P2Quantile p50(0.5);
  p50.add(1.0);
  mc::P2Quantile p99(0.99);
  EXPECT_THROW(p99.set_state(p50.state()), common::CheckError);
}

TEST(EngineQueue, OutOfOrderAndTiedTimesFireInSeqOrder) {
  // Exercise both levels of the two-level queue: an ascending run, then
  // out-of-order pushes (heap path), with a time tie broken by insertion seq.
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(1.0, [&order] { order.push_back(1); });
  eng.schedule_at(5.0, [&order] { order.push_back(2); });  // sorted run
  eng.schedule_at(3.0, [&order] { order.push_back(3); });  // heap
  eng.schedule_at(3.0, [&order] { order.push_back(4); });  // tie: after 3
  eng.schedule_at(0.5, [&order] { order.push_back(5); });  // heap, new min
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{5, 1, 3, 4, 2}));
  EXPECT_EQ(eng.events_fired(), 5u);
}

}  // namespace
}  // namespace acme
