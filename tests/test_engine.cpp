#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace acme::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_at(5.0, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1;
  e.schedule_at(7.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  double seen = -1;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 15.0);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), common::CheckError);
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), common::CheckError);
  EXPECT_THROW(e.schedule_at(20.0, nullptr), common::CheckError);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  auto handle = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(handle));
  EXPECT_FALSE(e.cancel(handle));  // idempotent
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelDefaultHandleIsNoop) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventHandle{}));
}

TEST(Engine, RunUntilStopsAtHorizonInclusive) {
  Engine e;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) e.schedule_at(t, [&, t] { fired.push_back(t); });
  EXPECT_EQ(e.run_until(2.0), 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.run(), 2u);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  EXPECT_EQ(e.run_until(100.0), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 100.0);
}

TEST(Engine, ReentrantSchedulingChains) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

TEST(Engine, PendingCountExcludesCancelled) {
  Engine e;
  auto h1 = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(h1);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, EventsFiredCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_fired(), 5u);
}

// Property: any random schedule fires in non-decreasing time order, and
// cancelled events never fire.
class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, RandomScheduleOrderedAndCancelRespected) {
  Engine e;
  common::Rng rng(GetParam());
  std::vector<double> fire_times;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform(0, 1000);
    handles.push_back(e.schedule_at(t, [&e, &fire_times] {
      fire_times.push_back(e.now());
    }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); ++i)
    if (rng.bernoulli(0.33) && e.cancel(handles[i])) ++cancelled;
  const std::size_t fired = e.run();
  EXPECT_EQ(fired, 2000u - cancelled);
  for (std::size_t i = 1; i < fire_times.size(); ++i)
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress, ::testing::Values(1, 2, 3, 4));


TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  auto handle = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(handle));
}

TEST(Engine, EventAtExactHorizonFires) {
  Engine e;
  bool fired = false;
  e.schedule_at(10.0, [&] { fired = true; });
  e.run_until(10.0);
  EXPECT_TRUE(fired);
}

// Edge cases relied on by the MC worker pool wiring: cancelling handles that
// already fired via step(), step() exactly at the horizon, and re-entrant
// scheduling while run_until drains a bounded window.

TEST(Engine, StepAtExactHorizonFires) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  EXPECT_TRUE(e.step(5.0));  // horizon == event time is inclusive
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, StepBeyondHorizonLeavesEventPending) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  EXPECT_FALSE(e.step(4.999999));
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);  // step never advances past the horizon
}

TEST(Engine, CancelHandleFiredByStepReturnsFalse) {
  Engine e;
  auto h = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.step(1.0));
  EXPECT_FALSE(e.cancel(h));      // already fired
  EXPECT_FALSE(e.cancel(h));      // still false, no phantom pending entries
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelledThenFiredSequenceStaysConsistent) {
  Engine e;
  auto victim = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_TRUE(e.cancel(victim));
  EXPECT_EQ(e.run(), 1u);
  EXPECT_FALSE(e.cancel(victim));  // cancelled entry already reaped
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, ReentrantSchedulingDuringRunUntil) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] {
    fired.push_back(e.now());
    // Both inside and beyond the active horizon.
    e.schedule_after(0.5, [&] { fired.push_back(e.now()); });
    e.schedule_after(9.0, [&] { fired.push_back(e.now()); });
  });
  EXPECT_EQ(e.run_until(2.0), 2u);  // t=1 and the re-entrant t=1.5
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 1u);       // t=10 still queued
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(fired.back(), 10.0);
}

TEST(Engine, ReentrantScheduleAtCurrentTimeFiresInSameRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(3.0, [&] {
    ++fired;
    e.schedule_at(3.0, [&] { ++fired; });  // zero-delay re-entrant event
  });
  EXPECT_EQ(e.run_until(3.0), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelFromInsideAnEvent) {
  Engine e;
  bool victim_fired = false;
  auto victim = e.schedule_at(2.0, [&] { victim_fired = true; });
  e.schedule_at(1.0, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Engine, DoubleCancelSecondCallFails) {
  Engine e;
  bool fired = false;
  auto h = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // slot already retired, generation moved on
  EXPECT_FALSE(e.cancel(h));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, StaleHandleCannotCancelRecycledSlot) {
  Engine e;
  auto first = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(first));
  // The freed slot is recycled for the next event with a bumped generation;
  // the stale handle must not be able to touch the new occupant.
  bool fired = false;
  auto second = e.schedule_at(2.0, [&] { fired = true; });
  EXPECT_FALSE(e.cancel(first));
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(e.cancel(second));
}

TEST(Engine, HandleInvalidationAcrossManyRecycles) {
  Engine e;
  auto stale = e.schedule_at(1.0, [] {});
  ASSERT_TRUE(e.cancel(stale));
  // Drive the slot through many schedule/fire cycles: the stale handle stays
  // dead no matter how often its slot is reused.
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(static_cast<double>(i + 1), [&] { ++fired; });
    e.run();
    EXPECT_FALSE(e.cancel(stale));
  }
  EXPECT_EQ(fired, 100);
}

TEST(Engine, PendingStaysExactUnderMassCancellation) {
  Engine e;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i)
    handles.push_back(e.schedule_at(static_cast<double>(i), [] {}));
  EXPECT_EQ(e.pending(), 1000u);
  // Cancel every other event; the cancelled heap entries linger internally
  // but pending() must count live events only.
  for (std::size_t i = 0; i < handles.size(); i += 2)
    EXPECT_TRUE(e.cancel(handles[i]));
  EXPECT_EQ(e.pending(), 500u);
  std::size_t fired = e.run();
  EXPECT_EQ(fired, 500u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, ReentrantScheduleDuringStepIsCancellable) {
  Engine e;
  bool inner_fired = false;
  EventHandle inner;
  e.schedule_at(1.0, [&] {
    inner = e.schedule_after(1.0, [&] { inner_fired = true; });
  });
  EXPECT_TRUE(e.step(10.0));  // fires the outer event, arming the inner one
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_TRUE(e.cancel(inner));
  e.run();
  EXPECT_FALSE(inner_fired);
}

TEST(Engine, SlotsAreRecycledNotLeaked) {
  // Schedule/fire far more events than live at once: the slot vector stays
  // small because retirements feed the free list.
  Engine e;
  std::function<void()> chain;
  int remaining = 10000;
  chain = [&] {
    if (--remaining > 0) e.schedule_after(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(e.pending(), 0u);
}

}  // namespace
}  // namespace acme::sim
