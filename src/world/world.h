// The integrated world: one discrete-event spine for the whole datacenter.
//
// World composes what the single-subsystem entry points exercise in
// isolation — cluster spec + synthesized six-month trace + quota scheduler +
// live failure injection (paper Table 3) + recovery pricing (§6.1: diagnose,
// two-round localize, NCCL bring-up, checkpoint reload) + fleet telemetry +
// an optional inference serving fleet (src/serve) — on ONE shared
// sim::Engine. A scenario picks the mix: pretrain-only (the default),
// serve-only (pretrain=false), or co-located, where the serving replicas
// carve nodes out of the scheduler's cluster and Table 3 failures land on
// either side in proportion to its GPU share. Failures fire as engine events against whatever
// pretraining job is actually running at that instant; the victim loses up
// to a checkpoint interval of progress, pays the recovery stall, and
// re-enters the scheduler queues, where its resubmission contends with (and
// delays) queued evaluation batches. That failure -> recovery -> queue
// interaction is the paper's §5/§6.1 story and is invisible to any
// single-silo replay.
//
// Determinism contract: a World run is a pure function of its ScenarioSpec.
// All randomness forks off Rng(spec.seed) with fixed labels ("world-failures",
// "world-fleet"; trace synthesis uses spec.seed directly), and the engine
// fires same-timestamp events in insertion order, with insertions ordered by
// the fixed composition sequence (scheduler submissions + occupancy sampler
// at begin_replay, then the failure chain). Repeated runs — and runs inside
// run_world_mc at any thread count — produce byte-identical reports and obs
// snapshots (see DESIGN.md §9).
#pragma once

#include <optional>
#include <string>

#include "ckpt/timing.h"
#include "cluster/domain.h"
#include "comm/collective.h"
#include "common/rng.h"
#include "common/stats.h"
#include "failure/injector.h"
#include "mc/replication.h"
#include "sched/scheduler.h"
#include "serve/fleet.h"
#include "sim/engine.h"
#include "sim/window.h"
#include "task/task.h"
#include "telemetry/fleet_sampler.h"
#include "world/scenario.h"

namespace acme::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace acme::snap

namespace acme::world {

struct WorldReport {
  sched::ReplayResult replay;
  double busy_fraction = 0;  // time-averaged GPU occupancy
  double makespan_days = 0;

  // Failure/recovery accounting.
  int failures_injected = 0;     // failure events that killed a running job
  int failures_no_victim = 0;    // fired while no pretraining was running
  int localizations = 0;         // two-round localizations (hardware faults)
  int manual_recoveries = 0;     // on-call TTR path (auto_recovery off)
  double recovery_stall_seconds = 0;  // total restart stall charged
  double lost_work_gpu_seconds = 0;   // progress rolled back (ckpt-bounded)
  double stall_gpu_seconds = 0;       // victim GPUs idled by recovery stalls
  // Infrastructure slice of the injected failures (paper §5.2: 11% of
  // failures, 82% of failure GPU time).
  int infra_failures = 0;
  double infra_lost_gpu_seconds = 0;

  // Queue delays per class, the observable end of the failure -> recovery ->
  // queue interaction (a killed pretraining job's resubmission delays queued
  // evaluation trials).
  common::SampleStats pretrain_queue_delay;
  common::SampleStats eval_queue_delay;

  // Goodput: useful GPU-seconds over useful + lost + recovery-stalled, the
  // §6.1 framing ("wasted time caused by failures" vs delivered training).
  double goodput = 1.0;

  telemetry::FleetMetrics fleet;  // sampled from the replay occupancy

  // Inference serving (spec.serve_replicas > 0): the fleet's own counters and
  // latency quantiles. `served` distinguishes "no serving configured" from a
  // fleet that saw zero traffic.
  bool served = false;
  serve::FleetReport serve;

  // Correlated domain outages (spec.domain_failures over a non-trivial
  // topology): switch/PDU/cooling events that cordon a whole subtree and
  // kill every resident job in one injection. `domain_enabled` distinguishes
  // "no domain chain armed" from a run that saw zero outages.
  bool domain_enabled = false;
  int domain_failures_injected = 0;  // domain events that fired
  int domain_failures_no_victim = 0;  // subtree held no running job
  int domain_jobs_killed = 0;         // residents killed across all events
  int domain_nodes_cordoned = 0;      // blast radius, summed over events
  double domain_outage_seconds = 0;   // cordon duration, summed over events

  // FNV-1a over every counter, a fixed-precision rendering of every derived
  // value, the full occupancy timeline and every job's queue delay: two
  // reports digest equal iff the runs were observably identical. This is the
  // snapshot determinism oracle (save -> restore -> run-to-end must digest
  // equal to the uninterrupted run).
  std::uint64_t digest() const;
};

// The serve::ServeConfig a scenario resolves to — the single mapping the
// world driver, the serve benches and the tests all share. Requires
// spec.serving().
serve::ServeConfig serve_config(const ScenarioSpec& spec);

class World {
 public:
  explicit World(ScenarioSpec spec);

  // Runs the scenario start-to-drain on the world's engine. Equivalent to
  // prepare() + engine().run() + finish().
  WorldReport run();

  // run(), but the event spine drains through sim::WindowRunner on `pool`
  // (what `--workers N` plumbs to). One World is ONE partition — a single
  // coupled cluster cannot be split without changing scheduling decisions —
  // so within a world the pool buys thread-boundary coverage, not speedup;
  // multi-partition speedup comes from world::run_fleet and
  // core::run_sharded_replay. `window_seconds` <= 0 drains in one window.
  // The report digests byte-identical to run() at any worker count and any
  // window size (the §13 invariant test_determinism pins), and the call
  // composes with the snapshot protocol: a restored world may resume through
  // run_parallel instead of run_until/finish.
  WorldReport run_parallel(task::Pool& pool, double window_seconds = 0);

  // --- Incremental protocol (snapshot / fast-forward surface) ---
  //
  // prepare() stands the subsystems up and arms their initial events
  // (idempotent); run_until(t) pumps every event with timestamp <= t, leaving
  // the clock at the LAST FIRED event (not t) so a later finish() computes
  // the same makespan as an uninterrupted run; finish() aggregates the
  // report once the engine drained. A quiescent point is anywhere between
  // run_until calls.
  void prepare();
  std::size_t run_until(double t);
  bool done() const { return prepared_ && engine_.pending() == 0; }
  WorldReport finish();

  // --- Snapshot support (acme::snap, DESIGN.md §12) ---
  //
  // save() serializes the full world state — spec, failure chain, engine
  // spine, scheduler replay, serve fleet — at any quiescent point between
  // prepare() and finish(). restore() rebuilds that state into a World
  // freshly constructed from the SAME spec (checked against the embedded
  // spec JSON; use snapshot_spec() to recover it from a file first) and
  // rebinds every pending event callback; resuming produces byte-identical
  // reports to the uninterrupted run.
  void save(snap::SnapshotWriter& w) const;
  void save_file(const std::string& path) const;
  void restore(snap::SnapshotReader& r);
  void restore_file(const std::string& path);

  // Branch point for what-if exploration: re-forks the failure stream so
  // this (typically just-restored) world's future failures diverge from the
  // parent run while the past stays shared. Distinct labels give distinct
  // futures; the same label replays the parent's.
  void branch_future(std::string_view label);

  const ScenarioSpec& spec() const { return spec_; }
  sim::Engine& engine() { return engine_; }

 private:
  // Builds fleet_/sched_ and the failure machinery in the canonical order
  // WITHOUT scheduling any events; fills `pretrain_jobs` with the
  // synthesized trace when the scenario pretrains (prepare moves it into
  // begin_replay; restore hands it to restore_replay for digest checking).
  // Stands the subsystems up in the canonical order. When `synthesize` is
  // true the pretraining trace is generated from the spec into
  // `pretrain_jobs` (the prepare() path); restore() passes false because the
  // snapshot carries the trace and hands it straight to the scheduler.
  void construct_subsystems(trace::Trace& pretrain_jobs, bool synthesize);
  void arm_next_failure();
  void fire_failure();
  void arm_next_domain_failure();
  void fire_domain_failure();
  void repair_domain();

  ScenarioSpec spec_;
  ClusterInputs inputs_;
  sim::Engine engine_;

  // Run state, live between prepare() and finish(). Subsystems hold
  // references into engine_, so a World is pinned in place once prepared.
  bool prepared_ = false;
  bool finished_ = false;
  cluster::ClusterSpec sched_spec_;
  std::optional<serve::ServeFleet> fleet_;
  std::optional<sched::SchedulerReplay> sched_;
  std::optional<failure::FailureInjector> injector_;
  std::optional<comm::CollectiveModel> fabric_;
  ckpt::CheckpointTimingModel ckpt_timing_;
  common::Rng failure_rng_;
  int campaign_gpus_ = 256;
  int gpus_per_node_ = 1;
  double serve_share_ = 0.0;
  // Pending failure-chain event; cleared at fire so valid() <=> pending.
  sim::EventHandle failure_event_;
  // Correlated domain-outage chain (armed only when domain_enabled_). One
  // handle covers both phases: domain_down_ == kInvalidDomain means the
  // pending event is the next outage, a valid id means it is the repair of
  // that domain.
  bool domain_enabled_ = false;
  cluster::DomainTree domain_tree_;
  common::Rng domain_rng_;
  sim::EventHandle domain_event_;
  cluster::DomainId domain_down_ = cluster::kInvalidDomain;
  std::uint32_t domain_reason_ = 0;  // row index into domain_failure_table()
  std::vector<std::size_t> domain_scratch_;  // resident-job scan, preallocated
  WorldReport report_;
};

// Reads back the ScenarioSpec embedded in a world snapshot file, so a tool
// holding only the file can construct the matching World and restore into it.
ScenarioSpec snapshot_spec(const std::string& path);

// One-call convenience.
WorldReport run_world(const ScenarioSpec& spec);

// Monte Carlo replication: replica i re-seeds the scenario from its forked
// Rng stream and runs a private World; bit-identical per replica regardless
// of thread count.
mc::ReplicaRun<WorldReport> run_world_mc(const ScenarioSpec& spec,
                                         const mc::ReplicationOptions& options);

}  // namespace acme::world
