// Multi-pod world fleet: K independent Worlds on one parallel event drain.
//
// This is the multi-partition face of the parallel replay runtime (DESIGN.md
// §13). Each GROUP is a full World — its own cluster, trace, scheduler,
// failure chain — which makes it a genuine failure domain: no event ever
// crosses groups, so the conservative-window premise holds by construction
// and sim::WindowRunner may execute the groups' windows concurrently on an
// acme::task pool. The merged (time, group, seq) commit stream and every
// group report are byte-identical at any worker count and any window size.
//
// Group seeding: with one group the spec runs verbatim (run_world_fleet
// degenerates to run_world + a commit digest). With K > 1 group g re-seeds
// from Rng(spec.seed).fork("fleet-group-<g>") — the same label-forking
// discipline mc replication uses — so groups are statistically independent
// pods of the same scenario and the whole fleet is still a pure function of
// (spec, groups).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/window.h"
#include "world/world.h"

namespace acme::world {

struct FleetOptions {
  int groups = 1;             // independent pods (full cluster replicas)
  std::size_t workers = 1;    // task::Pool width; 0 = hardware concurrency
  // Lookahead Δ per window, simulated seconds. Groups never interact, so any
  // positive Δ is conservative-safe; <= 0 drains everything in one window.
  // Finite windows exist to bound per-window commit-log memory and to
  // exercise the multi-window merge (the property test randomizes Δ).
  double window_seconds = 0;
};

struct FleetRunReport {
  std::vector<WorldReport> groups;  // finished in group order
  std::uint64_t commit_digest = 0;  // WindowRunner's merged-stream digest
  sim::WindowStats windows;

  // FNV-1a fold of every group digest (group order) and the commit digest —
  // the worker-count-independence oracle for the fleet.
  std::uint64_t digest() const;

  // Fleet aggregates over equal-size pods.
  int failures_injected() const;
  double mean_goodput() const;
  double max_makespan_days() const;
};

FleetRunReport run_world_fleet(const ScenarioSpec& spec,
                               const FleetOptions& options);

}  // namespace acme::world
