// Declarative end-to-end scenario description for acme::world.
//
// A ScenarioSpec names everything an integrated run needs — which cluster,
// how much of the six-month trace, whether failures fire live, how recovery
// is priced — as plain data. Specs round-trip through a flat JSON object, so
// scenario files can drive the bench harness, and a process-wide registry
// lets benches/tests refer to scenarios by name. The seren/kalos presets are
// the same assemblies core::seren_setup()/kalos_setup() hand out; keeping
// them here (below core in the target graph) is what lets core, the bench
// helpers and the world driver share one definition instead of three.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/spec.h"
#include "comm/topology.h"
#include "sched/scheduler.h"
#include "trace/job.h"
#include "trace/workload_profile.h"

namespace acme::world {

struct ScenarioSpec {
  std::string name = "custom";
  std::string cluster = "seren";  // "seren" | "kalos"
  // Trace scale: values >= 1 divide the six-month job volume (8 = 1/8 of the
  // trace), values in (0, 1) are the fraction kept (0.125 is the same 1/8).
  // 1.0 replays the full trace.
  double scale = 1.0;
  double sample_interval_seconds = 900.0;  // occupancy timeline resolution
  std::uint64_t seed = 42;
  // Live failure injection (paper §5, Table 3) against running pretraining
  // jobs; failure_interval_scale stretches the sampled inter-failure times
  // (2.0 = failures half as often).
  bool inject_failures = true;
  double failure_interval_scale = 1.0;
  // Recovery pricing. With auto_recovery the §6.1 pipeline is charged:
  // log-based diagnosis, a two-round localization for hardware faults, NCCL
  // bring-up at the victim's world size, checkpoint reload. Without it the
  // victim pays the manual on-call TTR sampled from Table 3.
  bool auto_recovery = true;
  double ckpt_interval_seconds = 30.0 * 60.0;  // bounds rollback lost-work
  bool async_ckpt = true;  // async persist lag extends the rollback window
  // Fleet telemetry observations sampled from the replay's occupancy.
  std::size_t fleet_samples = 20000;
  // Pretraining replay on/off. A serve-only scenario turns it off and must
  // then configure a serving fleet.
  bool pretrain = true;
  // Inference serving fleet (src/serve): serve_replicas == 0 disables
  // serving, > 0 stands up that many tensor-parallel replicas next to (or
  // instead of) the pretraining replay. With inject_failures on, Table 3
  // failures hit serve replicas in proportion to their share of the fleet.
  int serve_replicas = 0;
  int serve_gpus_per_replica = 8;
  std::string serve_model = "7b";  // "7b" | "104b" | "123b" | "moe"
  double serve_rps = 100.0;        // long-run offered requests/second
  double serve_diurnal_amplitude = 0.5;
  double serve_burst_multiplier = 3.0;
  double serve_burst_fraction = 0.1;
  double serve_duration_seconds = 3600.0;  // arrival horizon
  double serve_slo_ttft_seconds = 2.0;
  double serve_slo_tpot_seconds = 0.1;
  // --- Hierarchical topology & hyperscale (ROADMAP item 2). ---
  // node_count == 0 keeps the cluster's Table 1 node count; > 0 overrides
  // it (hyperscale fleets reuse the cluster's node hardware profile).
  int node_count = 0;
  // DomainTree shape: datacenters -> pods (PDU/spine blocks) -> rail/switch
  // groups. All-default = today's flat single-room layout.
  int topo_datacenters = 1;
  int topo_pods_per_dc = 1;
  int topo_nodes_per_switch = 0;  // 0 = one switch group per pod
  // Trace-volume multiplier on top of `scale`: a 10x larger fleet hosts
  // ~10x the jobs inside the same (scaled) trace window.
  double trace_multiplier = 1.0;
  // Correlated domain outages (switch/PDU/cooling, Table 2) on top of the
  // per-job Table 3 stream. Only armed when the topology is non-trivial.
  bool domain_failures = false;
  double domain_failure_interval_scale = 1.0;

  bool serving() const { return serve_replicas > 0; }
  bool kalos() const { return cluster == "kalos"; }
  // Normalized trace divisor: scale >= 1 verbatim, (0,1) inverted.
  double trace_divisor() const;

  std::string to_json() const;
};

// Parses a flat JSON object written by to_json. Unknown keys are an error
// with a Levenshtein "did you mean" suggestion (the same strictness as
// common::FlagSet), and duplicate keys are rejected rather than last-write
// wins. Returns nullopt and fills *error on malformed input.
std::optional<ScenarioSpec> scenario_from_json(const std::string& json,
                                               std::string* error = nullptr);

// Presets: the two Acme clusters at their usual bench scales (Seren 1/8 of
// the six-month trace, Kalos full), a serve-only Seren fleet, and a
// co-located train+serve Seren world with live failures.
ScenarioSpec seren_scenario();
ScenarioSpec kalos_scenario();
ScenarioSpec serve_seren_scenario();
ScenarioSpec colocated_seren_scenario();

// Hyperscale generator family (ROADMAP item 2): ~n_gpus of Seren-profile
// nodes spread over n_dcs datacenters with rail-optimized 32-node pods,
// 8-node switch groups, spine/long-haul fabric tiers, correlated domain
// failures, and trace volume proportional to fleet size.
ScenarioSpec hyperscale_scenario(int n_gpus, int n_dcs);
// Registered preset "hyperscale-small": a 1024-node 2-DC fleet small enough
// for the determinism matrix (straight + snapshot-resume + workers).
ScenarioSpec hyperscale_small_scenario();

// Named-scenario registry. The presets are always resolvable; registering a
// spec under an existing name replaces it.
void register_scenario(const ScenarioSpec& spec);
std::optional<ScenarioSpec> find_scenario(const std::string& name);
std::vector<std::string> scenario_names();

// The cluster-model inputs a spec resolves to: full-scale workload profile,
// hardware spec, scheduler policy, and the fabric used to price recovery.
struct ClusterInputs {
  trace::ClusterWorkloadProfile profile;
  cluster::ClusterSpec spec;
  sched::SchedulerConfig sched_config;
  comm::FabricConfig fabric;
};
ClusterInputs cluster_inputs(const ScenarioSpec& spec);

// The scaled GPU-only job stream the spec's world replays (CPU jobs never
// touch the GPU scheduler).
trace::Trace synthesize_trace(const ScenarioSpec& spec);

}  // namespace acme::world
