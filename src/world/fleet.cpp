#include "world/fleet.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/digest.h"
#include "common/rng.h"

namespace acme::world {

namespace {

void fold_u64(common::Fnv1a& h, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  h.update(std::string_view(buf, sizeof(buf)));
}

}  // namespace

std::uint64_t FleetRunReport::digest() const {
  common::Fnv1a h;
  for (const WorldReport& g : groups) fold_u64(h, g.digest());
  fold_u64(h, commit_digest);
  return h.digest();
}

int FleetRunReport::failures_injected() const {
  int n = 0;
  for (const WorldReport& g : groups) n += g.failures_injected;
  return n;
}

double FleetRunReport::mean_goodput() const {
  if (groups.empty()) return 1.0;
  double sum = 0;
  for (const WorldReport& g : groups) sum += g.goodput;
  return sum / static_cast<double>(groups.size());
}

double FleetRunReport::max_makespan_days() const {
  double m = 0;
  for (const WorldReport& g : groups) m = std::max(m, g.makespan_days);
  return m;
}

FleetRunReport run_world_fleet(const ScenarioSpec& spec,
                               const FleetOptions& options) {
  ACME_CHECK_MSG(options.groups >= 1, "fleet needs at least one group");
  const int groups = options.groups;
  const common::Rng seeder(spec.seed);

  std::vector<std::unique_ptr<World>> worlds;
  worlds.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    ScenarioSpec group_spec = spec;
    if (groups > 1) {
      group_spec.seed =
          seeder.fork("fleet-group-" + std::to_string(g)).next();
    }
    worlds.push_back(std::make_unique<World>(std::move(group_spec)));
  }
  for (auto& w : worlds) w->prepare();

  sim::WindowRunner runner;
  for (int g = 0; g < groups; ++g) {
    runner.add_partition(worlds[static_cast<std::size_t>(g)]->engine(),
                         static_cast<std::uint32_t>(g));
  }

  std::optional<task::Pool> pool;
  if (options.workers != 1) pool.emplace(options.workers);

  const double lookahead = options.window_seconds > 0
                               ? options.window_seconds
                               : std::numeric_limits<double>::infinity();
  FleetRunReport report;
  report.windows = runner.run(pool ? &*pool : nullptr, lookahead);
  report.commit_digest = runner.commit_digest();
  report.groups.reserve(worlds.size());
  for (auto& w : worlds) report.groups.push_back(w->finish());
  return report;
}

}  // namespace acme::world
