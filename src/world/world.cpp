#include "world/world.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "ckpt/timing.h"
#include "comm/collective.h"
#include "common/check.h"
#include "common/units.h"
#include "failure/injector.h"
#include "obs/obs.h"
#include "parallel/model_math.h"
#include "trace/analysis.h"

namespace acme::world {

namespace {

// Sharded-state size of the victim's model, keyed off the synthesizer's
// model tags; unknown tags fall back to the 7B sizing.
double params_for_tag(std::uint32_t tag_id) {
  switch (tag_id) {
    case trace::kModelTag123B:
      return parallel::llm_123b().params();
    case trace::kModelTag104B:
      return parallel::llm_104b().params();
    default:
      return parallel::llm_7b().params();
  }
}

void observe_failure(double stall_seconds, double lost_gpu_seconds) {
  static obs::Counter& failures = obs::metrics().counter(
      "acme_world_failures_total", "Failures injected into the world replay");
  static obs::Histogram& stalls = obs::metrics().histogram(
      "acme_world_recovery_stall_seconds",
      "Per-failure recovery stall charged to the victim",
      obs::Histogram::exponential_buckets(16.0, 2.0, 12));
  static obs::Histogram& lost = obs::metrics().histogram(
      "acme_world_lost_work_gpu_seconds",
      "Per-failure GPU-seconds rolled back to the last checkpoint",
      obs::Histogram::exponential_buckets(1024.0, 4.0, 12));
  failures.inc();
  stalls.observe(stall_seconds);
  lost.observe(lost_gpu_seconds);
}

}  // namespace

serve::ServeConfig serve_config(const ScenarioSpec& spec) {
  ACME_CHECK_MSG(spec.serving(), "scenario configures no serving fleet");
  serve::ServeConfig cfg;
  cfg.replicas = spec.serve_replicas;
  cfg.hw.gpus = spec.serve_gpus_per_replica;
  if (spec.serve_model == "104b") cfg.model = parallel::llm_104b();
  else if (spec.serve_model == "123b") cfg.model = parallel::llm_123b();
  else if (spec.serve_model == "moe") cfg.model = parallel::moe_mistral_7b();
  else cfg.model = parallel::llm_7b();
  cfg.fabric = spec.kalos() ? comm::kalos_fabric() : comm::seren_fabric();
  cfg.traffic.mean_rps = spec.serve_rps;
  cfg.traffic.diurnal_amplitude = spec.serve_diurnal_amplitude;
  cfg.traffic.burst_multiplier = spec.serve_burst_multiplier;
  cfg.traffic.burst_fraction = spec.serve_burst_fraction;
  cfg.slo_ttft_seconds = spec.serve_slo_ttft_seconds;
  cfg.slo_tpot_seconds = spec.serve_slo_tpot_seconds;
  cfg.horizon_seconds = spec.serve_duration_seconds;
  return cfg;
}

World::World(ScenarioSpec spec)
    : spec_(std::move(spec)), inputs_(cluster_inputs(spec_)) {}

WorldReport World::run() {
  ACME_OBS_SPAN_ARG("world", "run", "scenario", spec_.name);
  WorldReport report;

  // Serving stands up first so the carve-out below sees its GPU demand; in a
  // co-located world the fleet takes whole nodes away from the scheduler.
  cluster::ClusterSpec sched_spec = inputs_.spec;
  std::optional<serve::ServeFleet> fleet;
  if (spec_.serving()) {
    const serve::ServeConfig scfg = serve_config(spec_);
    if (spec_.pretrain) {
      const int gpn = std::max(1, inputs_.spec.node.gpus);
      const int carved_nodes = (scfg.total_gpus() + gpn - 1) / gpn;
      ACME_CHECK_MSG(carved_nodes < sched_spec.node_count,
                     "serving fleet does not fit in the cluster");
      sched_spec.node_count -= carved_nodes;
    }
    fleet.emplace(engine_, scfg, spec_.seed);
  }

  // Reason-mix hint for the sampler: the largest pretraining campaign in the
  // trace (failure demand concentrates on the big jobs, §5.1). Computed
  // before the scheduler adopts the trace below.
  int campaign_gpus = 256;
  std::optional<sched::SchedulerReplay> sched;
  if (spec_.pretrain) {
    trace::Trace jobs = synthesize_trace(spec_);
    for (const auto& job : jobs)
      if (job.type == trace::WorkloadType::kPretrain)
        campaign_gpus = std::max(campaign_gpus, job.gpus);
    sched.emplace(engine_, sched_spec, inputs_.sched_config);
    sched->begin_replay(std::move(jobs), spec_.sample_interval_seconds);
  } else if (fleet) {
    campaign_gpus = std::max(campaign_gpus, fleet->config().total_gpus());
  }
  if (fleet) fleet->start();

  // Failure machinery: reason/TTF/TTR sampling off the Table 3 fits, stalls
  // priced by the collective model and the checkpoint timing model.
  failure::FailureInjector injector(spec_.seed);
  common::Rng failure_rng = common::Rng(spec_.seed).fork("world-failures");
  comm::CollectiveModel fabric(inputs_.fabric);
  ckpt::CheckpointTimingModel ckpt_timing;
  const int gpus_per_node = std::max(1, inputs_.spec.node.gpus);

  // Faults split between serving and pretraining by static GPU share; a
  // serve-only world sends every fault at the fleet.
  const int serve_gpus = fleet ? fleet->config().total_gpus() : 0;
  const int sched_gpus = sched ? sched_spec.total_gpus() : 0;
  const double serve_share =
      serve_gpus + sched_gpus > 0
          ? static_cast<double>(serve_gpus) / (serve_gpus + sched_gpus)
          : 0.0;

  // The failure chain: one self-re-arming engine event. Each firing kills a
  // running pretraining job or a serving replica, prices its recovery, and
  // schedules the next failure after a freshly sampled TTF. The chain stops
  // when the scheduler drained (or, serve-only, past the arrival horizon) —
  // by then the engine holds no other events, so the replay terminates.
  // Locals below outlive every event because engine_.run() returns only
  // after the last one fired.
  std::function<void()> fire_failure;
  const auto arm_next = [&]() {
    if (sched && sched->drained()) return;
    const failure::FailureEvent next =
        injector.sample_pretrain_failure(campaign_gpus, failure_rng);
    const double delay = next.ttf_seconds * spec_.failure_interval_scale;
    if (!sched && engine_.now() + delay > spec_.serve_duration_seconds) return;
    engine_.schedule_after(delay, fire_failure);
  };
  fire_failure = [&]() {
    if (fleet && (!sched || failure_rng.uniform() < serve_share)) {
      const int victim = static_cast<int>(failure_rng.uniform_int(
          0, static_cast<std::int64_t>(fleet->replicas()) - 1));
      const failure::FailureEvent event =
          injector.sample_pretrain_failure(campaign_gpus, failure_rng);
      if (!fleet->replica_up(victim)) {
        // The fault landed on a replica already down for re-warm.
        ++report.failures_no_victim;
        arm_next();
        return;
      }
      // Re-warm mirrors §6.1 recovery at replica scale: weight reload
      // (priced like a checkpoint read of the inference state), diagnosis,
      // two-round localization for hardware faults, NCCL bring-up at the
      // replica's world size — or the manual on-call TTR.
      const serve::ServeConfig& scfg = fleet->config();
      const comm::World replica_world{scfg.hw.gpus, 0, 0, 1};
      const double reload = ckpt_timing.async_persist_seconds(
          scfg.model.params(), std::max(scfg.hw.gpus, 1));
      double rewarm = reload;
      if (spec_.auto_recovery) {
        rewarm += 45.0;  // log collection + diagnosis-agent latency
        if (event.spec != nullptr && event.spec->needs_node_detection) {
          const int nodes = std::max(1, scfg.hw.gpus / gpus_per_node);
          rewarm += 2 * fabric.probe_round_seconds(nodes);
          ++report.localizations;
        }
        rewarm += fabric.bringup_seconds(replica_world);
      } else {
        rewarm += event.ttr_seconds;
        ++report.manual_recoveries;
      }
      fleet->kill_replica(victim, rewarm);
      ++report.failures_injected;
      report.recovery_stall_seconds += rewarm;
      report.stall_gpu_seconds += rewarm * scfg.hw.gpus;
      if (obs::enabled()) observe_failure(rewarm, 0.0);
      arm_next();
      return;
    }
    const auto& running = sched->running_pretrain_jobs();
    if (running.empty()) {
      // The fault hit a node no pretraining job occupied; nothing to kill.
      ++report.failures_no_victim;
      arm_next();
      return;
    }
    const failure::FailureEvent event =
        injector.sample_pretrain_failure(campaign_gpus, failure_rng);
    const std::size_t victim = running[static_cast<std::size_t>(
        failure_rng.uniform_int(0, static_cast<std::int64_t>(running.size()) - 1))];
    const trace::JobRecord& job = sched->active_job(victim);
    const double params = params_for_tag(job.model_tag_id);
    const comm::World victim_world{job.gpus, 0, 0, 1};

    // Recovery stall (§6.1): diagnosis, localization for hardware faults,
    // NCCL bring-up at the victim's world size, checkpoint reload — or the
    // manual on-call TTR when the automation is off.
    const double reload =
        ckpt_timing.async_persist_seconds(params, std::max(job.gpus, 1));
    double stall = reload;
    if (spec_.auto_recovery) {
      stall += 45.0;  // log collection + diagnosis-agent latency
      if (event.spec != nullptr && event.spec->needs_node_detection) {
        const int nodes = std::max(1, job.gpus / gpus_per_node);
        stall += 2 * fabric.probe_round_seconds(nodes);
        ++report.localizations;
      }
      stall += fabric.bringup_seconds(victim_world);
    } else {
      stall += event.ttr_seconds;
      ++report.manual_recoveries;
    }

    // Rollback window: the checkpoint interval, extended by the async
    // persist lag (the newest snapshot may not be durable yet).
    double rollback_cap = spec_.ckpt_interval_seconds;
    if (spec_.async_ckpt) rollback_cap += reload;

    const double lost_before = sched->partial_result().failure_lost_gpu_seconds;
    sched->kill_job(victim, rollback_cap, stall);
    const double lost_now =
        sched->partial_result().failure_lost_gpu_seconds - lost_before;

    ++report.failures_injected;
    report.recovery_stall_seconds += stall;
    report.stall_gpu_seconds += stall * job.gpus;
    if (event.spec != nullptr &&
        event.spec->category == failure::FailureCategory::kInfrastructure) {
      ++report.infra_failures;
      report.infra_lost_gpu_seconds += lost_now + stall * job.gpus;
    }
    if (obs::enabled()) observe_failure(stall, lost_now);
    arm_next();
  };
  if (spec_.inject_failures) arm_next();

  engine_.run();
  if (fleet) {
    report.served = true;
    report.serve = fleet->report();
  }
  if (!sched) return report;  // serve-only world: no replay to aggregate
  report.replay = sched->finish_replay();

  // Aggregate accounting.
  report.lost_work_gpu_seconds = report.replay.failure_lost_gpu_seconds;
  report.makespan_days = report.replay.makespan / common::kDay;
  double busy = 0, total = 0;
  for (const auto& s : report.replay.occupancy) {
    busy += s.busy_gpus;
    total += s.total_gpus;
  }
  report.busy_fraction = total > 0 ? busy / total : 0;
  report.pretrain_queue_delay =
      trace::queue_delays_of(report.replay.jobs, trace::WorkloadType::kPretrain);
  report.eval_queue_delay =
      trace::queue_delays_of(report.replay.jobs, trace::WorkloadType::kEvaluation);

  double useful_gpu_seconds = 0;
  for (const auto& job : report.replay.jobs) useful_gpu_seconds += job.gpu_time();
  const double charged = useful_gpu_seconds + report.lost_work_gpu_seconds +
                         report.stall_gpu_seconds;
  report.goodput = charged > 0 ? useful_gpu_seconds / charged : 1.0;

  // Fleet telemetry sampled from what the shared engine actually ran.
  if (spec_.fleet_samples > 0) {
    telemetry::FleetSamplerConfig fleet_config;
    fleet_config.spec = inputs_.spec;
    fleet_config.busy_fraction = report.busy_fraction;
    for (const auto& [type, share] : trace::type_shares(report.replay.jobs))
      if (share.gpu_time_fraction > 0)
        fleet_config.gputime_mix[type] = share.gpu_time_fraction;
    telemetry::FleetSampler sampler(std::move(fleet_config));
    common::Rng fleet_rng = common::Rng(spec_.seed).fork("world-fleet");
    report.fleet = sampler.sample(spec_.fleet_samples, fleet_rng);
  }
  return report;
}

WorldReport run_world(const ScenarioSpec& spec) { return World(spec).run(); }

mc::ReplicaRun<WorldReport> run_world_mc(const ScenarioSpec& spec,
                                         const mc::ReplicationOptions& options) {
  return mc::run_replicas<WorldReport>(
      options, [&spec](common::Rng& rng, std::size_t) {
        // Each replica re-seeds the whole scenario (trace synthesis, failure
        // arrivals, fleet sampling) from its own forked stream.
        ScenarioSpec replica_spec = spec;
        replica_spec.seed = rng.next();
        return World(std::move(replica_spec)).run();
      });
}

}  // namespace acme::world
