#include "world/world.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/digest.h"
#include "common/units.h"
#include "obs/obs.h"
#include "parallel/model_math.h"
#include "snap/format.h"
#include "trace/analysis.h"

namespace acme::world {

namespace {

// Sharded-state size of the victim's model, keyed off the synthesizer's
// model tags; unknown tags fall back to the 7B sizing.
double params_for_tag(std::uint32_t tag_id) {
  switch (tag_id) {
    case trace::kModelTag123B:
      return parallel::llm_123b().params();
    case trace::kModelTag104B:
      return parallel::llm_104b().params();
    default:
      return parallel::llm_7b().params();
  }
}

void observe_failure(double stall_seconds, double lost_gpu_seconds) {
  static obs::Counter& failures = obs::metrics().counter(
      "acme_world_failures_total", "Failures injected into the world replay");
  static obs::Histogram& stalls = obs::metrics().histogram(
      "acme_world_recovery_stall_seconds",
      "Per-failure recovery stall charged to the victim",
      obs::Histogram::exponential_buckets(16.0, 2.0, 12));
  static obs::Histogram& lost = obs::metrics().histogram(
      "acme_world_lost_work_gpu_seconds",
      "Per-failure GPU-seconds rolled back to the last checkpoint",
      obs::Histogram::exponential_buckets(1024.0, 4.0, 12));
  failures.inc();
  stalls.observe(stall_seconds);
  lost.observe(lost_gpu_seconds);
}

}  // namespace

serve::ServeConfig serve_config(const ScenarioSpec& spec) {
  ACME_CHECK_MSG(spec.serving(), "scenario configures no serving fleet");
  serve::ServeConfig cfg;
  cfg.replicas = spec.serve_replicas;
  cfg.hw.gpus = spec.serve_gpus_per_replica;
  if (spec.serve_model == "104b") cfg.model = parallel::llm_104b();
  else if (spec.serve_model == "123b") cfg.model = parallel::llm_123b();
  else if (spec.serve_model == "moe") cfg.model = parallel::moe_mistral_7b();
  else cfg.model = parallel::llm_7b();
  cfg.fabric = spec.kalos() ? comm::kalos_fabric() : comm::seren_fabric();
  cfg.traffic.mean_rps = spec.serve_rps;
  cfg.traffic.diurnal_amplitude = spec.serve_diurnal_amplitude;
  cfg.traffic.burst_multiplier = spec.serve_burst_multiplier;
  cfg.traffic.burst_fraction = spec.serve_burst_fraction;
  cfg.slo_ttft_seconds = spec.serve_slo_ttft_seconds;
  cfg.slo_tpot_seconds = spec.serve_slo_tpot_seconds;
  cfg.horizon_seconds = spec.serve_duration_seconds;
  return cfg;
}

std::uint64_t WorldReport::digest() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "makespan=" << replay.makespan << ";unstarted=" << replay.unstarted
     << ";preempt=" << replay.preemptions << ";wasted=" << replay.wasted_gpu_seconds
     << ";fkills=" << replay.failure_kills
     << ";flost=" << replay.failure_lost_gpu_seconds
     << ";frestart=" << replay.failure_restart_seconds
     << ";busy=" << busy_fraction << ";days=" << makespan_days
     << ";finj=" << failures_injected << ";fnov=" << failures_no_victim
     << ";loc=" << localizations << ";manual=" << manual_recoveries
     << ";rstall=" << recovery_stall_seconds << ";lost=" << lost_work_gpu_seconds
     << ";stallgpu=" << stall_gpu_seconds << ";infra=" << infra_failures
     << ";infralost=" << infra_lost_gpu_seconds << ";goodput=" << goodput
     << ";pqd_n=" << pretrain_queue_delay.count()
     << ";pqd_sum=" << (pretrain_queue_delay.empty() ? 0.0 : pretrain_queue_delay.sum())
     << ";eqd_n=" << eval_queue_delay.count()
     << ";eqd_sum=" << (eval_queue_delay.empty() ? 0.0 : eval_queue_delay.sum());
  if (served) os << ";serve=" << serve.digest();
  if (domain_enabled)
    os << ";dom_inj=" << domain_failures_injected
       << ";dom_nov=" << domain_failures_no_victim
       << ";dom_kill=" << domain_jobs_killed
       << ";dom_cordon=" << domain_nodes_cordoned
       << ";dom_outage=" << domain_outage_seconds;
  common::Fnv1a h;
  h.update(os.str());
  // Binary folds over the full timelines: any divergence in a single sample
  // or delay flips the digest even when the aggregate folds above collide.
  if (!replay.occupancy.empty())
    h.update(std::string_view(
        reinterpret_cast<const char*>(replay.occupancy.data()),
        replay.occupancy.size() * sizeof(replay.occupancy[0])));
  for (const auto& job : replay.jobs)
    h.update(std::string_view(reinterpret_cast<const char*>(&job.queue_delay),
                              sizeof(job.queue_delay)));
  return h.digest();
}

World::World(ScenarioSpec spec)
    : spec_(std::move(spec)), inputs_(cluster_inputs(spec_)) {}

void World::construct_subsystems(trace::Trace& pretrain_jobs, bool synthesize) {
  // Serving stands up first so the carve-out below sees its GPU demand; in a
  // co-located world the fleet takes whole nodes away from the scheduler.
  sched_spec_ = inputs_.spec;
  if (spec_.serving()) {
    const serve::ServeConfig scfg = serve_config(spec_);
    if (spec_.pretrain) {
      const int gpn = std::max(1, inputs_.spec.node.gpus);
      const int carved_nodes = (scfg.total_gpus() + gpn - 1) / gpn;
      ACME_CHECK_MSG(carved_nodes < sched_spec_.node_count,
                     "serving fleet does not fit in the cluster");
      sched_spec_.node_count -= carved_nodes;
    }
    fleet_.emplace(engine_, scfg, spec_.seed);
  }

  // Reason-mix hint for the sampler: the largest pretraining campaign in the
  // trace (failure demand concentrates on the big jobs, §5.1).
  campaign_gpus_ = 256;
  if (spec_.pretrain) {
    if (synthesize) {
      pretrain_jobs = synthesize_trace(spec_);
      for (const auto& job : pretrain_jobs)
        if (job.type == trace::WorkloadType::kPretrain)
          campaign_gpus_ = std::max(campaign_gpus_, job.gpus);
    }
    sched_.emplace(engine_, sched_spec_, inputs_.sched_config);
  } else if (fleet_) {
    campaign_gpus_ = std::max(campaign_gpus_, fleet_->config().total_gpus());
  }

  // Failure machinery: reason/TTF/TTR sampling off the Table 3 fits, stalls
  // priced by the collective model and the checkpoint timing model.
  injector_.emplace(spec_.seed);
  failure_rng_ = common::Rng(spec_.seed).fork("world-failures");
  fabric_.emplace(inputs_.fabric);
  gpus_per_node_ = std::max(1, inputs_.spec.node.gpus);

  // Correlated domain outages: a second, independent chain over the
  // scheduler's post-carve-out fleet. Only a non-trivial topology can host a
  // correlated outage (a flat cluster has no subtree smaller than "all"), so
  // flat presets deterministically never arm it.
  domain_tree_ = cluster::DomainTree(sched_spec_.node_count,
                                     sched_spec_.topology);
  domain_rng_ = common::Rng(spec_.seed).fork("world-domain-failures");
  domain_enabled_ = spec_.domain_failures && spec_.pretrain &&
                    sched_.has_value() && !domain_tree_.trivial();
  report_.domain_enabled = domain_enabled_;
  // One slot per GPU bounds the resident-job scan (every running job holds
  // at least one GPU), so fire_domain_failure never allocates mid-drain.
  if (domain_enabled_)
    domain_scratch_.reserve(
        static_cast<std::size_t>(sched_spec_.total_gpus()));

  // Faults split between serving and pretraining by static GPU share; a
  // serve-only world sends every fault at the fleet.
  const int serve_gpus = fleet_ ? fleet_->config().total_gpus() : 0;
  const int sched_gpus = sched_ ? sched_spec_.total_gpus() : 0;
  serve_share_ = serve_gpus + sched_gpus > 0
                     ? static_cast<double>(serve_gpus) / (serve_gpus + sched_gpus)
                     : 0.0;
}

void World::prepare() {
  if (prepared_) return;
  prepared_ = true;
  trace::Trace jobs;
  construct_subsystems(jobs, /*synthesize=*/true);
  // Event construction order is the determinism contract: scheduler
  // submissions + occupancy sampler, then the serve arrival chain, then the
  // failure chain.
  if (sched_) sched_->begin_replay(std::move(jobs), spec_.sample_interval_seconds);
  if (fleet_) fleet_->start();
  if (spec_.inject_failures) arm_next_failure();
  if (domain_enabled_) arm_next_domain_failure();
}

// The failure chain: one self-re-arming engine event. Each firing kills a
// running pretraining job or a serving replica, prices its recovery, and
// schedules the next failure after a freshly sampled TTF. The chain stops
// when the scheduler drained (or, serve-only, past the arrival horizon) — by
// then the engine holds no other events, so the replay terminates.
void World::arm_next_failure() {
  if (sched_ && sched_->drained()) return;
  const failure::FailureEvent next =
      injector_->sample_pretrain_failure(campaign_gpus_, failure_rng_);
  const double delay = next.ttf_seconds * spec_.failure_interval_scale;
  if (!sched_ && engine_.now() + delay > spec_.serve_duration_seconds) return;
  failure_event_ = engine_.schedule_after(delay, [this] { fire_failure(); });
}

void World::fire_failure() {
  failure_event_ = {};
  if (fleet_ && (!sched_ || failure_rng_.uniform() < serve_share_)) {
    const int victim = static_cast<int>(failure_rng_.uniform_int(
        0, static_cast<std::int64_t>(fleet_->replicas()) - 1));
    const failure::FailureEvent event =
        injector_->sample_pretrain_failure(campaign_gpus_, failure_rng_);
    if (!fleet_->replica_up(victim)) {
      // The fault landed on a replica already down for re-warm.
      ++report_.failures_no_victim;
      arm_next_failure();
      return;
    }
    // Re-warm mirrors §6.1 recovery at replica scale: weight reload (priced
    // like a checkpoint read of the inference state), diagnosis, two-round
    // localization for hardware faults, NCCL bring-up at the replica's world
    // size — or the manual on-call TTR.
    const serve::ServeConfig& scfg = fleet_->config();
    const comm::World replica_world{scfg.hw.gpus, 0, 0, 1};
    const double reload = ckpt_timing_.async_persist_seconds(
        scfg.model.params(), std::max(scfg.hw.gpus, 1));
    double rewarm = reload;
    if (spec_.auto_recovery) {
      rewarm += 45.0;  // log collection + diagnosis-agent latency
      if (event.spec != nullptr && event.spec->needs_node_detection) {
        const int nodes = std::max(1, scfg.hw.gpus / gpus_per_node_);
        rewarm += 2 * fabric_->probe_round_seconds(nodes);
        ++report_.localizations;
      }
      rewarm += fabric_->bringup_seconds(replica_world);
    } else {
      rewarm += event.ttr_seconds;
      ++report_.manual_recoveries;
    }
    fleet_->kill_replica(victim, rewarm);
    ++report_.failures_injected;
    report_.recovery_stall_seconds += rewarm;
    report_.stall_gpu_seconds += rewarm * scfg.hw.gpus;
    if (obs::enabled()) observe_failure(rewarm, 0.0);
    arm_next_failure();
    return;
  }
  const auto& running = sched_->running_pretrain_jobs();
  if (running.empty()) {
    // The fault hit a node no pretraining job occupied; nothing to kill.
    ++report_.failures_no_victim;
    arm_next_failure();
    return;
  }
  const failure::FailureEvent event =
      injector_->sample_pretrain_failure(campaign_gpus_, failure_rng_);
  const std::size_t victim = running[static_cast<std::size_t>(
      failure_rng_.uniform_int(0, static_cast<std::int64_t>(running.size()) - 1))];
  const trace::JobRecord& job = sched_->active_job(victim);
  const double params = params_for_tag(job.model_tag_id);
  const comm::World victim_world{job.gpus, 0, 0, 1};

  // Recovery stall (§6.1): diagnosis, localization for hardware faults, NCCL
  // bring-up at the victim's world size, checkpoint reload — or the manual
  // on-call TTR when the automation is off.
  const double reload =
      ckpt_timing_.async_persist_seconds(params, std::max(job.gpus, 1));
  double stall = reload;
  if (spec_.auto_recovery) {
    stall += 45.0;  // log collection + diagnosis-agent latency
    if (event.spec != nullptr && event.spec->needs_node_detection) {
      const int nodes = std::max(1, job.gpus / gpus_per_node_);
      stall += 2 * fabric_->probe_round_seconds(nodes);
      ++report_.localizations;
    }
    stall += fabric_->bringup_seconds(victim_world);
  } else {
    stall += event.ttr_seconds;
    ++report_.manual_recoveries;
  }

  // Rollback window: the checkpoint interval, extended by the async persist
  // lag (the newest snapshot may not be durable yet).
  double rollback_cap = spec_.ckpt_interval_seconds;
  if (spec_.async_ckpt) rollback_cap += reload;

  const double lost_before = sched_->partial_result().failure_lost_gpu_seconds;
  sched_->kill_job(victim, rollback_cap, stall);
  const double lost_now =
      sched_->partial_result().failure_lost_gpu_seconds - lost_before;

  ++report_.failures_injected;
  report_.recovery_stall_seconds += stall;
  report_.stall_gpu_seconds += stall * job.gpus;
  if (event.spec != nullptr &&
      event.spec->category == failure::FailureCategory::kInfrastructure) {
    ++report_.infra_failures;
    report_.infra_lost_gpu_seconds += lost_now + stall * job.gpus;
  }
  if (obs::enabled()) observe_failure(stall, lost_now);
  arm_next_failure();
}

// The domain-outage chain (Table 2 correlated infrastructure events): sample
// a reason (switch / PDU / cooling) and its TTF up front, fire the outage,
// hold the subtree cordoned for a sampled TTR, then re-arm. One event handle
// serves both phases; domain_down_ says which phase is pending.
void World::arm_next_domain_failure() {
  if (sched_->drained()) return;
  const failure::DomainFailureSpec& row =
      injector_->sample_domain_failure(domain_rng_);
  domain_reason_ = static_cast<std::uint32_t>(
      &row - failure::domain_failure_table().data());
  const double delay = injector_->sample_domain_ttf(row, domain_rng_) *
                       spec_.domain_failure_interval_scale;
  domain_event_ = engine_.schedule_after(delay, [this] { fire_domain_failure(); });
}

void World::fire_domain_failure() {
  domain_event_ = {};
  if (sched_->drained()) return;  // the chain ends with the replay
  const failure::DomainFailureSpec& row =
      failure::domain_failure_table()[domain_reason_];
  const std::vector<cluster::DomainId>& candidates =
      domain_tree_.domains(row.scope);
  const cluster::DomainId victim = candidates[static_cast<std::size_t>(
      domain_rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const int first = static_cast<int>(domain_tree_.first_node(victim));
  const int count = domain_tree_.domain_nodes(victim);
  const double ttr = injector_->sample_domain_ttr(row, domain_rng_);

  // Cordon the whole subtree first so nothing killed below can re-land on a
  // dead node, then kill every resident job in this one injection.
  sched_->cordon_nodes(first, count);
  sched_->running_jobs_on_nodes(first, count, domain_scratch_);
  for (const std::size_t resident : domain_scratch_) {
    const trace::JobRecord& job = sched_->active_job(resident);
    const double params = params_for_tag(job.model_tag_id);
    const comm::World victim_world{job.gpus, 0, 0, 1};
    const double reload =
        ckpt_timing_.async_persist_seconds(params, std::max(job.gpus, 1));
    double stall = reload;
    if (spec_.auto_recovery) {
      stall += 45.0;  // log collection + diagnosis-agent latency
      // Domain outages are hardware by definition: localization probes the
      // whole cordoned subtree, so TTR grows with the blast radius.
      stall += 2 * fabric_->probe_round_seconds(count);
      ++report_.localizations;
      stall += fabric_->bringup_seconds(victim_world);
    } else {
      stall += ttr;
      ++report_.manual_recoveries;
    }
    double rollback_cap = spec_.ckpt_interval_seconds;
    if (spec_.async_ckpt) rollback_cap += reload;
    const double lost_before =
        sched_->partial_result().failure_lost_gpu_seconds;
    sched_->kill_job(resident, rollback_cap, stall);
    const double lost_now =
        sched_->partial_result().failure_lost_gpu_seconds - lost_before;
    report_.recovery_stall_seconds += stall;
    report_.stall_gpu_seconds += stall * job.gpus;
    ++report_.infra_failures;
    report_.infra_lost_gpu_seconds += lost_now + stall * job.gpus;
    if (obs::enabled()) observe_failure(stall, lost_now);
  }

  ++report_.domain_failures_injected;
  if (domain_scratch_.empty()) ++report_.domain_failures_no_victim;
  report_.domain_jobs_killed += static_cast<int>(domain_scratch_.size());
  report_.domain_nodes_cordoned += count;
  report_.domain_outage_seconds += ttr;
  domain_down_ = victim;
  domain_event_ = engine_.schedule_after(ttr, [this] { repair_domain(); });
}

void World::repair_domain() {
  domain_event_ = {};
  const int first = static_cast<int>(domain_tree_.first_node(domain_down_));
  const int count = domain_tree_.domain_nodes(domain_down_);
  domain_down_ = cluster::kInvalidDomain;
  sched_->uncordon_nodes(first, count);
  arm_next_domain_failure();
}

std::size_t World::run_until(double t) {
  prepare();
  // Pump step() directly instead of engine_.run_until(t): the engine's own
  // run_until advances the clock to the horizon, which would poison the
  // makespan of a later finish(); here the clock stays at the last fired
  // event, exactly as in an uninterrupted run.
  std::size_t n = 0;
  while (engine_.step(t)) ++n;
  return n;
}

WorldReport World::finish() {
  ACME_CHECK_MSG(prepared_, "World::finish before prepare/run");
  ACME_CHECK_MSG(!finished_, "World::finish called twice");
  finished_ = true;
  if (fleet_) {
    report_.served = true;
    report_.serve = fleet_->report();
  }
  if (!sched_) return std::move(report_);  // serve-only: no replay to aggregate
  report_.replay = sched_->finish_replay();

  // Aggregate accounting.
  report_.lost_work_gpu_seconds = report_.replay.failure_lost_gpu_seconds;
  report_.makespan_days = report_.replay.makespan / common::kDay;
  double busy = 0, total = 0;
  for (const auto& s : report_.replay.occupancy) {
    busy += s.busy_gpus;
    total += s.total_gpus;
  }
  report_.busy_fraction = total > 0 ? busy / total : 0;
  report_.pretrain_queue_delay =
      trace::queue_delays_of(report_.replay.jobs, trace::WorkloadType::kPretrain);
  report_.eval_queue_delay =
      trace::queue_delays_of(report_.replay.jobs, trace::WorkloadType::kEvaluation);

  double useful_gpu_seconds = 0;
  for (const auto& job : report_.replay.jobs) useful_gpu_seconds += job.gpu_time();
  const double charged = useful_gpu_seconds + report_.lost_work_gpu_seconds +
                         report_.stall_gpu_seconds;
  report_.goodput = charged > 0 ? useful_gpu_seconds / charged : 1.0;

  // Fleet telemetry sampled from what the shared engine actually ran.
  if (spec_.fleet_samples > 0) {
    telemetry::FleetSamplerConfig fleet_config;
    fleet_config.spec = inputs_.spec;
    fleet_config.busy_fraction = report_.busy_fraction;
    for (const auto& [type, share] : trace::type_shares(report_.replay.jobs))
      if (share.gpu_time_fraction > 0)
        fleet_config.gputime_mix[type] = share.gpu_time_fraction;
    telemetry::FleetSampler sampler(std::move(fleet_config));
    common::Rng fleet_rng = common::Rng(spec_.seed).fork("world-fleet");
    report_.fleet = sampler.sample(spec_.fleet_samples, fleet_rng);
  }
  return std::move(report_);
}

WorldReport World::run() {
  ACME_OBS_SPAN_ARG("world", "run", "scenario", spec_.name);
  prepare();
  engine_.run();
  return finish();
}

WorldReport World::run_parallel(task::Pool& pool, double window_seconds) {
  ACME_OBS_SPAN_ARG("world", "run_parallel", "scenario", spec_.name);
  prepare();
  sim::WindowRunner runner;
  runner.add_partition(engine_, 0);
  const double lookahead = window_seconds > 0
                               ? window_seconds
                               : std::numeric_limits<double>::infinity();
  runner.run(&pool, lookahead);
  return finish();
}

void World::save(snap::SnapshotWriter& w) const {
  ACME_CHECK_MSG(prepared_ && !finished_,
                 "World::save is valid only between prepare() and finish()");
  w.begin_section("world.spec");
  w.write_string(spec_.to_json());
  w.end_section();
  w.begin_section("world.run");
  const common::RngState rng = failure_rng_.state();
  for (int i = 0; i < 4; ++i) w.write_u64(rng.words[i]);
  w.write_u64(rng.seed_material);
  w.write_u64(failure_event_.raw());
  w.write_i64(report_.failures_injected);
  w.write_i64(report_.failures_no_victim);
  w.write_i64(report_.localizations);
  w.write_i64(report_.manual_recoveries);
  w.write_f64(report_.recovery_stall_seconds);
  w.write_f64(report_.stall_gpu_seconds);
  w.write_i64(report_.infra_failures);
  w.write_f64(report_.infra_lost_gpu_seconds);
  w.end_section();
  // The domain chain's state travels only when the chain exists; flat
  // scenarios keep the exact pre-hierarchy snapshot layout.
  if (domain_enabled_) {
    w.begin_section("world.domain");
    const common::RngState drng = domain_rng_.state();
    for (int i = 0; i < 4; ++i) w.write_u64(drng.words[i]);
    w.write_u64(drng.seed_material);
    w.write_u64(domain_event_.raw());
    w.write_u64(domain_down_);
    w.write_u64(domain_reason_);
    w.write_i64(report_.domain_failures_injected);
    w.write_i64(report_.domain_failures_no_victim);
    w.write_i64(report_.domain_jobs_killed);
    w.write_i64(report_.domain_nodes_cordoned);
    w.write_f64(report_.domain_outage_seconds);
    w.end_section();
  }
  engine_.save(w);
  if (sched_) sched_->save(w);
  if (fleet_) fleet_->save(w);
}

void World::save_file(const std::string& path) const {
  snap::SnapshotWriter w;
  save(w);
  w.write_file(path);
}

void World::restore(snap::SnapshotReader& r) {
  ACME_CHECK_MSG(!prepared_,
                 "World::restore requires a freshly constructed world");
  prepared_ = true;
  r.enter_section("world.spec");
  const std::string saved_spec = r.read_string();
  r.leave_section();
  ACME_CHECK_MSG(saved_spec == spec_.to_json(),
                 "snapshot was taken from a different scenario than this "
                 "world's spec (use snapshot_spec() to recover the right one)");
  r.enter_section("world.run");
  common::RngState rng;
  for (int i = 0; i < 4; ++i) rng.words[i] = r.read_u64();
  rng.seed_material = r.read_u64();
  const std::uint64_t failure_raw = r.read_u64();
  report_.failures_injected = static_cast<int>(r.read_i64());
  report_.failures_no_victim = static_cast<int>(r.read_i64());
  report_.localizations = static_cast<int>(r.read_i64());
  report_.manual_recoveries = static_cast<int>(r.read_i64());
  report_.recovery_stall_seconds = r.read_f64();
  report_.stall_gpu_seconds = r.read_f64();
  report_.infra_failures = static_cast<int>(r.read_i64());
  report_.infra_lost_gpu_seconds = r.read_f64();
  r.leave_section();
  // Stand the subsystems up in the canonical order, arming nothing: the
  // restored engine spine already holds every pending event, the snapshot
  // carries the trace (no re-synthesis), and each subsystem rebinds its own
  // callbacks.
  trace::Trace jobs;
  construct_subsystems(jobs, /*synthesize=*/false);
  failure_rng_.set_state(rng);
  std::uint64_t domain_raw = 0;
  if (domain_enabled_) {
    r.enter_section("world.domain");
    common::RngState drng;
    for (int i = 0; i < 4; ++i) drng.words[i] = r.read_u64();
    drng.seed_material = r.read_u64();
    domain_rng_.set_state(drng);
    domain_raw = r.read_u64();
    domain_down_ = static_cast<cluster::DomainId>(r.read_u64());
    domain_reason_ = static_cast<std::uint32_t>(r.read_u64());
    report_.domain_failures_injected = static_cast<int>(r.read_i64());
    report_.domain_failures_no_victim = static_cast<int>(r.read_i64());
    report_.domain_jobs_killed = static_cast<int>(r.read_i64());
    report_.domain_nodes_cordoned = static_cast<int>(r.read_i64());
    report_.domain_outage_seconds = r.read_f64();
    r.leave_section();
  }
  engine_.restore(r);
  if (sched_) {
    sched_->restore_replay(r);
    for (const auto& job : sched_->jobs())
      if (job.type == trace::WorkloadType::kPretrain)
        campaign_gpus_ = std::max(campaign_gpus_, job.gpus);
  }
  if (fleet_) fleet_->restore(r);
  failure_event_ = sim::EventHandle::from_raw(failure_raw);
  if (failure_event_.valid())
    engine_.rebind(failure_event_, [this] { fire_failure(); });
  domain_event_ = sim::EventHandle::from_raw(domain_raw);
  if (domain_event_.valid()) {
    // Phase disambiguates the callback: a down domain's pending event is its
    // repair, otherwise it is the next outage.
    if (domain_down_ != cluster::kInvalidDomain)
      engine_.rebind(domain_event_, [this] { repair_domain(); });
    else
      engine_.rebind(domain_event_, [this] { fire_domain_failure(); });
  }
  ACME_CHECK_MSG(engine_.unbound() == 0,
                 "restored engine holds events no subsystem rebound — "
                 "snapshot and world composition disagree");
}

void World::restore_file(const std::string& path) {
  snap::SnapshotReader r = snap::SnapshotReader::from_file(path);
  restore(r);
}

void World::branch_future(std::string_view label) {
  ACME_CHECK_MSG(prepared_ && !finished_,
                 "branch_future is valid only between prepare()/restore() "
                 "and finish()");
  failure_rng_ = failure_rng_.fork(label);
  domain_rng_ = domain_rng_.fork(label);
}

ScenarioSpec snapshot_spec(const std::string& path) {
  snap::SnapshotReader r = snap::SnapshotReader::from_file(path);
  r.enter_section("world.spec");
  const std::string json = r.read_string();
  r.leave_section();
  std::string error;
  std::optional<ScenarioSpec> spec = scenario_from_json(json, &error);
  ACME_CHECK_MSG(spec.has_value(),
                 "snapshot embeds an unparseable scenario spec: " + error);
  return *spec;
}

WorldReport run_world(const ScenarioSpec& spec) { return World(spec).run(); }

mc::ReplicaRun<WorldReport> run_world_mc(const ScenarioSpec& spec,
                                         const mc::ReplicationOptions& options) {
  // replicas × workers composition: one shared drain pool, clamped so the
  // two parallelism axes never oversubscribe the machine. Safe to share —
  // each replica's WindowRunner spawns against its own WaitGroup — and
  // digest-neutral: per-replica reports are byte-identical at any width.
  const std::size_t workers = mc::effective_workers(options);
  std::optional<task::Pool> pool;
  if (workers > 1) pool.emplace(workers);
  task::Pool* drain_pool = pool ? &*pool : nullptr;
  mc::ReplicaRun<WorldReport> run = mc::run_replicas<WorldReport>(
      options, [&spec, drain_pool](common::Rng& rng, std::size_t) {
        // Each replica re-seeds the whole scenario (trace synthesis, failure
        // arrivals, fleet sampling) from its own forked stream.
        ScenarioSpec replica_spec = spec;
        replica_spec.seed = rng.next();
        World world(std::move(replica_spec));
        if (drain_pool != nullptr) return world.run_parallel(*drain_pool);
        return world.run();
      });
  run.timing.workers_used = workers;
  return run;
}

}  // namespace acme::world
