#include "world/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

#include "common/check.h"
#include "common/cli.h"
#include "trace/synthesizer.h"

namespace acme::world {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Shortest representation that round-trips a double (1e9 stays "1e+09", 0.125
// stays "0.125"); keeps scenario files diffable and the round-trip exact.
std::string number(double v) {
  // Integral values print as plain integers (900, not 9e+02).
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::stod(buf) == v) break;
  }
  return buf;
}

// Minimal strict parser for the flat JSON objects to_json emits: string,
// number and boolean values only, no nesting.
struct FlatParser {
  const std::string& text;
  std::size_t i = 0;
  std::string error;

  bool fail(const std::string& message) {
    error = message + " (at byte " + std::to_string(i) + ")";
    return false;
  }
  void skip_ws() {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= text.size() || text[i] != c)
      return fail(std::string("expected '") + c + "'");
    ++i;
    return true;
  }
  bool parse_string(std::string* out) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return fail("expected string");
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') {
        ++i;
        if (i >= text.size()) return fail("dangling escape");
      }
      out->push_back(text[i++]);
    }
    if (i >= text.size()) return fail("unterminated string");
    ++i;
    return true;
  }
  // Raw token for a scalar value; *is_string reports which kind it was.
  bool parse_scalar(std::string* raw, bool* is_string) {
    skip_ws();
    if (i < text.size() && text[i] == '"') {
      *is_string = true;
      return parse_string(raw);
    }
    *is_string = false;
    raw->clear();
    while (i < text.size() && text[i] != ',' && text[i] != '}' &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      raw->push_back(text[i++]);
    if (raw->empty()) return fail("expected value");
    return true;
  }
};

bool parse_double(const std::string& raw, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(raw, &used);
    return used == raw.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& raw, std::uint64_t* out) {
  try {
    std::size_t used = 0;
    *out = std::stoull(raw, &used);
    return used == raw.size();
  } catch (...) {
    return false;
  }
}

struct Registry {
  std::mutex mu;
  std::map<std::string, ScenarioSpec> by_name;
};

Registry& registry() {
  static Registry* r = [] {
    auto* init = new Registry;
    for (const ScenarioSpec& preset :
         {seren_scenario(), kalos_scenario(), serve_seren_scenario(),
          colocated_seren_scenario(), hyperscale_small_scenario()})
      init->by_name[preset.name] = preset;
    return init;
  }();
  return *r;
}

// Every key scenario_from_json accepts, for the "did you mean" suggestion.
constexpr const char* kScenarioKeys[] = {
    "name",          "cluster",
    "scale",         "sample_interval_seconds",
    "seed",          "inject_failures",
    "failure_interval_scale", "auto_recovery",
    "ckpt_interval_seconds",  "async_ckpt",
    "fleet_samples", "pretrain",
    "serve_replicas",         "serve_gpus_per_replica",
    "serve_model",   "serve_rps",
    "serve_diurnal_amplitude", "serve_burst_multiplier",
    "serve_burst_fraction",    "serve_duration_seconds",
    "serve_slo_ttft_seconds",  "serve_slo_tpot_seconds",
    "node_count",    "topo_datacenters",
    "topo_pods_per_dc",        "topo_nodes_per_switch",
    "trace_multiplier",        "domain_failures",
    "domain_failure_interval_scale",
};

// Range-violation messages mirror unknown_key_message's "did you mean"
// style: a negative where a positive is required almost always means a
// dropped sign, so suggest the absolute value.
std::string range_message(const char* key, double v, const char* requirement) {
  std::ostringstream os;
  os << key << " must be " << requirement << ", got " << v;
  if (v < 0 && std::isfinite(v)) os << " (did you mean " << -v << "?)";
  return os.str();
}

std::string unknown_key_message(const std::string& key) {
  std::string best;
  std::size_t best_distance = 4;  // suggest only near-misses, like FlagSet
  for (const char* known : kScenarioKeys) {
    const std::size_t d = common::edit_distance(key, known);
    if (d < best_distance) {
      best_distance = d;
      best = known;
    }
  }
  std::string message = "unknown scenario key \"" + key + "\"";
  if (!best.empty()) message += " (did you mean \"" + best + "\"?)";
  return message;
}

}  // namespace

double ScenarioSpec::trace_divisor() const {
  ACME_CHECK_MSG(scale > 0, "scenario scale must be positive");
  return scale >= 1.0 ? scale : 1.0 / scale;
}

std::string ScenarioSpec::to_json() const {
  std::ostringstream out;
  out << "{\"name\":\"" << escape(name) << "\""
      << ",\"cluster\":\"" << escape(cluster) << "\""
      << ",\"scale\":" << number(scale)
      << ",\"sample_interval_seconds\":" << number(sample_interval_seconds)
      << ",\"seed\":" << seed
      << ",\"inject_failures\":" << (inject_failures ? "true" : "false")
      << ",\"failure_interval_scale\":" << number(failure_interval_scale)
      << ",\"auto_recovery\":" << (auto_recovery ? "true" : "false")
      << ",\"ckpt_interval_seconds\":" << number(ckpt_interval_seconds)
      << ",\"async_ckpt\":" << (async_ckpt ? "true" : "false")
      << ",\"fleet_samples\":" << fleet_samples
      << ",\"pretrain\":" << (pretrain ? "true" : "false")
      << ",\"serve_replicas\":" << serve_replicas
      << ",\"serve_gpus_per_replica\":" << serve_gpus_per_replica
      << ",\"serve_model\":\"" << escape(serve_model) << "\""
      << ",\"serve_rps\":" << number(serve_rps)
      << ",\"serve_diurnal_amplitude\":" << number(serve_diurnal_amplitude)
      << ",\"serve_burst_multiplier\":" << number(serve_burst_multiplier)
      << ",\"serve_burst_fraction\":" << number(serve_burst_fraction)
      << ",\"serve_duration_seconds\":" << number(serve_duration_seconds)
      << ",\"serve_slo_ttft_seconds\":" << number(serve_slo_ttft_seconds)
      << ",\"serve_slo_tpot_seconds\":" << number(serve_slo_tpot_seconds)
      << ",\"node_count\":" << node_count
      << ",\"topo_datacenters\":" << topo_datacenters
      << ",\"topo_pods_per_dc\":" << topo_pods_per_dc
      << ",\"topo_nodes_per_switch\":" << topo_nodes_per_switch
      << ",\"trace_multiplier\":" << number(trace_multiplier)
      << ",\"domain_failures\":" << (domain_failures ? "true" : "false")
      << ",\"domain_failure_interval_scale\":"
      << number(domain_failure_interval_scale)
      << "}";
  return out.str();
}

std::optional<ScenarioSpec> scenario_from_json(const std::string& json,
                                               std::string* error) {
  const auto bail = [&](const std::string& message) -> std::optional<ScenarioSpec> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  FlatParser p{json, 0, {}};
  if (!p.expect('{')) return bail(p.error);
  ScenarioSpec spec;
  p.skip_ws();
  bool first = true;
  std::vector<std::string> seen;
  while (true) {
    p.skip_ws();
    if (p.i < json.size() && json[p.i] == '}') {
      ++p.i;
      break;
    }
    if (!first && !p.expect(',')) return bail(p.error);
    first = false;
    std::string key, raw;
    bool is_string = false;
    if (!p.parse_string(&key)) return bail(p.error);
    if (!p.expect(':')) return bail(p.error);
    if (!p.parse_scalar(&raw, &is_string)) return bail(p.error);
    if (std::find(seen.begin(), seen.end(), key) != seen.end())
      return bail("duplicate scenario key \"" + key + "\"");
    seen.push_back(key);

    const auto want_string = [&](std::string* field) {
      if (!is_string) return false;
      *field = raw;
      return true;
    };
    // std::stod happily parses "nan" and "inf"; neither is a meaningful
    // scenario number (NaN even defeats `x > 0` validation by comparing
    // false), so non-finite values are rejected here with their own message.
    bool nonfinite = false;
    const auto want_double = [&](double* field) {
      double v = 0;
      if (is_string || !parse_double(raw, &v)) return false;
      if (!std::isfinite(v)) {
        nonfinite = true;
        return false;
      }
      *field = v;
      return true;
    };
    const auto want_bool = [&](bool* field) {
      if (is_string || (raw != "true" && raw != "false")) return false;
      *field = raw == "true";
      return true;
    };
    const auto want_u64 = [&](std::uint64_t* field) {
      return !is_string && parse_u64(raw, field);
    };
    const auto want_int = [&](int* field) {
      std::uint64_t n = 0;
      if (is_string || !parse_u64(raw, &n) || n > 1000000) return false;
      *field = static_cast<int>(n);
      return true;
    };

    bool ok;
    if (key == "name") ok = want_string(&spec.name);
    else if (key == "cluster") ok = want_string(&spec.cluster);
    else if (key == "scale") ok = want_double(&spec.scale);
    else if (key == "sample_interval_seconds")
      ok = want_double(&spec.sample_interval_seconds);
    else if (key == "seed") ok = want_u64(&spec.seed);
    else if (key == "inject_failures") ok = want_bool(&spec.inject_failures);
    else if (key == "failure_interval_scale")
      ok = want_double(&spec.failure_interval_scale);
    else if (key == "auto_recovery") ok = want_bool(&spec.auto_recovery);
    else if (key == "ckpt_interval_seconds")
      ok = want_double(&spec.ckpt_interval_seconds);
    else if (key == "async_ckpt") ok = want_bool(&spec.async_ckpt);
    else if (key == "fleet_samples") {
      std::uint64_t n = 0;
      ok = want_u64(&n);
      spec.fleet_samples = static_cast<std::size_t>(n);
    } else if (key == "pretrain") ok = want_bool(&spec.pretrain);
    else if (key == "serve_replicas") ok = want_int(&spec.serve_replicas);
    else if (key == "serve_gpus_per_replica")
      ok = want_int(&spec.serve_gpus_per_replica);
    else if (key == "serve_model") ok = want_string(&spec.serve_model);
    else if (key == "serve_rps") ok = want_double(&spec.serve_rps);
    else if (key == "serve_diurnal_amplitude")
      ok = want_double(&spec.serve_diurnal_amplitude);
    else if (key == "serve_burst_multiplier")
      ok = want_double(&spec.serve_burst_multiplier);
    else if (key == "serve_burst_fraction")
      ok = want_double(&spec.serve_burst_fraction);
    else if (key == "serve_duration_seconds")
      ok = want_double(&spec.serve_duration_seconds);
    else if (key == "serve_slo_ttft_seconds")
      ok = want_double(&spec.serve_slo_ttft_seconds);
    else if (key == "serve_slo_tpot_seconds")
      ok = want_double(&spec.serve_slo_tpot_seconds);
    else if (key == "node_count") ok = want_int(&spec.node_count);
    else if (key == "topo_datacenters") ok = want_int(&spec.topo_datacenters);
    else if (key == "topo_pods_per_dc") ok = want_int(&spec.topo_pods_per_dc);
    else if (key == "topo_nodes_per_switch")
      ok = want_int(&spec.topo_nodes_per_switch);
    else if (key == "trace_multiplier") ok = want_double(&spec.trace_multiplier);
    else if (key == "domain_failures") ok = want_bool(&spec.domain_failures);
    else if (key == "domain_failure_interval_scale")
      ok = want_double(&spec.domain_failure_interval_scale);
    else {
      return bail(unknown_key_message(key));
    }
    if (!ok) {
      if (nonfinite)
        return bail("non-finite value for \"" + key + "\": " + raw +
                    " (scenario numbers must be finite)");
      return bail("bad value for \"" + key + "\": " + raw);
    }
  }
  p.skip_ws();
  if (p.i != json.size()) return bail("trailing garbage after scenario object");
  if (spec.cluster != "seren" && spec.cluster != "kalos")
    return bail("cluster must be \"seren\" or \"kalos\", got \"" +
                spec.cluster + "\"");
  if (!(spec.scale > 0))
    return bail(range_message("scale", spec.scale, "positive"));
  if (!(spec.failure_interval_scale > 0))
    return bail(range_message("failure_interval_scale",
                              spec.failure_interval_scale, "positive"));
  if (!(spec.ckpt_interval_seconds > 0))
    return bail(range_message("ckpt_interval_seconds",
                              spec.ckpt_interval_seconds, "positive"));
  if (spec.sample_interval_seconds < 0)
    return bail(range_message("sample_interval_seconds",
                              spec.sample_interval_seconds, ">= 0"));
  if (spec.serve_model != "7b" && spec.serve_model != "104b" &&
      spec.serve_model != "123b" && spec.serve_model != "moe")
    return bail("serve_model must be one of 7b, 104b, 123b, moe; got \"" +
                spec.serve_model + "\"");
  if (!spec.pretrain && !spec.serving())
    return bail("a serve-only scenario (pretrain=false) needs serve_replicas > 0");
  // Serve ranges are checked even when serving is off: a spec carrying a
  // poisoned serve field would otherwise blow up only when someone later
  // re-enables replicas on it.
  if (spec.serve_replicas < 0)
    return bail(range_message("serve_replicas",
                              static_cast<double>(spec.serve_replicas),
                              ">= 0"));
  if (spec.serve_gpus_per_replica <= 0)
    return bail("serve_gpus_per_replica must be positive");
  if (spec.serve_rps < 0)
    return bail(range_message("serve_rps", spec.serve_rps, ">= 0"));
  if (spec.serve_diurnal_amplitude < 0 || spec.serve_diurnal_amplitude > 1)
    return bail(range_message("serve_diurnal_amplitude",
                              spec.serve_diurnal_amplitude, "in [0, 1]"));
  if (spec.serve_burst_multiplier < 1)
    return bail(range_message("serve_burst_multiplier",
                              spec.serve_burst_multiplier, ">= 1"));
  if (spec.serve_burst_fraction < 0 || spec.serve_burst_fraction >= 1)
    return bail(range_message("serve_burst_fraction",
                              spec.serve_burst_fraction, "in [0, 1)"));
  if (!(spec.serve_duration_seconds > 0))
    return bail(range_message("serve_duration_seconds",
                              spec.serve_duration_seconds, "positive"));
  if (!(spec.serve_slo_ttft_seconds > 0))
    return bail(range_message("serve_slo_ttft_seconds",
                              spec.serve_slo_ttft_seconds, "positive"));
  if (!(spec.serve_slo_tpot_seconds > 0))
    return bail(range_message("serve_slo_tpot_seconds",
                              spec.serve_slo_tpot_seconds, "positive"));
  if (spec.topo_datacenters < 1)
    return bail(range_message("topo_datacenters",
                              static_cast<double>(spec.topo_datacenters),
                              ">= 1"));
  if (spec.topo_pods_per_dc < 1)
    return bail(range_message("topo_pods_per_dc",
                              static_cast<double>(spec.topo_pods_per_dc),
                              ">= 1"));
  if (spec.topo_nodes_per_switch < 0)
    return bail(range_message("topo_nodes_per_switch",
                              static_cast<double>(spec.topo_nodes_per_switch),
                              ">= 0"));
  if (!(spec.trace_multiplier >= 1.0) || spec.trace_multiplier > 4096.0)
    return bail(range_message("trace_multiplier", spec.trace_multiplier,
                              "in [1, 4096]"));
  if (!(spec.domain_failure_interval_scale > 0))
    return bail(range_message("domain_failure_interval_scale",
                              spec.domain_failure_interval_scale, "positive"));
  // The DomainTree needs at least one node per pod; check against the node
  // count this spec resolves to so the failure surfaces at parse time.
  {
    const int nodes = spec.node_count > 0
                          ? spec.node_count
                          : (spec.kalos() ? cluster::kalos_spec().node_count
                                          : cluster::seren_spec().node_count);
    const long long pods = static_cast<long long>(spec.topo_datacenters) *
                           spec.topo_pods_per_dc;
    if (pods > nodes)
      return bail("topology has more pods (" + std::to_string(pods) +
                  ") than nodes (" + std::to_string(nodes) + ")");
  }
  return spec;
}

ScenarioSpec seren_scenario() {
  ScenarioSpec spec;
  spec.name = "seren";
  spec.cluster = "seren";
  spec.scale = 8.0;  // the characterization benches' usual 1/8 trace
  return spec;
}

ScenarioSpec kalos_scenario() {
  ScenarioSpec spec;
  spec.name = "kalos";
  spec.cluster = "kalos";
  spec.scale = 1.0;
  return spec;
}

ScenarioSpec serve_seren_scenario() {
  ScenarioSpec spec;
  spec.name = "serve-seren";
  spec.cluster = "seren";
  spec.pretrain = false;
  spec.inject_failures = false;  // clean SLO baseline; flip on for Table 3
  spec.serve_replicas = 16;
  // ~0.7x fleet capacity at the mean: healthy baseline, but the diurnal
  // peak in the MMPP burst state pushes past capacity by design.
  spec.serve_rps = 250.0;
  return spec;
}

ScenarioSpec colocated_seren_scenario() {
  ScenarioSpec spec;
  spec.name = "colocated-seren";
  spec.cluster = "seren";
  spec.scale = 8.0;
  spec.serve_replicas = 8;
  spec.serve_rps = 120.0;
  spec.serve_duration_seconds = 4.0 * 3600.0;
  return spec;
}

ScenarioSpec hyperscale_scenario(int n_gpus, int n_dcs) {
  ACME_CHECK_MSG(n_gpus >= 8 && n_dcs >= 1, "hyperscale needs gpus and dcs");
  ScenarioSpec spec;
  const int nodes = std::max(n_dcs, (n_gpus + 7) / 8);
  char name[64];
  std::snprintf(name, sizeof(name), "hyperscale-%dg-%ddc", nodes * 8, n_dcs);
  spec.name = name;
  spec.cluster = "seren";  // node hardware profile; the fleet size overrides
  spec.node_count = nodes;
  spec.topo_datacenters = n_dcs;
  // Rail-optimized pods of ~32 nodes under one PDU/spine block, 8-node
  // switch groups inside each pod.
  spec.topo_pods_per_dc = std::max(1, nodes / (n_dcs * 32));
  spec.topo_nodes_per_switch = 8;
  // ~5.7-day window at 1/32 of the six-month trace, with job volume scaled
  // to the fleet: a fleet 10x Seren's 2,288 GPUs hosts ~10x the jobs.
  spec.scale = 32.0;
  spec.trace_multiplier =
      std::max(1.0, std::floor(nodes * 8.0 / 2288.0 + 0.5));
  spec.domain_failures = true;
  // Compress the quarter-scale Table 2 inter-event times into the short
  // window so every run sees a handful of correlated outages.
  spec.domain_failure_interval_scale = 0.05;
  return spec;
}

ScenarioSpec hyperscale_small_scenario() {
  ScenarioSpec spec = hyperscale_scenario(8192, 2);
  spec.name = "hyperscale-small";
  spec.scale = 64.0;          // ~2.9-day window: fast enough for the matrix
  spec.trace_multiplier = 1.0;
  spec.domain_failure_interval_scale = 0.02;
  return spec;
}

void register_scenario(const ScenarioSpec& spec) {
  ACME_CHECK_MSG(!spec.name.empty(), "scenario needs a name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.by_name[spec.name] = spec;
}

std::optional<ScenarioSpec> find_scenario(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it == r.by_name.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> scenario_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.by_name.size());
  for (const auto& [name, spec] : r.by_name) names.push_back(name);
  return names;
}

ClusterInputs cluster_inputs(const ScenarioSpec& spec) {
  ACME_CHECK_MSG(spec.cluster == "seren" || spec.cluster == "kalos",
                 "unknown cluster in scenario");
  ClusterInputs inputs =
      spec.kalos()
          ? ClusterInputs{trace::kalos_profile(), cluster::kalos_spec(),
                          sched::kalos_scheduler_config(),
                          comm::kalos_fabric()}
          : ClusterInputs{trace::seren_profile(), cluster::seren_spec(),
                          sched::seren_scheduler_config(),
                          comm::seren_fabric()};
  // Hyperscale overrides: resize the fleet around the cluster's node
  // hardware profile and re-derive the fabric so tier links (spine,
  // long-haul) match the topology. Specs with all-default topology keep the
  // preset fabric object untouched, bit for bit.
  const cluster::DomainShape shape{spec.topo_datacenters,
                                   spec.topo_pods_per_dc,
                                   spec.topo_nodes_per_switch};
  if (spec.node_count > 0 || !shape.trivial()) {
    if (spec.node_count > 0) inputs.spec.node_count = spec.node_count;
    inputs.spec.topology = shape;
    inputs.fabric = comm::fabric_from_cluster(inputs.spec);
  }
  return inputs;
}

trace::Trace synthesize_trace(const ScenarioSpec& spec) {
  ClusterInputs inputs = cluster_inputs(spec);
  const double divisor = spec.trace_divisor();
  trace::ClusterWorkloadProfile profile =
      divisor > 1.0 ? trace::scaled(std::move(inputs.profile), divisor)
                    : std::move(inputs.profile);
  if (spec.trace_multiplier > 1.0)
    profile = trace::amplified(std::move(profile), spec.trace_multiplier);
  profile.cpu_jobs = 0;  // CPU jobs never touch the GPU scheduler
  trace::SynthesizerOptions options;
  options.seed = spec.seed;
  return trace::TraceSynthesizer(std::move(profile), options).generate();
}

}  // namespace acme::world
