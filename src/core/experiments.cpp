#include "core/experiments.h"

#include "trace/analysis.h"

namespace acme::core {

ClusterSetup seren_setup() {
  return {trace::seren_profile(), cluster::seren_spec(),
          sched::seren_scheduler_config()};
}

ClusterSetup kalos_setup() {
  return {trace::kalos_profile(), cluster::kalos_spec(),
          sched::kalos_scheduler_config()};
}

SixMonthReplay run_six_month_replay(const ClusterSetup& setup, double scale,
                                    double sample_interval, std::uint64_t seed) {
  auto profile = scale > 1.0 ? trace::scaled(setup.profile, scale) : setup.profile;
  profile.cpu_jobs = 0;  // CPU jobs do not touch the GPU scheduler
  trace::SynthesizerOptions options;
  options.seed = seed;
  trace::TraceSynthesizer synth(profile, options);
  sched::SchedulerReplay scheduler(setup.spec, setup.sched_config);

  SixMonthReplay out;
  out.replay = scheduler.replay(synth.generate(), sample_interval);
  double busy = 0, total = 0;
  for (const auto& s : out.replay.occupancy) {
    busy += s.busy_gpus;
    total += s.total_gpus;
  }
  out.busy_fraction = total > 0 ? busy / total : 0;
  return out;
}

mc::ReplicaRun<SixMonthReplay> run_six_month_replay_mc(
    const ClusterSetup& setup, const mc::ReplicationOptions& options,
    double scale, double sample_interval) {
  return mc::run_replicas<SixMonthReplay>(
      options, [&setup, scale, sample_interval](common::Rng& rng, std::size_t) {
        // Each replica resynthesizes the trace from a seed drawn off its own
        // forked stream, then replays it through a private scheduler+engine.
        return run_six_month_replay(setup, scale, sample_interval, rng.next());
      });
}

telemetry::FleetSamplerConfig fleet_config_from(const ClusterSetup& setup,
                                                const SixMonthReplay& replay) {
  telemetry::FleetSamplerConfig config;
  config.spec = setup.spec;
  config.busy_fraction = replay.busy_fraction;
  for (const auto& [type, share] : trace::type_shares(replay.replay.jobs))
    if (share.gpu_time_fraction > 0)
      config.gputime_mix[type] = share.gpu_time_fraction;
  return config;
}

}  // namespace acme::core
