#include "core/experiments.h"

#include <cstring>
#include <limits>
#include <memory>
#include <string_view>

#include "common/check.h"
#include "common/digest.h"
#include "sched/shard.h"
#include "trace/analysis.h"
#include "world/scenario.h"

namespace acme::core {

ClusterSetup setup_for(const world::ScenarioSpec& scenario) {
  world::ClusterInputs inputs = world::cluster_inputs(scenario);
  return {std::move(inputs.profile), inputs.spec, inputs.sched_config};
}

ClusterSetup seren_setup() { return setup_for(world::seren_scenario()); }

ClusterSetup kalos_setup() { return setup_for(world::kalos_scenario()); }

namespace {

trace::Trace synthesize_replay_trace(const ClusterSetup& setup, double scale,
                                     std::uint64_t seed) {
  ACME_CHECK_MSG(scale > 0, "replay scale must be positive");
  // scale >= 1 divides the six-month job volume; (0, 1) is the fraction kept
  // (0.125 is the same trace as 8.0).
  const double divisor = scale >= 1.0 ? scale : 1.0 / scale;
  auto profile = divisor > 1.0 ? trace::scaled(setup.profile, divisor) : setup.profile;
  profile.cpu_jobs = 0;  // CPU jobs do not touch the GPU scheduler
  trace::SynthesizerOptions options;
  options.seed = seed;
  return trace::TraceSynthesizer(profile, options).generate();
}

SixMonthReplay replay_trace(sched::SchedulerReplay& scheduler,
                            trace::Trace&& jobs, double sample_interval) {
  SixMonthReplay out;
  out.replay = scheduler.replay(std::move(jobs), sample_interval);
  double busy = 0, total = 0;
  for (const auto& s : out.replay.occupancy) {
    busy += s.busy_gpus;
    total += s.total_gpus;
  }
  out.busy_fraction = total > 0 ? busy / total : 0;
  return out;
}

}  // namespace

SixMonthReplay run_six_month_replay(const ClusterSetup& setup, double scale,
                                    double sample_interval, std::uint64_t seed) {
  sched::SchedulerReplay scheduler(setup.spec, setup.sched_config);
  return replay_trace(scheduler, synthesize_replay_trace(setup, scale, seed),
                      sample_interval);
}

SixMonthReplay run_scenario_replay(const world::ScenarioSpec& scenario) {
  return run_six_month_replay(setup_for(scenario), scenario.scale,
                              scenario.sample_interval_seconds, scenario.seed);
}

mc::ReplicaRun<SixMonthReplay> run_six_month_replay_mc(
    const ClusterSetup& setup, const mc::ReplicationOptions& options,
    double scale, double sample_interval) {
  // The scheduler (with its engine's event storage, per-job runtime table
  // and link arenas — all sized to the 1M-record trace) is reused across the
  // replicas each worker runs; replay() restarts the private clock, so
  // results stay bit-identical to fresh-instance execution.
  struct Scratch {
    std::unique_ptr<sched::SchedulerReplay> sched;
  };
  return mc::run_replicas_scratch<SixMonthReplay, Scratch>(
      options,
      [&setup, scale, sample_interval](common::Rng& rng, std::size_t,
                                       Scratch& scratch) {
        // Each replica resynthesizes the trace from a seed drawn off its own
        // forked stream.
        if (!scratch.sched)
          scratch.sched = std::make_unique<sched::SchedulerReplay>(
              setup.spec, setup.sched_config);
        return replay_trace(*scratch.sched,
                            synthesize_replay_trace(setup, scale, rng.next()),
                            sample_interval);
      });
}

namespace {

void fold_u64(common::Fnv1a& h, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(buf));
  h.update(std::string_view(buf, sizeof(buf)));
}

void fold_f64(common::Fnv1a& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fold_u64(h, bits);
}

}  // namespace

std::uint64_t ShardedReplay::digest() const {
  common::Fnv1a h;
  for (const sched::ReplayResult& shard : shards) {
    fold_f64(h, shard.makespan);
    fold_u64(h, shard.unstarted);
    fold_u64(h, shard.jobs.size());
    for (const trace::JobRecord& job : shard.jobs) {
      fold_u64(h, job.id);
      fold_f64(h, job.queue_delay);
    }
  }
  fold_u64(h, commit_digest);
  return h.digest();
}

ShardedReplay run_sharded_replay(const ClusterSetup& setup, double scale,
                                 std::uint64_t seed, std::size_t shards,
                                 task::Pool* pool, double window_seconds) {
  ACME_CHECK_MSG(shards >= 1, "sharded replay needs at least one pod");
  trace::Trace jobs = synthesize_replay_trace(setup, scale, seed);
  const std::size_t total_jobs = jobs.size();
  std::vector<trace::Trace> slices = sched::shard_trace(jobs, shards);
  jobs.clear();
  jobs.shrink_to_fit();

  std::vector<std::unique_ptr<sched::SchedulerReplay>> pods;
  pods.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    pods.push_back(std::make_unique<sched::SchedulerReplay>(
        setup.spec, setup.sched_config));
    pods[s]->begin_replay(std::move(slices[s]));
  }
  sim::WindowRunner runner;
  for (std::size_t s = 0; s < shards; ++s) {
    runner.add_partition(pods[s]->engine(), static_cast<std::uint32_t>(s));
  }
  const double lookahead = window_seconds > 0
                               ? window_seconds
                               : std::numeric_limits<double>::infinity();
  ShardedReplay out;
  out.windows = runner.run(pool, lookahead);
  out.commit_digest = runner.commit_digest();
  out.jobs = total_jobs;
  out.shards.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out.shards.push_back(pods[s]->finish_replay());
    out.unstarted += out.shards.back().unstarted;
  }
  return out;
}

telemetry::FleetSamplerConfig fleet_config_from(const ClusterSetup& setup,
                                                const SixMonthReplay& replay) {
  telemetry::FleetSamplerConfig config;
  config.spec = setup.spec;
  config.busy_fraction = replay.busy_fraction;
  for (const auto& [type, share] : trace::type_shares(replay.replay.jobs))
    if (share.gpu_time_fraction > 0)
      config.gputime_mix[type] = share.gpu_time_fraction;
  return config;
}

}  // namespace acme::core
