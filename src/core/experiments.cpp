#include "core/experiments.h"

#include "common/check.h"
#include "trace/analysis.h"
#include "world/scenario.h"

namespace acme::core {

ClusterSetup setup_for(const world::ScenarioSpec& scenario) {
  world::ClusterInputs inputs = world::cluster_inputs(scenario);
  return {std::move(inputs.profile), inputs.spec, inputs.sched_config};
}

ClusterSetup seren_setup() { return setup_for(world::seren_scenario()); }

ClusterSetup kalos_setup() { return setup_for(world::kalos_scenario()); }

SixMonthReplay run_six_month_replay(const ClusterSetup& setup, double scale,
                                    double sample_interval, std::uint64_t seed) {
  ACME_CHECK_MSG(scale > 0, "replay scale must be positive");
  // scale >= 1 divides the six-month job volume; (0, 1) is the fraction kept
  // (0.125 is the same trace as 8.0).
  const double divisor = scale >= 1.0 ? scale : 1.0 / scale;
  auto profile = divisor > 1.0 ? trace::scaled(setup.profile, divisor) : setup.profile;
  profile.cpu_jobs = 0;  // CPU jobs do not touch the GPU scheduler
  trace::SynthesizerOptions options;
  options.seed = seed;
  trace::TraceSynthesizer synth(profile, options);
  sched::SchedulerReplay scheduler(setup.spec, setup.sched_config);

  SixMonthReplay out;
  out.replay = scheduler.replay(synth.generate(), sample_interval);
  double busy = 0, total = 0;
  for (const auto& s : out.replay.occupancy) {
    busy += s.busy_gpus;
    total += s.total_gpus;
  }
  out.busy_fraction = total > 0 ? busy / total : 0;
  return out;
}

SixMonthReplay run_scenario_replay(const world::ScenarioSpec& scenario) {
  return run_six_month_replay(setup_for(scenario), scenario.scale,
                              scenario.sample_interval_seconds, scenario.seed);
}

mc::ReplicaRun<SixMonthReplay> run_six_month_replay_mc(
    const ClusterSetup& setup, const mc::ReplicationOptions& options,
    double scale, double sample_interval) {
  return mc::run_replicas<SixMonthReplay>(
      options, [&setup, scale, sample_interval](common::Rng& rng, std::size_t) {
        // Each replica resynthesizes the trace from a seed drawn off its own
        // forked stream, then replays it through a private scheduler+engine.
        return run_six_month_replay(setup, scale, sample_interval, rng.next());
      });
}

telemetry::FleetSamplerConfig fleet_config_from(const ClusterSetup& setup,
                                                const SixMonthReplay& replay) {
  telemetry::FleetSamplerConfig config;
  config.spec = setup.spec;
  config.busy_fraction = replay.busy_fraction;
  for (const auto& [type, share] : trace::type_shares(replay.replay.jobs))
    if (share.gpu_time_fraction > 0)
      config.gputime_mix[type] = share.gpu_time_fraction;
  return config;
}

}  // namespace acme::core
