// Shared experiment drivers used by the bench harness, tests and examples:
// cluster selection, six-month replays and fleet-sampler wiring.
#pragma once

#include <string>

#include "cluster/spec.h"
#include "mc/replication.h"
#include "sched/scheduler.h"
#include "sim/window.h"
#include "task/task.h"
#include "telemetry/fleet_sampler.h"
#include "trace/synthesizer.h"
#include "trace/workload_profile.h"
#include "world/scenario.h"

namespace acme::core {

struct ClusterSetup {
  trace::ClusterWorkloadProfile profile;
  cluster::ClusterSpec spec;
  sched::SchedulerConfig sched_config;
};

// The scenario presets are the single source of cluster assemblies; these
// resolve one into the classic setup triple.
ClusterSetup setup_for(const world::ScenarioSpec& scenario);
ClusterSetup seren_setup();
ClusterSetup kalos_setup();

struct SixMonthReplay {
  sched::ReplayResult replay;
  double busy_fraction = 0;  // time-averaged GPU occupancy
};

// Synthesizes the six-month trace (optionally downscaled in job count for
// speed — distributions are unchanged) and replays it through the cluster
// scheduler. `sample_interval` controls the occupancy timeline resolution.
// `scale` must be positive: values >= 1 divide the job volume, values in
// (0, 1) are the fraction of the trace kept (0.125 == 8.0).
SixMonthReplay run_six_month_replay(const ClusterSetup& setup, double scale = 1.0,
                                    double sample_interval = 900.0,
                                    std::uint64_t seed = 42);

// Scenario-driven replay: setup, scale, sample interval and seed all come
// from the spec (what the bench helpers share with acme::world).
SixMonthReplay run_scenario_replay(const world::ScenarioSpec& scenario);

// Monte Carlo replication of the six-month replay: N independent replicas,
// each with its own trace synthesis seed (drawn from the replica's forked
// Rng stream) and its own scheduler/engine instance, run on a worker pool.
// Per-replica results are bit-identical to a serial run regardless of thread
// count (see mc/replication.h).
mc::ReplicaRun<SixMonthReplay> run_six_month_replay_mc(
    const ClusterSetup& setup, const mc::ReplicationOptions& options,
    double scale = 1.0, double sample_interval = 900.0);

// One six-month replay sharded across pods (DESIGN.md §13): the synthesized
// trace splits round-robin via sched::shard_trace, each slice replays on a
// full cluster replica with its own engine, and sim::WindowRunner drains the
// pods concurrently on `pool` with a deterministic (time, shard, seq) merge.
struct ShardedReplay {
  std::vector<sched::ReplayResult> shards;  // per-pod results, shard order
  std::uint64_t commit_digest = 0;          // merged commit-stream digest
  sim::WindowStats windows;
  std::size_t jobs = 0;       // total jobs replayed across all pods
  std::size_t unstarted = 0;  // summed over pods; 0 for well-formed profiles

  // FNV-1a over per-shard outcomes (makespan, unstarted, every job's id and
  // queue delay, in shard order) plus the commit digest: byte-identical at
  // any worker count iff the parallel drain changed nothing observable.
  std::uint64_t digest() const;
};

// `pool` may be null (fully serial drain — the workers=1 baseline);
// `window_seconds` <= 0 drains each pod in a single window. Deterministic:
// a pure function of (setup, scale, seed, shards) regardless of pool width.
ShardedReplay run_sharded_replay(const ClusterSetup& setup, double scale,
                                 std::uint64_t seed, std::size_t shards,
                                 task::Pool* pool, double window_seconds = 0);

// Builds a fleet sampler calibrated from a replay: occupancy from the
// scheduler timeline, workload mix from the trace's GPU-time shares.
telemetry::FleetSamplerConfig fleet_config_from(const ClusterSetup& setup,
                                                const SixMonthReplay& replay);

}  // namespace acme::core
