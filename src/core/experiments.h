// Shared experiment drivers used by the bench harness, tests and examples:
// cluster selection, six-month replays and fleet-sampler wiring.
#pragma once

#include <string>

#include "cluster/spec.h"
#include "mc/replication.h"
#include "sched/scheduler.h"
#include "telemetry/fleet_sampler.h"
#include "trace/synthesizer.h"
#include "trace/workload_profile.h"
#include "world/scenario.h"

namespace acme::core {

struct ClusterSetup {
  trace::ClusterWorkloadProfile profile;
  cluster::ClusterSpec spec;
  sched::SchedulerConfig sched_config;
};

// The scenario presets are the single source of cluster assemblies; these
// resolve one into the classic setup triple.
ClusterSetup setup_for(const world::ScenarioSpec& scenario);
ClusterSetup seren_setup();
ClusterSetup kalos_setup();

struct SixMonthReplay {
  sched::ReplayResult replay;
  double busy_fraction = 0;  // time-averaged GPU occupancy
};

// Synthesizes the six-month trace (optionally downscaled in job count for
// speed — distributions are unchanged) and replays it through the cluster
// scheduler. `sample_interval` controls the occupancy timeline resolution.
// `scale` must be positive: values >= 1 divide the job volume, values in
// (0, 1) are the fraction of the trace kept (0.125 == 8.0).
SixMonthReplay run_six_month_replay(const ClusterSetup& setup, double scale = 1.0,
                                    double sample_interval = 900.0,
                                    std::uint64_t seed = 42);

// Scenario-driven replay: setup, scale, sample interval and seed all come
// from the spec (what the bench helpers share with acme::world).
SixMonthReplay run_scenario_replay(const world::ScenarioSpec& scenario);

// Monte Carlo replication of the six-month replay: N independent replicas,
// each with its own trace synthesis seed (drawn from the replica's forked
// Rng stream) and its own scheduler/engine instance, run on a worker pool.
// Per-replica results are bit-identical to a serial run regardless of thread
// count (see mc/replication.h).
mc::ReplicaRun<SixMonthReplay> run_six_month_replay_mc(
    const ClusterSetup& setup, const mc::ReplicationOptions& options,
    double scale = 1.0, double sample_interval = 900.0);

// Builds a fleet sampler calibrated from a replay: occupancy from the
// scheduler timeline, workload mix from the trace's GPU-time shares.
telemetry::FleetSamplerConfig fleet_config_from(const ClusterSetup& setup,
                                                const SixMonthReplay& replay);

}  // namespace acme::core
