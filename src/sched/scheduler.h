// Cluster scheduler replay (paper §2.2 "resource isolation and quota
// reservation ... best-effort job mechanism", §3.2 queuing-delay findings).
//
// Policy modelled after Acme's:
//  - a node partition is reserved for pretraining (quota reservation): only
//    pretraining jobs may place there, so campaign resubmissions restart
//    without queuing behind best-effort work;
//  - all other workloads are best-effort on the shared partition;
//  - evaluation trials additionally sit in the lowest-priority queue under a
//    thin aggregate GPU cap — they arrive in large simultaneous batches and
//    drain through limited spare resources, which is exactly why the paper
//    finds they wait longest despite being the smallest jobs (Fig 6).
//
// Replaying a synthesized trace through this scheduler fills in each job's
// queue_delay and produces a cluster occupancy timeline for Fig 7.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "cluster/state.h"
#include "sim/engine.h"
#include "trace/job.h"

namespace acme::sched {

struct SchedulerConfig {
  // Fraction of cluster NODES reserved for pretraining. May be 0 when
  // preemption is enabled (the classic DL-scheduler design the paper argues
  // against for LLM workloads).
  double pretrain_reservation = 0.80;
  // Preemptive baseline (Tiresias/Gandiva-style): pretraining jobs evict
  // running best-effort jobs instead of relying on a reservation. Victims
  // lose all progress and re-run from scratch after `preemption_overhead`
  // (checkpoint save/restore + resubmission) — the "considerable recovery
  // overhead" of §3.1.
  bool allow_preemption = false;
  double preemption_overhead_seconds = 300.0;
  // Fairness-driven preemption OF pretraining (what Tiresias/Themis-style
  // schedulers do to long-running jobs): once a best-effort job has waited
  // past `fairness_wait_seconds`, the youngest pretraining job is evicted.
  // The victim rolls back to its last checkpoint — losing up to
  // `pretrain_rollback_cap_seconds` of 1000-GPU-scale work per eviction —
  // which is precisely the "considerable recovery overhead" of §3.1.
  bool preempt_pretraining_for_fairness = false;
  double fairness_wait_seconds = 1800.0;
  double pretrain_rollback_cap_seconds = 1800.0;  // checkpoint interval
  // Aggregate GPU cap for the evaluation class alone (fraction of cluster).
  double eval_cap_fraction = 0.05;
  // Backfill window: how many queued jobs past a stuck head the scheduler may
  // examine per class (Slurm-style conservative backfill).
  std::size_t backfill_depth = 64;
  int cpus_per_gpu = 12;
};

// Reservations tuned per cluster: Seren hosts the alignment/MLLM mix so its
// spare share is wider; Kalos is pretraining-dominated with a thin spare
// slice, which is what gives evaluation trials their long waits (Fig 6d).
SchedulerConfig seren_scheduler_config();
SchedulerConfig kalos_scheduler_config();

struct ReplayResult {
  // Jobs with queue_delay filled in (same order as the input trace).
  trace::Trace jobs;
  // Occupancy samples taken every sample_interval seconds.
  struct OccupancySample {
    double time;
    int busy_gpus;
    int total_gpus;
    int running_jobs;
    int queued_jobs;
  };
  std::vector<OccupancySample> occupancy;
  double makespan = 0;
  // Jobs still queued when the replay drained (demand that can never fit its
  // partition); should be zero for well-formed profiles.
  std::size_t unstarted = 0;
  // Preemptive-baseline accounting.
  int preemptions = 0;
  double wasted_gpu_seconds = 0;  // progress discarded by evictions
};

class SchedulerReplay {
 public:
  SchedulerReplay(const cluster::ClusterSpec& spec, SchedulerConfig config = {});

  // Replays the trace; GPU jobs only (CPU jobs pass through with zero delay).
  ReplayResult replay(const trace::Trace& input, double sample_interval = 0);

 private:
  enum class QueueClass { kPretrain = 0, kNormal = 1, kEvaluation = 2 };
  static QueueClass classify(trace::WorkloadType type);

  void sample_occupancy(double interval, ReplayResult* result);
  void on_submit(std::size_t index);
  void try_dispatch();
  bool try_start(std::size_t index);
  void on_complete(std::size_t index);
  // Evicts the youngest best-effort jobs until `gpus` can be gang-placed on
  // the shared partition; returns false if even a full eviction cannot help.
  bool preempt_for(int gpus);
  // Evicts one job (releasing its resources, accounting lost work, and
  // re-queueing it with the restart tax). `rollback_cap` bounds the loss for
  // checkpointed (pretraining) victims; infinity means start from scratch.
  void evict(std::size_t index, double rollback_cap);
  // Fairness pass: starved best-effort heads may evict pretraining victims.
  void preempt_pretraining_if_starved();

  cluster::ClusterSpec spec_;
  SchedulerConfig config_;
  sim::Engine engine_;
  // Reserved partition (pretraining only) and shared partition (everyone).
  cluster::ClusterState reserved_;
  cluster::ClusterState shared_;
  trace::Trace jobs_;
  struct Placement {
    cluster::Allocation alloc;
    bool on_reserved = false;
  };
  std::vector<Placement> placements_;
  // Per-job runtime bookkeeping for preemption support.
  std::vector<sim::EventHandle> completion_;
  std::vector<double> started_at_;
  std::vector<double> extra_overhead_;  // added on restart after eviction
  std::vector<bool> delay_recorded_;     // first-start delay already captured
  std::vector<double> progress_done_;    // work completed before an eviction
  std::vector<double> waiting_since_;    // first enqueue time (fairness clock)
  std::vector<std::size_t> running_best_effort_;  // newest last
  std::vector<std::size_t> running_pretrain_;     // newest last
  ReplayResult* result_ = nullptr;
  std::deque<std::size_t> queues_[3];
  int eval_gpus_in_use_ = 0;
  int eval_cap_ = 0;
  int running_jobs_ = 0;

  static cluster::ClusterSpec partition_spec(const cluster::ClusterSpec& spec,
                                             int nodes);
};

}  // namespace acme::sched
