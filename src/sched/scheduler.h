// Cluster scheduler replay (paper §2.2 "resource isolation and quota
// reservation ... best-effort job mechanism", §3.2 queuing-delay findings).
//
// Policy modelled after Acme's:
//  - a node partition is reserved for pretraining (quota reservation): only
//    pretraining jobs may place there, so campaign resubmissions restart
//    without queuing behind best-effort work;
//  - all other workloads are best-effort on the shared partition;
//  - evaluation trials additionally sit in the lowest-priority queue under a
//    thin aggregate GPU cap — they arrive in large simultaneous batches and
//    drain through limited spare resources, which is exactly why the paper
//    finds they wait longest despite being the smallest jobs (Fig 6).
//
// Replaying a synthesized trace through this scheduler fills in each job's
// queue_delay and produces a cluster occupancy timeline for Fig 7.
//
// The replay runs on an injected sim::Engine so it can share the event spine
// with failure injection, recovery and evaluation (acme::world). The legacy
// constructor keeps a private engine for single-silo callers. Integrated
// drivers use begin_replay()/finish_replay() and pump the engine themselves;
// replay() remains the one-call path.
#pragma once

#include <memory>
#include <vector>

#include "cluster/state.h"
#include "common/index_list.h"
#include "sim/engine.h"
#include "trace/job.h"

namespace acme::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace acme::snap

namespace acme::sched {

struct SchedulerConfig {
  // Fraction of cluster NODES reserved for pretraining. May be 0 when
  // preemption is enabled (the classic DL-scheduler design the paper argues
  // against for LLM workloads).
  double pretrain_reservation = 0.80;
  // Preemptive baseline (Tiresias/Gandiva-style): pretraining jobs evict
  // running best-effort jobs instead of relying on a reservation. Victims
  // lose all progress and re-run from scratch after `preemption_overhead`
  // (checkpoint save/restore + resubmission) — the "considerable recovery
  // overhead" of §3.1.
  bool allow_preemption = false;
  double preemption_overhead_seconds = 300.0;
  // Fairness-driven preemption OF pretraining (what Tiresias/Themis-style
  // schedulers do to long-running jobs): once a best-effort job has waited
  // past `fairness_wait_seconds`, the youngest pretraining job is evicted.
  // The victim rolls back to its last checkpoint — losing up to
  // `pretrain_rollback_cap_seconds` of 1000-GPU-scale work per eviction —
  // which is precisely the "considerable recovery overhead" of §3.1.
  bool preempt_pretraining_for_fairness = false;
  double fairness_wait_seconds = 1800.0;
  double pretrain_rollback_cap_seconds = 1800.0;  // checkpoint interval
  // Aggregate GPU cap for the evaluation class alone (fraction of cluster).
  double eval_cap_fraction = 0.05;
  // Backfill window: how many queued jobs past a stuck head the scheduler may
  // examine per class (Slurm-style conservative backfill).
  std::size_t backfill_depth = 64;
  int cpus_per_gpu = 12;
};

// Reservations tuned per cluster: Seren hosts the alignment/MLLM mix so its
// spare share is wider; Kalos is pretraining-dominated with a thin spare
// slice, which is what gives evaluation trials their long waits (Fig 6d).
SchedulerConfig seren_scheduler_config();
SchedulerConfig kalos_scheduler_config();

struct ReplayResult {
  // Jobs with queue_delay filled in (same order as the input trace).
  trace::Trace jobs;
  // Occupancy samples taken every sample_interval seconds.
  struct OccupancySample {
    double time;
    int busy_gpus;
    int total_gpus;
    int running_jobs;
    int queued_jobs;
  };
  std::vector<OccupancySample> occupancy;
  double makespan = 0;
  // Jobs still queued when the replay drained (demand that can never fit its
  // partition); should be zero for well-formed profiles.
  std::size_t unstarted = 0;
  // Preemptive-baseline accounting.
  int preemptions = 0;
  double wasted_gpu_seconds = 0;  // progress discarded by evictions
  // Failure-injection accounting (kill_job calls from acme::world).
  int failure_kills = 0;
  double failure_lost_gpu_seconds = 0;     // progress rolled back by kills
  double failure_restart_seconds = 0;      // recovery stalls charged to victims
};

class SchedulerReplay {
 public:
  // Legacy single-silo constructor: owns a private engine.
  SchedulerReplay(const cluster::ClusterSpec& spec, SchedulerConfig config = {});
  // Spine-injected constructor: replays on the caller's engine so scheduler
  // events interleave with every other subsystem's.
  SchedulerReplay(sim::Engine& engine, const cluster::ClusterSpec& spec,
                  SchedulerConfig config = {});

  // Replays the trace start-to-drain on the scheduler's engine; GPU jobs only
  // (CPU jobs pass through with zero delay). Equivalent to begin_replay() +
  // engine().run() + finish_replay(). The && overloads adopt the trace
  // instead of copying it — callers that synthesize a trace just to replay it
  // (world, experiments, benchmarks) should move it in.
  ReplayResult replay(const trace::Trace& input, double sample_interval = 0);
  ReplayResult replay(trace::Trace&& input, double sample_interval = 0);

  // Integrated-spine protocol: begin_replay() schedules every submission and
  // the occupancy sampler (relative to engine().now()) but does not pump the
  // engine; the caller runs the engine — interleaving its own events — and
  // collects the result with finish_replay() once the engine drained.
  void begin_replay(const trace::Trace& input, double sample_interval = 0);
  void begin_replay(trace::Trace&& input, double sample_interval = 0);
  ReplayResult finish_replay();

  sim::Engine& engine() { return *engine_; }

  // --- Mid-replay introspection and control (valid between begin_replay and
  // finish_replay; used by acme::world for live failure injection). ---

  // All submissions arrived, every queue is empty and nothing is running.
  bool drained() const;
  // Live view of the accumulating result (counters only; makespan and the
  // queue cleanup happen in finish_replay).
  const ReplayResult& partial_result() const { return *result_; }
  int running_jobs() const { return running_jobs_; }
  // Indices (into the active trace) of running pretraining jobs, oldest
  // first. The returned reference is a scratch snapshot rebuilt per call; it
  // stays valid until the next call but not across kill_job/engine steps.
  const std::vector<std::size_t>& running_pretrain_jobs() const {
    running_pools_[kPoolPretrain].copy_to(pool_links_, pretrain_scratch_);
    return pretrain_scratch_;
  }
  const trace::JobRecord& active_job(std::size_t index) const {
    return jobs_[index];
  }
  // Kills a running job mid-replay (a failure took its nodes down): releases
  // its GPUs, rolls back up to `rollback_cap_seconds` of progress (its last
  // checkpoint bounds the loss), charges `restart_overhead_seconds` of
  // recovery stall on its next start, and re-enqueues it at the back of its
  // class queue. Accounted separately from scheduler-policy preemptions.
  void kill_job(std::size_t index, double rollback_cap_seconds,
                double restart_overhead_seconds);

  // --- Global node addressing (cluster::DomainTree spans). The two
  // partitions tile one global node space: reserved nodes are global
  // [0, reserved_node_count()), shared nodes follow at an offset of
  // reserved_node_count(). Domain-correlated failures (acme::world) cordon
  // and kill by global span without knowing the partition split. ---
  int reserved_node_count() const;
  int total_node_count() const;
  // Appends (into `out`, which is cleared first) the indices of every
  // running job with at least one allocation slice inside the global node
  // span [first, first + count). Deterministic order: pretrain pool first,
  // then best-effort, each in pool (oldest-first) order.
  void running_jobs_on_nodes(int first, int count,
                             std::vector<std::size_t>& out) const;
  // Cordons / uncordons every node in the global span. Cordoned nodes take
  // no new placements; running jobs are untouched (kill them explicitly).
  // Uncordoning re-opens capacity and triggers a dispatch pass.
  void cordon_nodes(int first, int count);
  void uncordon_nodes(int first, int count);
  // Test introspection: a running job's allocation and which partition it
  // landed on (slice node ids are partition-local).
  const cluster::Allocation& allocation_of(std::size_t index) const {
    return rt_[index].alloc;
  }
  bool allocation_on_reserved(std::size_t index) const {
    return rt_[index].on_reserved;
  }

  // --- Snapshot support (acme::snap, DESIGN.md §12). Valid only between
  // begin_replay and finish_replay. ---
  //
  // The snapshot carries the trace verbatim (JobRecord is a flat POD, so
  // this is one bulk copy and restore never re-synthesizes), plus everything
  // the replay has mutated: sparse per-job runtime records (pending-submit
  // jobs as index + handle, queued/running jobs in full; completed jobs'
  // dead records are dropped), queue/pool orders, both partition ledgers,
  // counters, and the pending submission/completion/sampler event handles
  // (rebound into the restored engine).
  void save(snap::SnapshotWriter& w) const;
  // The engine must already hold the restored event spine.
  void restore_replay(snap::SnapshotReader& r);

  // The adopted trace (for restorers that derive hints from it).
  const trace::Trace& jobs() const { return jobs_; }

 private:
  // Ownership-transfer step of the legacy constructor: keeps the private
  // engine alive for the object's lifetime, exception-safely.
  SchedulerReplay(std::unique_ptr<sim::Engine> owned,
                  const cluster::ClusterSpec& spec, SchedulerConfig config);

  enum class QueueClass { kPretrain = 0, kNormal = 1, kEvaluation = 2 };
  static QueueClass classify(trace::WorkloadType type);
  static constexpr std::size_t kPoolPretrain = 0;
  static constexpr std::size_t kPoolBestEffort = 1;

  // Shared tail of begin_replay once jobs_ holds the active trace.
  void arm_replay(double sample_interval);
  void sample_occupancy(double interval);
  void on_submit(std::size_t index);
  void try_dispatch();
  bool try_start(std::size_t index);
  void on_complete(std::size_t index);
  // Evicts the youngest best-effort jobs until `gpus` can be gang-placed on
  // the shared partition; returns false if even a full eviction cannot help.
  bool preempt_for(int gpus);
  // Evicts one job (releasing its resources, accounting lost work, and
  // re-queueing it with the restart tax `overhead_seconds`). `rollback_cap`
  // bounds the loss for checkpointed (pretraining) victims; infinity means
  // start from scratch. `failure_kill` routes the accounting to the
  // failure-injection counters instead of the preemption ones.
  void evict(std::size_t index, double rollback_cap, double overhead_seconds,
             bool failure_kill);
  // Fairness pass: starved best-effort heads may evict pretraining victims.
  void preempt_pretraining_if_starved();

  cluster::ClusterSpec spec_;
  SchedulerConfig config_;
  std::unique_ptr<sim::Engine> owned_engine_;  // legacy constructor only
  sim::Engine* engine_ = nullptr;
  // Reserved partition (pretraining only) and shared partition (everyone).
  cluster::ClusterState reserved_;
  cluster::ClusterState shared_;
  trace::Trace jobs_;
  // Per-job runtime bookkeeping, one cache-friendly record per trace index
  // (replaces seven parallel vectors; the dispatch hot path touches most of
  // these fields together).
  struct JobRt {
    cluster::Allocation alloc;   // empty() <=> the job is not running
    sim::EventHandle submit;     // pending on_submit event (snapshot rebind)
    sim::EventHandle completion;
    double started_at = 0.0;
    double extra_overhead = 0.0;  // restart tax added by evictions
    double progress_done = 0.0;   // work completed before an eviction
    double waiting_since = 0.0;   // last enqueue time (fairness clock)
    bool on_reserved = false;
    bool delay_recorded = false;  // first-start delay already captured
  };
  std::vector<JobRt> rt_;
  ReplayResult result_storage_;
  ReplayResult* result_ = nullptr;
  double replay_start_ = 0;            // engine time at begin_replay
  std::size_t pending_submissions_ = 0;
  // Class queues and running pools are intrusive index lists: membership
  // moves (dispatch, completion, eviction) are O(1) unlinks with zero
  // allocation. Queues and pools use SEPARATE link arenas because try_start
  // pushes a job into its running pool while the dispatch scan still holds
  // the job's queue links (each arena keeps the at-most-one-list invariant).
  common::IndexLinks queue_links_;
  common::IndexLinks pool_links_;
  common::IndexList queues_[3];        // FCFS, insertion order
  common::IndexList running_pools_[2]; // [kPoolPretrain], [kPoolBestEffort]; newest last
  mutable std::vector<std::size_t> pretrain_scratch_;
  // Coalesced dispatch: false means no capacity was freed since the last
  // full scan, so previously stuck jobs would fail try_start again and a new
  // submission only needs to probe itself (see on_submit).
  bool capacity_freed_ = true;
  int eval_gpus_in_use_ = 0;
  int eval_cap_ = 0;
  int running_jobs_ = 0;
  // Occupancy-sampler chain: handle of the pending sample event and its
  // cadence, tracked so a snapshot can rebind the self-re-arming callback.
  sim::EventHandle sample_event_;
  double sample_interval_ = 0;

  static cluster::ClusterSpec partition_spec(const cluster::ClusterSpec& spec,
                                             int nodes);
};

}  // namespace acme::sched
