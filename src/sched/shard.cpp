#include "sched/shard.h"

#include "common/check.h"

namespace acme::sched {

std::vector<trace::Trace> shard_trace(const trace::Trace& jobs,
                                      std::size_t shards) {
  ACME_CHECK_MSG(shards > 0, "shard_trace requires at least one shard");
  std::vector<trace::Trace> out(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out[s].reserve(jobs.size() / shards + 1);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[i % shards].push_back(jobs[i]);
  }
  return out;
}

}  // namespace acme::sched
