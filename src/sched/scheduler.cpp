#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::sched {

namespace {

obs::Counter& placements_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_placements_total", "Jobs placed onto GPUs by SchedulerReplay");
  return c;
}

obs::Counter& preemptions_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_preemptions_total", "Running jobs evicted by SchedulerReplay");
  return c;
}

obs::Counter& kills_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_failure_kills_total",
      "Running jobs killed mid-replay by injected failures");
  return c;
}

obs::Histogram& queue_depth_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "acme_sched_queue_depth", "Total queued jobs sampled at each dispatch pass",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  return h;
}

}  // namespace

SchedulerConfig seren_scheduler_config() {
  SchedulerConfig c;
  c.pretrain_reservation = 0.68;
  c.eval_cap_fraction = 0.030;
  return c;
}

SchedulerConfig kalos_scheduler_config() {
  SchedulerConfig c;
  c.pretrain_reservation = 0.90;
  c.eval_cap_fraction = 0.010;
  return c;
}

cluster::ClusterSpec SchedulerReplay::partition_spec(const cluster::ClusterSpec& spec,
                                                     int nodes) {
  cluster::ClusterSpec p = spec;
  p.node_count = nodes;  // zero nodes (preemptive mode) is a valid partition
  return p;
}

SchedulerReplay::SchedulerReplay(const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : SchedulerReplay(std::make_unique<sim::Engine>(), spec, config) {}

SchedulerReplay::SchedulerReplay(std::unique_ptr<sim::Engine> owned,
                                 const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : SchedulerReplay(*owned, spec, config) {
  owned_engine_ = std::move(owned);
}

SchedulerReplay::SchedulerReplay(sim::Engine& engine,
                                 const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : spec_(spec),
      config_(config),
      engine_(&engine),
      reserved_(partition_spec(
          spec, static_cast<int>(
                    std::lround(config.pretrain_reservation * spec.node_count)))),
      shared_(partition_spec(
          spec,
          spec.node_count - static_cast<int>(std::lround(config.pretrain_reservation *
                                                         spec.node_count)))) {
  ACME_CHECK(shared_.node_count() > 0);
  ACME_CHECK(config_.allow_preemption || reserved_.node_count() > 0);
  eval_cap_ = static_cast<int>(
      std::lround(config_.eval_cap_fraction * spec.node_count * spec.node.gpus));
  eval_cap_ = std::max(eval_cap_, spec_.node.gpus);
}

SchedulerReplay::QueueClass SchedulerReplay::classify(trace::WorkloadType type) {
  switch (type) {
    case trace::WorkloadType::kPretrain:
      return QueueClass::kPretrain;
    case trace::WorkloadType::kEvaluation:
      return QueueClass::kEvaluation;
    default:
      return QueueClass::kNormal;
  }
}

ReplayResult SchedulerReplay::replay(const trace::Trace& input,
                                     double sample_interval) {
  begin_replay(input, sample_interval);
  engine_->run();
  return finish_replay();
}

void SchedulerReplay::begin_replay(const trace::Trace& input,
                                   double sample_interval) {
  ACME_OBS_SPAN_ARG("sched", "begin_replay", "jobs", std::to_string(input.size()));
  jobs_ = input;
  placements_.assign(jobs_.size(), {});
  completion_.assign(jobs_.size(), {});
  started_at_.assign(jobs_.size(), 0.0);
  extra_overhead_.assign(jobs_.size(), 0.0);
  delay_recorded_.assign(jobs_.size(), false);
  progress_done_.assign(jobs_.size(), 0.0);
  waiting_since_.assign(jobs_.size(), 0.0);
  running_best_effort_.clear();
  running_pretrain_.clear();
  result_storage_ = ReplayResult{};
  result_ = &result_storage_;
  replay_start_ = engine_->now();
  pending_submissions_ = 0;

  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const auto& job = jobs_[i];
    if (!job.is_gpu_job()) continue;  // CPU jobs bypass the GPU scheduler
    ACME_CHECK_MSG(job.gpus <= reserved_.total_gpus() + shared_.total_gpus(),
                   "job demands more GPUs than the cluster has");
    ++pending_submissions_;
    engine_->schedule_at(replay_start_ + job.submit_time,
                         [this, i] { on_submit(i); });
  }

  if (sample_interval > 0) {
    engine_->schedule_at(replay_start_, [this, sample_interval] {
      sample_occupancy(sample_interval);
    });
  }
}

ReplayResult SchedulerReplay::finish_replay() {
  ACME_CHECK_MSG(result_ != nullptr, "finish_replay without begin_replay");
  ReplayResult result = std::move(result_storage_);
  result_storage_ = ReplayResult{};
  result_ = nullptr;
  result.makespan = engine_->now() - replay_start_;
  result.unstarted = queues_[0].size() + queues_[1].size() + queues_[2].size();
  result.jobs = std::move(jobs_);
  jobs_.clear();
  for (auto& queue : queues_) queue.clear();
  return result;
}

bool SchedulerReplay::drained() const {
  return pending_submissions_ == 0 && running_jobs_ == 0 &&
         queues_[0].empty() && queues_[1].empty() && queues_[2].empty();
}

void SchedulerReplay::sample_occupancy(double interval) {
  ReplayResult::OccupancySample s;
  s.time = engine_->now() - replay_start_;
  s.total_gpus = reserved_.total_gpus() + shared_.total_gpus();
  s.busy_gpus = s.total_gpus - reserved_.free_gpus_including_cordoned() -
                shared_.free_gpus_including_cordoned();
  s.running_jobs = running_jobs_;
  s.queued_jobs =
      static_cast<int>(queues_[0].size() + queues_[1].size() + queues_[2].size());
  result_->occupancy.push_back(s);
  // Re-arm while any activity remains on the spine.
  if (engine_->pending() > 0)
    engine_->schedule_after(interval,
                            [this, interval] { sample_occupancy(interval); });
}

void SchedulerReplay::on_submit(std::size_t index) {
  ACME_CHECK(pending_submissions_ > 0);
  --pending_submissions_;
  waiting_since_[index] = engine_->now();
  queues_[static_cast<int>(classify(jobs_[index].type))].push_back(index);
  try_dispatch();
}

bool SchedulerReplay::try_start(std::size_t index) {
  auto& job = jobs_[index];
  const QueueClass cls = classify(job.type);
  if (cls == QueueClass::kEvaluation && eval_gpus_in_use_ + job.gpus > eval_cap_ &&
      eval_gpus_in_use_ > 0)  // cap, with starvation escape
    return false;

  Placement placement;
  if (cls == QueueClass::kPretrain) {
    // Pretraining prefers its reservation, spilling to the shared partition
    // only when the reservation is exhausted; in preemptive mode it may
    // evict best-effort work instead.
    if (auto alloc = reserved_.try_allocate(job.gpus, config_.cpus_per_gpu)) {
      placement = {*alloc, true};
    } else if (auto spill = shared_.try_allocate(job.gpus, config_.cpus_per_gpu)) {
      placement = {*spill, false};
    } else if (config_.allow_preemption && preempt_for(job.gpus)) {
      auto freed = shared_.try_allocate(job.gpus, config_.cpus_per_gpu);
      ACME_CHECK_MSG(freed.has_value(), "preemption freed too little");
      placement = {*freed, false};
    } else {
      return false;
    }
  } else {
    auto alloc = shared_.try_allocate(job.gpus, config_.cpus_per_gpu);
    if (!alloc) return false;
    placement = {*alloc, false};
  }

  placements_[index] = std::move(placement);
  if (cls == QueueClass::kEvaluation) eval_gpus_in_use_ += job.gpus;
  if (!delay_recorded_[index]) {  // keep the FIRST start for delay accounting
    job.queue_delay = engine_->now() - replay_start_ - job.submit_time;
    delay_recorded_[index] = true;
  }
  started_at_[index] = engine_->now();
  if (obs::enabled()) placements_counter().inc();
  ++running_jobs_;
  (cls == QueueClass::kPretrain ? running_pretrain_ : running_best_effort_)
      .push_back(index);
  const double remaining =
      std::max(0.0, job.duration - progress_done_[index]) + extra_overhead_[index];
  extra_overhead_[index] = 0.0;  // the tax is paid once per restart
  completion_[index] =
      engine_->schedule_after(remaining, [this, index] { on_complete(index); });
  return true;
}

void SchedulerReplay::evict(std::size_t index, double rollback_cap,
                            double overhead_seconds, bool failure_kill) {
  auto& job = jobs_[index];
  const QueueClass cls = classify(job.type);
  engine_->cancel(completion_[index]);
  completion_[index] = {};
  (placements_[index].on_reserved ? reserved_ : shared_)
      .release(placements_[index].alloc);
  placements_[index] = {};
  auto& pool =
      cls == QueueClass::kPretrain ? running_pretrain_ : running_best_effort_;
  pool.erase(std::remove(pool.begin(), pool.end(), index), pool.end());
  if (cls == QueueClass::kEvaluation) {
    eval_gpus_in_use_ -= job.gpus;
    ACME_CHECK(eval_gpus_in_use_ >= 0);
  }
  --running_jobs_;
  const double elapsed = engine_->now() - started_at_[index];
  const double lost = std::min(elapsed, rollback_cap);
  progress_done_[index] += elapsed - lost;
  if (result_ != nullptr) {
    if (failure_kill) {
      ++result_->failure_kills;
      result_->failure_lost_gpu_seconds += static_cast<double>(job.gpus) * lost;
      result_->failure_restart_seconds += overhead_seconds;
    } else {
      ++result_->preemptions;
      result_->wasted_gpu_seconds += static_cast<double>(job.gpus) * lost;
    }
  }
  extra_overhead_[index] += overhead_seconds;
  waiting_since_[index] = engine_->now();
  queues_[static_cast<int>(cls)].push_back(index);
  if (obs::enabled()) (failure_kill ? kills_counter() : preemptions_counter()).inc();
}

void SchedulerReplay::kill_job(std::size_t index, double rollback_cap_seconds,
                               double restart_overhead_seconds) {
  ACME_CHECK_MSG(!placements_[index].alloc.empty(), "kill_job on a job not running");
  evict(index, rollback_cap_seconds, restart_overhead_seconds,
        /*failure_kill=*/true);
  // The freed nodes go back into the pool immediately; queued work (including
  // the victim, once its recovery stall is priced in) competes for them.
  try_dispatch();
}

bool SchedulerReplay::preempt_for(int gpus) {
  // Feasibility first: even an empty shared partition must fit the gang.
  if (gpus > shared_.total_gpus()) return false;
  while (!shared_.can_allocate(gpus) && !running_best_effort_.empty()) {
    // Youngest victim first: least progress discarded. Best-effort jobs have
    // no checkpoints — everything since their start is lost.
    evict(running_best_effort_.back(), std::numeric_limits<double>::infinity(),
          config_.preemption_overhead_seconds, /*failure_kill=*/false);
  }
  return shared_.can_allocate(gpus);
}

void SchedulerReplay::preempt_pretraining_if_starved() {
  if (!config_.preempt_pretraining_for_fairness) return;
  for (auto* queue : {&queues_[1], &queues_[2]}) {
    if (queue->empty()) continue;
    const std::size_t head = queue->front();
    if (engine_->now() - waiting_since_[head] < config_.fairness_wait_seconds)
      continue;
    // Evict the youngest pretraining victims until the starved head fits,
    // then start it immediately — before the evicted (higher-priority)
    // pretraining job can re-claim the freed nodes.
    while (!running_pretrain_.empty() && !shared_.can_allocate(jobs_[head].gpus)) {
      evict(running_pretrain_.back(), config_.pretrain_rollback_cap_seconds,
            config_.preemption_overhead_seconds, /*failure_kill=*/false);
    }
    if (try_start(head)) queue->pop_front();
  }
}

void SchedulerReplay::try_dispatch() {
  if (obs::enabled()) {
    queue_depth_histogram().observe(static_cast<double>(
        queues_[0].size() + queues_[1].size() + queues_[2].size()));
  }
  preempt_pretraining_if_starved();
  // Highest class first. FCFS within a class; a stuck head may be backfilled
  // past by up to backfill_depth smaller jobs (conservative: they must fit in
  // currently free resources, which cannot delay the head further under our
  // no-preemption model).
  for (auto& queue : queues_) {
    std::size_t scanned = 0;
    for (auto it = queue.begin();
         it != queue.end() && scanned <= config_.backfill_depth;) {
      if (try_start(*it)) {
        it = queue.erase(it);
      } else {
        ++it;
        ++scanned;
      }
    }
  }
}

void SchedulerReplay::on_complete(std::size_t index) {
  auto& job = jobs_[index];
  auto& placement = placements_[index];
  (placement.on_reserved ? reserved_ : shared_).release(placement.alloc);
  placement = {};
  completion_[index] = {};
  auto& pool = classify(job.type) == QueueClass::kPretrain ? running_pretrain_
                                                           : running_best_effort_;
  pool.erase(std::remove(pool.begin(), pool.end(), index), pool.end());
  if (classify(job.type) == QueueClass::kEvaluation) {
    eval_gpus_in_use_ -= job.gpus;
    ACME_CHECK(eval_gpus_in_use_ >= 0);
  }
  --running_jobs_;
  try_dispatch();
}

}  // namespace acme::sched
