#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>

#include "common/check.h"
#include "obs/obs.h"
#include "snap/format.h"

namespace acme::sched {

namespace {

obs::Counter& placements_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_placements_total", "Jobs placed onto GPUs by SchedulerReplay");
  return c;
}

obs::Counter& preemptions_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_preemptions_total", "Running jobs evicted by SchedulerReplay");
  return c;
}

obs::Counter& kills_counter() {
  static obs::Counter& c = obs::metrics().counter(
      "acme_sched_failure_kills_total",
      "Running jobs killed mid-replay by injected failures");
  return c;
}

obs::Histogram& queue_depth_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "acme_sched_queue_depth", "Total queued jobs sampled at each dispatch pass",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  return h;
}

}  // namespace

SchedulerConfig seren_scheduler_config() {
  SchedulerConfig c;
  c.pretrain_reservation = 0.68;
  c.eval_cap_fraction = 0.030;
  return c;
}

SchedulerConfig kalos_scheduler_config() {
  SchedulerConfig c;
  c.pretrain_reservation = 0.90;
  c.eval_cap_fraction = 0.010;
  return c;
}

cluster::ClusterSpec SchedulerReplay::partition_spec(const cluster::ClusterSpec& spec,
                                                     int nodes) {
  cluster::ClusterSpec p = spec;
  p.node_count = nodes;  // zero nodes (preemptive mode) is a valid partition
  return p;
}

SchedulerReplay::SchedulerReplay(const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : SchedulerReplay(std::make_unique<sim::Engine>(), spec, config) {}

SchedulerReplay::SchedulerReplay(std::unique_ptr<sim::Engine> owned,
                                 const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : SchedulerReplay(*owned, spec, config) {
  owned_engine_ = std::move(owned);
}

SchedulerReplay::SchedulerReplay(sim::Engine& engine,
                                 const cluster::ClusterSpec& spec,
                                 SchedulerConfig config)
    : spec_(spec),
      config_(config),
      engine_(&engine),
      reserved_(partition_spec(
          spec, static_cast<int>(
                    std::lround(config.pretrain_reservation * spec.node_count)))),
      shared_(partition_spec(
          spec,
          spec.node_count - static_cast<int>(std::lround(config.pretrain_reservation *
                                                         spec.node_count)))) {
  ACME_CHECK(shared_.node_count() > 0);
  ACME_CHECK(config_.allow_preemption || reserved_.node_count() > 0);
  eval_cap_ = static_cast<int>(
      std::lround(config_.eval_cap_fraction * spec.node_count * spec.node.gpus));
  eval_cap_ = std::max(eval_cap_, spec_.node.gpus);
}

SchedulerReplay::QueueClass SchedulerReplay::classify(trace::WorkloadType type) {
  switch (type) {
    case trace::WorkloadType::kPretrain:
      return QueueClass::kPretrain;
    case trace::WorkloadType::kEvaluation:
      return QueueClass::kEvaluation;
    default:
      return QueueClass::kNormal;
  }
}

ReplayResult SchedulerReplay::replay(const trace::Trace& input,
                                     double sample_interval) {
  // A reused single-silo instance restarts its private clock at zero: the
  // results are bit-identical to a fresh instance (same float arithmetic)
  // and the engine's event storage is recycled instead of regrown.
  if (owned_engine_) owned_engine_->reset();
  begin_replay(input, sample_interval);
  engine_->run();
  return finish_replay();
}

ReplayResult SchedulerReplay::replay(trace::Trace&& input,
                                     double sample_interval) {
  if (owned_engine_) owned_engine_->reset();
  begin_replay(std::move(input), sample_interval);
  engine_->run();
  return finish_replay();
}

void SchedulerReplay::begin_replay(const trace::Trace& input,
                                   double sample_interval) {
  jobs_ = input;
  arm_replay(sample_interval);
}

void SchedulerReplay::begin_replay(trace::Trace&& input,
                                   double sample_interval) {
  jobs_ = std::move(input);
  arm_replay(sample_interval);
}

void SchedulerReplay::arm_replay(double sample_interval) {
  ACME_OBS_SPAN_ARG("sched", "begin_replay", "jobs", std::to_string(jobs_.size()));
  rt_.assign(jobs_.size(), JobRt{});
  queue_links_.assign(jobs_.size());
  pool_links_.assign(jobs_.size());
  for (auto& queue : queues_) queue = common::IndexList{};
  for (auto& pool : running_pools_) pool = common::IndexList{};
  result_storage_ = ReplayResult{};
  result_ = &result_storage_;
  replay_start_ = engine_->now();
  pending_submissions_ = 0;
  capacity_freed_ = true;
  // Every submission is posted up front, and each *running* job keeps one
  // completion event live. A running GPU job holds at least one GPU, so the
  // pending-event peak is bounded by jobs + total GPUs (+ the sampler).
  // Reserving the full bound keeps the 64-byte callback slots from ever
  // being move-relocated by vector doubling mid-replay.
  engine_->reserve(jobs_.size() +
                   static_cast<std::size_t>(std::max(
                       0, reserved_.total_gpus() + shared_.total_gpus())) +
                   4);
  // running_pretrain_jobs() / running_jobs_on_nodes() fill scratch via
  // copy_to; pre-growing it here keeps mid-drain kill routing (the world's
  // failure and domain chains) allocation-free.
  pretrain_scratch_.reserve(jobs_.size());

  const int per_node = std::max(1, spec_.node.gpus);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const auto& job = jobs_[i];
    if (!job.is_gpu_job()) continue;  // CPU jobs bypass the GPU scheduler
    ACME_CHECK_MSG(job.gpus <= reserved_.total_gpus() + shared_.total_gpus(),
                   "job demands more GPUs than the cluster has");
    // Gangs wider than the slice buffer's inline capacity would spill on
    // first start; paying the spill here keeps the event loop allocation-free.
    if (job.gpus > 2 * per_node)
      rt_[i].alloc.slices.reserve(
          static_cast<std::size_t>((job.gpus + per_node - 1) / per_node));
    ++pending_submissions_;
    rt_[i].submit = engine_->schedule_at(replay_start_ + job.submit_time,
                                         [this, i] { on_submit(i); });
  }

  sample_interval_ = sample_interval;
  sample_event_ = {};
  if (sample_interval > 0) {
    sample_event_ = engine_->schedule_at(replay_start_, [this, sample_interval] {
      sample_occupancy(sample_interval);
    });
  }
}

ReplayResult SchedulerReplay::finish_replay() {
  ACME_CHECK_MSG(result_ != nullptr, "finish_replay without begin_replay");
  ReplayResult result = std::move(result_storage_);
  result_storage_ = ReplayResult{};
  result_ = nullptr;
  result.makespan = engine_->now() - replay_start_;
  result.unstarted = queues_[0].size() + queues_[1].size() + queues_[2].size();
  result.jobs = std::move(jobs_);
  jobs_.clear();
  // Stale links are harmless: arm_replay reassigns both arenas.
  for (auto& queue : queues_) queue = common::IndexList{};
  return result;
}

bool SchedulerReplay::drained() const {
  return pending_submissions_ == 0 && running_jobs_ == 0 &&
         queues_[0].empty() && queues_[1].empty() && queues_[2].empty();
}

void SchedulerReplay::sample_occupancy(double interval) {
  sample_event_ = {};
  ReplayResult::OccupancySample s;
  s.time = engine_->now() - replay_start_;
  s.total_gpus = reserved_.total_gpus() + shared_.total_gpus();
  s.busy_gpus = s.total_gpus - reserved_.free_gpus_including_cordoned() -
                shared_.free_gpus_including_cordoned();
  s.running_jobs = running_jobs_;
  s.queued_jobs =
      static_cast<int>(queues_[0].size() + queues_[1].size() + queues_[2].size());
  result_->occupancy.push_back(s);
  // Re-arm while any activity remains on the spine.
  if (engine_->pending() > 0)
    sample_event_ = engine_->schedule_after(
        interval, [this, interval] { sample_occupancy(interval); });
}

void SchedulerReplay::on_submit(std::size_t index) {
  ACME_CHECK(pending_submissions_ > 0);
  --pending_submissions_;
  rt_[index].submit = {};
  rt_[index].waiting_since = engine_->now();
  auto& queue = queues_[static_cast<int>(classify(jobs_[index].type))];
  const std::size_t ahead = queue.size();
  queue.push_back(queue_links_, static_cast<std::uint32_t>(index));
  // Coalesced dispatch: when nothing freed capacity since the last full scan,
  // every already-queued job would fail try_start again (allocation failure
  // is monotone while capacity only shrinks, and the eval cap's in-use total
  // only grows between frees), so the arrival itself is the only fresh
  // candidate — and only if it sits within the backfill window, exactly as
  // the full scan would reach it after `ahead` older failures. Preemption
  // modes always rescan: their try_start has eviction side effects.
  if (!capacity_freed_ && !config_.allow_preemption &&
      !config_.preempt_pretraining_for_fairness) {
    if (obs::enabled()) {
      queue_depth_histogram().observe(static_cast<double>(
          queues_[0].size() + queues_[1].size() + queues_[2].size()));
    }
    if (ahead <= config_.backfill_depth && try_start(index))
      queue.erase(queue_links_, static_cast<std::uint32_t>(index));
    return;
  }
  try_dispatch();
}

bool SchedulerReplay::try_start(std::size_t index) {
  auto& job = jobs_[index];
  auto& rt = rt_[index];
  const QueueClass cls = classify(job.type);
  if (cls == QueueClass::kEvaluation && eval_gpus_in_use_ + job.gpus > eval_cap_ &&
      eval_gpus_in_use_ > 0)  // cap, with starvation escape
    return false;

  if (cls == QueueClass::kPretrain) {
    // Pretraining prefers its reservation, spilling to the shared partition
    // only when the reservation is exhausted; in preemptive mode it may
    // evict best-effort work instead. The in-place allocations refill
    // rt.alloc's own slice buffer, so restarts never touch the heap.
    if (reserved_.try_allocate_into(job.gpus, config_.cpus_per_gpu, rt.alloc)) {
      rt.on_reserved = true;
    } else if (shared_.try_allocate_into(job.gpus, config_.cpus_per_gpu,
                                         rt.alloc)) {
      rt.on_reserved = false;
    } else if (config_.allow_preemption && preempt_for(job.gpus)) {
      ACME_CHECK_MSG(shared_.try_allocate_into(job.gpus, config_.cpus_per_gpu,
                                               rt.alloc),
                     "preemption freed too little");
      rt.on_reserved = false;
    } else {
      return false;
    }
  } else {
    if (!shared_.try_allocate_into(job.gpus, config_.cpus_per_gpu, rt.alloc))
      return false;
    rt.on_reserved = false;
  }

  if (cls == QueueClass::kEvaluation) eval_gpus_in_use_ += job.gpus;
  if (!rt.delay_recorded) {  // keep the FIRST start for delay accounting
    job.queue_delay = engine_->now() - replay_start_ - job.submit_time;
    rt.delay_recorded = true;
  }
  rt.started_at = engine_->now();
  if (obs::enabled()) placements_counter().inc();
  ++running_jobs_;
  running_pools_[cls == QueueClass::kPretrain ? kPoolPretrain : kPoolBestEffort]
      .push_back(pool_links_, static_cast<std::uint32_t>(index));
  const double remaining =
      std::max(0.0, job.duration - rt.progress_done) + rt.extra_overhead;
  rt.extra_overhead = 0.0;  // the tax is paid once per restart
  rt.completion =
      engine_->schedule_after(remaining, [this, index] { on_complete(index); });
  return true;
}

void SchedulerReplay::evict(std::size_t index, double rollback_cap,
                            double overhead_seconds, bool failure_kill) {
  auto& job = jobs_[index];
  auto& rt = rt_[index];
  const QueueClass cls = classify(job.type);
  engine_->cancel(rt.completion);
  rt.completion = {};
  (rt.on_reserved ? reserved_ : shared_).release(rt.alloc);
  rt.alloc.clear();
  rt.on_reserved = false;
  capacity_freed_ = true;
  running_pools_[cls == QueueClass::kPretrain ? kPoolPretrain : kPoolBestEffort]
      .erase(pool_links_, static_cast<std::uint32_t>(index));
  if (cls == QueueClass::kEvaluation) {
    eval_gpus_in_use_ -= job.gpus;
    ACME_CHECK(eval_gpus_in_use_ >= 0);
  }
  --running_jobs_;
  const double elapsed = engine_->now() - rt.started_at;
  const double lost = std::min(elapsed, rollback_cap);
  rt.progress_done += elapsed - lost;
  if (result_ != nullptr) {
    if (failure_kill) {
      ++result_->failure_kills;
      result_->failure_lost_gpu_seconds += static_cast<double>(job.gpus) * lost;
      result_->failure_restart_seconds += overhead_seconds;
    } else {
      ++result_->preemptions;
      result_->wasted_gpu_seconds += static_cast<double>(job.gpus) * lost;
    }
  }
  rt.extra_overhead += overhead_seconds;
  rt.waiting_since = engine_->now();
  queues_[static_cast<int>(cls)].push_back(queue_links_,
                                           static_cast<std::uint32_t>(index));
  if (obs::enabled()) (failure_kill ? kills_counter() : preemptions_counter()).inc();
}

void SchedulerReplay::kill_job(std::size_t index, double rollback_cap_seconds,
                               double restart_overhead_seconds) {
  ACME_CHECK_MSG(!rt_[index].alloc.empty(), "kill_job on a job not running");
  evict(index, rollback_cap_seconds, restart_overhead_seconds,
        /*failure_kill=*/true);
  // The freed nodes go back into the pool immediately; queued work (including
  // the victim, once its recovery stall is priced in) competes for them.
  try_dispatch();
}

int SchedulerReplay::reserved_node_count() const {
  return reserved_.node_count();
}

int SchedulerReplay::total_node_count() const {
  return reserved_.node_count() + shared_.node_count();
}

void SchedulerReplay::running_jobs_on_nodes(
    int first, int count, std::vector<std::size_t>& out) const {
  out.clear();
  const int last = first + count;
  const int offset = reserved_.node_count();  // shared-partition global base
  for (std::size_t pool = 0; pool < 2; ++pool) {
    for (std::uint32_t i = running_pools_[pool].front();
         i != common::kIndexNpos; i = common::IndexList::next_of(pool_links_, i)) {
      const JobRt& rt = rt_[i];
      bool hit = false;
      for (const auto& slice : rt.alloc.slices) {
        const int node = slice.node + (rt.on_reserved ? 0 : offset);
        if (node >= first && node < last) {
          hit = true;
          break;
        }
      }
      if (hit) out.push_back(i);
    }
  }
}

void SchedulerReplay::cordon_nodes(int first, int count) {
  const int offset = reserved_.node_count();
  const int last = first + count;
  for (int node = std::max(first, 0); node < last; ++node) {
    if (node < offset) {
      reserved_.cordon(node);
    } else if (node - offset < shared_.node_count()) {
      shared_.cordon(node - offset);
    }
  }
}

void SchedulerReplay::uncordon_nodes(int first, int count) {
  const int offset = reserved_.node_count();
  const int last = first + count;
  for (int node = std::max(first, 0); node < last; ++node) {
    if (node < offset) {
      reserved_.uncordon(node);
    } else if (node - offset < shared_.node_count()) {
      shared_.uncordon(node - offset);
    }
  }
  // Repaired capacity is real capacity: let stuck heads retry.
  capacity_freed_ = true;
  try_dispatch();
}

bool SchedulerReplay::preempt_for(int gpus) {
  // Feasibility first: even an empty shared partition must fit the gang.
  if (gpus > shared_.total_gpus()) return false;
  auto& pool = running_pools_[kPoolBestEffort];
  while (!shared_.can_allocate(gpus) && !pool.empty()) {
    // Youngest victim first: least progress discarded. Best-effort jobs have
    // no checkpoints — everything since their start is lost.
    evict(pool.back(), std::numeric_limits<double>::infinity(),
          config_.preemption_overhead_seconds, /*failure_kill=*/false);
  }
  return shared_.can_allocate(gpus);
}

void SchedulerReplay::preempt_pretraining_if_starved() {
  if (!config_.preempt_pretraining_for_fairness) return;
  auto& pretrain = running_pools_[kPoolPretrain];
  for (auto* queue : {&queues_[1], &queues_[2]}) {
    if (queue->empty()) continue;
    const std::uint32_t head = queue->front();
    if (engine_->now() - rt_[head].waiting_since < config_.fairness_wait_seconds)
      continue;
    // Evict the youngest pretraining victims until the starved head fits,
    // then start it immediately — before the evicted (higher-priority)
    // pretraining job can re-claim the freed nodes.
    while (!pretrain.empty() && !shared_.can_allocate(jobs_[head].gpus)) {
      evict(pretrain.back(), config_.pretrain_rollback_cap_seconds,
            config_.preemption_overhead_seconds, /*failure_kill=*/false);
    }
    if (try_start(head)) queue->erase(queue_links_, head);
  }
}

void SchedulerReplay::try_dispatch() {
  if (obs::enabled()) {
    queue_depth_histogram().observe(static_cast<double>(
        queues_[0].size() + queues_[1].size() + queues_[2].size()));
  }
  preempt_pretraining_if_starved();
  // The scan below reflects the capacity that exists right now; until
  // something frees capacity again, a new arrival can skip straight to its
  // own try_start (see on_submit). Mid-scan evictions re-set the flag.
  capacity_freed_ = false;
  // Highest class first. FCFS within a class; a stuck head may be backfilled
  // past by smaller jobs (conservative: they must fit in currently free
  // resources, which cannot delay the head further under our no-preemption
  // model). The scan budget is explicit: the head plus backfill_depth
  // candidates past it may fail before the class scan stops.
  for (auto& queue : queues_) {
    std::size_t failures_left = config_.backfill_depth + 1;
    // Within one class scan, a failure at G GPUs dooms every demand >= G:
    // bucket feasibility and gang feasibility are monotone in the demand,
    // the eval cap's in-use total only grows mid-scan, and successful starts
    // only shrink capacity. Caching the smallest failed demand lets the scan
    // skip the try_start call (still charging the backfill budget, exactly
    // as the full attempt would). Pretraining in preemptive mode is exempt:
    // its try_start can evict its way to success.
    const bool prunable = &queue != &queues_[0] || !config_.allow_preemption;
    int min_failed_gpus = std::numeric_limits<int>::max();
    for (std::uint32_t i = queue.front();
         i != common::kIndexNpos && failures_left > 0;) {
      // Once a 1-GPU job has failed, every remaining candidate (demand >= 1)
      // is doomed too, so the rest of the walk would only drain the budget
      // without touching any state — stop it outright.
      if (prunable && min_failed_gpus <= 1) break;
      // Capture the successor first: it survives both the erase below and
      // tail appends from evictions inside try_start (victims re-enter
      // queues at the back; queued entries are never unlinked mid-scan).
      const std::uint32_t nxt = common::IndexList::next_of(queue_links_, i);
      const int gpus = jobs_[i].gpus;
      if (prunable && gpus >= min_failed_gpus) {
        --failures_left;
      } else if (try_start(i)) {
        queue.erase(queue_links_, i);
      } else {
        --failures_left;
        if (prunable) min_failed_gpus = gpus;
      }
      i = nxt;
    }
  }
}

namespace {

// Per-job runtime record flattened for bulk serialization. Handles travel as
// raw u64s; allocation slices are flattened into one side array (slice_count
// says how many belong to each job).
struct RtPod {
  std::uint64_t submit;
  std::uint64_t completion;
  double started_at;
  double extra_overhead;
  double progress_done;
  double waiting_since;
  std::uint32_t flags;  // bit0 on_reserved, bit1 delay_recorded
  std::uint32_t slice_count;
};
struct SlicePod {
  std::int32_t node;
  std::int32_t gpus;
  std::int32_t cpus;
};

// Front-to-back member order of an intrusive list (FCFS order is replay
// state: restore must rebuild it exactly).
std::vector<std::uint32_t> list_order(const common::IndexList& list,
                                      const common::IndexLinks& links) {
  std::vector<std::uint32_t> order;
  order.reserve(list.size());
  for (std::uint32_t i = list.front(); i != common::kIndexNpos;
       i = common::IndexList::next_of(links, i))
    order.push_back(i);
  return order;
}

}  // namespace

void SchedulerReplay::save(snap::SnapshotWriter& w) const {
  ACME_CHECK_MSG(result_ != nullptr,
                 "SchedulerReplay::save outside an active replay");
  w.begin_section("sched.replay");
  // The trace rides in the snapshot verbatim: JobRecord is a flat POD (tags
  // are interned u32 ids), so a bulk copy both avoids re-synthesizing a
  // possibly million-row trace on restore and freezes queue_delay, the one
  // trace field the replay mutates.
  static_assert(std::is_trivially_copyable_v<trace::JobRecord>);
  w.reserve(jobs_.size() * (sizeof(trace::JobRecord) + 16) + (1u << 16));
  w.write_pod_vec(jobs_);
  // Runtime records are stored sparsely — at a mid-replay quiescent point
  // most jobs are in one of two trivial states, and paying 48 bytes each for
  // them would make rt the snapshot's dominant section:
  //  - pending: the up-front submission event hasn't fired yet. Everything
  //    except the submit handle is still default (on_submit clears the handle
  //    when it fires), so index + raw handle reconstructs the record.
  //  - dead: the job completed (or is a zero-delay CPU passthrough). Its
  //    residual record is never read again — finish_replay derives unstarted
  //    from the queue sizes and nothing re-enqueues a completed job — so the
  //    snapshot drops it and restore leaves the default record in place.
  // Only live jobs (queued or running: list members or a pending completion)
  // carry a full RtPod, keyed by trace index.
  std::vector<std::uint32_t> queue_orders[3];
  std::vector<std::uint32_t> pool_orders[2];
  std::vector<char> live(rt_.size(), 0);
  for (std::size_t q = 0; q < 3; ++q) {
    queue_orders[q] = list_order(queues_[q], queue_links_);
    for (const std::uint32_t i : queue_orders[q]) live[i] = 1;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    pool_orders[p] = list_order(running_pools_[p], pool_links_);
    for (const std::uint32_t i : pool_orders[p]) live[i] = 1;
  }
  std::vector<std::uint32_t> pending_idx;
  std::vector<std::uint64_t> pending_submit;
  std::vector<std::uint32_t> live_idx;
  std::vector<RtPod> live_pods;
  std::vector<SlicePod> slices;
  for (std::size_t i = 0; i < rt_.size(); ++i) {
    const JobRt& rt = rt_[i];
    if (!live[i] && !rt.completion.valid()) {
      const bool default_but_submit =
          rt.alloc.slices.empty() && rt.started_at == 0.0 &&
          rt.extra_overhead == 0.0 && rt.progress_done == 0.0 &&
          rt.waiting_since == 0.0 && !rt.on_reserved && !rt.delay_recorded;
      if (rt.submit.valid() && default_but_submit) {
        pending_idx.push_back(static_cast<std::uint32_t>(i));
        pending_submit.push_back(rt.submit.raw());
        continue;
      }
      // No pending event and no list membership: the job completed (residual
      // scalars like started_at are dead state) or is an untouched CPU
      // passthrough. Either way nothing reads the record again — drop it.
      if (!rt.submit.valid()) continue;
    }
    live_idx.push_back(static_cast<std::uint32_t>(i));
    live_pods.push_back(RtPod{rt.submit.raw(),
                              rt.completion.raw(),
                              rt.started_at,
                              rt.extra_overhead,
                              rt.progress_done,
                              rt.waiting_since,
                              static_cast<std::uint32_t>(
                                  (rt.on_reserved ? 1u : 0u) |
                                  (rt.delay_recorded ? 2u : 0u)),
                              static_cast<std::uint32_t>(rt.alloc.slices.size())});
    for (const auto& s : rt.alloc.slices)
      slices.push_back(SlicePod{s.node, s.gpus, s.cpus});
  }
  w.write_pod_vec(pending_idx);
  w.write_pod_vec(pending_submit);
  w.write_pod_vec(live_idx);
  w.write_pod_vec(live_pods);
  w.write_pod_vec(slices);
  for (const auto& order : queue_orders) w.write_pod_vec(order);
  for (const auto& order : pool_orders) w.write_pod_vec(order);
  w.write_f64(replay_start_);
  w.write_u64(pending_submissions_);
  w.write_bool(capacity_freed_);
  w.write_i64(eval_gpus_in_use_);
  w.write_i64(running_jobs_);
  w.write_u64(sample_event_.raw());
  w.write_f64(sample_interval_);
  w.write_i64(result_->preemptions);
  w.write_f64(result_->wasted_gpu_seconds);
  w.write_i64(result_->failure_kills);
  w.write_f64(result_->failure_lost_gpu_seconds);
  w.write_f64(result_->failure_restart_seconds);
  w.write_u64(result_->unstarted);
  w.write_pod_vec(result_->occupancy);
  w.end_section();
  reserved_.save(w);
  shared_.save(w);
}

void SchedulerReplay::restore_replay(snap::SnapshotReader& r) {
  ACME_CHECK_MSG(result_ == nullptr,
                 "restore_replay into a scheduler with an active replay");
  r.enter_section("sched.replay");
  r.read_pod_vec(jobs_);
  // Same capacity bound arm_replay establishes, so the restored replay keeps
  // the no-mid-run-reallocation guarantee. Sized before the rebinds below so
  // any engine slot-vector growth happens while the slots are still
  // callback-free (partition GPU totals are fixed at construction, so they
  // are valid before the ledgers' own restore).
  engine_->reserve(jobs_.size() +
                   static_cast<std::size_t>(std::max(
                       0, reserved_.total_gpus() + shared_.total_gpus())) +
                   4);
  std::vector<std::uint32_t> pending_idx;
  std::vector<std::uint64_t> pending_submit;
  std::vector<std::uint32_t> live_idx;
  std::vector<RtPod> live_pods;
  std::vector<SlicePod> slices;
  r.read_pod_vec(pending_idx);
  r.read_pod_vec(pending_submit);
  r.read_pod_vec(live_idx);
  r.read_pod_vec(live_pods);
  r.read_pod_vec(slices);
  ACME_CHECK(pending_idx.size() == pending_submit.size());
  ACME_CHECK(live_idx.size() == live_pods.size());
  rt_.assign(jobs_.size(), JobRt{});
  // The sparse groups name every job with a pending event, so the callbacks
  // are rebound right here during application — no post-pass over rt_.
  for (std::size_t k = 0; k < pending_idx.size(); ++k) {
    const std::size_t i = pending_idx[k];
    ACME_CHECK(i < rt_.size());
    rt_[i].submit = sim::EventHandle::from_raw(pending_submit[k]);
    engine_->rebind(rt_[i].submit, [this, i] { on_submit(i); });
  }
  std::size_t slice_cursor = 0;
  for (std::size_t k = 0; k < live_idx.size(); ++k) {
    const std::size_t i = live_idx[k];
    ACME_CHECK(i < rt_.size());
    const RtPod& pod = live_pods[k];
    JobRt& rt = rt_[i];
    rt.submit = sim::EventHandle::from_raw(pod.submit);
    rt.completion = sim::EventHandle::from_raw(pod.completion);
    rt.started_at = pod.started_at;
    rt.extra_overhead = pod.extra_overhead;
    rt.progress_done = pod.progress_done;
    rt.waiting_since = pod.waiting_since;
    rt.on_reserved = (pod.flags & 1u) != 0;
    rt.delay_recorded = (pod.flags & 2u) != 0;
    for (std::uint32_t j = 0; j < pod.slice_count; ++j) {
      ACME_CHECK(slice_cursor < slices.size());
      const SlicePod& s = slices[slice_cursor++];
      rt.alloc.slices.push_back({s.node, s.gpus, s.cpus});
    }
    if (rt.submit.valid())
      engine_->rebind(rt.submit, [this, i] { on_submit(i); });
    if (rt.completion.valid())
      engine_->rebind(rt.completion, [this, i] { on_complete(i); });
  }
  ACME_CHECK(slice_cursor == slices.size());
  queue_links_.assign(jobs_.size());
  pool_links_.assign(jobs_.size());
  const auto read_list = [&r](common::IndexList& list,
                              common::IndexLinks& links) {
    list = common::IndexList{};
    std::vector<std::uint32_t> order;
    r.read_pod_vec(order);
    for (const std::uint32_t i : order) list.push_back(links, i);
  };
  for (auto& queue : queues_) read_list(queue, queue_links_);
  for (auto& pool : running_pools_) read_list(pool, pool_links_);
  replay_start_ = r.read_f64();
  pending_submissions_ = static_cast<std::size_t>(r.read_u64());
  capacity_freed_ = r.read_bool();
  eval_gpus_in_use_ = static_cast<int>(r.read_i64());
  running_jobs_ = static_cast<int>(r.read_i64());
  sample_event_ = sim::EventHandle::from_raw(r.read_u64());
  sample_interval_ = r.read_f64();
  result_storage_ = ReplayResult{};
  result_ = &result_storage_;
  result_->preemptions = static_cast<int>(r.read_i64());
  result_->wasted_gpu_seconds = r.read_f64();
  result_->failure_kills = static_cast<int>(r.read_i64());
  result_->failure_lost_gpu_seconds = r.read_f64();
  result_->failure_restart_seconds = r.read_f64();
  result_->unstarted = static_cast<std::size_t>(r.read_u64());
  r.read_pod_vec(result_->occupancy);
  r.leave_section();
  reserved_.restore(r);
  shared_.restore(r);
  pretrain_scratch_.clear();
  if (sample_event_.valid())
    engine_->rebind(sample_event_, [this, interval = sample_interval_] {
      sample_occupancy(interval);
    });
}

void SchedulerReplay::on_complete(std::size_t index) {
  auto& job = jobs_[index];
  auto& rt = rt_[index];
  (rt.on_reserved ? reserved_ : shared_).release(rt.alloc);
  rt.alloc.clear();
  rt.on_reserved = false;
  rt.completion = {};
  capacity_freed_ = true;
  const QueueClass cls = classify(job.type);
  running_pools_[cls == QueueClass::kPretrain ? kPoolPretrain : kPoolBestEffort]
      .erase(pool_links_, static_cast<std::uint32_t>(index));
  if (cls == QueueClass::kEvaluation) {
    eval_gpus_in_use_ -= job.gpus;
    ACME_CHECK(eval_gpus_in_use_ >= 0);
  }
  --running_jobs_;
  try_dispatch();
}

}  // namespace acme::sched
