// Trace sharding for the parallel replay runtime (DESIGN.md §13).
//
// A single SchedulerReplay is one coupled partition: every job competes for
// the same reserved/shared ledgers, so its events cannot be split across
// threads without changing placement decisions. Parallelism instead comes
// from PODS — full cluster replicas, each replaying its own slice of the
// trace on its own engine. shard_trace produces those slices: job i goes to
// shard i % shards (round-robin over submit order), which keeps every
// shard's submit stream a uniform sample of the original mix (workload
// classes arrive interleaved, so each pod sees the same pretrain/eval blend
// and the same diurnal shape) and is trivially deterministic — the partition
// assignment depends only on trace order, never on execution.
//
// The shard index doubles as the partition KEY in sim::WindowRunner's
// canonical (time, key, seq) merge, so a sharded replay commits in one
// reproducible global order at any worker count.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/job.h"

namespace acme::sched {

// Splits `jobs` into `shards` round-robin slices, preserving relative order
// within each slice. shards == 1 returns the input verbatim (one copy);
// empty slices are legal (more shards than jobs).
std::vector<trace::Trace> shard_trace(const trace::Trace& jobs,
                                      std::size_t shards);

}  // namespace acme::sched
