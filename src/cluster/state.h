// Runtime resource ledger for a cluster: per-node GPU/CPU occupancy and
// health (cordoned nodes are excluded from placement). The scheduler and the
// recovery toolkit both operate on this state.
//
// Placement queries are hot (the six-month replay performs millions of
// dispatch attempts), so nodes are indexed by free-GPU count: capacity checks
// are O(1) and best-fit/empty-node selection walks a word-packed bitmap
// (common::IndexBitSet) — no allocation per bucket move, unlike the
// std::set<NodeId> buckets this replaces, while keeping the exact
// ascending-node-id selection order the deterministic replays pin.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/spec.h"
#include "common/index_bitset.h"
#include "common/small_vec.h"

namespace acme::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace acme::snap

namespace acme::cluster {

using NodeId = int;

struct NodeState {
  NodeId id = 0;
  int gpus_total = 8;
  int gpus_free = 8;
  int cpus_total = 128;
  int cpus_free = 128;
  double host_mem_total_gb = 1024.0;
  double host_mem_free_gb = 1024.0;
  bool cordoned = false;

  int gpus_used() const { return gpus_total - gpus_free; }
};

// A placement: which nodes and how many GPUs on each. The two-slice inline
// capacity covers every sub-node and small-gang job without touching the
// heap; only large pretraining gangs (3+ nodes, rare relative to the event
// rate) spill.
struct Allocation {
  struct Slice {
    NodeId node;
    int gpus;
    int cpus;
  };
  common::SmallVec<Slice, 2> slices;
  // Empties the slice list; keeps any spilled capacity for reuse.
  void clear() { slices.clear(); }
  int total_gpus() const {
    int n = 0;
    for (const auto& s : slices) n += s.gpus;
    return n;
  }
  bool empty() const { return slices.empty(); }
};

class ClusterState {
 public:
  explicit ClusterState(const ClusterSpec& spec);

  const ClusterSpec& spec() const { return spec_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  const NodeState& node(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }

  int total_gpus() const { return total_gpus_; }
  int free_gpus() const { return free_gpus_healthy_; }  // healthy nodes only
  int free_gpus_including_cordoned() const { return free_gpus_all_; }
  int empty_healthy_nodes() const {
    return static_cast<int>(buckets_[static_cast<std::size_t>(spec_.node.gpus)].size());
  }

  // O(1) feasibility check for try_allocate.
  bool can_allocate(int gpus) const;

  // Tries to place `gpus` GPUs (with cpus_per_gpu CPUs each). Multi-node jobs
  // are placed in whole-node units (gang scheduling, as pretraining
  // requires); sub-node jobs best-fit onto the fullest node that still has
  // room, keeping whole nodes free for gangs. Returns nullopt on failure.
  std::optional<Allocation> try_allocate(int gpus, int cpus_per_gpu = 12);
  // In-place variant: refills `out` (cleared first) instead of constructing a
  // fresh Allocation, so a caller-owned slice buffer keeps its spilled
  // capacity across restarts. Returns false (out left empty) on failure.
  bool try_allocate_into(int gpus, int cpus_per_gpu, Allocation& out);

  // Releases a previous allocation. Checks double-free.
  void release(const Allocation& alloc);

  void cordon(NodeId id);
  void uncordon(NodeId id);
  bool is_cordoned(NodeId id) const { return node(id).cordoned; }
  int cordoned_count() const { return cordoned_count_; }
  std::vector<NodeId> cordoned_nodes() const;
  std::vector<NodeId> healthy_idle_nodes() const;
  // Reuse-friendly variants for per-tick callers (recovery scans every few
  // simulated minutes): `out` is cleared and refilled, so its capacity
  // amortizes to zero allocations across ticks.
  void cordoned_nodes(std::vector<NodeId>& out) const;
  void healthy_idle_nodes(std::vector<NodeId>& out) const;

  // Snapshot support (acme::snap): serializes only the mutable per-node
  // occupancy (free counts, cordon flags). restore() requires *this to be
  // freshly constructed from the same ClusterSpec — totals are spec-derived
  // — and rebuilds the free-GPU buckets and aggregate counters from the
  // restored node states.
  void save(snap::SnapshotWriter& w) const;
  void restore(snap::SnapshotReader& r);

 private:
  void bucket_insert(const NodeState& n);
  void bucket_erase(const NodeState& n);

  ClusterSpec spec_;
  std::vector<NodeState> nodes_;
  // buckets_[k] = healthy nodes with exactly k free GPUs, ascending node id.
  std::vector<common::IndexBitSet> buckets_;
  int total_gpus_ = 0;
  int free_gpus_healthy_ = 0;
  int free_gpus_all_ = 0;
  int cordoned_count_ = 0;
};

}  // namespace acme::cluster
