#include "cluster/state.h"

#include <algorithm>

#include "common/check.h"
#include "snap/format.h"

namespace acme::cluster {

ClusterState::ClusterState(const ClusterSpec& spec) : spec_(spec) {
  buckets_.assign(static_cast<std::size_t>(spec.node.gpus) + 1,
                  common::IndexBitSet(static_cast<std::size_t>(spec.node_count)));
  nodes_.reserve(static_cast<std::size_t>(spec.node_count));
  for (int i = 0; i < spec.node_count; ++i) {
    NodeState n;
    n.id = i;
    n.gpus_total = n.gpus_free = spec.node.gpus;
    n.cpus_total = n.cpus_free = spec.node.cpus;
    n.host_mem_total_gb = n.host_mem_free_gb = spec.node.host_memory_gb;
    nodes_.push_back(n);
    bucket_insert(n);
    total_gpus_ += n.gpus_total;
    free_gpus_healthy_ += n.gpus_free;
    free_gpus_all_ += n.gpus_free;
  }
}

void ClusterState::bucket_insert(const NodeState& n) {
  if (!n.cordoned)
    buckets_[static_cast<std::size_t>(n.gpus_free)].insert(
        static_cast<std::size_t>(n.id));
}

void ClusterState::bucket_erase(const NodeState& n) {
  if (!n.cordoned)
    buckets_[static_cast<std::size_t>(n.gpus_free)].erase(
        static_cast<std::size_t>(n.id));
}

bool ClusterState::can_allocate(int gpus) const {
  const int per_node = spec_.node.gpus;
  if (gpus >= per_node) {
    const int nodes_needed = (gpus + per_node - 1) / per_node;
    return empty_healthy_nodes() >= nodes_needed;
  }
  for (int k = gpus; k <= per_node; ++k)
    if (!buckets_[static_cast<std::size_t>(k)].empty()) return true;
  return false;
}

std::optional<Allocation> ClusterState::try_allocate(int gpus, int cpus_per_gpu) {
  Allocation alloc;
  if (!try_allocate_into(gpus, cpus_per_gpu, alloc)) return std::nullopt;
  return alloc;
}

bool ClusterState::try_allocate_into(int gpus, int cpus_per_gpu,
                                     Allocation& out) {
  ACME_CHECK(gpus > 0);
  out.clear();
  if (!can_allocate(gpus)) return false;
  const int per_node = spec_.node.gpus;

  if (gpus >= per_node) {
    const int full_nodes = gpus / per_node;
    const int remainder = gpus % per_node;
    const auto& empties = buckets_[static_cast<std::size_t>(per_node)];
    // Ascending node id, like the std::set buckets this replaces.
    std::size_t id = empties.first();
    for (int i = 0; i < full_nodes; ++i, id = empties.next(id))
      out.slices.push_back(
          {static_cast<NodeId>(id), per_node, per_node * cpus_per_gpu});
    if (remainder)
      out.slices.push_back(
          {static_cast<NodeId>(id), remainder, remainder * cpus_per_gpu});
  } else {
    // Best fit: the fullest node (smallest free count >= gpus).
    for (int k = gpus; k <= per_node; ++k) {
      const auto& bucket = buckets_[static_cast<std::size_t>(k)];
      if (!bucket.empty()) {
        out.slices.push_back(
            {static_cast<NodeId>(bucket.first()), gpus, gpus * cpus_per_gpu});
        break;
      }
    }
  }

  for (const auto& s : out.slices) {
    auto& n = nodes_[static_cast<std::size_t>(s.node)];
    ACME_CHECK(n.gpus_free >= s.gpus);
    bucket_erase(n);
    n.gpus_free -= s.gpus;
    n.cpus_free = std::max(0, n.cpus_free - s.cpus);
    bucket_insert(n);
    if (!n.cordoned) free_gpus_healthy_ -= s.gpus;
    free_gpus_all_ -= s.gpus;
  }
  return true;
}

void ClusterState::release(const Allocation& alloc) {
  for (const auto& s : alloc.slices) {
    auto& n = nodes_.at(static_cast<std::size_t>(s.node));
    ACME_CHECK_MSG(n.gpus_free + s.gpus <= n.gpus_total, "double release of GPUs");
    bucket_erase(n);
    n.gpus_free += s.gpus;
    n.cpus_free = std::min(n.cpus_total, n.cpus_free + s.cpus);
    bucket_insert(n);
    if (!n.cordoned) free_gpus_healthy_ += s.gpus;
    free_gpus_all_ += s.gpus;
  }
}

void ClusterState::cordon(NodeId id) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.cordoned) return;
  bucket_erase(n);
  n.cordoned = true;
  ++cordoned_count_;
  free_gpus_healthy_ -= n.gpus_free;
}

void ClusterState::uncordon(NodeId id) {
  auto& n = nodes_.at(static_cast<std::size_t>(id));
  if (!n.cordoned) return;
  n.cordoned = false;
  --cordoned_count_;
  bucket_insert(n);
  free_gpus_healthy_ += n.gpus_free;
}

void ClusterState::cordoned_nodes(std::vector<NodeId>& out) const {
  out.clear();
  if (cordoned_count_ == 0) return;  // common case: skip the node scan
  out.reserve(static_cast<std::size_t>(cordoned_count_));
  for (const auto& n : nodes_)
    if (n.cordoned) out.push_back(n.id);
}

void ClusterState::healthy_idle_nodes(std::vector<NodeId>& out) const {
  out.clear();
  buckets_[static_cast<std::size_t>(spec_.node.gpus)].append_to(out);
}

std::vector<NodeId> ClusterState::cordoned_nodes() const {
  std::vector<NodeId> out;
  cordoned_nodes(out);
  return out;
}

std::vector<NodeId> ClusterState::healthy_idle_nodes() const {
  std::vector<NodeId> out;
  healthy_idle_nodes(out);
  return out;
}

void ClusterState::save(snap::SnapshotWriter& w) const {
  w.begin_section("cluster.state");
  w.write_u64(static_cast<std::uint64_t>(nodes_.size()));
  for (const NodeState& n : nodes_) {
    w.write_i64(n.gpus_free);
    w.write_i64(n.cpus_free);
    w.write_f64(n.host_mem_free_gb);
    w.write_bool(n.cordoned);
  }
  w.end_section();
}

void ClusterState::restore(snap::SnapshotReader& r) {
  r.enter_section("cluster.state");
  const std::uint64_t count = r.read_u64();
  ACME_CHECK_MSG(count == nodes_.size(),
                 "cluster snapshot node count does not match the spec this "
                 "state was constructed from");
  for (auto& bucket : buckets_) bucket.clear();
  free_gpus_healthy_ = 0;
  free_gpus_all_ = 0;
  cordoned_count_ = 0;
  for (NodeState& n : nodes_) {
    n.gpus_free = static_cast<int>(r.read_i64());
    n.cpus_free = static_cast<int>(r.read_i64());
    n.host_mem_free_gb = r.read_f64();
    n.cordoned = r.read_bool();
    ACME_CHECK_MSG(n.gpus_free >= 0 && n.gpus_free <= n.gpus_total,
                   "cluster snapshot free-GPU count out of range");
    bucket_insert(n);  // skips cordoned nodes, like the constructor
    if (!n.cordoned) free_gpus_healthy_ += n.gpus_free;
    free_gpus_all_ += n.gpus_free;
    if (n.cordoned) ++cordoned_count_;
  }
  r.leave_section();
}

}  // namespace acme::cluster
