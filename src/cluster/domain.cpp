#include "cluster/domain.h"

#include <algorithm>

#include "common/check.h"

namespace acme::cluster {

const char* to_string(DomainKind kind) {
  switch (kind) {
    case DomainKind::kRoot: return "root";
    case DomainKind::kDatacenter: return "datacenter";
    case DomainKind::kPod: return "pod";
    case DomainKind::kSwitch: return "switch";
  }
  return "?";
}

namespace {

// Split `count` nodes into `parts` contiguous spans as evenly as possible:
// the first (count % parts) spans get one extra node. Returns the first
// node of part `i` (part boundaries are monotone in i).
int part_first(int count, int parts, int i) {
  const int base = count / parts;
  const int extra = count % parts;
  return i * base + std::min(i, extra);
}

}  // namespace

DomainTree::DomainTree(int node_count, const DomainShape& shape) {
  ACME_CHECK(node_count >= 0);
  node_count_ = node_count;
  if (node_count == 0) return;

  const int dcs = std::max(1, shape.datacenters);
  const int pods_per_dc = std::max(1, shape.pods_per_datacenter);
  ACME_CHECK_MSG(dcs * pods_per_dc <= node_count,
                 "DomainShape has more pods than nodes");

  // Level layout: id 0 = root, then all datacenters, then all pods, then
  // all switch groups; ids within a level ascend with first_node.
  auto push = [&](DomainKind kind, DomainId parent, NodeId first, int span) {
    kind_.push_back(static_cast<std::uint8_t>(kind));
    parent_.push_back(parent);
    first_node_.push_back(first);
    span_.push_back(span);
    const DomainId id = static_cast<DomainId>(kind_.size() - 1);
    by_kind_[static_cast<int>(kind)].push_back(id);
    return id;
  };

  push(DomainKind::kRoot, kInvalidDomain, 0, node_count);
  for (int d = 0; d < dcs; ++d) {
    const int first = part_first(node_count, dcs, d);
    const int last = part_first(node_count, dcs, d + 1);
    push(DomainKind::kDatacenter, 0, first, last - first);
  }
  for (int d = 0; d < dcs; ++d) {
    const DomainId dc_id = by_kind_[1][static_cast<std::size_t>(d)];
    const int dc_first = first_node_[dc_id];
    const int dc_span = span_[dc_id];
    for (int p = 0; p < pods_per_dc; ++p) {
      const int first = dc_first + part_first(dc_span, pods_per_dc, p);
      const int last = dc_first + part_first(dc_span, pods_per_dc, p + 1);
      push(DomainKind::kPod, dc_id, first, last - first);
    }
  }
  for (DomainId pod_id : by_kind_[2]) {
    const int pod_first = first_node_[pod_id];
    const int pod_span = span_[pod_id];
    const int per_switch =
        shape.nodes_per_switch > 0 ? shape.nodes_per_switch : pod_span;
    for (int first = 0; first < pod_span; first += per_switch) {
      const int span = std::min(per_switch, pod_span - first);
      push(DomainKind::kSwitch, pod_id, pod_first + first, span);
    }
  }

  node_dc_.resize(static_cast<std::size_t>(node_count));
  node_pod_.resize(static_cast<std::size_t>(node_count));
  node_switch_.resize(static_cast<std::size_t>(node_count));
  for (int level = 1; level <= 3; ++level) {
    auto& per_node = level == 1 ? node_dc_ : level == 2 ? node_pod_
                                                        : node_switch_;
    for (DomainId id : by_kind_[level]) {
      std::fill_n(per_node.begin() + first_node_[id], span_[id], id);
    }
  }

  trivial_ = by_kind_[1].size() == 1 && by_kind_[2].size() == 1 &&
             by_kind_[3].size() == 1;
}

DomainKind DomainTree::kind(DomainId d) const {
  ACME_CHECK(d < kind_.size());
  return static_cast<DomainKind>(kind_[d]);
}

DomainId DomainTree::parent(DomainId d) const {
  ACME_CHECK(d < parent_.size());
  return parent_[d];
}

NodeId DomainTree::first_node(DomainId d) const {
  ACME_CHECK(d < first_node_.size());
  return first_node_[d];
}

int DomainTree::domain_nodes(DomainId d) const {
  ACME_CHECK(d < span_.size());
  return span_[d];
}

DomainId DomainTree::level_of(NodeId node, DomainKind kind) const {
  ACME_CHECK(node >= 0 && node < node_count_);
  switch (kind) {
    case DomainKind::kRoot: return 0;
    case DomainKind::kDatacenter: return node_dc_[static_cast<std::size_t>(node)];
    case DomainKind::kPod: return node_pod_[static_cast<std::size_t>(node)];
    case DomainKind::kSwitch: return node_switch_[static_cast<std::size_t>(node)];
  }
  return kInvalidDomain;
}

DomainId DomainTree::ancestor(NodeId node, DomainKind kind) const {
  return level_of(node, kind);
}

DomainId DomainTree::datacenter_of(NodeId node) const {
  return level_of(node, DomainKind::kDatacenter);
}

DomainId DomainTree::pod_of(NodeId node) const {
  return level_of(node, DomainKind::kPod);
}

DomainId DomainTree::switch_of(NodeId node) const {
  return level_of(node, DomainKind::kSwitch);
}

const std::vector<DomainId>& DomainTree::domains(DomainKind kind) const {
  return by_kind_[static_cast<int>(kind)];
}

int DomainTree::pods_spanned(NodeId first, int count) const {
  if (count <= 0 || node_count_ == 0) return 1;
  ACME_CHECK(first >= 0 && first + count <= node_count_);
  // Pod spans are contiguous and pod ids ascend with first_node, so a
  // contiguous node span covers a contiguous id range.
  return static_cast<int>(node_pod_[static_cast<std::size_t>(first + count - 1)] -
                          node_pod_[static_cast<std::size_t>(first)]) +
         1;
}

int DomainTree::datacenters_spanned(NodeId first, int count) const {
  if (count <= 0 || node_count_ == 0) return 1;
  ACME_CHECK(first >= 0 && first + count <= node_count_);
  return static_cast<int>(node_dc_[static_cast<std::size_t>(first + count - 1)] -
                          node_dc_[static_cast<std::size_t>(first)]) +
         1;
}

int DomainTree::distinct_spanned(const NodeId* nodes, std::size_t n,
                                 DomainKind kind) const {
  if (n == 0 || node_count_ == 0) return 1;
  int distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const DomainId d = level_of(nodes[i], kind);
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j) {
      seen = level_of(nodes[j], kind) == d;
    }
    distinct += seen ? 0 : 1;
  }
  return distinct;
}

int DomainTree::pods_spanned(const NodeId* nodes, std::size_t n) const {
  return distinct_spanned(nodes, n, DomainKind::kPod);
}

int DomainTree::datacenters_spanned(const NodeId* nodes, std::size_t n) const {
  return distinct_spanned(nodes, n, DomainKind::kDatacenter);
}

}  // namespace acme::cluster
