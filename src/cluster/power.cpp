#include "cluster/power.h"

#include <algorithm>
#include <cmath>

namespace acme::cluster {

GpuPowerModel::GpuPowerModel(GpuSpec spec) : spec_(spec) {}

double GpuPowerModel::power_w(double sm_util, double mem_frac, common::Rng& rng) const {
  sm_util = std::clamp(sm_util, 0.0, 1.0);
  mem_frac = std::clamp(mem_frac, 0.0, 1.0);
  if (sm_util < 0.02) {
    // Idle GPUs still burn ~60 W; small jitter from clocking/ECC refresh.
    return std::max(40.0, spec_.idle_power_w + rng.normal(0.0, 3.0));
  }
  // Dynamic power grows superlinearly near full occupancy: tensor-core dense
  // kernels on communication-optimized jobs push past TDP (paper observes
  // 12.5–22.1% of GPUs over 400 W, peaks at 600 W).
  const double base = spec_.idle_power_w + 30.0 * mem_frac;
  const double dynamic_span = spec_.tdp_w - spec_.idle_power_w;
  double p = base + dynamic_span * std::pow(sm_util, 1.35);
  if (sm_util > 0.9) {
    // Heavy tensor-core phases overshoot TDP with long-tailed excursions.
    const double overshoot = (spec_.max_power_w - spec_.tdp_w) *
                             std::max(0.0, rng.normal(0.12, 0.30));
    p += overshoot * (sm_util - 0.9) / 0.1;
  }
  p += rng.normal(0.0, 8.0);
  return std::clamp(p, 40.0, spec_.max_power_w);
}

double GpuThermalModel::core_temp_c(double power_w, double ambient_c,
                                    common::Rng& rng) const {
  // Linear thermal resistance model: ~0.085 C/W above ambient with airflow
  // noise. 400 W -> ~34 C above ambient; ambient ~30-35 C in a warm room
  // yields the >65 C heavy-load population of Fig 21.
  const double rise = 0.085 * power_w;
  return ambient_c + rise + rng.normal(0.0, 1.5);
}

double GpuThermalModel::mem_temp_c(double core_temp_c, common::Rng& rng) const {
  // HBM stacks run consistently hotter than the core (paper Fig 21).
  return core_temp_c + 6.0 + std::max(0.0, rng.normal(2.0, 1.0));
}

ServerPowerModel::ServerPowerModel(NodeSpec node) : node_(node) {}

ServerPowerBreakdown ServerPowerModel::gpu_server(double total_gpu_w,
                                                  double cpu_util) const {
  ServerPowerBreakdown b;
  b.gpu_w = total_gpu_w;
  // 2x Xeon 8358P (240 W TDP each) plus platform logic: a loaded GPU node
  // never idles its CPUs completely (dataloaders, NCCL proxies). Calibrated
  // so the Fig 9 split holds: GPUs ~2/3, CPUs ~11.2%, PSU loss ~9.6%.
  b.cpu_w = 380.0 + 450.0 * std::clamp(cpu_util, 0.0, 1.0);
  // DRAM: 32 DIMMs at ~6 W each, mildly load dependent.
  b.memory_w = 190.0 + 60.0 * std::clamp(cpu_util, 0.0, 1.0);
  b.fan_w = 150.0 + 0.02 * total_gpu_w;  // fans track thermal load
  b.nic_storage_other_w =
      30.0 + 10.0 * static_cast<double>(node_.compute_nics + node_.storage_nics);
  // PSU conversion loss ~9.6% of delivered power (paper Fig 9).
  const double delivered = b.gpu_w + b.cpu_w + b.memory_w + b.fan_w + b.nic_storage_other_w;
  b.psu_loss_w = delivered * 0.106;  // loss/(delivered+loss) ~= 9.6%
  return b;
}

double ServerPowerModel::cpu_server_w(double cpu_util) const {
  // CPU-only service node: ~5x less than a loaded GPU server (paper Fig 8b).
  const double cpu = 380.0 + 450.0 * std::clamp(cpu_util, 0.0, 1.0);
  const double rest = 150.0;
  return (cpu + rest) * 1.106;
}

}  // namespace acme::cluster
