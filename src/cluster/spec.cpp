#include "cluster/spec.h"

namespace acme::cluster {

ClusterSpec seren_spec() {
  ClusterSpec spec;
  spec.name = "Seren";
  spec.node_count = 286;
  spec.node.cpus = 128;
  spec.node.gpus = 8;
  spec.node.host_memory_gb = 1024.0;
  spec.node.compute_nics = 1;
  spec.node.nic_gbps = 200.0;
  spec.node.storage_nics = 0;     // storage shares the single HCA
  spec.node.storage_nic_gbps = 25.0;
  spec.scheduler = SchedulerKind::kSlurm;
  return spec;
}

ClusterSpec kalos_spec() {
  ClusterSpec spec;
  spec.name = "Kalos";
  spec.node_count = 302;
  spec.node.cpus = 128;
  spec.node.gpus = 8;
  spec.node.host_memory_gb = 2048.0;
  spec.node.compute_nics = 4;
  spec.node.nic_gbps = 200.0;
  spec.node.storage_nics = 1;     // extra HCA dedicated to storage
  spec.node.storage_nic_gbps = 200.0;
  spec.scheduler = SchedulerKind::kKubernetes;
  return spec;
}

}  // namespace acme::cluster
