// GPU and server power / thermal models (paper Fig 8, Fig 9, Fig 21, §A.3).
//
// Calibration targets:
//  - idle GPUs draw ~60 W (~30% of the fleet is idle);
//  - 22.1% (Seren) / 12.5% (Kalos) of GPUs exceed the 400 W TDP, peaks ~600 W;
//  - GPUs are ~2/3 of GPU-server power, CPUs 11.2%, PSU conversion loss 9.6%;
//  - GPU servers draw ~5x a CPU server;
//  - GPU memory runs hotter than the core; heavy-load GPUs exceed 65 C.
#pragma once

#include "cluster/spec.h"
#include "common/rng.h"

namespace acme::cluster {

class GpuPowerModel {
 public:
  explicit GpuPowerModel(GpuSpec spec = GpuSpec{});

  // Instantaneous power draw (W) for a GPU at the given SM utilization
  // (0..1) and memory footprint fraction (0..1). `rng` adds sampling noise
  // akin to DCGM jitter; highly-utilized communication-optimized jobs push
  // past TDP.
  double power_w(double sm_util, double mem_frac, common::Rng& rng) const;

  const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

class GpuThermalModel {
 public:
  // Core temperature (C) from power draw; ambient reflects the server room.
  double core_temp_c(double power_w, double ambient_c, common::Rng& rng) const;
  // HBM runs hotter than the core (paper Fig 21).
  double mem_temp_c(double core_temp_c, common::Rng& rng) const;
};

// Power split of a GPU server across hardware modules (paper Fig 9).
struct ServerPowerBreakdown {
  double gpu_w = 0;
  double cpu_w = 0;
  double psu_loss_w = 0;
  double memory_w = 0;
  double fan_w = 0;
  double nic_storage_other_w = 0;
  double total() const {
    return gpu_w + cpu_w + psu_loss_w + memory_w + fan_w + nic_storage_other_w;
  }
};

class ServerPowerModel {
 public:
  explicit ServerPowerModel(NodeSpec node = NodeSpec{});

  // Breakdown for a GPU server whose GPUs draw `total_gpu_w` and whose CPUs
  // run at `cpu_util` (0..1).
  ServerPowerBreakdown gpu_server(double total_gpu_w, double cpu_util) const;
  // A CPU-only server (the 6 extra servers in Fig 8b).
  double cpu_server_w(double cpu_util) const;

 private:
  NodeSpec node_;
};

// Datacenter energy -> carbon model (paper §A.3): PUE 1.25, 30.61% carbon-free
// energy, and a net emissions rate of 0.478 tCO2e/MWh (the rate the paper
// multiplies directly against measured energy: 673 MWh -> 321.7 tCO2e).
struct CarbonModel {
  double pue = 1.25;
  double carbon_free_fraction = 0.3061;
  double tco2e_per_mwh = 0.478;

  // Facility-level energy including cooling/distribution overhead.
  double facility_energy_mwh(double it_energy_mwh) const { return it_energy_mwh * pue; }
  // Effective emissions (tCO2e) as computed in the paper's Appendix A.3.
  double emissions_tco2e(double energy_mwh) const { return energy_mwh * tco2e_per_mwh; }
};

}  // namespace acme::cluster
