// Static cluster specifications (paper Table 1) and hardware constants.
#pragma once

#include <string>

namespace acme::cluster {

enum class SchedulerKind { kSlurm, kKubernetes };

// A100-SXM 80GB constants used throughout the models.
struct GpuSpec {
  double memory_gb = 80.0;
  double idle_power_w = 60.0;   // ~30% of GPUs idle at 60 W (Fig 8a)
  double tdp_w = 400.0;         // TDP per Fig 8a
  double max_power_w = 600.0;   // observed peak in the paper
  double peak_tflops_bf16 = 312.0;
  double nvlink_gbps = 600.0 * 8.0;  // 600 GB/s bidirectional
};

struct NodeSpec {
  int cpus = 128;              // 2x Xeon 8358P, 128 threads
  int gpus = 8;
  double host_memory_gb = 1024.0;
  int compute_nics = 1;        // IB HCAs for application traffic
  double nic_gbps = 200.0;     // per-HCA HDR InfiniBand
  int storage_nics = 0;        // dedicated storage HCA (Kalos only)
  double storage_nic_gbps = 25.0;  // Seren storage NIC cap (Fig 16-left)
};

// Physical layout of a fleet: datacenters split into pods (one PDU / spine
// block each), pods split into rail/switch groups of nodes. The defaults
// describe today's flat single-room clusters; `trivial()` layouts build a
// degenerate DomainTree and change nothing downstream.
struct DomainShape {
  int datacenters = 1;
  int pods_per_datacenter = 1;
  // Nodes per rail/switch group inside a pod; 0 = one group per pod.
  int nodes_per_switch = 0;

  bool trivial() const {
    return datacenters <= 1 && pods_per_datacenter <= 1 &&
           nodes_per_switch <= 0;
  }
};

struct ClusterSpec {
  std::string name;
  int node_count = 0;
  NodeSpec node;
  SchedulerKind scheduler = SchedulerKind::kSlurm;
  DomainShape topology;

  int total_gpus() const { return node_count * node.gpus; }
  int total_cpus() const { return node_count * node.cpus; }
};

// Seren: 286 nodes, 1 TB host memory, 1x200 Gb/s, Slurm. 2,288 GPUs.
ClusterSpec seren_spec();
// Kalos: 302 nodes, 2 TB host memory, 5x200 Gb/s (4 compute + 1 storage),
// Kubernetes. 2,416 GPUs.
ClusterSpec kalos_spec();

}  // namespace acme::cluster
