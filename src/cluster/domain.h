// Hierarchical failure/fabric domains: datacenter -> pod (PDU / spine
// block) -> rail-switch group -> node. One DomainTree is shared by the
// fabric (tier-crossing collective pricing), the failure injector
// (correlated domain outages), and the scheduler (subtree cordons), so
// every layer agrees on which nodes share a blast radius.
//
// Representation: dense interned u32 domain ids laid out level by level
// (root, then datacenters, then pods, then switch groups), SoA arrays per
// domain, and per-node ancestor arrays so node -> datacenter/pod/switch is
// a single indexed load. Nodes are split as evenly as possible at each
// level; every domain owns a contiguous [first_node, first_node + count)
// span and ids within a level ascend with first_node.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/spec.h"
#include "cluster/state.h"

namespace acme::cluster {

enum class DomainKind : std::uint8_t {
  kRoot = 0,
  kDatacenter = 1,
  kPod = 2,
  kSwitch = 3,
};
const char* to_string(DomainKind kind);

using DomainId = std::uint32_t;
inline constexpr DomainId kInvalidDomain = 0xffffffffu;

class DomainTree {
 public:
  DomainTree() = default;  // empty tree over zero nodes
  DomainTree(int node_count, const DomainShape& shape);
  explicit DomainTree(const ClusterSpec& spec)
      : DomainTree(spec.node_count, spec.topology) {}

  int node_count() const { return node_count_; }
  // One datacenter, one pod, one switch group: the flat layout every
  // pre-hierarchy caller assumed. Tier-aware code paths reduce to the
  // flat formulas when this holds.
  bool trivial() const { return trivial_; }
  std::size_t domain_count() const { return kind_.size(); }

  DomainKind kind(DomainId d) const;
  DomainId parent(DomainId d) const;  // kInvalidDomain for the root
  NodeId first_node(DomainId d) const;
  int domain_nodes(DomainId d) const;

  // O(1) node -> enclosing domain of a kind (kRoot returns id 0).
  DomainId ancestor(NodeId node, DomainKind kind) const;
  DomainId datacenter_of(NodeId node) const;
  DomainId pod_of(NodeId node) const;
  DomainId switch_of(NodeId node) const;

  // All domains of one kind, ascending first_node.
  const std::vector<DomainId>& domains(DomainKind kind) const;

  // Tiers spanned by a contiguous node span [first, first + count). O(1):
  // domain spans are contiguous and level ids ascend with first_node.
  int pods_spanned(NodeId first, int count) const;
  int datacenters_spanned(NodeId first, int count) const;
  // Exact distinct-domain counts for an arbitrary node set (non-contiguous
  // multi-pod placements). O(n^2) over the set but allocation-free; sets
  // are probe/placement sized, not cluster sized.
  int pods_spanned(const NodeId* nodes, std::size_t n) const;
  int datacenters_spanned(const NodeId* nodes, std::size_t n) const;

 private:
  DomainId level_of(NodeId node, DomainKind kind) const;
  int distinct_spanned(const NodeId* nodes, std::size_t n,
                       DomainKind kind) const;

  // SoA per-domain state, indexed by DomainId.
  std::vector<std::uint8_t> kind_;
  std::vector<DomainId> parent_;
  std::vector<NodeId> first_node_;
  std::vector<int> span_;
  // Per-node ancestors (dense, node-indexed).
  std::vector<DomainId> node_dc_;
  std::vector<DomainId> node_pod_;
  std::vector<DomainId> node_switch_;
  std::vector<DomainId> by_kind_[4];
  int node_count_ = 0;
  bool trivial_ = true;
};

}  // namespace acme::cluster
