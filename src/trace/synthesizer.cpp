#include "trace/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/units.h"

namespace acme::trace {

using common::kDay;
using common::kHour;

TraceSynthesizer::TraceSynthesizer(ClusterWorkloadProfile profile,
                                   SynthesizerOptions options)
    : profile_(std::move(profile)), options_(options) {
  ACME_CHECK(!profile_.types.empty());
  double total = 0;
  for (const auto& tp : profile_.types) total += tp.job_fraction;
  ACME_CHECK_MSG(total > 0.99 && total < 1.01, "type fractions must sum to ~1");
}

double TraceSynthesizer::arrival_intensity(double t) {
  // Diurnal: trough at night (~04:00), peak mid-afternoon. Weekly: weekend dip.
  const double day_phase = std::fmod(t, kDay) / kDay;  // 0 = midnight
  const double diurnal =
      0.625 + 0.375 * std::sin(2.0 * std::numbers::pi * (day_phase - 0.29));
  const int weekday = static_cast<int>(std::fmod(t / kDay, 7.0));
  const double weekly = (weekday >= 5) ? 0.6 : 1.0;
  return std::clamp(diurnal * weekly, 0.1, 1.0);
}

JobStatus TraceSynthesizer::sample_status(const TypeProfile& tp,
                                          common::Rng& rng) const {
  const double u = rng.uniform();
  if (u < tp.p_completed) return JobStatus::kCompleted;
  if (u < tp.p_completed + tp.p_failed) return JobStatus::kFailed;
  return JobStatus::kCanceled;
}

double TraceSynthesizer::sample_duration(const TypeProfile& tp, JobStatus status,
                                         common::Rng& rng) const {
  double scale = tp.completed_scale;
  if (status == JobStatus::kFailed) scale = tp.failed_scale;
  if (status == JobStatus::kCanceled) scale = tp.canceled_scale;
  // Floor at 5 seconds: even instant script errors occupy the job slot
  // briefly.
  return std::max(5.0, tp.duration.sample(rng) * scale);
}

Trace TraceSynthesizer::generate() const {
  common::Rng rng(options_.seed);
  common::Rng arrival_rng = rng.fork("arrivals");
  common::Rng type_rng = rng.fork("types");
  common::Rng job_rng = rng.fork("jobs");

  const double horizon = profile_.trace_days * kDay;
  Trace out;
  out.reserve(profile_.gpu_jobs + (options_.include_cpu_jobs ? profile_.cpu_jobs : 0));

  const bool campaigns_enabled = !profile_.pretrain_campaign_slots.empty();

  // Per-EVENT type weights: an evaluation event emits a whole batch of ~B
  // jobs, so its event weight is its job share divided by B to keep the job
  // mix calibrated. Pretraining jobs are generated as campaigns below (not as
  // independent arrivals) when a campaign budget is configured.
  std::vector<double> type_weights;
  type_weights.reserve(profile_.types.size());
  for (const auto& tp : profile_.types) {
    double divisor = 1.0;
    if (tp.type == WorkloadType::kEvaluation)
      divisor = std::max(1.0, options_.eval_batch_mean);
    double weight = tp.job_fraction / divisor;
    if (campaigns_enabled && tp.type == WorkloadType::kPretrain) weight = 0.0;
    type_weights.push_back(weight);
  }

  std::uint64_t next_id = 1;

  if (campaigns_enabled) {
    // Pretraining campaigns: carve the campaign GPU budget into concurrent
    // slots sized from the demand distribution; each slot runs back-to-back
    // resubmissions with short restart gaps (Table 3 TR medians are minutes)
    // and occasional long pauses (users adjusting configs after anomalies,
    // §A.1).
    common::Rng camp_rng = rng.fork("campaigns");
    const auto& ptp = profile_.type_profile(WorkloadType::kPretrain);
    const common::LognormalFromStats restart_gap(2 * common::kMinute,
                                                 40 * common::kMinute);
    for (int gpus : profile_.pretrain_campaign_slots) {
      double tc = camp_rng.uniform(0.0, 6 * kHour);  // staggered campaign start
      const std::uint32_t tag = gpus >= 1024   ? kModelTag123B
                              : gpus >= 256 ? kModelTag104B
                                            : kModelTag7B;
      while (tc < horizon) {
        JobRecord job;
        job.id = next_id++;
        job.type = WorkloadType::kPretrain;
        job.gpus = gpus;
        job.cpus = gpus * 12;
        job.submit_time = tc;
        job.status = sample_status(ptp, job_rng);
        // Campaign runs are bounded by the checkpoint/evaluation cadence: no
        // single submission runs longer than a few days before a planned
        // restart or cancel.
        job.duration = std::min(sample_duration(ptp, job.status, job_rng),
                                5.0 * kDay);
        job.duration = std::min(job.duration, horizon - tc);
        job.model_tag_id = tag;
        out.push_back(job);
        double gap = restart_gap.sample(camp_rng);
        if (job.status == JobStatus::kCanceled && camp_rng.bernoulli(0.15))
          gap += camp_rng.uniform(2 * kHour, 24 * kHour);  // user pause
        tc += job.duration + gap;
      }
    }
  }

  // GPU jobs: thinning-based nonhomogeneous Poisson process whose base rate
  // is chosen so the expected count matches the profile. Evaluation jobs
  // arrive in batches (checkpoint x ~60 datasets).
  const auto& eval_tp = profile_.type_profile(WorkloadType::kEvaluation);
  const double eval_frac = eval_tp.job_fraction;
  // Number of arrival events: non-eval jobs arrive singly; eval batches of
  // mean size B contribute B jobs per event, so fewer events are needed.
  const double n_gpu = static_cast<double>(profile_.gpu_jobs);
  const double n_events =
      n_gpu * ((1.0 - eval_frac) + eval_frac / std::max(1.0, options_.eval_batch_mean));
  // Mean thinning acceptance over one week, computed numerically so the
  // expected job count matches the profile.
  double mean_intensity = 0;
  {
    const int steps = 7 * 24 * 4;
    for (int i = 0; i < steps; ++i)
      mean_intensity += arrival_intensity((static_cast<double>(i) + 0.5) * 15 *
                                          common::kMinute);
    mean_intensity /= steps;
  }
  const double base_rate = n_events / (horizon * mean_intensity);

  double t = 0;
  while (t < horizon && out.size() < profile_.gpu_jobs) {
    t += arrival_rng.exponential(base_rate);
    if (t >= horizon) break;
    if (!arrival_rng.bernoulli(arrival_intensity(t))) continue;  // thinning

    const auto& tp = profile_.types[type_rng.categorical(type_weights)];
    std::size_t batch = 1;
    if (tp.type == WorkloadType::kEvaluation) {
      // Geometric batch size with the configured mean.
      const double p = 1.0 / std::max(1.0, options_.eval_batch_mean);
      batch = 1;
      while (job_rng.uniform() > p && batch < 200) ++batch;
    }
    for (std::size_t b = 0; b < batch && out.size() < profile_.gpu_jobs; ++b) {
      JobRecord job;
      job.id = next_id++;
      job.type = tp.type;
      job.gpus = static_cast<int>(tp.gpu_demand.sample(job_rng));
      job.cpus = job.gpus * 12;  // leave headroom of the 16:1 CPU:GPU ratio
      job.submit_time = t;
      job.status = sample_status(tp, job_rng);
      job.duration = sample_duration(tp, job.status, job_rng);
      if (tp.type == WorkloadType::kPretrain)
        job.model_tag_id = job.gpus >= 1024   ? kModelTag123B
                           : job.gpus >= 256 ? kModelTag104B
                                             : kModelTag7B;
      out.push_back(job);
    }
  }

  if (options_.include_cpu_jobs) {
    common::Rng cpu_rng = rng.fork("cpu-jobs");
    const common::LognormalFromStats cpu_dur(60.0, 20 * common::kMinute);
    const double cpu_rate =
        static_cast<double>(profile_.cpu_jobs) / (horizon * mean_intensity);
    double tc = 0;
    std::size_t made = 0;
    while (tc < horizon && made < profile_.cpu_jobs) {
      tc += cpu_rng.exponential(cpu_rate);
      if (tc >= horizon) break;
      if (!cpu_rng.bernoulli(arrival_intensity(tc))) continue;
      JobRecord job;
      job.id = next_id++;
      job.type = WorkloadType::kOther;
      job.gpus = 0;
      job.cpus = static_cast<int>(cpu_rng.uniform_int(1, 32));
      job.submit_time = tc;
      job.status = cpu_rng.bernoulli(0.6) ? JobStatus::kCompleted
                   : cpu_rng.bernoulli(0.85) ? JobStatus::kFailed
                                             : JobStatus::kCanceled;
      job.duration = std::max(1.0, cpu_dur.sample(cpu_rng));
      out.push_back(job);
      ++made;
    }
  }

  std::sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.id < b.id;
  });
  return out;
}

}  // namespace acme::trace
