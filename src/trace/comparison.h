// Comparison datacenter profiles (paper Table 2, Fig 2, Fig 3).
//
// Philly (Microsoft '17), Helios (SenseTime '20) and PAI (Alibaba '20) are
// modelled from their published summary statistics so the benches can draw
// the same cross-datacenter CDFs the paper does. These are parametric stand-
// ins for the real traces (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

#include "common/dist.h"
#include "common/rng.h"

namespace acme::trace {

struct DatacenterProfile {
  std::string name;
  int year = 0;
  std::string duration;   // e.g. "3 months"
  std::string jobs;       // e.g. "113K"
  double avg_gpus = 0;    // average requested GPUs per job
  std::string gpu_model;
  int total_gpus = 0;

  // GPU job duration distribution (seconds).
  common::LognormalFromStats job_duration{60.0, 120.0};
  // Cluster-wide GPU utilization sampler (0..100); parameterised per the
  // paper: Philly broad w/ median 48, PAI low w/ median 4, Acme polarized.
  std::vector<double> util_support;   // candidate utilization levels
  std::vector<double> util_weights;
  // Per-job GPU demand distribution.
  common::DiscreteDist gpu_demand{{1.0}, {1.0}};

  double sample_duration(common::Rng& rng) const { return job_duration.sample(rng); }
  double sample_util(common::Rng& rng) const;
  double sample_demand(common::Rng& rng) const { return gpu_demand.sample(rng); }
};

DatacenterProfile philly_profile();
DatacenterProfile helios_profile();
DatacenterProfile pai_profile();

}  // namespace acme::trace
