#include "trace/workload_profile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/units.h"

namespace acme::trace {

using common::DiscreteDist;
using common::LognormalFromStats;
using common::kHour;
using common::kMinute;

const char* to_string(WorkloadType type) {
  switch (type) {
    case WorkloadType::kPretrain: return "Pretrain";
    case WorkloadType::kSFT: return "SFT";
    case WorkloadType::kMLLM: return "MLLM";
    case WorkloadType::kEvaluation: return "Evaluation";
    case WorkloadType::kDebug: return "Debug";
    case WorkloadType::kOther: return "Other";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted: return "Completed";
    case JobStatus::kFailed: return "Failed";
    case JobStatus::kCanceled: return "Canceled";
  }
  return "?";
}

const TypeProfile& ClusterWorkloadProfile::type_profile(WorkloadType t) const {
  for (const auto& tp : types)
    if (tp.type == t) return tp;
  throw std::out_of_range("no profile for workload type");
}

namespace {

TypeProfile make_type(WorkloadType type, double frac, DiscreteDist demand,
                      double dur_median, double dur_mean, double pc, double pf,
                      double px, double sc, double sf, double sx) {
  ACME_CHECK(pc + pf + px > 0.999 && pc + pf + px < 1.001);
  TypeProfile tp{type,
                 frac,
                 std::move(demand),
                 LognormalFromStats(dur_median, dur_mean),
                 pc,
                 pf,
                 px,
                 sc,
                 sf,
                 sx};
  return tp;
}

}  // namespace

ClusterWorkloadProfile seren_profile() {
  ClusterWorkloadProfile p;
  p.cluster_name = "Seren";
  p.gpu_jobs = 664000;
  p.cpu_jobs = 368000;
  p.pretrain_campaign_slots = {512, 256, 256, 128, 128, 64, 64, 32, 32, 32, 32};
  // Fractions follow Fig 4(a); demand boxes follow Fig 5(a); durations follow
  // Fig 2(a)/6(a); statuses follow Fig 17 with per-type skew (§5.2: eval jobs
  // rarely hit hardware errors but script errors abound; pretraining restarts
  // show up as failed submissions, long cancels hold most GPU time).
  p.types.push_back(make_type(
      WorkloadType::kEvaluation, 0.783,
      DiscreteDist({1, 2, 4, 8}, {0.45, 0.25, 0.20, 0.10}),
      1.5 * kMinute, 15 * kMinute, 0.55, 0.42, 0.03, 1.0, 0.4, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kPretrain, 0.009,
      DiscreteDist({32, 64, 128, 256, 512, 1024},
                   {0.20, 0.25, 0.30, 0.15, 0.08, 0.02}),
      1.0 * kHour, 5.0 * kHour, 0.15, 0.55, 0.30, 2.0, 0.35, 4.5));
  p.types.push_back(make_type(
      WorkloadType::kSFT, 0.050,
      DiscreteDist({8, 16, 32, 64}, {0.40, 0.30, 0.20, 0.10}),
      30 * kMinute, 1.0 * kHour, 0.60, 0.30, 0.10, 1.0, 0.3, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kMLLM, 0.045,
      DiscreteDist({8, 16, 32, 64, 128}, {0.30, 0.25, 0.20, 0.15, 0.10}),
      20 * kMinute, 1.5 * kHour, 0.50, 0.40, 0.10, 1.0, 0.3, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kDebug, 0.100,
      DiscreteDist({1, 2, 4, 8, 32, 128}, {0.45, 0.20, 0.15, 0.12, 0.06, 0.02}),
      5 * kMinute, 30 * kMinute, 0.50, 0.30, 0.20, 1.0, 0.3, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kOther, 0.013,
      DiscreteDist({1, 2, 4, 8}, {0.50, 0.20, 0.20, 0.10}),
      2 * kMinute, 30 * kMinute, 0.50, 0.40, 0.10, 1.0, 0.3, 1.0));
  return p;
}

ClusterWorkloadProfile kalos_profile() {
  ClusterWorkloadProfile p;
  p.cluster_name = "Kalos";
  p.gpu_jobs = 20000;
  p.cpu_jobs = 42000;
  p.pretrain_campaign_slots = {1024, 512, 512, 128};
  p.types.push_back(make_type(
      WorkloadType::kEvaluation, 0.929,
      DiscreteDist({1, 2, 4, 8}, {0.35, 0.25, 0.25, 0.15}),
      2 * kMinute, 60 * kMinute, 0.55, 0.42, 0.03, 1.0, 0.4, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kPretrain, 0.032,
      DiscreteDist({128, 256, 512, 1024, 2048},
                   {0.08, 0.22, 0.30, 0.28, 0.12}),
      1.0 * kHour, 5.0 * kHour, 0.15, 0.55, 0.30, 25.0, 0.5, 16.0));
  p.types.push_back(make_type(
      WorkloadType::kDebug, 0.030,
      DiscreteDist({1, 8, 32, 64, 128},
                   {0.25, 0.30, 0.15, 0.15, 0.15}),
      20 * kMinute, 8.0 * kHour, 0.50, 0.30, 0.20, 1.0, 0.3, 1.0));
  p.types.push_back(make_type(
      WorkloadType::kOther, 0.009,
      DiscreteDist({1, 8, 32}, {0.50, 0.30, 0.20}),
      2 * kMinute, 30 * kMinute, 0.50, 0.40, 0.10, 1.0, 0.3, 1.0));
  return p;
}

ClusterWorkloadProfile scaled(ClusterWorkloadProfile profile, double factor) {
  ACME_CHECK(factor >= 1.0);
  // Shrink the trace window rather than thinning arrivals: the pretraining
  // campaigns' job volume scales with the horizon, so the type mix stays
  // calibrated at every scale.
  profile.gpu_jobs = static_cast<std::size_t>(static_cast<double>(profile.gpu_jobs) / factor);
  profile.cpu_jobs = static_cast<std::size_t>(static_cast<double>(profile.cpu_jobs) / factor);
  profile.trace_days = std::max(profile.trace_days / factor, 2.0);
  return profile;
}

ClusterWorkloadProfile amplified(ClusterWorkloadProfile profile,
                                 double multiplier) {
  ACME_CHECK(multiplier >= 1.0);
  // Densify arrivals inside the same window: a bigger fleet runs more jobs
  // concurrently, not a longer trace.
  profile.gpu_jobs = static_cast<std::size_t>(
      static_cast<double>(profile.gpu_jobs) * multiplier);
  profile.cpu_jobs = static_cast<std::size_t>(
      static_cast<double>(profile.cpu_jobs) * multiplier);
  const auto copies = static_cast<std::size_t>(
      std::max(1.0, std::floor(multiplier + 0.5)));
  if (copies > 1 && !profile.pretrain_campaign_slots.empty()) {
    std::vector<int> slots;
    slots.reserve(profile.pretrain_campaign_slots.size() * copies);
    for (std::size_t c = 0; c < copies; ++c)
      slots.insert(slots.end(), profile.pretrain_campaign_slots.begin(),
                   profile.pretrain_campaign_slots.end());
    profile.pretrain_campaign_slots = std::move(slots);
  }
  return profile;
}

}  // namespace acme::trace
