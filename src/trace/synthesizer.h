// Six-month trace synthesizer.
//
// Generates a job stream from a ClusterWorkloadProfile: nonhomogeneous
// arrivals with diurnal/weekly rhythm, batched evaluation submissions (the
// paper notes evaluation trials are "submitted as a batch simultaneously"),
// per-type GPU demand, per-status runtimes.
#pragma once

#include "common/rng.h"
#include "trace/workload_profile.h"

namespace acme::trace {

struct SynthesizerOptions {
  std::uint64_t seed = 42;
  // Mean size of an evaluation submission batch (one checkpoint evaluated on
  // ~60 datasets yields bursts of similar trials).
  double eval_batch_mean = 40.0;
  bool include_cpu_jobs = true;
};

class TraceSynthesizer {
 public:
  TraceSynthesizer(ClusterWorkloadProfile profile, SynthesizerOptions options = {});

  // Generates the full trace, sorted by submission time.
  Trace generate() const;

  const ClusterWorkloadProfile& profile() const { return profile_; }

 private:
  double sample_duration(const TypeProfile& tp, JobStatus status,
                         common::Rng& rng) const;
  JobStatus sample_status(const TypeProfile& tp, common::Rng& rng) const;
  // Diurnal x weekly submission intensity in [0.25, 1.0]; t in seconds.
  static double arrival_intensity(double t);

  ClusterWorkloadProfile profile_;
  SynthesizerOptions options_;
};

}  // namespace acme::trace
