#include "trace/analysis.h"

namespace acme::trace {

std::map<WorkloadType, Share> type_shares(const Trace& trace) {
  std::map<WorkloadType, Share> out;
  double jobs = 0, gpu_time = 0;
  for (const auto& j : trace) {
    if (!j.is_gpu_job()) continue;
    out[j.type].count_fraction += 1;
    out[j.type].gpu_time_fraction += j.gpu_time();
    jobs += 1;
    gpu_time += j.gpu_time();
  }
  for (auto& [type, share] : out) {
    if (jobs > 0) share.count_fraction /= jobs;
    if (gpu_time > 0) share.gpu_time_fraction /= gpu_time;
  }
  return out;
}

std::map<JobStatus, Share> status_shares(const Trace& trace) {
  std::map<JobStatus, Share> out;
  double jobs = 0, gpu_time = 0;
  for (const auto& j : trace) {
    if (!j.is_gpu_job()) continue;
    out[j.status].count_fraction += 1;
    out[j.status].gpu_time_fraction += j.gpu_time();
    jobs += 1;
    gpu_time += j.gpu_time();
  }
  for (auto& [status, share] : out) {
    if (jobs > 0) share.count_fraction /= jobs;
    if (gpu_time > 0) share.gpu_time_fraction /= gpu_time;
  }
  return out;
}

common::SampleStats durations(const Trace& trace) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job()) s.add(j.duration);
  return s;
}

common::SampleStats durations_of(const Trace& trace, WorkloadType type) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job() && j.type == type) s.add(j.duration);
  return s;
}

common::SampleStats queue_delays_of(const Trace& trace, WorkloadType type) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job() && j.type == type) s.add(j.queue_delay);
  return s;
}

common::SampleStats demand_per_job(const Trace& trace) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job()) s.add(static_cast<double>(j.gpus));
  return s;
}

common::SampleStats demand_weighted_by_gpu_time(const Trace& trace) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job()) s.add_weighted(static_cast<double>(j.gpus), j.gpu_time());
  return s;
}

common::SampleStats demand_of(const Trace& trace, WorkloadType type) {
  common::SampleStats s;
  for (const auto& j : trace)
    if (j.is_gpu_job() && j.type == type) s.add(static_cast<double>(j.gpus));
  return s;
}

double average_gpu_demand(const Trace& trace) {
  double gpus = 0, jobs = 0;
  for (const auto& j : trace) {
    if (!j.is_gpu_job()) continue;
    gpus += j.gpus;
    jobs += 1;
  }
  return jobs > 0 ? gpus / jobs : 0;
}

double total_gpu_time(const Trace& trace) {
  double t = 0;
  for (const auto& j : trace)
    if (j.is_gpu_job()) t += j.gpu_time();
  return t;
}

}  // namespace acme::trace
