// Trace import/export in a CSV schema compatible with the spirit of the
// released AcmeTrace (job id, type, status, resources, timings).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/job.h"

namespace acme::trace {

void write_csv(std::ostream& out, const Trace& trace);
Trace read_csv(std::istream& in);

void write_csv_file(const std::string& path, const Trace& trace);
Trace read_csv_file(const std::string& path);

}  // namespace acme::trace
