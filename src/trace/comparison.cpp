#include "trace/comparison.h"

#include "common/units.h"

namespace acme::trace {

using common::DiscreteDist;
using common::LognormalFromStats;
using common::kHour;
using common::kMinute;

double DatacenterProfile::sample_util(common::Rng& rng) const {
  const std::size_t i = rng.categorical(util_weights);
  // Jitter within +-5 points so the CDF is smooth rather than a staircase.
  const double u = util_support[i] + rng.uniform(-5.0, 5.0);
  return u < 0 ? 0 : (u > 100 ? 100 : u);
}

DatacenterProfile philly_profile() {
  DatacenterProfile p;
  p.name = "Philly";
  p.year = 2017;
  p.duration = "3 months";
  p.jobs = "113K";
  p.avg_gpus = 1.9;
  p.gpu_model = "12GB/24GB";
  p.total_gpus = 2490;
  // Median ~14 min; average job duration 12.8x Acme's (paper §3.1). With the
  // Acme average around 28 min, Philly's sits near 6 h.
  p.job_duration = LognormalFromStats(14 * kMinute, 6 * kHour);
  // Broad utilization spread with median ~48% (Fig 2b).
  p.util_support = {0, 10, 25, 40, 48, 60, 75, 90, 100};
  p.util_weights = {8, 10, 12, 15, 15, 14, 12, 8, 6};
  p.gpu_demand = DiscreteDist({1, 2, 4, 8, 16}, {0.70, 0.12, 0.10, 0.05, 0.03});
  return p;
}

DatacenterProfile helios_profile() {
  DatacenterProfile p;
  p.name = "Helios";
  p.year = 2020;
  p.duration = "6 months";
  p.jobs = "3.36M";
  p.avg_gpus = 3.7;
  p.gpu_model = "1080Ti/V100";
  p.total_gpus = 6416;
  // Philly avg is 2.7-3.8x Helios avg -> Helios avg ~1.9h; median ~6 min.
  p.job_duration = LognormalFromStats(6 * kMinute, 1.9 * kHour);
  // Helios utilization data is unavailable in the paper; keep a broad prior.
  p.util_support = {0, 20, 40, 60, 80, 100};
  p.util_weights = {10, 15, 20, 25, 20, 10};
  p.gpu_demand = DiscreteDist({1, 2, 4, 8, 16, 32}, {0.60, 0.15, 0.12, 0.08, 0.03, 0.02});
  return p;
}

DatacenterProfile pai_profile() {
  DatacenterProfile p;
  p.name = "PAI";
  p.year = 2020;
  p.duration = "2 months";
  p.jobs = "1.26M";
  p.avg_gpus = 0.7;  // fractional GPU requests supported
  p.gpu_model = "T4/P100/V100";
  p.total_gpus = 6742;
  // Philly avg 2.7-3.8x PAI avg -> PAI avg ~1.7h; median ~7 min (1.7-7.2x
  // band around Acme's 2 min median).
  p.job_duration = LognormalFromStats(7 * kMinute, 1.7 * kHour);
  // Median GPU utilization 4%, heavily bottom-weighted (Fig 2b); serving and
  // fractional-GPU jobs idle most SMs.
  p.util_support = {0, 2, 4, 8, 15, 30, 50, 75, 100};
  p.util_weights = {25, 15, 12, 12, 10, 10, 8, 5, 3};
  // Single-GPU (or fractional) jobs dominate; 68% of GPU time is single-GPU.
  p.gpu_demand = DiscreteDist({1, 2, 4, 8}, {0.88, 0.06, 0.04, 0.02});
  return p;
}

}  // namespace acme::trace
