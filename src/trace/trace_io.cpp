#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/csv.h"

namespace acme::trace {
namespace {

WorkloadType type_from_string(const std::string& s) {
  for (WorkloadType t : kAllWorkloadTypes)
    if (s == to_string(t)) return t;
  throw std::invalid_argument("unknown workload type: " + s);
}

JobStatus status_from_string(const std::string& s) {
  if (s == "Completed") return JobStatus::kCompleted;
  if (s == "Failed") return JobStatus::kFailed;
  if (s == "Canceled") return JobStatus::kCanceled;
  throw std::invalid_argument("unknown job status: " + s);
}

}  // namespace

void write_csv(std::ostream& out, const Trace& trace) {
  common::CsvWriter writer(out);
  writer.write_row({"id", "type", "status", "gpus", "cpus", "submit_time",
                    "duration", "queue_delay", "model_tag"});
  for (const auto& j : trace) {
    writer.write_row({std::to_string(j.id), to_string(j.type), to_string(j.status),
                      std::to_string(j.gpus), std::to_string(j.cpus),
                      std::to_string(j.submit_time), std::to_string(j.duration),
                      std::to_string(j.queue_delay), j.model_tag()});
  }
}

Trace read_csv(std::istream& in) {
  common::CsvReader reader(in);
  std::vector<std::string> row;
  ACME_CHECK_MSG(reader.read_row(row) && row.size() == 9, "missing trace header");
  Trace trace;
  while (reader.read_row(row)) {
    if (row.size() != 9) throw std::invalid_argument("bad trace row width");
    JobRecord j;
    j.id = std::stoull(row[0]);
    j.type = type_from_string(row[1]);
    j.status = status_from_string(row[2]);
    j.gpus = std::stoi(row[3]);
    j.cpus = std::stoi(row[4]);
    j.submit_time = std::stod(row[5]);
    j.duration = std::stod(row[6]);
    j.queue_delay = std::stod(row[7]);
    j.set_model_tag(row[8]);
    trace.push_back(std::move(j));
  }
  return trace;
}

void write_csv_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  ACME_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_csv(out, trace);
}

Trace read_csv_file(const std::string& path) {
  std::ifstream in(path);
  ACME_CHECK_MSG(in.good(), "cannot open for read: " + path);
  return read_csv(in);
}

}  // namespace acme::trace
