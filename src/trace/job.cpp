#include "trace/job.h"

#include <deque>
#include <mutex>

#include "common/check.h"

namespace acme::trace {

namespace {

// Append-only symbol table. std::deque keeps name references stable across
// growth, so model_tag_name() can hand out references for the process
// lifetime. The table stays tiny (a handful of tags), so lookup is a linear
// scan under the lock; hot paths switch on the pre-interned constant ids and
// never enter here.
struct TagTable {
  std::mutex mu;
  std::deque<std::string> names{"", "llm-7b", "llm-104b", "llm-123b"};
};

TagTable& table() {
  static TagTable t;
  return t;
}

}  // namespace

std::uint32_t intern_model_tag(std::string_view tag) {
  auto& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  for (std::size_t i = 0; i < t.names.size(); ++i)
    if (t.names[i] == tag) return static_cast<std::uint32_t>(i);
  t.names.emplace_back(tag);
  return static_cast<std::uint32_t>(t.names.size() - 1);
}

const std::string& model_tag_name(std::uint32_t id) {
  auto& t = table();
  const std::lock_guard<std::mutex> lock(t.mu);
  ACME_CHECK_MSG(id < t.names.size(), "unknown model-tag id");
  return t.names[id];
}

}  // namespace acme::trace
