// Job record model mirroring the Acme scheduler-log schema (paper §2.3):
// execution times (submission/start/end), final status, requested resources
// and workload type (derived in the paper from production division and job
// metadata, §3.2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace acme::trace {

// Model tags ("llm-7b", "llm-104b", ...) are interned into a global symbol
// table: JobRecord carries a u32 id instead of a std::string, so traces copy
// and compare tags as integers and the replay hot path never touches string
// storage. The common tags are pre-interned with fixed ids (safe to switch
// on); ad-hoc tags from CSV imports get fresh ids on first sight. The table
// is append-only and mutex-guarded (trace synthesis runs in MC worker
// threads); returned name references stay valid for the process lifetime.
inline constexpr std::uint32_t kModelTagNone = 0;  // ""
inline constexpr std::uint32_t kModelTag7B = 1;    // "llm-7b"
inline constexpr std::uint32_t kModelTag104B = 2;  // "llm-104b"
inline constexpr std::uint32_t kModelTag123B = 3;  // "llm-123b"

std::uint32_t intern_model_tag(std::string_view tag);
const std::string& model_tag_name(std::uint32_t id);

enum class WorkloadType {
  kPretrain,
  kSFT,        // supervised fine-tuning (alignment)
  kMLLM,       // multimodal LLM development (Seren only)
  kEvaluation,
  kDebug,
  kOther,
};

enum class JobStatus { kCompleted, kFailed, kCanceled };

const char* to_string(WorkloadType type);
const char* to_string(JobStatus status);

constexpr int kWorkloadTypeCount = 6;
constexpr WorkloadType kAllWorkloadTypes[kWorkloadTypeCount] = {
    WorkloadType::kPretrain, WorkloadType::kSFT,   WorkloadType::kMLLM,
    WorkloadType::kEvaluation, WorkloadType::kDebug, WorkloadType::kOther,
};

struct JobRecord {
  std::uint64_t id = 0;
  WorkloadType type = WorkloadType::kOther;
  JobStatus status = JobStatus::kCompleted;
  int gpus = 0;            // 0 => CPU-only job
  int cpus = 0;
  double submit_time = 0;  // seconds since trace start
  double duration = 0;     // runtime, excluding queuing delay
  double queue_delay = 0;  // filled by scheduler replay
  // Interned tag id, e.g. kModelTag123B for a "llm-123b" pretraining job.
  std::uint32_t model_tag_id = kModelTagNone;

  const std::string& model_tag() const { return model_tag_name(model_tag_id); }
  void set_model_tag(std::string_view tag) { model_tag_id = intern_model_tag(tag); }

  bool is_gpu_job() const { return gpus > 0; }
  double gpu_time() const { return static_cast<double>(gpus) * duration; }
  double start_time() const { return submit_time + queue_delay; }
  double end_time() const { return start_time() + duration; }
};

using Trace = std::vector<JobRecord>;

}  // namespace acme::trace
