// Job record model mirroring the Acme scheduler-log schema (paper §2.3):
// execution times (submission/start/end), final status, requested resources
// and workload type (derived in the paper from production division and job
// metadata, §3.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace acme::trace {

enum class WorkloadType {
  kPretrain,
  kSFT,        // supervised fine-tuning (alignment)
  kMLLM,       // multimodal LLM development (Seren only)
  kEvaluation,
  kDebug,
  kOther,
};

enum class JobStatus { kCompleted, kFailed, kCanceled };

const char* to_string(WorkloadType type);
const char* to_string(JobStatus status);

constexpr int kWorkloadTypeCount = 6;
constexpr WorkloadType kAllWorkloadTypes[kWorkloadTypeCount] = {
    WorkloadType::kPretrain, WorkloadType::kSFT,   WorkloadType::kMLLM,
    WorkloadType::kEvaluation, WorkloadType::kDebug, WorkloadType::kOther,
};

struct JobRecord {
  std::uint64_t id = 0;
  WorkloadType type = WorkloadType::kOther;
  JobStatus status = JobStatus::kCompleted;
  int gpus = 0;            // 0 => CPU-only job
  int cpus = 0;
  double submit_time = 0;  // seconds since trace start
  double duration = 0;     // runtime, excluding queuing delay
  double queue_delay = 0;  // filled by scheduler replay
  std::string model_tag;   // e.g. "llm-123b" for pretraining jobs

  bool is_gpu_job() const { return gpus > 0; }
  double gpu_time() const { return static_cast<double>(gpus) * duration; }
  double start_time() const { return submit_time + queue_delay; }
  double end_time() const { return start_time() + duration; }
};

using Trace = std::vector<JobRecord>;

}  // namespace acme::trace
