// Trace analysis queries shared by the characterization benches and the
// calibration tests (Fig 2-6, Fig 17 all reduce to these).
#pragma once

#include <map>

#include "common/stats.h"
#include "trace/job.h"

namespace acme::trace {

struct Share {
  double count_fraction = 0;
  double gpu_time_fraction = 0;
};

// Per-workload-type job-count and GPU-time shares (GPU jobs only). Fig 4.
std::map<WorkloadType, Share> type_shares(const Trace& trace);

// Per-final-status shares (GPU jobs only). Fig 17.
std::map<JobStatus, Share> status_shares(const Trace& trace);

// Duration samples of GPU jobs, optionally restricted to one type. Fig 2a/6.
common::SampleStats durations(const Trace& trace);
common::SampleStats durations_of(const Trace& trace, WorkloadType type);
common::SampleStats queue_delays_of(const Trace& trace, WorkloadType type);

// GPU-demand samples: per job (Fig 3a) and weighted by GPU time (Fig 3b).
common::SampleStats demand_per_job(const Trace& trace);
common::SampleStats demand_weighted_by_gpu_time(const Trace& trace);
common::SampleStats demand_of(const Trace& trace, WorkloadType type);

// Average requested GPUs over GPU jobs (Table 2 "Avg. #GPUs").
double average_gpu_demand(const Trace& trace);

// Total GPU time (gpu-seconds) over all GPU jobs.
double total_gpu_time(const Trace& trace);

}  // namespace acme::trace
