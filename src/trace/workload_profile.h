// Statistical workload profiles for the two Acme clusters.
//
// Every constant here is calibrated against a number printed in the paper
// (see DESIGN.md §4 "Calibration targets"): workload-type mixes (Fig 4), GPU
// demand per type (Fig 5), duration distributions (Fig 2a/6), final-status
// mixes (Fig 17). The synthesizer consumes these profiles to regenerate a
// six-month trace with the same distributional shape as AcmeTrace.
#pragma once

#include <string>
#include <vector>

#include "common/dist.h"
#include "trace/job.h"

namespace acme::trace {

// Per-workload-type generation parameters.
struct TypeProfile {
  WorkloadType type = WorkloadType::kOther;
  double job_fraction = 0;  // fraction of the cluster's GPU jobs
  common::DiscreteDist gpu_demand;
  // Base runtime distribution (applies to completed jobs).
  common::LognormalFromStats duration;
  // Final status probabilities (completed, failed, canceled).
  double p_completed = 1, p_failed = 0, p_canceled = 0;
  // Duration scale per status: failures terminate early; canceled pretraining
  // jobs are the long-runners (Fig 17b: canceled jobs hold >60% of GPU time).
  double completed_scale = 1.0, failed_scale = 0.3, canceled_scale = 1.0;
};

struct ClusterWorkloadProfile {
  std::string cluster_name;
  double trace_days = 183;      // March..August 2023
  std::size_t gpu_jobs = 0;     // 664K (Seren) / 20K (Kalos)
  std::size_t cpu_jobs = 0;     // 368K (Seren) / 42K (Kalos)
  // Concurrent pretraining campaign slots (GPUs each). Pretraining jobs are
  // not independent arrivals: a handful of long-running campaigns occupy
  // reserved quota and resubmit after every failure/cancel (paper Fig 14,
  // §5.3), which is why their queuing delay stays near zero while they
  // dominate GPU time. Empty => pretraining arrives via the Poisson path.
  std::vector<int> pretrain_campaign_slots;
  std::vector<TypeProfile> types;

  const TypeProfile& type_profile(WorkloadType t) const;
};

// Full-scale profiles matching the paper's job counts.
ClusterWorkloadProfile seren_profile();
ClusterWorkloadProfile kalos_profile();

// Same distributions with the job count scaled down by `factor` (>1), for
// fast unit tests.
ClusterWorkloadProfile scaled(ClusterWorkloadProfile profile, double factor);

// Same distributions with the job volume multiplied by `multiplier` (>= 1)
// inside the same trace window, for hyperscale fleets: a fleet 10x the size
// hosts ~10x the jobs. Campaign slots are tiled so reserved pretraining
// pressure grows with the fleet too.
ClusterWorkloadProfile amplified(ClusterWorkloadProfile profile,
                                 double multiplier);

}  // namespace acme::trace
