#include "evalsched/datasets.h"

#include <cstdio>

namespace acme::evalsched {
namespace {

std::vector<Dataset> build_suite() {
  std::vector<Dataset> suite;
  // Coding sets: long CPU-side correctness testing (paper Fig 13 / §6.2-2).
  suite.push_back({"humaneval", 45, 115, 42, false});
  suite.push_back({"mbpp", 50, 180, 900, true});
  suite.push_back({"ds1000", 40, 160, 600, true});
  // Judge-scored conversation sets: the GPT-4 API round trips "can take up
  // to 30 minutes" while the GPU would sit idle.
  suite.push_back({"chatbot-arena", 35, 240, 1200, true});
  suite.push_back({"mt-bench", 30, 200, 1000, true});
  // Long-context / generation-heavy sets.
  suite.push_back({"longbench", 60, 900, 60, true});
  suite.push_back({"summeval", 45, 700, 90, true});
  suite.push_back({"translation-flores", 40, 620, 45, true});
  // A spread of knowledge / reasoning / safety sets with quick metrics.
  const struct {
    const char* name;
    double preproc, infer, metric;
  } kSmall[] = {
      {"mmlu", 55, 300, 20},       {"cmmlu", 50, 280, 20},
      {"ceval", 45, 260, 18},      {"agieval", 40, 240, 15},
      {"bbh", 50, 330, 25},        {"gsm8k", 35, 290, 30},
      {"math", 40, 340, 35},       {"arc-easy", 20, 90, 8},
      {"arc-challenge", 20, 110, 8}, {"hellaswag", 30, 170, 10},
      {"piqa", 18, 80, 6},         {"siqa", 18, 85, 6},
      {"winogrande", 16, 75, 6},   {"boolq", 20, 95, 7},
      {"openbookqa", 15, 70, 6},   {"commonsenseqa", 18, 85, 7},
      {"race-middle", 25, 130, 9}, {"race-high", 28, 150, 9},
      {"triviaqa", 35, 210, 12},   {"naturalqs", 35, 200, 12},
      {"squad", 30, 160, 10},      {"drop", 32, 180, 14},
      {"quac", 28, 140, 10},       {"xsum", 35, 260, 18},
      {"cnn-dailymail", 40, 300, 20}, {"wikitext-ppl", 25, 120, 5},
      {"lambada", 20, 95, 5},      {"storycloze", 16, 70, 5},
      {"copa", 12, 45, 4},         {"wic", 14, 55, 4},
      {"wsc", 12, 50, 4},          {"rte", 14, 60, 4},
      {"cb", 10, 40, 4},           {"multirc", 22, 110, 8},
      {"record", 26, 140, 9},      {"anli", 20, 100, 8},
      {"mnli", 24, 120, 8},        {"qnli", 20, 100, 7},
      {"sst2", 12, 45, 4},         {"cola", 12, 45, 4},
      {"toxigen", 25, 130, 15},    {"realtoxicity", 30, 170, 20},
      {"truthfulqa", 22, 110, 12}, {"crows-pairs", 16, 70, 8},
      {"bold", 20, 100, 10},       {"advglue", 22, 110, 10},
      {"flores-xx", 30, 190, 14},  {"tydiqa", 28, 150, 11},
      {"xnli", 24, 130, 9},        {"paws-x", 20, 100, 8},
      {"ocnli", 18, 90, 7},        {"chid", 20, 105, 8},
      {"cluewsc", 14, 60, 5},      {"afqmc", 14, 60, 5},
      {"eprstmt", 12, 50, 4},
  };
  for (const auto& d : kSmall) suite.push_back({d.name, d.preproc, d.infer, d.metric, true});
  return suite;  // 8 + 55 = 63 datasets
}

}  // namespace

const std::vector<Dataset>& dataset_suite() {
  static const std::vector<Dataset> suite = build_suite();
  return suite;
}

double total_inference_seconds() {
  double t = 0;
  for (const auto& d : dataset_suite()) t += d.inference_seconds;
  return t;
}

double total_metric_seconds() {
  double t = 0;
  for (const auto& d : dataset_suite()) t += d.metric_cpu_seconds;
  return t;
}

}  // namespace acme::evalsched
