// Evaluation trial coordinator (paper §6.2, Fig 16-right).
//
// Baseline: every dataset is its own trial; a trial holds a GPU through
// startup, remote model loading (contending for the storage NIC with every
// other concurrent trial — Fig 16-left), tokenization, inference, and the
// CPU-bound metric computation (GPU idle).
//
// Coordinator: (1) decoupled model loading — one precursor job per node pulls
// the model into host shared memory, trials then read it over PCIe;
// (2) decoupled metric computation — inference output is dumped to files and
// scored by CPU jobs, releasing the GPU immediately; (3) prior-based elastic
// scheduling — datasets are bundled into trials using known runtimes (LPT
// order, long-metric sets first) to balance GPUs and amortize startup.
//
// The sweep runs on an injected sim::Engine + StorageNetwork (launch()), so
// evaluation events can interleave with the rest of an integrated world run;
// run() keeps the legacy single-silo behaviour on a private engine.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "evalsched/datasets.h"
#include "sim/engine.h"
#include "storage/network.h"

namespace acme::evalsched {

struct EvalConfig {
  int nodes = 1;
  int gpus_per_node = 8;
  double model_bytes = 2.0 * 7.3e9;  // fp16 7B checkpoint
  storage::StorageNetworkConfig storage = storage::seren_storage_config();
  double pcie_bytes_per_sec = 20e9;  // shm -> GPU
  double trial_startup_seconds = 20; // container + framework bring-up
  // Coordinator knobs:
  bool decouple_loading = false;
  bool decouple_metric = false;
  bool elastic_packing = false;
  // Tokenized-data cache (paper §4.2: "one effective strategy is to cache
  // the tokenized data"); regular checkpoint evaluations reuse it.
  bool cache_tokenized = false;
  double cached_preprocess_seconds = 8;
  // CPU slots available for decoupled metric jobs (0 = unlimited). Acme nodes
  // have 128 CPUs; metric scoring is single-threaded, so the pool is wide but
  // finite.
  int metric_cpu_slots = 0;
  double bundle_target_seconds = 900;  // target GPU time per bundled trial
};

struct StageSpan {
  std::string stage;  // "startup", "load", "preprocess", "inference", "metric"
  double start = 0;
  double duration = 0;
};

struct EvalReport {
  double makespan = 0;
  double gpu_busy_seconds = 0;      // GPU actually inferring
  double gpu_held_seconds = 0;      // GPU allocated to trials
  double gpu_idle_fraction() const {
    return gpu_held_seconds > 0 ? 1.0 - gpu_busy_seconds / gpu_held_seconds : 0;
  }
  int trials = 0;
  // Stage timeline of the humaneval dataset's trial (Fig 13). Times are
  // engine-absolute; on a fresh engine they start at zero.
  std::vector<StageSpan> humaneval_timeline;
};

class TrialCoordinator {
 public:
  explicit TrialCoordinator(EvalConfig config);

  // Runs the evaluation sweep over the standard 63-dataset suite (or a
  // custom list) on a private engine and reports the makespan.
  EvalReport run(const std::vector<Dataset>& suite = dataset_suite());

  // Spine-injected sweep: schedules every trial on the caller's engine
  // (starting at engine.now()) and its storage network, then returns without
  // pumping the engine. `on_done` fires as an engine event when the last
  // trial (and its decoupled metric jobs) drained; the report's makespan is
  // relative to the launch time. Other subsystems' events interleave freely
  // — model-loading flows contend with whatever else uses `net`.
  void launch(sim::Engine& engine, storage::StorageNetwork& net,
              const std::vector<Dataset>& suite,
              std::function<void(const EvalReport&)> on_done);

  static EvalConfig baseline_config(int nodes);
  static EvalConfig coordinator_config(int nodes);

 private:
  struct Trial {
    std::vector<Dataset> datasets;  // owned copies (splitting creates shards)
    double gpu_estimate = 0;     // prior runtime used for packing
    double metric_estimate = 0;
  };
  struct Sweep;  // heap-held state shared by the sweep's engine events
  std::vector<Trial> plan(const std::vector<Dataset>& suite) const;

  EvalConfig config_;
};

}  // namespace acme::evalsched
