#include "evalsched/coordinator.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::evalsched {

TrialCoordinator::TrialCoordinator(EvalConfig config) : config_(config) {
  ACME_CHECK(config_.nodes > 0 && config_.gpus_per_node > 0);
}

EvalConfig TrialCoordinator::baseline_config(int nodes) {
  EvalConfig c;
  c.nodes = nodes;
  return c;
}

EvalConfig TrialCoordinator::coordinator_config(int nodes) {
  EvalConfig c;
  c.nodes = nodes;
  c.decouple_loading = true;
  c.decouple_metric = true;
  c.elastic_packing = true;
  c.cache_tokenized = true;
  return c;
}

std::vector<TrialCoordinator::Trial> TrialCoordinator::plan(
    const std::vector<Dataset>& suite) const {
  std::vector<Trial> trials;
  if (!config_.elastic_packing) {
    // Baseline: one dataset per trial, submission order.
    for (const auto& d : suite) {
      Trial t;
      t.datasets.push_back(d);
      t.gpu_estimate = d.preprocess_seconds + d.inference_seconds;
      t.metric_estimate = d.metric_cpu_seconds;
      trials.push_back(std::move(t));
    }
    return trials;
  }

  // Elastic decomposition: datasets with long metric computation are split
  // into shards so no single CPU tail dominates the makespan (paper: "We can
  // also break down large datasets and decouple metric computation").
  constexpr double kMetricShardTarget = 300.0;
  constexpr double kInferShardTarget = 700.0;
  std::vector<Dataset> shards;
  shards.reserve(suite.size() * 3);
  for (const auto& d : suite) {
    if (d.splittable && (d.metric_cpu_seconds > kMetricShardTarget ||
                         d.inference_seconds > kInferShardTarget)) {
      const int k = std::max(
          static_cast<int>(d.metric_cpu_seconds / kMetricShardTarget),
          static_cast<int>(d.inference_seconds / kInferShardTarget)) + 1;
      for (int i = 0; i < k; ++i) {
        Dataset shard = d;
        shard.name = d.name + "#" + std::to_string(i);
        shard.preprocess_seconds /= k;
        shard.inference_seconds /= k;
        shard.metric_cpu_seconds /= k;
        shards.push_back(shard);
      }
    } else {
      shards.push_back(d);
    }
  }

  // Prior-based elastic packing: longest-processing-time order, with
  // metric-heavy datasets first so their CPU tails overlap remaining GPU
  // work; small sets are bundled into one trial to amortize startup/loading.
  std::vector<const Dataset*> order;
  for (const auto& d : shards) order.push_back(&d);
  std::sort(order.begin(), order.end(), [](const Dataset* a, const Dataset* b) {
    // Metric-heavy first; then longer GPU work first; name breaks ties.
    const double am = a->metric_cpu_seconds, bm = b->metric_cpu_seconds;
    const bool a_heavy = am > 300, b_heavy = bm > 300;
    if (a_heavy != b_heavy) return a_heavy;
    const double ag = a->preprocess_seconds + a->inference_seconds;
    const double bg = b->preprocess_seconds + b->inference_seconds;
    if (ag != bg) return ag > bg;
    return a->name < b->name;
  });

  // Bundle size adapts to the GPU pool: with ample GPUs, smaller bundles
  // spread the work; with one node, larger bundles amortize startup.
  double total_gpu_time = 0;
  for (const Dataset* d : order)
    total_gpu_time += d->preprocess_seconds + d->inference_seconds;
  const double bundle_target = std::clamp(
      total_gpu_time / (config_.nodes * config_.gpus_per_node), 240.0,
      config_.bundle_target_seconds);

  Trial current;
  for (const Dataset* d : order) {
    const double gpu_time = d->preprocess_seconds + d->inference_seconds;
    if (!current.datasets.empty() &&
        current.gpu_estimate + gpu_time > bundle_target) {
      trials.push_back(std::move(current));
      current = Trial{};
    }
    current.datasets.push_back(*d);
    current.gpu_estimate += gpu_time;
    current.metric_estimate += d->metric_cpu_seconds;
  }
  if (!current.datasets.empty()) trials.push_back(std::move(current));
  return trials;
}

EvalReport TrialCoordinator::run(const std::vector<Dataset>& suite) {
  ACME_OBS_SPAN_ARG("evalsched", "run", "datasets", std::to_string(suite.size()));
  EvalReport report;
  sim::Engine engine;
  storage::StorageNetwork net(engine, config_.storage);

  const int total_gpus = config_.nodes * config_.gpus_per_node;
  auto trials = plan(suite);
  report.trials = static_cast<int>(trials.size());

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < trials.size(); ++i) queue.push_back(i);

  std::vector<bool> gpu_busy(static_cast<std::size_t>(total_gpus), false);
  std::vector<bool> node_model_ready(static_cast<std::size_t>(config_.nodes),
                                     !config_.decouple_loading);
  double last_completion = 0;

  // Finite CPU pool for decoupled metric jobs: a multiset of busy-until
  // times, one per slot; a metric task takes the earliest-free slot (FIFO).
  std::multiset<double> cpu_slots;
  for (int i = 0; i < config_.metric_cpu_slots; ++i) cpu_slots.insert(0.0);
  auto run_metric_on_cpu = [&](double ready, double duration) {
    if (cpu_slots.empty()) return ready + duration;  // unlimited pool
    auto slot = cpu_slots.begin();
    const double start = std::max(ready, *slot);
    cpu_slots.erase(slot);
    cpu_slots.insert(start + duration);
    return start + duration;
  };

  // Stage bookkeeping for the humaneval trial (Fig 13).
  auto note_stage = [&](const Trial& trial, const std::string& stage, double start,
                        double dur) {
    for (const auto& d : trial.datasets)
      if (d.name == "humaneval")
        report.humaneval_timeline.push_back({stage, start, dur});
  };

  // Trial execution as a chain of engine events per GPU.
  std::function<void()> dispatch;  // forward declaration for recursion

  auto run_trial = [&](std::size_t trial_idx, int gpu) {
    const Trial& trial = trials[trial_idx];
    const int node = gpu / config_.gpus_per_node;
    const double t0 = engine.now();
    if (obs::enabled()) {
      // Async span keyed by trial index: lifecycle from dispatch to GPU free.
      obs::tracer().async_begin("evalsched", "trial", trial_idx,
                                {{"datasets",
                                  std::to_string(trial.datasets.size())},
                                 {"gpu", std::to_string(gpu)}});
      static obs::Counter& started = obs::metrics().counter(
          "acme_evalsched_trials_total", "Evaluation trials dispatched to GPUs");
      started.inc();
    }
    note_stage(trial, "startup", t0, config_.trial_startup_seconds);

    auto after_load = [&, trial_idx, gpu, t0](double load_done) {
      const Trial& tr = trials[trial_idx];
      note_stage(tr, "load", t0 + config_.trial_startup_seconds,
                 load_done - t0 - config_.trial_startup_seconds);
      double t = load_done;
      double infer_total = 0;
      double metric_on_gpu = 0;
      for (const auto& d : tr.datasets) {
        const double preproc =
            config_.cache_tokenized
                ? std::min(d.preprocess_seconds, config_.cached_preprocess_seconds)
                : d.preprocess_seconds;
        note_stage(tr, "preprocess", t, preproc);
        t += preproc;
        note_stage(tr, "inference", t, d.inference_seconds);
        t += d.inference_seconds;
        infer_total += d.inference_seconds;
        if (config_.decouple_metric) {
          // Output dumped to files; a CPU job scores it off the GPU.
          const double metric_done = run_metric_on_cpu(t, d.metric_cpu_seconds);
          last_completion = std::max(last_completion, metric_done);
        } else {
          note_stage(tr, "metric", t, d.metric_cpu_seconds);
          t += d.metric_cpu_seconds;
          metric_on_gpu += d.metric_cpu_seconds;
        }
      }
      report.gpu_busy_seconds += infer_total;
      report.gpu_held_seconds += t - t0;
      last_completion = std::max(last_completion, t);
      engine.schedule_at(t, [&, trial_idx, gpu, t0, t] {
        if (obs::enabled()) {
          obs::tracer().async_end("evalsched", "trial", trial_idx);
          static obs::Histogram& held = obs::metrics().histogram(
              "acme_evalsched_trial_gpu_seconds",
              "Simulated GPU hold time per evaluation trial",
              obs::Histogram::exponential_buckets(60.0, 2.0, 10));
          held.observe(t - t0);
        }
        gpu_busy[static_cast<std::size_t>(gpu)] = false;
        dispatch();
      });
    };

    const double start_after_startup = t0 + config_.trial_startup_seconds;
    if (config_.decouple_loading) {
      // Model already staged in node shared memory; read over PCIe.
      const double load = config_.model_bytes / config_.pcie_bytes_per_sec;
      engine.schedule_at(start_after_startup + load,
                         [after_load, start_after_startup, load] {
                           after_load(start_after_startup + load);
                         });
    } else {
      // Contended pull from remote storage.
      engine.schedule_at(start_after_startup, [&, node, after_load] {
        net.start_flow(node, config_.model_bytes,
                       [&, after_load] { after_load(engine.now()); });
      });
    }
  };

  dispatch = [&] {
    for (int g = 0; g < total_gpus && !queue.empty(); ++g) {
      if (gpu_busy[static_cast<std::size_t>(g)]) continue;
      const int node = g / config_.gpus_per_node;
      if (!node_model_ready[static_cast<std::size_t>(node)]) continue;
      const std::size_t trial_idx = queue.front();
      queue.pop_front();
      gpu_busy[static_cast<std::size_t>(g)] = true;
      run_trial(trial_idx, g);
    }
  };

  if (config_.decouple_loading) {
    // Precursor jobs: one model pull per node into /dev/shm.
    for (int n = 0; n < config_.nodes; ++n) {
      net.start_flow(n, config_.model_bytes, [&, n] {
        node_model_ready[static_cast<std::size_t>(n)] = true;
        dispatch();
      });
    }
  } else {
    engine.schedule_at(0.0, [&] { dispatch(); });
  }

  engine.run();
  report.makespan = std::max(last_completion, engine.now());
  std::sort(report.humaneval_timeline.begin(), report.humaneval_timeline.end(),
            [](const StageSpan& a, const StageSpan& b) { return a.start < b.start; });
  return report;
}

}  // namespace acme::evalsched
