#include "evalsched/coordinator.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::evalsched {

TrialCoordinator::TrialCoordinator(EvalConfig config) : config_(config) {
  ACME_CHECK(config_.nodes > 0 && config_.gpus_per_node > 0);
}

EvalConfig TrialCoordinator::baseline_config(int nodes) {
  EvalConfig c;
  c.nodes = nodes;
  return c;
}

EvalConfig TrialCoordinator::coordinator_config(int nodes) {
  EvalConfig c;
  c.nodes = nodes;
  c.decouple_loading = true;
  c.decouple_metric = true;
  c.elastic_packing = true;
  c.cache_tokenized = true;
  return c;
}

std::vector<TrialCoordinator::Trial> TrialCoordinator::plan(
    const std::vector<Dataset>& suite) const {
  std::vector<Trial> trials;
  if (!config_.elastic_packing) {
    // Baseline: one dataset per trial, submission order.
    for (const auto& d : suite) {
      Trial t;
      t.datasets.push_back(d);
      t.gpu_estimate = d.preprocess_seconds + d.inference_seconds;
      t.metric_estimate = d.metric_cpu_seconds;
      trials.push_back(std::move(t));
    }
    return trials;
  }

  // Elastic decomposition: datasets with long metric computation are split
  // into shards so no single CPU tail dominates the makespan (paper: "We can
  // also break down large datasets and decouple metric computation").
  constexpr double kMetricShardTarget = 300.0;
  constexpr double kInferShardTarget = 700.0;
  std::vector<Dataset> shards;
  shards.reserve(suite.size() * 3);
  for (const auto& d : suite) {
    if (d.splittable && (d.metric_cpu_seconds > kMetricShardTarget ||
                         d.inference_seconds > kInferShardTarget)) {
      const int k = std::max(
          static_cast<int>(d.metric_cpu_seconds / kMetricShardTarget),
          static_cast<int>(d.inference_seconds / kInferShardTarget)) + 1;
      for (int i = 0; i < k; ++i) {
        Dataset shard = d;
        shard.name = d.name + "#" + std::to_string(i);
        shard.preprocess_seconds /= k;
        shard.inference_seconds /= k;
        shard.metric_cpu_seconds /= k;
        shards.push_back(shard);
      }
    } else {
      shards.push_back(d);
    }
  }

  // Prior-based elastic packing: longest-processing-time order, with
  // metric-heavy datasets first so their CPU tails overlap remaining GPU
  // work; small sets are bundled into one trial to amortize startup/loading.
  std::vector<const Dataset*> order;
  for (const auto& d : shards) order.push_back(&d);
  std::sort(order.begin(), order.end(), [](const Dataset* a, const Dataset* b) {
    // Metric-heavy first; then longer GPU work first; name breaks ties.
    const double am = a->metric_cpu_seconds, bm = b->metric_cpu_seconds;
    const bool a_heavy = am > 300, b_heavy = bm > 300;
    if (a_heavy != b_heavy) return a_heavy;
    const double ag = a->preprocess_seconds + a->inference_seconds;
    const double bg = b->preprocess_seconds + b->inference_seconds;
    if (ag != bg) return ag > bg;
    return a->name < b->name;
  });

  // Bundle size adapts to the GPU pool: with ample GPUs, smaller bundles
  // spread the work; with one node, larger bundles amortize startup.
  double total_gpu_time = 0;
  for (const Dataset* d : order)
    total_gpu_time += d->preprocess_seconds + d->inference_seconds;
  const double bundle_target = std::clamp(
      total_gpu_time / (config_.nodes * config_.gpus_per_node), 240.0,
      config_.bundle_target_seconds);

  Trial current;
  for (const Dataset* d : order) {
    const double gpu_time = d->preprocess_seconds + d->inference_seconds;
    if (!current.datasets.empty() &&
        current.gpu_estimate + gpu_time > bundle_target) {
      trials.push_back(std::move(current));
      current = Trial{};
    }
    current.datasets.push_back(*d);
    current.gpu_estimate += gpu_time;
    current.metric_estimate += d->metric_cpu_seconds;
  }
  if (!current.datasets.empty()) trials.push_back(std::move(current));
  return trials;
}

// All sweep state lives on the heap and is kept alive by the engine events
// that reference it, so launch() can return while trials are still queued on
// a shared spine.
struct TrialCoordinator::Sweep : std::enable_shared_from_this<Sweep> {
  EvalConfig config;
  std::vector<Trial> trials;
  sim::Engine& engine;
  storage::StorageNetwork& net;
  std::function<void(const EvalReport&)> on_done;

  EvalReport report;
  double start = 0;  // engine time at launch; makespan is relative to it
  std::deque<std::size_t> queue;
  std::vector<bool> gpu_busy;
  std::vector<bool> node_model_ready;
  double last_completion = 0;  // engine-absolute
  // Finite CPU pool for decoupled metric jobs: a multiset of busy-until
  // times, one per slot; a metric task takes the earliest-free slot (FIFO).
  std::multiset<double> cpu_slots;
  int active_trials = 0;
  int pending_precursors = 0;
  bool finished = false;

  Sweep(EvalConfig cfg, std::vector<Trial> plan, sim::Engine& eng,
        storage::StorageNetwork& network,
        std::function<void(const EvalReport&)> done)
      : config(cfg),
        trials(std::move(plan)),
        engine(eng),
        net(network),
        on_done(std::move(done)) {}

  int total_gpus() const { return config.nodes * config.gpus_per_node; }

  double run_metric_on_cpu(double ready, double duration) {
    if (cpu_slots.empty()) return ready + duration;  // unlimited pool
    auto slot = cpu_slots.begin();
    const double begin = std::max(ready, *slot);
    cpu_slots.erase(slot);
    cpu_slots.insert(begin + duration);
    return begin + duration;
  }

  // Stage bookkeeping for the humaneval trial (Fig 13).
  void note_stage(const Trial& trial, const std::string& stage, double at,
                  double dur) {
    for (const auto& d : trial.datasets)
      if (d.name == "humaneval")
        report.humaneval_timeline.push_back({stage, at, dur});
  }

  void maybe_finish() {
    if (finished || active_trials > 0 || pending_precursors > 0 ||
        !queue.empty())
      return;
    finished = true;
    report.makespan = std::max(last_completion, engine.now()) - start;
    std::sort(
        report.humaneval_timeline.begin(), report.humaneval_timeline.end(),
        [](const StageSpan& a, const StageSpan& b) { return a.start < b.start; });
    if (on_done) on_done(report);
  }

  void dispatch() {
    for (int g = 0; g < total_gpus() && !queue.empty(); ++g) {
      if (gpu_busy[static_cast<std::size_t>(g)]) continue;
      const int node = g / config.gpus_per_node;
      if (!node_model_ready[static_cast<std::size_t>(node)]) continue;
      const std::size_t trial_idx = queue.front();
      queue.pop_front();
      gpu_busy[static_cast<std::size_t>(g)] = true;
      ++active_trials;
      run_trial(trial_idx, g);
    }
  }

  void after_load(std::size_t trial_idx, int gpu, double t0, double load_done) {
    auto self = shared_from_this();
    const Trial& tr = trials[trial_idx];
    note_stage(tr, "load", t0 + config.trial_startup_seconds,
               load_done - t0 - config.trial_startup_seconds);
    double t = load_done;
    double infer_total = 0;
    for (const auto& d : tr.datasets) {
      const double preproc =
          config.cache_tokenized
              ? std::min(d.preprocess_seconds, config.cached_preprocess_seconds)
              : d.preprocess_seconds;
      note_stage(tr, "preprocess", t, preproc);
      t += preproc;
      note_stage(tr, "inference", t, d.inference_seconds);
      t += d.inference_seconds;
      infer_total += d.inference_seconds;
      if (config.decouple_metric) {
        // Output dumped to files; a CPU job scores it off the GPU.
        const double metric_done = run_metric_on_cpu(t, d.metric_cpu_seconds);
        last_completion = std::max(last_completion, metric_done);
      } else {
        note_stage(tr, "metric", t, d.metric_cpu_seconds);
        t += d.metric_cpu_seconds;
      }
    }
    report.gpu_busy_seconds += infer_total;
    report.gpu_held_seconds += t - t0;
    last_completion = std::max(last_completion, t);
    engine.schedule_at(t, [self, trial_idx, gpu, t0] {
      if (obs::enabled()) {
        obs::tracer().async_end("evalsched", "trial", trial_idx);
        static obs::Histogram& held = obs::metrics().histogram(
            "acme_evalsched_trial_gpu_seconds",
            "Simulated GPU hold time per evaluation trial",
            obs::Histogram::exponential_buckets(60.0, 2.0, 10));
        held.observe(self->engine.now() - t0);  // fires at the trial's end time
      }
      self->gpu_busy[static_cast<std::size_t>(gpu)] = false;
      --self->active_trials;
      self->dispatch();
      self->maybe_finish();
    });
  }

  void run_trial(std::size_t trial_idx, int gpu) {
    auto self = shared_from_this();
    const Trial& trial = trials[trial_idx];
    const double t0 = engine.now();
    if (obs::enabled()) {
      // Async span keyed by trial index: lifecycle from dispatch to GPU free.
      obs::tracer().async_begin("evalsched", "trial", trial_idx,
                                {{"datasets",
                                  std::to_string(trial.datasets.size())},
                                 {"gpu", std::to_string(gpu)}});
      static obs::Counter& started = obs::metrics().counter(
          "acme_evalsched_trials_total", "Evaluation trials dispatched to GPUs");
      started.inc();
    }
    note_stage(trial, "startup", t0, config.trial_startup_seconds);

    const double start_after_startup = t0 + config.trial_startup_seconds;
    if (config.decouple_loading) {
      // Model already staged in node shared memory; read over PCIe.
      const double load = config.model_bytes / config.pcie_bytes_per_sec;
      engine.schedule_at(start_after_startup + load,
                         [self, trial_idx, gpu, t0] {
                           // Fires exactly when the PCIe load finished.
                           self->after_load(trial_idx, gpu, t0,
                                            self->engine.now());
                         });
    } else {
      // Contended pull from remote storage.
      engine.schedule_at(start_after_startup, [self, trial_idx, gpu, t0] {
        const int node = gpu / self->config.gpus_per_node;
        self->net.start_flow(node, self->config.model_bytes,
                             [self, trial_idx, gpu, t0] {
                               self->after_load(trial_idx, gpu, t0,
                                                self->engine.now());
                             });
      });
    }
  }

  void begin() {
    auto self = shared_from_this();
    start = engine.now();
    report.trials = static_cast<int>(trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) queue.push_back(i);
    gpu_busy.assign(static_cast<std::size_t>(total_gpus()), false);
    node_model_ready.assign(static_cast<std::size_t>(config.nodes),
                            !config.decouple_loading);
    for (int i = 0; i < config.metric_cpu_slots; ++i) cpu_slots.insert(start);

    if (config.decouple_loading) {
      // Precursor jobs: one model pull per node into /dev/shm.
      pending_precursors = config.nodes;
      for (int n = 0; n < config.nodes; ++n) {
        net.start_flow(n, config.model_bytes, [self, n] {
          self->node_model_ready[static_cast<std::size_t>(n)] = true;
          --self->pending_precursors;
          self->dispatch();
          self->maybe_finish();
        });
      }
    } else {
      engine.schedule_after(0.0, [self] {
        self->dispatch();
        self->maybe_finish();  // covers an empty suite
      });
    }
  }
};

void TrialCoordinator::launch(sim::Engine& engine, storage::StorageNetwork& net,
                              const std::vector<Dataset>& suite,
                              std::function<void(const EvalReport&)> on_done) {
  ACME_OBS_SPAN_ARG("evalsched", "launch", "datasets",
                    std::to_string(suite.size()));
  auto sweep = std::make_shared<Sweep>(config_, plan(suite), engine, net,
                                       std::move(on_done));
  sweep->begin();
}

EvalReport TrialCoordinator::run(const std::vector<Dataset>& suite) {
  ACME_OBS_SPAN_ARG("evalsched", "run", "datasets", std::to_string(suite.size()));
  sim::Engine engine;
  storage::StorageNetwork net(engine, config_.storage);
  EvalReport report;
  launch(engine, net, suite, [&report](const EvalReport& r) { report = r; });
  engine.run();
  return report;
}

}  // namespace acme::evalsched
