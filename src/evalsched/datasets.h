// Benchmark-dataset registry for evaluation scheduling (paper §6.2: "a
// typical evaluation job on a 7B size LLM ... evaluating the workload across
// 63 datasets"; prior runtimes per dataset are "quite robust" and drive the
// coordinator's packing).
#pragma once

#include <string>
#include <vector>

namespace acme::evalsched {

struct Dataset {
  std::string name;
  double preprocess_seconds = 30;   // tokenization etc. (cacheable)
  double inference_seconds = 120;   // GPU generation time for a 7B model
  double metric_cpu_seconds = 15;   // post-inference metric computation
  bool splittable = true;           // large sets can be broken into shards
};

// The 63-dataset evaluation suite: knowledge/reasoning sets with quick
// metrics, two coding sets with long synthesized-program correctness tests
// (HumanEval, MBPP), and judge-based conversation sets whose GPT-4 scoring
// takes tens of minutes (Chatbot-Arena style).
const std::vector<Dataset>& dataset_suite();

// Aggregate statistics used by tests/benches.
double total_inference_seconds();
double total_metric_seconds();

}  // namespace acme::evalsched
