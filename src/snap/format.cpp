#include "snap/format.h"

#include <array>
#include <cstring>
#include <fstream>

namespace acme::snap {

namespace {

// Slice-by-8 tables for the software fallback: table[0] is the classic
// byte-at-a-time CRC-32C table, table[j] advances a byte j positions further
// through the polynomial, so eight bytes fold in parallel per iteration.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int j = 1; j < 8; ++j)
      tables[j][i] = tables[0][tables[j - 1][i] & 0xFF] ^ (tables[j - 1][i] >> 8);
  return tables;
}

#if defined(__x86_64__) || defined(__i386__)
// The SSE4.2 CRC32 instruction implements exactly this polynomial; one
// 8-byte fold per cycle-ish, an order of magnitude past any table scheme.
// Guarded by a runtime cpuid probe in crc32() below.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const void* data,
                                                          std::size_t size) {
  std::uint64_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    size -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  for (std::size_t i = 0; i < size; ++i)
    c32 = __builtin_ia32_crc32qi(c32, p[i]);
  return c32 ^ 0xFFFFFFFFu;
}
#endif

const char* tag_name(Tag tag) {
  switch (tag) {
    case Tag::kBool: return "bool";
    case Tag::kU32: return "u32";
    case Tag::kU64: return "u64";
    case Tag::kI64: return "i64";
    case Tag::kF64: return "f64";
    case Tag::kString: return "string";
    case Tag::kPodArray: return "pod-array";
  }
  return "?";
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
#if defined(__x86_64__) || defined(__i386__)
  static const bool have_sse42 = __builtin_cpu_supports("sse4.2");
  if (have_sse42) return crc32c_hw(data, size);
#endif
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables[7][lo & 0xFF] ^ tables[6][(lo >> 8) & 0xFF] ^
        tables[5][(lo >> 16) & 0xFF] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xFF] ^ tables[2][(hi >> 8) & 0xFF] ^
        tables[1][(hi >> 16) & 0xFF] ^ tables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i)
    c = tables[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

SnapshotWriter::SnapshotWriter() {
  out_.append(kMagic, sizeof(kMagic));
  const std::uint32_t version = kFormatVersion;
  out_.append(reinterpret_cast<const char*>(&version), sizeof(version));
}

void SnapshotWriter::begin_section(std::string_view name) {
  ACME_CHECK_MSG(!finished_, "SnapshotWriter already finished");
  ACME_CHECK_MSG(!in_section_, "nested snapshot sections are not supported");
  ACME_CHECK_MSG(!name.empty(), "snapshot section needs a name");
  const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
  out_.append(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out_.append(name.data(), name.size());
  // Header placeholders; end_section backpatches both once the payload size
  // and CRC are known, so the payload streams into out_ exactly once.
  const std::uint64_t payload_len = 0;
  const std::uint32_t crc = 0;
  out_.append(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  out_.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  payload_start_ = out_.size();
  in_section_ = true;
}

void SnapshotWriter::end_section() {
  ACME_CHECK_MSG(in_section_, "end_section without begin_section");
  const std::uint64_t payload_len = out_.size() - payload_start_;
  const std::uint32_t crc = crc32(out_.data() + payload_start_,
                                  static_cast<std::size_t>(payload_len));
  std::memcpy(out_.data() + payload_start_ - sizeof(payload_len) - sizeof(crc),
              &payload_len, sizeof(payload_len));
  std::memcpy(out_.data() + payload_start_ - sizeof(crc), &crc, sizeof(crc));
  in_section_ = false;
}

void SnapshotWriter::reserve(std::size_t additional) {
  out_.reserve(out_.size() + additional);
}

void SnapshotWriter::put_tag(Tag tag) {
  ACME_CHECK_MSG(in_section_, "snapshot values must be written inside a section");
  out_.push_back(static_cast<char>(tag));
}

void SnapshotWriter::put_raw(const void* p, std::size_t n) {
  out_.append(static_cast<const char*>(p), n);
}

void SnapshotWriter::write_bool(bool v) {
  put_tag(Tag::kBool);
  const std::uint8_t b = v ? 1 : 0;
  put_raw(&b, sizeof(b));
}

void SnapshotWriter::write_u32(std::uint32_t v) {
  put_tag(Tag::kU32);
  put_raw(&v, sizeof(v));
}

void SnapshotWriter::write_u64(std::uint64_t v) {
  put_tag(Tag::kU64);
  put_raw(&v, sizeof(v));
}

void SnapshotWriter::write_i64(std::int64_t v) {
  put_tag(Tag::kI64);
  put_raw(&v, sizeof(v));
}

void SnapshotWriter::write_f64(double v) {
  put_tag(Tag::kF64);
  put_raw(&v, sizeof(v));
}

void SnapshotWriter::write_string(std::string_view s) {
  put_tag(Tag::kString);
  put_raw_u64(s.size());
  put_raw(s.data(), s.size());
}

std::string SnapshotWriter::finish() {
  ACME_CHECK_MSG(!in_section_, "finish() inside an open section");
  ACME_CHECK_MSG(!finished_, "SnapshotWriter already finished");
  finished_ = true;
  return std::move(out_);
}

void SnapshotWriter::write_file(const std::string& path) {
  const std::string bytes = finish();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ACME_CHECK_MSG(out.good(), "cannot open snapshot file for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ACME_CHECK_MSG(out.good(), "short write to snapshot file: " + path);
}

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  ACME_CHECK_MSG(bytes_.size() >= sizeof(kMagic) + sizeof(std::uint32_t),
                 "snapshot truncated before the header");
  ACME_CHECK_MSG(std::memcmp(bytes_.data(), kMagic, sizeof(kMagic)) == 0,
                 "not a snapshot file (bad magic)");
  pos_ = sizeof(kMagic);
  take_raw(&version_, sizeof(version_));
  ACME_CHECK_MSG(version_ == kFormatVersion,
                 "snapshot format version " + std::to_string(version_) +
                     " != expected " + std::to_string(kFormatVersion) +
                     "; re-create the snapshot with this build");
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ACME_CHECK_MSG(in.good(), "cannot open snapshot file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ACME_CHECK_MSG(!in.bad(), "read error on snapshot file: " + path);
  return SnapshotReader(std::move(bytes));
}

void SnapshotReader::enter_section(std::string_view name) {
  ACME_CHECK_MSG(!in_section_, "enter_section inside an open section");
  std::uint32_t name_len = 0;
  take_raw(&name_len, sizeof(name_len));
  ACME_CHECK_MSG(pos_ + name_len <= bytes_.size(),
                 "snapshot truncated inside a section header");
  const std::string_view found(bytes_.data() + pos_, name_len);
  ACME_CHECK_MSG(found == name, "snapshot section order mismatch: expected \"" +
                                    std::string(name) + "\", found \"" +
                                    std::string(found) + "\"");
  pos_ += name_len;
  std::uint64_t payload_len = 0;
  std::uint32_t crc = 0;
  take_raw(&payload_len, sizeof(payload_len));
  take_raw(&crc, sizeof(crc));
  ACME_CHECK_MSG(pos_ + payload_len <= bytes_.size(),
                 "snapshot truncated inside section \"" + std::string(name) + "\"");
  ACME_CHECK_MSG(crc32(bytes_.data() + pos_, payload_len) == crc,
                 "CRC mismatch in snapshot section \"" + std::string(name) +
                     "\" (corrupted or hand-edited snapshot)");
  section_end_ = pos_ + payload_len;
  in_section_ = true;
}

void SnapshotReader::leave_section() {
  ACME_CHECK_MSG(in_section_, "leave_section without enter_section");
  ACME_CHECK_MSG(pos_ == section_end_,
                 "snapshot section not fully consumed (schema skew: reader "
                 "expects fewer values than the writer produced)");
  in_section_ = false;
}

void SnapshotReader::expect_tag(Tag tag) {
  ACME_CHECK_MSG(in_section_, "snapshot values must be read inside a section");
  ACME_CHECK_MSG(pos_ < section_end_,
                 "snapshot section exhausted (schema skew: reader expects "
                 "more values than the writer produced)");
  const Tag found = static_cast<Tag>(bytes_[pos_]);
  ACME_CHECK_MSG(found == tag, std::string("snapshot type-tag mismatch: "
                                           "expected ") +
                                   tag_name(tag) + ", found " + tag_name(found));
  ++pos_;
}

void SnapshotReader::take_raw(void* out, std::size_t n) {
  const std::size_t limit = in_section_ ? section_end_ : bytes_.size();
  ACME_CHECK_MSG(pos_ + n <= limit, "snapshot truncated mid-value");
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
}

bool SnapshotReader::read_bool() {
  expect_tag(Tag::kBool);
  std::uint8_t b = 0;
  take_raw(&b, sizeof(b));
  ACME_CHECK_MSG(b <= 1, "snapshot bool out of range");
  return b != 0;
}

std::uint32_t SnapshotReader::read_u32() {
  expect_tag(Tag::kU32);
  std::uint32_t v = 0;
  take_raw(&v, sizeof(v));
  return v;
}

std::uint64_t SnapshotReader::read_u64() {
  expect_tag(Tag::kU64);
  std::uint64_t v = 0;
  take_raw(&v, sizeof(v));
  return v;
}

std::int64_t SnapshotReader::read_i64() {
  expect_tag(Tag::kI64);
  std::int64_t v = 0;
  take_raw(&v, sizeof(v));
  return v;
}

double SnapshotReader::read_f64() {
  expect_tag(Tag::kF64);
  double v = 0;
  take_raw(&v, sizeof(v));
  return v;
}

std::string SnapshotReader::read_string() {
  expect_tag(Tag::kString);
  const std::uint64_t n = take_raw_u64();
  std::string s(static_cast<std::size_t>(n), '\0');
  take_raw(s.data(), s.size());
  return s;
}

}  // namespace acme::snap
