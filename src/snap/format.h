// Versioned binary snapshot format for world state (DESIGN.md §12).
//
// A snapshot is a header (8-byte magic + u32 format version) followed by
// named, length-prefixed sections, each carrying a CRC32 over its payload.
// Inside a section every primitive is tagged with a 1-byte type code, so a
// reader that drifts out of sync with the writer (schema skew, truncation,
// corruption) fails loudly at the first mismatched tag instead of silently
// reinterpreting bytes. All failures go through ACME_CHECK_MSG and throw
// common::CheckError — which is what lets the fuzzer treat a bad snapshot
// as a catchable finding rather than a process abort.
//
// Scope and versioning policy: snapshots are same-machine, same-build
// artifacts (native endianness and IEEE-754 layout; both are asserted by
// the magic check only in the sense that a cross-architecture restore will
// CRC-fail or tag-fail, not silently succeed). Any change to a section's
// layout bumps kFormatVersion; there are no in-place upgraders — a version
// mismatch is a hard error telling the user to re-create the snapshot.
// That is the right trade for a simulator: snapshots are cheap to regrow
// from the spec, so compatibility machinery would be pure liability.
//
// The library sits between common and sim in the target graph: it links
// only acme_common, and the stateful layers (sim, cluster, sched, serve,
// world) link acme_snap and implement save(SnapshotWriter&) /
// restore(SnapshotReader&) member functions. Leaf classes that common
// itself owns (Rng, StreamingStats, P²) expose POD state accessors instead
// of including this header, which keeps the dependency graph acyclic.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace acme::snap {

inline constexpr char kMagic[8] = {'A', 'C', 'M', 'E', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

// CRC-32C (Castagnoli polynomial, reflected). Uses the SSE4.2 CRC32
// instruction when the CPU has it (snapshots CRC megabytes per section);
// falls back to a table-driven slice-by-8 loop that computes the identical
// value, so snapshots do not encode which path wrote them.
std::uint32_t crc32(const void* data, std::size_t size);

// 1-byte type tags preceding every value inside a section payload.
enum class Tag : std::uint8_t {
  kBool = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kString = 6,
  kPodArray = 7,
};

class SnapshotWriter {
 public:
  SnapshotWriter();

  // Sections must be strictly sequential (no nesting): begin, write values,
  // end. Section names are free-form but matched exactly by the reader.
  // Payloads are written straight into the output buffer; end_section
  // backpatches the length and CRC into the header it reserved, so a
  // multi-megabyte section costs one pass, not a build-then-copy.
  void begin_section(std::string_view name);
  void end_section();

  // Capacity hint: pre-grows the output buffer by `additional` bytes so a
  // caller about to stream large pod arrays avoids realloc-and-copy cycles.
  void reserve(std::size_t additional);

  void write_bool(bool v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(std::string_view s);

  // Bulk array of trivially copyable elements: one tag, element size (layout
  // check on read), count, then the raw bytes in a single append.
  template <typename T>
  void write_pod_span(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod spans require trivially copyable elements");
    put_tag(Tag::kPodArray);
    put_raw_u64(sizeof(T));
    put_raw_u64(count);
    put_raw(data, count * sizeof(T));
  }
  template <typename T>
  void write_pod_vec(const std::vector<T>& v) {
    write_pod_span(v.data(), v.size());
  }

  // Seals the snapshot and returns the full byte string (header + sections).
  // The writer is unusable afterwards.
  std::string finish();
  // finish() + write the bytes to `path`; throws CheckError on I/O failure.
  void write_file(const std::string& path);

 private:
  void put_tag(Tag tag);
  void put_raw(const void* p, std::size_t n);
  void put_raw_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }

  std::string out_;             // header + sections (open section included)
  std::size_t payload_start_ = 0;  // offset of the open section's payload
  bool in_section_ = false;
  bool finished_ = false;
};

class SnapshotReader {
 public:
  // Validates magic + version up front; throws CheckError on mismatch.
  explicit SnapshotReader(std::string bytes);
  static SnapshotReader from_file(const std::string& path);

  std::uint32_t version() const { return version_; }

  // Opens the next section; its name must match `name` exactly and its
  // payload must pass the CRC check. leave_section() then requires the
  // payload to be fully consumed — partial reads are schema skew, not OK.
  void enter_section(std::string_view name);
  void leave_section();

  bool read_bool();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  std::string read_string();

  template <typename T>
  void read_pod_vec(std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod spans require trivially copyable elements");
    expect_tag(Tag::kPodArray);
    const std::uint64_t elem = take_raw_u64();
    ACME_CHECK_MSG(elem == sizeof(T),
                   "snapshot pod-array element size mismatch (layout skew)");
    const std::uint64_t count = take_raw_u64();
    out.resize(static_cast<std::size_t>(count));
    take_raw(out.data(), out.size() * sizeof(T));
  }

  // All sections consumed (cursor at end of the byte string).
  bool at_end() const { return !in_section_ && pos_ == bytes_.size(); }

 private:
  void expect_tag(Tag tag);
  void take_raw(void* out, std::size_t n);
  std::uint64_t take_raw_u64() {
    std::uint64_t v = 0;
    take_raw(&v, sizeof(v));
    return v;
  }

  std::string bytes_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  std::uint32_t version_ = 0;
  bool in_section_ = false;
};

}  // namespace acme::snap
