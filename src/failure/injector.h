// Failure injection (paper §5): samples failure events whose reason mix,
// GPU demand, time-to-failure and time-to-restart reproduce Table 3.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "failure/taxonomy.h"

namespace acme::failure {

struct FailureEvent {
  const FailureSpec* spec = nullptr;
  double ttf_seconds = 0;   // runtime until the failure fires
  double ttr_seconds = 0;   // manual restart latency (without our system)
  int gpu_demand = 0;
};

class FailureInjector {
 public:
  explicit FailureInjector(std::uint64_t seed = 1);

  // Samples a complete failure event: reason weighted by Table 3 counts
  // (optionally restricted by cluster / category), then TTF/TTR/demand from
  // that row's lognormal fits.
  FailureEvent sample(common::Rng& rng) const;
  FailureEvent sample_for_cluster(bool kalos, common::Rng& rng) const;

  // For a long-running pretraining job of `gpus` GPUs: the reason mix is
  // restricted to failures observed mid-run on large jobs (infrastructure +
  // heavyweight framework rows), and only TTF/TTR are sampled.
  FailureEvent sample_pretrain_failure(int gpus, common::Rng& rng) const;

  // TTF sampler for a given reason (seconds).
  double sample_ttf(const FailureSpec& spec, common::Rng& rng) const;
  double sample_ttr(const FailureSpec& spec, common::Rng& rng) const;
  int sample_demand(const FailureSpec& spec, common::Rng& rng) const;

  // Correlated domain outages (domain_failure_table()): reason weighted by
  // the table, TTF/TTR from the row's lognormal fits (seconds). Driven by
  // the world's domain chain with its own rng stream.
  const DomainFailureSpec& sample_domain_failure(common::Rng& rng) const;
  double sample_domain_ttf(const DomainFailureSpec& spec,
                           common::Rng& rng) const;
  double sample_domain_ttr(const DomainFailureSpec& spec,
                           common::Rng& rng) const;

  common::Rng make_rng(const std::string& label) const { return base_.fork(label); }

 private:
  const FailureSpec* pick(const std::vector<const FailureSpec*>& pool,
                          common::Rng& rng) const;
  common::Rng base_;
};

}  // namespace acme::failure
