#include "failure/taxonomy.h"

#include <map>
#include <stdexcept>

namespace acme::failure {

const char* to_string(FailureCategory category) {
  switch (category) {
    case FailureCategory::kInfrastructure: return "Infrastructure";
    case FailureCategory::kFramework: return "Framework";
    case FailureCategory::kScript: return "Script";
  }
  return "?";
}

namespace {

FailureSpec make(std::string reason, FailureCategory cat, int count, double d_avg,
                 double d_med, double ttf_avg, double ttf_med, double ttr_avg,
                 double ttr_med, bool seren, bool kalos, bool node_detect,
                 std::vector<std::string> sigs) {
  FailureSpec s;
  s.reason = std::move(reason);
  s.category = cat;
  s.count = count;
  s.demand_avg = d_avg;
  s.demand_median = d_med;
  s.ttf_avg_min = ttf_avg;
  s.ttf_median_min = ttf_med;
  s.ttr_avg_min = ttr_avg;
  s.ttr_median_min = ttr_med;
  s.in_seren = seren;
  s.in_kalos = kalos;
  s.needs_node_detection = node_detect;
  s.log_signatures = std::move(sigs);
  return s;
}

std::vector<FailureSpec> build_table() {
  using C = FailureCategory;
  std::vector<FailureSpec> t;
  // --- Infrastructure ---
  t.push_back(make("NVLink Error", C::kInfrastructure, 54, 800, 896, 868.1, 155.3,
                   95.6, 0.2, true, true, true,
                   {"NVLink fatal error detected on link 3: training cannot continue",
                    "CUDA error: unspecified launch failure",
                    "NCCL WARN NET/IB : got completion with error 12"}));
  t.push_back(make("CUDA Error", C::kInfrastructure, 21, 847, 1024, 923.2, 586.0,
                   78.3, 2.0, true, true, true,
                   {"RuntimeError: CUDA error: an illegal memory access was encountered",
                    "CUDA error: device-side assert triggered",
                    "NCCL Timeout: watchdog caught collective operation timeout"}));
  t.push_back(make("Node Failure", C::kInfrastructure, 16, 712, 768, 1288.8, 535.8,
                   102.8, 21.5, true, false, true,
                   {"node lost heartbeat: rank 137 unreachable",
                    "slurmstepd: error: Node failure on host"}));
  t.push_back(make("ECC Error", C::kInfrastructure, 12, 680, 512, 1303.4, 1192.3,
                   2.8, 1.8, true, true, true,
                   {"CUDA error: uncorrectable ECC error encountered",
                    "Xid 63: row remapping pending for GPU 4"}));
  t.push_back(make("Network Error", C::kInfrastructure, 12, 758, 768, 549.6, 310.1,
                   592.1, 7.4, true, true, true,
                   {"NetworkError: IB link flap detected on mlx5_2 port 1",
                    "NCCL WARN NET/IB : async event: port down"}));
  t.push_back(make("Connection Error", C::kInfrastructure, 147, 29, 1, 51.9, 0.5,
                   0.8, 0.02, true, true, false,
                   {"ConnectionError: HTTPSConnectionPool(host='metrics.internal', port=443)",
                    "requests.exceptions.ConnectionError: Failed to establish a new connection"}));
  t.push_back(make("S3 Storage Error", C::kInfrastructure, 10, 422, 256, 2317.8,
                   202.2, 6.2, 0.2, true, false, false,
                   {"S3StorageError: PutObject timed out after 3 retries",
                    "botocore.exceptions.EndpointConnectionError: Could not connect"}));
  t.push_back(make("NCCL Timeout Error", C::kInfrastructure, 6, 596, 512, 159.7,
                   48.1, 66.7, 43.6, false, true, true,
                   {"NCCLTimeoutError: watchdog timeout on AllReduce, rank 891",
                    "Some NCCL operations have failed or timed out"}));
  t.push_back(make("NCCL Remote Error", C::kInfrastructure, 3, 1152, 1024, 50.5,
                   22.6, 0.7, 0.7, false, true, true,
                   {"NCCLRemoteError: remote process exited or there was a network error",
                    "NCCL WARN Call to ibv_modify_qp failed"}));
  // --- Framework ---
  t.push_back(make("Dataloader Killed", C::kFramework, 6, 445, 508, 1580.6, 961.4,
                   115.1, 0.9, false, true, false,
                   {"RuntimeError: DataLoader worker (pid 71633) is killed by signal: Killed",
                    "dataloader worker oom: copy-on-write memory growth detected"}));
  t.push_back(make("Attribute Error", C::kFramework, 67, 228, 8, 67.8, 1.2, 2.4,
                   0.02, true, true, false,
                   {"AttributeError: 'NoneType' object has no attribute 'shape'"}));
  t.push_back(make("Out of Memory Error", C::kFramework, 14, 572, 640, 323.8, 14.5,
                   122.7, 1.2, true, true, false,
                   {"torch.cuda.OutOfMemoryError: CUDA out of memory. Tried to allocate 2.50 GiB"}));
  t.push_back(make("Runtime Error", C::kFramework, 65, 441, 352, 66.4, 3.9, 10.9,
                   1.5, true, true, false,
                   {"RuntimeError: The size of tensor a (4096) must match the size of tensor b (2048)"}));
  t.push_back(make("Assertion Error", C::kFramework, 105, 413, 256, 41.7, 3.0,
                   185.9, 1.6, true, true, false,
                   {"AssertionError: expected pipeline stage outputs to be contiguous"}));
  t.push_back(make("Value Error", C::kFramework, 33, 387, 256, 9.9, 3.7, 27.4, 0.6,
                   true, true, false,
                   {"ValueError: optimizer got an empty parameter list"}));
  t.push_back(make("Zero Division Error", C::kFramework, 5, 499, 256, 14.5, 15.6,
                   2.5, 1.1, true, true, false,
                   {"ZeroDivisionError: division by zero in loss scaling"}));
  t.push_back(make("Model Loading Error", C::kFramework, 104, 8, 8, 2.6, 2.6, 0.02,
                   0.02, false, true, false,
                   {"ModelLoadingError: checkpoint shard 00017-of-00032 not found"}));
  t.push_back(make("Dataset Loading Error", C::kFramework, 5, 1, 1, 1.6, 1.6, 0.02,
                   0.02, false, true, false,
                   {"DatasetLoadingError: tokenized corpus index is corrupted"}));
  // --- Script ---
  t.push_back(make("File Not Found Error", C::kScript, 568, 21, 1, 14.2, 0.4, 0.4,
                   0.02, true, true, false,
                   {"FileNotFoundError: [Errno 2] No such file or directory: '/mnt/petrel/config.yaml'"}));
  t.push_back(make("OS Error", C::kScript, 266, 8, 1, 9.6, 0.8, 0.3, 0.02, true,
                   true, false,
                   {"OSError: [Errno 122] Disk quota exceeded"}));
  t.push_back(make("Type Error", C::kScript, 620, 18, 4, 0.9, 0.3, 0.2, 0.02, true,
                   true, false,
                   {"TypeError: forward() got an unexpected keyword argument 'use_cache'"}));
  t.push_back(make("Name Error", C::kScript, 18, 247, 24, 3.2, 0.5, 2.9, 2.4, true,
                   true, false, {"NameError: name 'flash_attn_func' is not defined"}));
  t.push_back(make("Permission Error", C::kScript, 7, 438, 512, 4.3, 0.8, 2.4, 2.2,
                   true, false, false,
                   {"PermissionError: [Errno 13] Permission denied: '/mnt/shared/ckpt'"}));
  t.push_back(make("Import Error", C::kScript, 111, 93, 8, 1.1, 0.4, 0.7, 0.02,
                   true, true, false,
                   {"ImportError: cannot import name 'LlamaRMSNorm' from 'modeling'"}));
  t.push_back(make("Key Error", C::kScript, 260, 7, 0.5, 3.0, 1.6, 0.1, 0.02, true,
                   true, false, {"KeyError: 'rotary_emb.inv_freq'"}));
  t.push_back(make("Syntax Error", C::kScript, 10, 391, 384, 0.7, 0.6, 1.7, 1.7,
                   true, true, false,
                   {"SyntaxError: invalid syntax (train.py, line 212)"}));
  t.push_back(make("Argument Error", C::kScript, 3, 344, 512, 0.7, 0.7, 2.7, 0.7,
                   true, false, false,
                   {"ArgumentError: argument --micro-batch-size: invalid int value"}));
  t.push_back(make("Called Process Error", C::kScript, 4, 256, 256, 0.2, 0.2, 11.7,
                   10.9, true, false, false,
                   {"CalledProcessError: Command 'srun hostname' returned non-zero exit status 1"}));
  t.push_back(make("Index Error", C::kScript, 23, 6, 1, 1.6, 0.9, 0.8, 0.02, true,
                   true, false, {"IndexError: list index out of range"}));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i].id = static_cast<ReasonId>(i);
  return t;
}

}  // namespace

const std::vector<FailureSpec>& failure_table() {
  static const std::vector<FailureSpec> table = build_table();
  return table;
}

ReasonId reason_id(std::string_view reason) {
  // One-time reverse index; after that a lookup is one ordered-map probe
  // with no allocation (heterogeneous compare keeps string_view callers
  // allocation-free too).
  static const std::map<std::string, ReasonId, std::less<>> index = [] {
    std::map<std::string, ReasonId, std::less<>> m;
    for (const auto& s : failure_table()) m.emplace(s.reason, s.id);
    return m;
  }();
  const auto it = index.find(reason);
  return it == index.end() ? kInvalidReason : it->second;
}

const FailureSpec& spec_for(ReasonId id) {
  const auto& table = failure_table();
  if (id >= table.size())
    throw std::out_of_range("unknown failure reason id: " + std::to_string(id));
  return table[id];
}

const FailureSpec& spec_for(const std::string& reason) {
  const ReasonId id = reason_id(reason);
  if (id == kInvalidReason)
    throw std::out_of_range("unknown failure reason: " + reason);
  return spec_for(id);
}

std::vector<const FailureSpec*> infrastructure_specs() {
  std::vector<const FailureSpec*> out;
  for (const auto& s : failure_table())
    if (s.category == FailureCategory::kInfrastructure) out.push_back(&s);
  return out;
}

const std::vector<DomainFailureSpec>& domain_failure_table() {
  using K = cluster::DomainKind;
  // Rates synthesized from the Table 2 inventory: rail switches are the
  // most numerous shared component (weight 6, ~2-week median per cluster),
  // PDUs trip rarer but take a whole pod (weight 2, ~6 weeks), and a
  // cooling/room event is the rare worst case (weight 1, ~one quarter)
  // taking a datacenter down for hours.
  static const std::vector<DomainFailureSpec> table = {
      {"Switch Failure", K::kSwitch, 6, 30240.0, 20160.0, 90.0, 45.0},
      {"PDU Failure", K::kPod, 2, 80640.0, 60480.0, 240.0, 120.0},
      {"Cooling Failure", K::kDatacenter, 1, 172800.0, 129600.0, 480.0, 240.0},
  };
  return table;
}

}  // namespace acme::failure
