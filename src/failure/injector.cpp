#include "failure/injector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/dist.h"
#include "common/units.h"

namespace acme::failure {

using common::LognormalFromStats;

FailureInjector::FailureInjector(std::uint64_t seed) : base_(seed) {}

double FailureInjector::sample_ttf(const FailureSpec& spec, common::Rng& rng) const {
  const LognormalFromStats dist(std::max(spec.ttf_median_min, 0.05),
                                std::max(spec.ttf_avg_min, 0.05));
  return dist.sample(rng) * common::kMinute;
}

double FailureInjector::sample_ttr(const FailureSpec& spec, common::Rng& rng) const {
  const LognormalFromStats dist(std::max(spec.ttr_median_min, 0.02),
                                std::max(spec.ttr_avg_min, 0.02));
  return dist.sample(rng) * common::kMinute;
}

int FailureInjector::sample_demand(const FailureSpec& spec, common::Rng& rng) const {
  const LognormalFromStats dist(std::max(spec.demand_median, 0.5),
                                std::max(spec.demand_avg, 0.5));
  const double raw = dist.sample(rng);
  // Snap to realistic request sizes: 1..8 exact, beyond that multiples of 8.
  if (raw <= 8.5) return std::max(1, static_cast<int>(std::lround(raw)));
  const int nodes = static_cast<int>(std::lround(raw / 8.0));
  return std::min(nodes * 8, 2048);
}

const FailureSpec* FailureInjector::pick(const std::vector<const FailureSpec*>& pool,
                                         common::Rng& rng) const {
  ACME_CHECK(!pool.empty());
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const auto* s : pool) weights.push_back(static_cast<double>(s->count));
  return pool[rng.categorical(weights)];
}

FailureEvent FailureInjector::sample(common::Rng& rng) const {
  std::vector<const FailureSpec*> pool;
  for (const auto& s : failure_table()) pool.push_back(&s);
  const FailureSpec* spec = pick(pool, rng);
  return {spec, sample_ttf(*spec, rng), sample_ttr(*spec, rng),
          sample_demand(*spec, rng)};
}

FailureEvent FailureInjector::sample_for_cluster(bool kalos, common::Rng& rng) const {
  std::vector<const FailureSpec*> pool;
  for (const auto& s : failure_table())
    if (kalos ? s.in_kalos : s.in_seren) pool.push_back(&s);
  const FailureSpec* spec = pick(pool, rng);
  return {spec, sample_ttf(*spec, rng), sample_ttr(*spec, rng),
          sample_demand(*spec, rng)};
}

namespace {

// Static mid-run pretraining pool: membership decided once by interned
// ReasonId (no per-call string compares) and the weights vector prebuilt,
// so the per-injection hot path allocates nothing. Row order matches the
// historical per-call scan, keeping the categorical stream bit-identical.
struct PretrainPool {
  std::vector<const FailureSpec*> specs;
  std::vector<double> weights;
};

const PretrainPool& pretrain_pool() {
  static const PretrainPool pool = [] {
    const ReasonId midrun_framework[] = {
        reason_id("Dataloader Killed"),
        reason_id("Out of Memory Error"),
        reason_id("Zero Division Error"),
    };
    PretrainPool p;
    for (const auto& s : failure_table()) {
      const bool midrun = s.id == midrun_framework[0] ||
                          s.id == midrun_framework[1] ||
                          s.id == midrun_framework[2];
      if (s.category == FailureCategory::kInfrastructure || midrun) {
        p.specs.push_back(&s);
        p.weights.push_back(static_cast<double>(s.count));
      }
    }
    return p;
  }();
  return pool;
}

}  // namespace

FailureEvent FailureInjector::sample_pretrain_failure(int gpus,
                                                      common::Rng& rng) const {
  // Mid-run pretraining failures: infrastructure rows plus the framework rows
  // the paper ties to long runs (Dataloader Killed, OOM, loss-scaling).
  const PretrainPool& pool = pretrain_pool();
  const FailureSpec* spec = pool.specs[rng.categorical(pool.weights)];
  return {spec, sample_ttf(*spec, rng), sample_ttr(*spec, rng), gpus};
}

const DomainFailureSpec& FailureInjector::sample_domain_failure(
    common::Rng& rng) const {
  const auto& table = domain_failure_table();
  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const auto& s : domain_failure_table())
      w.push_back(static_cast<double>(s.weight));
    return w;
  }();
  return table[rng.categorical(weights)];
}

double FailureInjector::sample_domain_ttf(const DomainFailureSpec& spec,
                                          common::Rng& rng) const {
  const LognormalFromStats dist(std::max(spec.ttf_median_min, 0.05),
                                std::max(spec.ttf_avg_min, 0.05));
  return dist.sample(rng) * common::kMinute;
}

double FailureInjector::sample_domain_ttr(const DomainFailureSpec& spec,
                                          common::Rng& rng) const {
  const LognormalFromStats dist(std::max(spec.ttr_median_min, 0.02),
                                std::max(spec.ttr_avg_min, 0.02));
  return dist.sample(rng) * common::kMinute;
}

}  // namespace acme::failure
