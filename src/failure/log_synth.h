// Runtime-log synthesizer (paper §2.3 "Runtime Log", §6.1).
//
// Produces realistic stdout/stderr for a pretraining job: framework
// initialization banners, a long stream of per-step metric records, sporadic
// debug chatter, and — for failed jobs — a messy error tail where the root
// cause is buried among co-occurring secondary errors (the paper's example:
// NCCLTimeoutError and RuntimeErrors appearing alongside the actual
// CUDAError). This is the corpus the diagnosis pipeline (§6.1-2) is built
// and evaluated against.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "failure/taxonomy.h"

namespace acme::failure {

struct SyntheticLog {
  std::vector<std::string> lines;
  std::string root_cause;     // ground-truth reason ("" for successful runs)
  FailureCategory category = FailureCategory::kScript;
  std::size_t metric_lines = 0;  // how many routine lines were emitted
};

struct LogSynthOptions {
  int steps = 400;             // training steps logged before the failure
  int ranks = 8;               // ranks that echo startup banners
  double debug_noise = 0.02;   // probability of a debug line per step
  int secondary_errors = 2;    // co-occurring non-root error signatures
};

class LogSynthesizer {
 public:
  explicit LogSynthesizer(LogSynthOptions options = {});

  // Log of a job that fails with `spec` as root cause.
  SyntheticLog failed_run(const FailureSpec& spec, common::Rng& rng) const;
  // Log of a healthy run (used to mine filter rules and as negatives).
  SyntheticLog healthy_run(common::Rng& rng) const;

 private:
  void emit_banner(SyntheticLog& log, common::Rng& rng) const;
  void emit_training(SyntheticLog& log, int steps, common::Rng& rng) const;
  void emit_error_tail(SyntheticLog& log, const FailureSpec& spec,
                       common::Rng& rng) const;

  LogSynthOptions options_;
};

}  // namespace acme::failure
