#include "failure/log_synth.h"

#include <cstdarg>
#include <cstdio>
#include <iterator>

#include "common/check.h"

namespace acme::failure {
namespace {

std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Secondary error lines that co-occur with infrastructure root causes: when a
// GPU or link dies, every rank's collectives abort with their own messages.
const char* kCollateralLines[] = {
    "RuntimeError: NCCL communicator was aborted on rank %d",
    "NCCLTimeoutError: watchdog timeout on Broadcast, rank %d",
    "RuntimeError: CUDA error: unspecified launch failure (rank %d)",
    "torch.distributed.elastic.multiprocessing.errors.ChildFailedError: rank %d",
    "WARNING: process group watchdog thread terminated with exception, rank %d",
};

}  // namespace

LogSynthesizer::LogSynthesizer(LogSynthOptions options) : options_(options) {}

void LogSynthesizer::emit_banner(SyntheticLog& log, common::Rng& rng) const {
  log.lines.push_back("InternEvo-sim v2.1 starting up");
  log.lines.push_back(format("world size: %d, tensor parallel: 8, pipeline: 4",
                             options_.ranks * 8));
  for (int r = 0; r < options_.ranks; ++r)
    log.lines.push_back(
        format("rank %d: initialized process group (backend=nccl, timeout=1800s)", r));
  log.lines.push_back(format("loading tokenizer from /mnt/petrel/tokenizer.model"));
  log.lines.push_back(
      format("dataset shards: %d, dataloader workers: 0", 1024 + static_cast<int>(rng.uniform_int(0, 512))));
  log.lines.push_back("flash attention enabled; selective recomputation enabled");
  log.metric_lines += log.lines.size();
}

void LogSynthesizer::emit_training(SyntheticLog& log, int steps,
                                   common::Rng& rng) const {
  double loss = rng.uniform(2.2, 2.8);
  for (int s = 0; s < steps; ++s) {
    loss = std::max(1.6, loss - rng.uniform(0.0, 0.0015) + rng.normal(0, 0.003));
    log.lines.push_back(format(
        "step=%d loss=%.4f lr=%.2e grad_norm=%.3f tgs=%.1f tflops=%.1f", s + 1,
        loss, 3e-4 * (1.0 - s * 1e-5), rng.uniform(0.4, 2.1),
        rng.uniform(3800, 4300), rng.uniform(170, 195)));
    ++log.metric_lines;
    if (rng.bernoulli(options_.debug_noise)) {
      log.lines.push_back(format(
          "DEBUG pipeline stage %d queue depth %d", static_cast<int>(rng.uniform_int(0, 3)),
          static_cast<int>(rng.uniform_int(1, 4))));
      ++log.metric_lines;
    }
    if ((s + 1) % 100 == 0) {
      log.lines.push_back(
          format("checkpoint: async snapshot at step %d (1.74 TB staged)", s + 1));
      ++log.metric_lines;
    }
  }
}

void LogSynthesizer::emit_error_tail(SyntheticLog& log, const FailureSpec& spec,
                                     common::Rng& rng) const {
  // Collateral errors first: ranks die noisily before the root cause line is
  // flushed (and sometimes after), mimicking interleaved multi-rank stderr.
  const bool infra = spec.category == FailureCategory::kInfrastructure;
  const int collateral = infra ? options_.secondary_errors : 0;
  for (int i = 0; i < collateral; ++i) {
    const auto& tmpl = kCollateralLines[rng.uniform_int(
        0, static_cast<std::int64_t>(std::size(kCollateralLines)) - 1)];
    log.lines.push_back(format(tmpl, static_cast<int>(rng.uniform_int(0, 1023))));
  }
  log.lines.push_back("Traceback (most recent call last):");
  log.lines.push_back(format("  File \"train.py\", line %d, in <module>",
                             static_cast<int>(rng.uniform_int(80, 400))));
  log.lines.push_back("  File \"internevo/engine.py\", line 512, in train_step");
  for (const auto& sig : spec.log_signatures) log.lines.push_back(sig);
  if (infra && rng.bernoulli(0.5)) {
    log.lines.push_back(
        format(kCollateralLines[0], static_cast<int>(rng.uniform_int(0, 1023))));
  }
}

SyntheticLog LogSynthesizer::failed_run(const FailureSpec& spec,
                                        common::Rng& rng) const {
  SyntheticLog log;
  log.root_cause = spec.reason;
  log.category = spec.category;
  emit_banner(log, rng);
  // Script errors fire almost immediately; infra failures after a long run.
  int steps = options_.steps;
  if (spec.category == FailureCategory::kScript)
    steps = static_cast<int>(rng.uniform_int(0, 5));
  else if (spec.ttf_median_min < 5)
    steps = static_cast<int>(rng.uniform_int(0, 30));
  emit_training(log, steps, rng);
  emit_error_tail(log, spec, rng);
  return log;
}

SyntheticLog LogSynthesizer::healthy_run(common::Rng& rng) const {
  SyntheticLog log;
  emit_banner(log, rng);
  emit_training(log, options_.steps, rng);
  log.lines.push_back("training finished: gracefully saving final checkpoint");
  return log;
}

}  // namespace acme::failure
