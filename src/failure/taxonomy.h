// Failure taxonomy: the 29 failure reasons of paper Table 3, with their
// published occurrence counts, GPU-demand statistics, time-to-failure (TTF)
// and time-to-restart (TTR) statistics. Every sampler in the injector is a
// lognormal fitted to the row's (median, average) pair (DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

namespace acme::failure {

enum class FailureCategory { kInfrastructure, kFramework, kScript };

const char* to_string(FailureCategory category);

struct FailureSpec {
  std::string reason;         // e.g. "NVLink Error"
  FailureCategory category;
  int count = 0;              // occurrences over the 6-month trace
  double demand_avg = 1;      // GPUs
  double demand_median = 1;
  double ttf_avg_min = 1;     // minutes
  double ttf_median_min = 1;
  double ttr_avg_min = 0;     // minutes
  double ttr_median_min = 0;
  bool in_seren = true;
  bool in_kalos = true;
  // Does recovery require locating and cordoning faulty nodes (hardware) as
  // opposed to a plain resubmit (software)?
  bool needs_node_detection = false;
  // Signature lines that appear in the runtime log when this failure fires;
  // the first entry is the canonical root-cause line.
  std::vector<std::string> log_signatures;
};

// All 29 rows of Table 3.
const std::vector<FailureSpec>& failure_table();

const FailureSpec& spec_for(const std::string& reason);

// Reasons whose most-frequent occurrence is mid-run on large pretraining jobs
// (category == Infrastructure), per §5.2.
std::vector<const FailureSpec*> infrastructure_specs();

}  // namespace acme::failure
