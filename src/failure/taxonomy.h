// Failure taxonomy: the 29 failure reasons of paper Table 3, with their
// published occurrence counts, GPU-demand statistics, time-to-failure (TTF)
// and time-to-restart (TTR) statistics. Every sampler in the injector is a
// lognormal fitted to the row's (median, average) pair (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/domain.h"

namespace acme::failure {

enum class FailureCategory { kInfrastructure, kFramework, kScript };

const char* to_string(FailureCategory category);

// Interned failure reason: the row index in failure_table(). Hot paths
// (injection, world kill routing) carry the u32 and resolve it O(1); the
// string API survives as a thin wrapper for parsers and logs.
using ReasonId = std::uint32_t;
inline constexpr ReasonId kInvalidReason = 0xffffffffu;

struct FailureSpec {
  ReasonId id = kInvalidReason;  // index into failure_table()
  std::string reason;         // e.g. "NVLink Error"
  FailureCategory category;
  int count = 0;              // occurrences over the 6-month trace
  double demand_avg = 1;      // GPUs
  double demand_median = 1;
  double ttf_avg_min = 1;     // minutes
  double ttf_median_min = 1;
  double ttr_avg_min = 0;     // minutes
  double ttr_median_min = 0;
  bool in_seren = true;
  bool in_kalos = true;
  // Does recovery require locating and cordoning faulty nodes (hardware) as
  // opposed to a plain resubmit (software)?
  bool needs_node_detection = false;
  // Signature lines that appear in the runtime log when this failure fires;
  // the first entry is the canonical root-cause line.
  std::vector<std::string> log_signatures;
};

// All 29 rows of Table 3.
const std::vector<FailureSpec>& failure_table();

// Interning: one-time table build, then O(1) by id. reason_id returns
// kInvalidReason for unknown strings.
ReasonId reason_id(std::string_view reason);
const FailureSpec& spec_for(ReasonId id);
const FailureSpec& spec_for(const std::string& reason);

// Reasons whose most-frequent occurrence is mid-run on large pretraining jobs
// (category == Infrastructure), per §5.2.
std::vector<const FailureSpec*> infrastructure_specs();

// Domain-scoped correlated failures synthesized from the paper's Table 2
// datacenter inventory (switches, PDUs, cooling): one event takes a whole
// DomainTree subtree down, cordoning every node and killing every resident
// job at once. Kept separate from the 29-row Table 3 stream so per-job
// sampling stays bit-identical; the world's domain chain samples this table
// with its own rng.
struct DomainFailureSpec {
  std::string reason;           // e.g. "Switch Failure"
  cluster::DomainKind scope;    // subtree taken down by one event
  int weight = 1;               // relative frequency within the table
  double ttf_avg_min = 1;       // per-cluster inter-event time (minutes)
  double ttf_median_min = 1;
  double ttr_avg_min = 1;       // outage duration until power/fabric is back
  double ttr_median_min = 1;
};
const std::vector<DomainFailureSpec>& domain_failure_table();

}  // namespace acme::failure
