// ASCII table renderer used by the bench harness to print paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace acme::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string pct(double fraction, int precision = 1);  // 0.25 -> "25.0%"
  static std::string integer(double v);

  std::size_t rows() const { return rows_.size(); }
  // Renders with column alignment; numeric-looking cells right-align.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acme::common
