#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace acme::common {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StreamingStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void SampleStats::add(double x) {
  values_.push_back(x);
  if (weighted_) weights_.push_back(1.0);
  weight_sum_ += 1.0;
  sorted_ = false;
}

void SampleStats::add_weighted(double x, double weight) {
  if (!weighted_) {
    weights_.assign(values_.size(), 1.0);
    weighted_ = true;
  }
  values_.push_back(x);
  weights_.push_back(weight);
  weight_sum_ += weight;
  sorted_ = false;
}

void SampleStats::ensure_sorted() const {
  if (sorted_) return;
  if (!weighted_) {
    std::sort(values_.begin(), values_.end());
  } else {
    std::vector<std::size_t> idx(values_.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return values_[a] < values_[b]; });
    std::vector<double> v(values_.size()), w(values_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      v[i] = values_[idx[i]];
      w[i] = weights_[idx[i]];
    }
    values_ = std::move(v);
    weights_ = std::move(w);
  }
  sorted_ = true;
}

double SampleStats::mean() const {
  if (values_.empty()) return 0.0;
  if (!weighted_)
    return std::accumulate(values_.begin(), values_.end(), 0.0) /
           static_cast<double>(values_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) acc += values_[i] * weights_[i];
  return weight_sum_ > 0 ? acc / weight_sum_ : 0.0;
}

double SampleStats::sum() const {
  if (!weighted_) return std::accumulate(values_.begin(), values_.end(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) acc += values_[i] * weights_[i];
  return acc;
}

double SampleStats::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double SampleStats::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double SampleStats::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  if (!weighted_) {
    const double pos = q * static_cast<double>(values_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values_[lo] * (1.0 - frac) + values_[hi] * frac;
  }
  // Weighted quantile: first value whose cumulative weight reaches q.
  const double target = q * weight_sum_;
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    acc += weights_[i];
    if (acc >= target) return values_[i];
  }
  return values_.back();
}

double SampleStats::cdf(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (!weighted_) {
    const auto it = std::upper_bound(values_.begin(), values_.end(), x);
    return static_cast<double>(it - values_.begin()) /
           static_cast<double>(values_.size());
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size() && values_[i] <= x; ++i) acc += weights_[i];
  return weight_sum_ > 0 ? acc / weight_sum_ : 0.0;
}

std::vector<double> SampleStats::cdf_curve(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(cdf(x));
  return out;
}

BoxplotStats BoxplotStats::from(const SampleStats& s) {
  BoxplotStats b;
  if (s.empty()) return b;
  b.q1 = s.quantile(0.25);
  b.median = s.quantile(0.5);
  b.q3 = s.quantile(0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  // Whiskers extend to the most extreme sample inside the fences.
  b.whisker_lo = b.q3;
  b.whisker_hi = b.q1;
  bool any_lo = false, any_hi = false;
  for (double v : s.values()) {
    if (v >= lo_fence && (!any_lo || v < b.whisker_lo)) {
      b.whisker_lo = v;
      any_lo = true;
    }
    if (v <= hi_fence && (!any_hi || v > b.whisker_hi)) {
      b.whisker_hi = v;
      any_hi = true;
    }
  }
  if (!any_lo) b.whisker_lo = b.q1;
  if (!any_hi) b.whisker_hi = b.q3;
  return b;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ > 0 ? counts_[i] / total_ : 0.0;
}

double t_critical_95(std::size_t df) {
  // Two-sided 95% (i.e. t_{0.975}); exact to three decimals for df <= 30,
  // then the usual coarse steps down to the normal asymptote.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double ci95_halfwidth(const StreamingStats& s) {
  if (s.count() < 2) return 0.0;
  const double se =
      std::sqrt(s.sample_variance() / static_cast<double>(s.count()));
  return t_critical_95(s.count() - 1) * se;
}

std::vector<double> log_space(double lo, double hi, std::size_t n) {
  if (!(lo > 0) || !(hi > lo) || n < 2)
    throw std::invalid_argument("log_space: need 0<lo<hi, n>=2");
  std::vector<double> out(n);
  const double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                static_cast<double>(n - 1));
  return out;
}

std::vector<double> lin_space(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("lin_space: n>=2");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  return out;
}

}  // namespace acme::common
