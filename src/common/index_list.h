// Intrusive index-linked lists over a shared link arena.
//
// The scheduler keeps jobs (dense indices into the active trace) in FIFO
// queues and running pools. std::deque/vector give O(queued) mid-erase and
// O(running) erase(remove(...)) per completion — ~1.09 M times per six-month
// replay. An IndexList is a doubly-linked list whose prev/next pointers live
// in one shared IndexLinks arena indexed by job id, so membership moves are
// O(1) unlinks with zero allocation, while iteration order stays exactly
// insertion order (FCFS heads and youngest-victim selection depend on it, and
// test_determinism pins the resulting digests).
//
// Invariant required of callers: an element is in AT MOST ONE list per arena
// at a time (the scheduler's jobs are queued xor running, never both).
// erase() on an element that is not in the list is undefined — guard with an
// explicit membership bit where needed (the scheduler's placement emptiness
// already encodes it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace acme::common {

inline constexpr std::uint32_t kIndexNpos = 0xffffffffu;

// The shared prev/next arrays. Several IndexLists may thread through one
// arena as long as each element belongs to at most one of them.
struct IndexLinks {
  std::vector<std::uint32_t> prev;
  std::vector<std::uint32_t> next;

  void assign(std::size_t n) {
    prev.assign(n, kIndexNpos);
    next.assign(n, kIndexNpos);
  }
  std::size_t size() const { return prev.size(); }
};

class IndexList {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint32_t front() const { return head_; }
  std::uint32_t back() const { return tail_; }

  void clear(IndexLinks& links) {
    // Unthread every member so the arena can be reused by later inserts.
    for (std::uint32_t i = head_; i != kIndexNpos;) {
      const std::uint32_t nxt = links.next[i];
      links.prev[i] = links.next[i] = kIndexNpos;
      i = nxt;
    }
    head_ = tail_ = kIndexNpos;
    size_ = 0;
  }

  void push_back(IndexLinks& links, std::uint32_t i) {
    ACME_CHECK_MSG(i < links.size(), "index outside the link arena");
    links.prev[i] = tail_;
    links.next[i] = kIndexNpos;
    if (tail_ != kIndexNpos)
      links.next[tail_] = i;
    else
      head_ = i;
    tail_ = i;
    ++size_;
  }

  // O(1) unlink. `i` must currently be in THIS list.
  void erase(IndexLinks& links, std::uint32_t i) {
    ACME_CHECK_MSG(size_ > 0, "erase from an empty IndexList");
    const std::uint32_t p = links.prev[i];
    const std::uint32_t n = links.next[i];
    if (p != kIndexNpos)
      links.next[p] = n;
    else
      head_ = n;
    if (n != kIndexNpos)
      links.prev[n] = p;
    else
      tail_ = p;
    links.prev[i] = links.next[i] = kIndexNpos;
    --size_;
  }

  std::uint32_t pop_front(IndexLinks& links) {
    const std::uint32_t i = head_;
    ACME_CHECK_MSG(i != kIndexNpos, "pop_front from an empty IndexList");
    erase(links, i);
    return i;
  }

  // Successor in iteration (insertion) order; kIndexNpos past the tail.
  // Capture the successor BEFORE unlinking the current element: the pattern
  //   for (u32 i = list.front(); i != kIndexNpos;) {
  //     u32 nxt = links.next[i];  // survives erase(i) and push_back at tail
  //     ...maybe erase(i)...
  //     i = nxt;
  //   }
  // stays valid under erase-current and under appends during iteration.
  static std::uint32_t next_of(const IndexLinks& links, std::uint32_t i) {
    return links.next[i];
  }

  // Copies the list front-to-back into `out` (cleared first, capacity kept).
  template <typename Vec>
  void copy_to(const IndexLinks& links, Vec& out) const {
    out.clear();
    for (std::uint32_t i = head_; i != kIndexNpos; i = links.next[i])
      out.push_back(i);
  }

 private:
  std::uint32_t head_ = kIndexNpos;
  std::uint32_t tail_ = kIndexNpos;
  std::size_t size_ = 0;
};

}  // namespace acme::common
