// Inline-storage vector: the first N elements live inside the object, so the
// overwhelmingly common small case (an Allocation's one or two node slices, a
// recovery tick's handful of cordoned nodes) costs zero heap traffic; larger
// sizes spill to the heap transparently. Only what the hot paths need —
// push_back / clear / indexing / iteration — deliberately not a full
// std::vector clone.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>

namespace acme::common {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is specialized for POD-ish payloads (slices, ids)");

 public:
  using value_type = T;

  SmallVec() = default;
  SmallVec(const SmallVec& other) { assign_from(other); }
  SmallVec(SmallVec&& other) noexcept { steal_from(other); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      release_heap();
      assign_from(other);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release_heap();
      steal_from(other);
    }
    return *this;
  }
  ~SmallVec() { release_heap(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool inline_storage() const { return heap_ == nullptr; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  // Keeps any heap block around: a cleared SmallVec refills with no new
  // allocation, which is the whole point of the reuse paths.
  void clear() { size_ = 0; }

  void reserve(std::size_t want) {
    if (want > capacity_) grow_to(want);
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow_to(capacity_ * 2);
    data()[size_++] = v;
  }

 private:
  void grow_to(std::size_t want) {
    std::size_t cap = capacity_;
    while (cap < want) cap *= 2;
    T* block = new T[cap];
    std::memcpy(static_cast<void*>(block), data(), size_ * sizeof(T));
    release_heap();
    heap_ = block;
    capacity_ = cap;
  }
  void release_heap() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }
  void assign_from(const SmallVec& other) {
    size_ = 0;
    reserve(other.size_);
    std::memcpy(static_cast<void*>(data()), other.data(),
                other.size_ * sizeof(T));
    size_ = other.size_;
  }
  void steal_from(SmallVec& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    } else {
      std::memcpy(static_cast<void*>(inline_), other.inline_,
                  other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace acme::common
