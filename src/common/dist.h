// Parametric distributions fitted from published summary statistics.
//
// The paper reports medians and means (Table 3, §3.1 durations). A lognormal
// is uniquely determined by a (median, mean) pair with mean >= median:
//   median = exp(mu)          => mu    = ln(median)
//   mean   = exp(mu + s^2/2)  => sigma = sqrt(2 ln(mean / median))
// This lets every sampler in the workload synthesizer and failure injector be
// derived from numbers printed in the paper rather than invented.
#pragma once

#include <vector>

#include "common/rng.h"

namespace acme::common {

// Lognormal distribution parameterised directly by its median and mean.
class LognormalFromStats {
 public:
  // Requires median > 0 and mean >= median. If mean < median (impossible for
  // a lognormal; occurs in noisy table rows), sigma collapses to 0 and the
  // distribution degenerates to the median.
  LognormalFromStats(double median, double mean);

  double sample(Rng& rng) const;
  double median() const;
  double mean() const;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

// Bounded Pareto for heavy-tailed quantities (e.g. job durations with a
// known median and a bounded maximum such as the trace length).
class BoundedPareto {
 public:
  // alpha > 0 shape, 0 < lo < hi.
  BoundedPareto(double alpha, double lo, double hi);
  double sample(Rng& rng) const;

 private:
  double alpha_, lo_, hi_;
};

// A discrete empirical distribution: sample one of the listed values with the
// paired weights. Used for GPU-demand distributions where the paper pins the
// mass at powers of two.
class DiscreteDist {
 public:
  DiscreteDist(std::vector<double> values, std::vector<double> weights);
  double sample(Rng& rng) const;
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> values_;
  std::vector<double> weights_;
};

// Mixture of two lognormals; lets us match both a short-job mode and a
// heavy pretraining tail within one workload type.
class LognormalMixture {
 public:
  LognormalMixture(LognormalFromStats a, LognormalFromStats b, double weight_a);
  double sample(Rng& rng) const;

 private:
  LognormalFromStats a_, b_;
  double weight_a_;
};

}  // namespace acme::common
