// FNV-1a 64-bit digests for golden tests: cheap, dependency-free content
// hashing used to pin byte-identical artifacts (metric snapshots, trace
// files) across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace acme::common {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

// One-shot digest of a byte string.
std::uint64_t fnv1a(std::string_view bytes);

// Incremental digest for streamed content.
class Fnv1a {
 public:
  Fnv1a& update(std::string_view bytes);
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnv1aOffset;
};

// Lower-case 16-char hex rendering, for stable golden strings in logs.
std::string fnv1a_hex(std::uint64_t digest);

}  // namespace acme::common
