// Small-buffer move-only callable with NO heap fallback.
//
// std::function<void()> heap-allocates once per capture larger than its tiny
// internal buffer — on the simulation hot path that is one malloc/free pair
// per scheduled event, millions per six-month replay. InlineFn<N> stores the
// capture inline and makes "too big" a compile-time error instead of a silent
// allocation, so the event spine stays allocation-free by construction.
//
// Contract:
//  - move-only (the engine moves callbacks into slots and out to fire them);
//  - the wrapped callable must fit in N bytes, be alignable within
//    max_align_t, and be nothrow-move-constructible (checked at compile time
//    via fits<F>(), so a capture that grows past the budget fails the build
//    at the schedule_at call site, not at runtime in a replay);
//  - empty InlineFns (default / nullptr-constructed / moved-from) are falsy;
//    invoking one is a programming error (ACME_CHECK at the call site).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace acme::common {

template <std::size_t Capacity>
class InlineFn {
 public:
  // True when F can live inline: fits the byte budget, is at most
  // pointer-aligned (the buffer is not max_align_t-aligned so that an
  // InlineFn packs tightly next to its owner's bookkeeping — e.g. the
  // engine's 64-byte event slots), and can be relocated without throwing
  // (moves happen inside noexcept engine bookkeeping).
  template <typename F>
  static constexpr bool fits() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: mirrors std::function's nullptr ctor

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& fn) {  // NOLINT: implicit, like std::function
    emplace(std::forward<F>(fn));
  }

  // Constructs the callable directly in the inline buffer (dropping any
  // previous occupant) — the zero-move path used by Engine slots.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(fits<Fn>(),
                  "capture too large (or over-aligned / throwing-move) for "
                  "InlineFn's inline buffer; shrink the capture or raise N");
    reset();
    ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* self) { (*static_cast<Fn*>(self))(); };
    // Trivially relocatable captures (the common case: lambdas over PODs and
    // raw pointers) keep relocate_ null, so moves are a fixed-size memcpy and
    // destruction is free — no indirect call per event move. Only captures
    // with real move/destroy semantics (shared_ptr, std::function members)
    // pay for a manager.
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      relocate_ = [](void* self, void* dst) noexcept {
        Fn* from = static_cast<Fn*>(self);
        if (dst != nullptr) ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  // Drops the held callable (if any); the InlineFn becomes empty.
  void reset() noexcept {
    if (relocate_ != nullptr) relocate_(buffer_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }
  InlineFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buffer_); }

 private:
  void move_from(InlineFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.relocate_ != nullptr)
      other.relocate_(other.buffer_, buffer_);
    else
      std::memcpy(buffer_, other.buffer_, Capacity);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(void*) unsigned char buffer_[Capacity];
  void (*invoke_)(void*) = nullptr;
  // Moves the capture to `dst` (when non-null) and destroys the source; with
  // dst == nullptr it is a plain destructor call.
  void (*relocate_)(void* self, void* dst) noexcept = nullptr;
};

}  // namespace acme::common
