#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace acme::common {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

double safe_log(double v) { return std::log10(std::max(v, 1e-12)); }

}  // namespace

std::string plot_lines(const std::vector<Series>& series, std::size_t width,
                       std::size_t height, bool log_x, const std::string& x_label,
                       const std::string& y_label) {
  if (series.empty() || width < 8 || height < 4) return "(empty plot)\n";

  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const auto& s : series) {
    for (double x : s.xs) {
      const double v = log_x ? safe_log(x) : x;
      xmin = std::min(xmin, v);
      xmax = std::max(xmax, v);
    }
    for (double y : s.ys) {
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  if (xmax <= xmin) xmax = xmin + 1;
  if (ymax <= ymin) ymax = ymin + 1;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = series[si];
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double xv = log_x ? safe_log(s.xs[i]) : s.xs[i];
      auto col = static_cast<std::size_t>((xv - xmin) / (xmax - xmin) *
                                          static_cast<double>(width - 1));
      auto row = static_cast<std::size_t>((s.ys[i] - ymin) / (ymax - ymin) *
                                          static_cast<double>(height - 1));
      col = std::min(col, width - 1);
      row = std::min(row, height - 1);
      canvas[height - 1 - row][col] = glyph;
    }
  }

  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%8.3g |", ymax);
  out << y_label << "\n";
  out << buf << canvas[0] << "\n";
  for (std::size_t r = 1; r + 1 < height; ++r) out << "         |" << canvas[r] << "\n";
  std::snprintf(buf, sizeof(buf), "%8.3g |", ymin);
  out << buf << canvas[height - 1] << "\n";
  out << "         +" << std::string(width, '-') << "\n";
  std::snprintf(buf, sizeof(buf), "%.3g", log_x ? std::pow(10.0, xmin) : xmin);
  std::string lo = buf;
  std::snprintf(buf, sizeof(buf), "%.3g", log_x ? std::pow(10.0, xmax) : xmax);
  std::string hi = buf;
  out << "          " << lo
      << std::string(width > lo.size() + hi.size() ? width - lo.size() - hi.size() : 1,
                     ' ')
      << hi << (log_x ? "  (log x) " : "  ") << x_label << "\n";
  for (std::size_t si = 0; si < series.size(); ++si)
    out << "          " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].name
        << "\n";
  return out.str();
}

std::string plot_bars(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width, const std::string& unit) {
  double maxv = 0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    maxv = std::max(maxv, v);
    label_w = std::max(label_w, label.size());
  }
  if (maxv <= 0) maxv = 1;
  std::ostringstream out;
  for (const auto& [label, v] : bars) {
    const auto n = static_cast<std::size_t>(v / maxv * static_cast<double>(width));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10.2f %s", v, unit.c_str());
    out << "  " << label << std::string(label_w - label.size(), ' ') << " |"
        << std::string(n, '#') << std::string(width - n, ' ') << "|" << buf << "\n";
  }
  return out.str();
}

std::string sparkline(const std::vector<double>& values, std::size_t cols) {
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty() || cols == 0) return "";
  std::ostringstream out;
  const std::size_t per = std::max<std::size_t>(1, values.size() / cols);
  for (std::size_t i = 0; i + per <= values.size(); i += per) {
    double acc = 0;
    for (std::size_t j = i; j < i + per; ++j) acc += values[j];
    const double v = std::clamp(acc / static_cast<double>(per), 0.0, 1.0);
    out << kBlocks[static_cast<std::size_t>(v * 7.999)];
  }
  return out.str();
}

}  // namespace acme::common
