#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace acme::common {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a over a label, used to derive child stream seeds.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_material_(seed) {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
}

Rng Rng::fork(std::string_view label) const {
  return Rng(seed_material_ ^ hash_label(label) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free for our purposes: modulo bias is < 2^-40 for spans we use.
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace acme::common
