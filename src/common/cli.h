// Strict command-line flag parsing for the bench harness.
//
// Every bench shares the same tiny grammar: `--flag value` pairs plus
// `--help`. Flags must be declared up front; an unknown flag, a missing
// value, or a stray positional argument is a parse error with a usage
// message — silently ignoring unknown flags masked typos like `--replica`
// for `--replicas`, which is exactly the failure mode this replaces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace acme::common {

// Levenshtein edit distance, the metric behind every "did you mean"
// suggestion (FlagSet's unknown flags, world's unknown scenario keys).
std::size_t edit_distance(const std::string& a, const std::string& b);

class FlagSet {
 public:
  // `program` is argv[0]; `description` heads the usage text.
  explicit FlagSet(std::string program, std::string description = "");

  // Declares `--name <value>` flags writing through to caller-owned storage.
  // The target's current value is shown as the default in usage().
  void add(const std::string& name, std::string* target, const std::string& help);
  void add(const std::string& name, std::uint64_t* target, const std::string& help);
  void add(const std::string& name, double* target, const std::string& help);

  // Parses argv[1..]; returns true on success. On failure returns false and
  // fills `error` (if given) with a one-line reason. `--help` parses
  // successfully and sets help_requested().
  bool parse(int argc, char** argv, std::string* error = nullptr);

  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  struct Flag {
    std::string name;  // including the leading "--"
    std::string help;
    std::string default_value;
    // Returns false if the value does not parse.
    std::function<bool(const std::string&)> assign;
  };
  void add_flag(const std::string& name, const std::string& help,
                std::string default_value,
                std::function<bool(const std::string&)> assign);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace acme::common
