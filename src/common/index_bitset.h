// Fixed-capacity ordered index set on a word-packed bitmap.
//
// ClusterState keys nodes by free-GPU count; every allocate/release moves a
// node between buckets. With std::set<NodeId> that is a red-black-tree node
// malloc/free per move — two per placement, millions per replay. IndexBitSet
// packs membership into u64 words: insert/erase are branch-free bit ops,
// first()/next() use countr_zero, and iteration is ascending-index order —
// exactly std::set<int>'s iteration order, which the deterministic placement
// policy (smallest node id first) and the pinned digests rely on.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace acme::common {

class IndexBitSet {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  IndexBitSet() = default;
  explicit IndexBitSet(std::size_t capacity) { resize(capacity); }

  // Grows/shrinks capacity; membership of surviving indices is preserved.
  void resize(std::size_t capacity) {
    capacity_ = capacity;
    words_.resize((capacity + 63) / 64, 0);
  }
  std::size_t capacity() const { return capacity_; }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  bool contains(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  // Idempotent: inserting a member / erasing a non-member is a no-op, so the
  // count stays exact without caller-side bookkeeping.
  void insert(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ += ((w & bit) == 0);
    w |= bit;
  }
  void erase(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    count_ -= ((w & bit) != 0);
    w &= ~bit;
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  // Smallest member, or npos when empty.
  std::size_t first() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      if (words_[wi] != 0)
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    return npos;
  }

  // Smallest member strictly greater than `i`, or npos.
  std::size_t next(std::size_t i) const {
    std::size_t wi = (i + 1) >> 6;
    if (wi >= words_.size()) return npos;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << ((i + 1) & 63));
    while (true) {
      if (w != 0) return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi >= words_.size()) return npos;
      w = words_[wi];
    }
  }

  // Appends members in ascending order to `out` (not cleared: callers batch).
  template <typename Vec>
  void append_to(Vec& out) const {
    for (std::size_t i = first(); i != npos; i = next(i))
      out.push_back(static_cast<typename Vec::value_type>(i));
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

}  // namespace acme::common
