// Deterministic random number generation for AcmeSim.
//
// Every stochastic component in the simulator draws from an acme::common::Rng.
// Streams are derived from (seed, name) pairs so that adding a new consumer
// never perturbs the draws of existing ones — a requirement for reproducible
// experiments (DESIGN.md §5 "Determinism").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace acme::common {

// Full generator state, exposed as a POD so snapshot code (acme::snap) can
// persist and reinstate a stream mid-sequence without this header depending
// on the snapshot format. `words` is the xoshiro256** state; `seed_material`
// is the original seed the fork() labels hash against.
struct RngState {
  std::uint64_t words[4] = {0, 0, 0, 0};
  std::uint64_t seed_material = 0;
};

// xoshiro256** by Blackman & Vigna. Small, fast, and high quality; we avoid
// std::mt19937_64 because its state is large and its seeding is awkward for
// derived streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the generator via splitmix64 so that nearby seeds give independent
  // streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent child stream from this generator's seed material
  // and a label. The parent's state is not advanced.
  [[nodiscard]] Rng fork(std::string_view label) const;

  // Snapshot support: the exact mid-stream state, restorable bit-for-bit.
  RngState state() const {
    return RngState{{state_[0], state_[1], state_[2], state_[3]},
                    seed_material_};
  }
  void set_state(const RngState& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    seed_material_ = s.seed_material;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();
  double normal(double mean, double stddev);
  // Lognormal with the given underlying normal parameters.
  double lognormal(double mu, double sigma);
  // Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  // Bernoulli trial.
  bool bernoulli(double p);
  // Samples an index according to non-negative weights (need not sum to 1).
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_material_;
};

}  // namespace acme::common
