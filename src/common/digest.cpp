#include "common/digest.h"

#include <cstdio>

namespace acme::common {

std::uint64_t fnv1a(std::string_view bytes) {
  return Fnv1a().update(bytes).digest();
}

Fnv1a& Fnv1a::update(std::string_view bytes) {
  std::uint64_t h = state_;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  state_ = h;
  return *this;
}

std::string fnv1a_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace acme::common
