#include "common/cli.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace acme::common {

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

// Levenshtein distance for "did you mean" suggestions on unknown flags and
// scenario keys.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev = cur;
    }
  }
  return row[b.size()];
}

FlagSet::FlagSet(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void FlagSet::add_flag(const std::string& name, const std::string& help,
                       std::string default_value,
                       std::function<bool(const std::string&)> assign) {
  ACME_CHECK_MSG(name.rfind("--", 0) == 0, "flag names start with --");
  for (const Flag& f : flags_) ACME_CHECK_MSG(f.name != name, "duplicate flag");
  flags_.push_back({name, help, std::move(default_value), std::move(assign)});
}

void FlagSet::add(const std::string& name, std::string* target,
                  const std::string& help) {
  add_flag(name, help, *target, [target](const std::string& v) {
    *target = v;
    return true;
  });
}

void FlagSet::add(const std::string& name, std::uint64_t* target,
                  const std::string& help) {
  add_flag(name, help, std::to_string(*target),
           [target](const std::string& v) { return parse_u64(v, target); });
}

void FlagSet::add(const std::string& name, double* target,
                  const std::string& help) {
  add_flag(name, help, std::to_string(*target), [target](const std::string& v) {
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size()) return false;
    *target = parsed;
    return true;
  });
}

bool FlagSet::parse(int argc, char** argv, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0)
      return fail("unexpected positional argument '" + arg + "'");
    const auto it = std::find_if(flags_.begin(), flags_.end(),
                                 [&](const Flag& f) { return f.name == arg; });
    if (it == flags_.end()) {
      std::string msg = "unknown flag " + arg;
      const Flag* best = nullptr;
      std::size_t best_distance = 3;  // suggest only near-misses
      for (const Flag& f : flags_) {
        const std::size_t d = edit_distance(arg, f.name);
        if (d < best_distance) {
          best_distance = d;
          best = &f;
        }
      }
      if (best) msg += " (did you mean " + best->name + "?)";
      return fail(msg);
    }
    if (i + 1 >= argc) return fail("missing value for " + arg);
    const std::string value = argv[++i];
    if (!it->assign(value))
      return fail("bad value '" + value + "' for " + arg);
  }
  return true;
}

std::string FlagSet::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const Flag& f : flags_) out << " [" << f.name << " <value>]";
  out << "\n";
  if (!description_.empty()) out << description_ << "\n";
  for (const Flag& f : flags_) {
    out << "  " << f.name;
    for (std::size_t pad = f.name.size(); pad < 16; ++pad) out << ' ';
    out << f.help << " (default: " << f.default_value << ")\n";
  }
  return out.str();
}

}  // namespace acme::common
