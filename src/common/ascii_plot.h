// Minimal ASCII plotting for bench output: CDF curves, timelines and bar
// charts that mirror the paper's figures in a terminal.
#pragma once

#include <string>
#include <vector>

namespace acme::common {

struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

// Renders one or more (x, y) series on a shared canvas. Each series gets a
// distinct glyph. x may be log-scaled (for duration/delay CDFs).
std::string plot_lines(const std::vector<Series>& series, std::size_t width,
                       std::size_t height, bool log_x, const std::string& x_label,
                       const std::string& y_label);

// Horizontal bar chart: label -> value, scaled to `width` characters.
std::string plot_bars(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width, const std::string& unit);

// Renders a utilization timeline (values in [0, 1]) as a one-line sparkline
// per chunk of `cols` samples using block glyphs.
std::string sparkline(const std::vector<double>& values, std::size_t cols);

}  // namespace acme::common
