#include "common/dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acme::common {

LognormalFromStats::LognormalFromStats(double median, double mean) {
  if (median <= 0) throw std::invalid_argument("LognormalFromStats: median must be > 0");
  mu_ = std::log(median);
  const double ratio = mean / median;
  sigma_ = ratio > 1.0 ? std::sqrt(2.0 * std::log(ratio)) : 0.0;
}

double LognormalFromStats::sample(Rng& rng) const { return rng.lognormal(mu_, sigma_); }

double LognormalFromStats::median() const { return std::exp(mu_); }

double LognormalFromStats::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (!(alpha > 0) || !(lo > 0) || !(hi > lo))
    throw std::invalid_argument("BoundedPareto: need alpha>0, 0<lo<hi");
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse CDF of the bounded Pareto.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

DiscreteDist::DiscreteDist(std::vector<double> values, std::vector<double> weights)
    : values_(std::move(values)), weights_(std::move(weights)) {
  if (values_.empty() || values_.size() != weights_.size())
    throw std::invalid_argument("DiscreteDist: values/weights size mismatch");
}

double DiscreteDist::sample(Rng& rng) const { return values_[rng.categorical(weights_)]; }

LognormalMixture::LognormalMixture(LognormalFromStats a, LognormalFromStats b,
                                   double weight_a)
    : a_(a), b_(b), weight_a_(std::clamp(weight_a, 0.0, 1.0)) {}

double LognormalMixture::sample(Rng& rng) const {
  return rng.bernoulli(weight_a_) ? a_.sample(rng) : b_.sample(rng);
}

}  // namespace acme::common
