// Tiny CSV reader/writer for trace import/export. Handles quoting of fields
// containing commas/quotes/newlines; good enough for our own trace format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace acme::common {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}
  // Returns false at EOF.
  bool read_row(std::vector<std::string>& cells);

 private:
  std::istream& in_;
};

std::string csv_escape(const std::string& field);

}  // namespace acme::common
