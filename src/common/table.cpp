#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace acme::common {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == ',' || c == 'e' || c == 'x'))
      return false;
  }
  return std::isdigit(static_cast<unsigned char>(s.front())) || s.front() == '-' ||
         s.front() == '+' || s.front() == '.';
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::integer(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", std::round(v));
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      out << "| ";
      if (looks_numeric(cell)) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << ' ';
    }
    out << "|\n";
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return out.str();
}

}  // namespace acme::common
