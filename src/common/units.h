// Unit constants and formatting helpers shared across the simulator.
// Simulation time is expressed in seconds (double); data sizes in bytes
// (double, so TB-scale model states don't overflow intermediate math).
#pragma once

#include <string>

namespace acme::common {

// --- time ---
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;
constexpr double kDay = 24 * kHour;

// --- data sizes ---
constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;
constexpr double kTiB = 1024.0 * kGiB;
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;
constexpr double kTB = 1e12;

// --- bandwidth (bytes/second) ---
constexpr double gbps_to_Bps(double gbps) { return gbps * 1e9 / 8.0; }

// "2.0 min", "3.4 h", "1.2 d" style formatting for table cells.
std::string format_duration(double seconds);
// "60.0 GB", "1.7 TB" formatting.
std::string format_bytes(double bytes);

}  // namespace acme::common
