// Statistics accumulators used by the characterization benches: streaming
// moments, quantiles/CDFs from retained samples, histograms and boxplot
// five-number summaries (Fig 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace acme::common {

// Welford streaming mean/variance with min/max. O(1) memory; used for fleet
// metrics where retaining every sample would be wasteful.
class StreamingStats {
 public:
  void add(double x);
  // Folds another accumulator in (Chan et al. pairwise update), as if every
  // sample of `other` had been added here. Used to combine per-replica /
  // per-shard accumulators after a parallel phase.
  void merge(const StreamingStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  // Unbiased (n-1) variance, the one confidence intervals want; 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Snapshot support (acme::snap): the full accumulator state as a POD, so a
  // restored accumulator continues the stream bit-identically.
  struct State {
    std::uint64_t n = 0;
    double mean = 0, m2 = 0, min = 0, max = 0, sum = 0;
  };
  State state() const { return State{n_, mean_, m2_, min_, max_, sum_}; }
  void set_state(const State& s) {
    n_ = static_cast<std::size_t>(s.n);
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
    sum_ = s.sum;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Retains samples; supports exact quantiles and CDF evaluation. The traces we
// synthesize are ~1M rows, which comfortably fits in memory.
class SampleStats {
 public:
  void add(double x);
  void add_weighted(double x, double weight);
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  // q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  // Fraction of mass with value <= x (weighted if weights were supplied).
  double cdf(double x) const;
  // Evaluates the CDF at each of the given points.
  std::vector<double> cdf_curve(const std::vector<double>& xs) const;
  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable std::vector<double> weights_;
  mutable bool sorted_ = true;
  mutable bool weighted_ = false;
  double weight_sum_ = 0.0;
};

// Five-number summary with 1.5x IQR whiskers, as drawn in the paper's Fig 5.
struct BoxplotStats {
  double whisker_lo = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_hi = 0;
  static BoxplotStats from(const SampleStats& s);
};

// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x, double weight = 1.0);
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  // Fraction of mass in bin i.
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Two-sided Student-t critical value at 95% confidence for `df` degrees of
// freedom (table for small df, 1.96 asymptote).
double t_critical_95(std::size_t df);
// Half-width of the t-based 95% confidence interval of the mean of the
// accumulated samples: t * s / sqrt(n). Zero until two samples are present.
double ci95_halfwidth(const StreamingStats& s);

// Log-spaced points between lo and hi (inclusive), for CDF x-axes that the
// paper plots on log scale (durations, queuing delays).
std::vector<double> log_space(double lo, double hi, std::size_t n);
// Linearly spaced points.
std::vector<double> lin_space(double lo, double hi, std::size_t n);

}  // namespace acme::common
