#include "common/csv.h"

#include <istream>
#include <ostream>

namespace acme::common {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& cells) {
  cells.clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  char c;
  while (in_.get(c)) {
    any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in_.peek() == '"') {
          in_.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      cells.push_back(std::move(field));
      return true;
    } else if (c == '\r') {
      // swallow; \n will terminate the row
    } else {
      field += c;
    }
  }
  if (any) {
    cells.push_back(std::move(field));
    return true;
  }
  return false;
}

}  // namespace acme::common
