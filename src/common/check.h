// Invariant checking. ACME_CHECK throws acme::common::CheckError so that unit
// tests can assert on violated invariants; we deliberately avoid assert() so
// checks stay active in release builds (Core Guidelines I.6/E.12 spirit:
// report precondition violations through a well-defined channel).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace acme::common {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream out;
  out << "ACME_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) out << " — " << msg;
  throw CheckError(out.str());
}

}  // namespace acme::common

#define ACME_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) ::acme::common::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define ACME_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) ::acme::common::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
