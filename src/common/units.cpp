#include "common/units.h"

#include <cstdio>

namespace acme::common {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else if (seconds < kHour) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / kMinute);
  } else if (seconds < kDay) {
    std::snprintf(buf, sizeof(buf), "%.1f h", seconds / kHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f d", seconds / kDay);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes < kKB) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < kMB) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / kKB);
  } else if (bytes < kGB) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / kMB);
  } else if (bytes < kTB) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", bytes / kGB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f TB", bytes / kTB);
  }
  return buf;
}

}  // namespace acme::common
