#include "serve/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace acme::serve {

double TrafficProfile::rate_norm() const {
  // Long-run rate = norm * ((1 - f) + f * multiplier) * mean; solve for norm.
  const double f = burst_fraction;
  return 1.0 / ((1.0 - f) + f * burst_multiplier);
}

double TrafficProfile::peak_rps() const {
  return mean_rps * rate_norm() * (1.0 + diurnal_amplitude) * burst_multiplier;
}

ArrivalProcess::ArrivalProcess(TrafficProfile profile, std::uint64_t seed)
    : profile_(profile),
      rng_(common::Rng(seed).fork("serve-arrivals")),
      state_rng_(common::Rng(seed).fork("serve-mmpp")) {
  ACME_CHECK_MSG(profile_.mean_rps >= 0, "negative request rate");
  ACME_CHECK_MSG(
      profile_.diurnal_amplitude >= 0 && profile_.diurnal_amplitude <= 1,
      "diurnal amplitude must be in [0, 1]");
  ACME_CHECK_MSG(profile_.burst_multiplier >= 1, "burst multiplier must be >= 1");
  ACME_CHECK_MSG(profile_.burst_fraction >= 0 && profile_.burst_fraction < 1,
                 "burst fraction must be in [0, 1)");
  ACME_CHECK_MSG(profile_.diurnal_period_seconds > 0, "diurnal period must be > 0");
  norm_ = profile_.rate_norm();
  peak_ = profile_.peak_rps();
}

void ArrivalProcess::advance_state(double t) {
  const bool bursty =
      profile_.burst_fraction > 0 && profile_.burst_multiplier > 1;
  if (!bursty) return;
  const double burst_dwell = std::max(profile_.burst_dwell_seconds, 1e-9);
  const double base_dwell =
      burst_dwell * (1.0 - profile_.burst_fraction) / profile_.burst_fraction;
  while (state_until_ <= t) {
    burst_ = !burst_;
    state_until_ +=
        state_rng_.exponential(1.0 / (burst_ ? burst_dwell : base_dwell));
  }
}

double ArrivalProcess::rate_at(double t) {
  advance_state(t);
  const double diurnal =
      1.0 + profile_.diurnal_amplitude *
                std::sin(2.0 * M_PI * t / profile_.diurnal_period_seconds);
  double rate = profile_.mean_rps * norm_ * diurnal;
  if (burst_) rate *= profile_.burst_multiplier;
  return rate;
}

double ArrivalProcess::next_interarrival(double now) {
  if (profile_.mean_rps <= 0 || peak_ <= 0)
    return std::numeric_limits<double>::infinity();
  double t = now;
  for (;;) {
    t += rng_.exponential(peak_);
    if (rng_.uniform() * peak_ <= rate_at(t)) return t - now;
  }
}

RequestSample ArrivalProcess::sample_request() {
  const auto clamp_tokens = [&](double mean, std::int32_t lo) {
    const double drawn = rng_.exponential(1.0 / std::max(mean, 1.0));
    const double v = std::min(drawn, static_cast<double>(profile_.max_tokens));
    return std::max(lo, static_cast<std::int32_t>(v));
  };
  RequestSample s;
  s.prompt_tokens = clamp_tokens(profile_.prompt_tokens_mean, 1);
  s.output_tokens = clamp_tokens(profile_.output_tokens_mean, 2);
  return s;
}

}  // namespace acme::serve
