#include "serve/model.h"

#include <algorithm>

#include "common/check.h"

namespace acme::serve {

double kv_bytes_per_token(const parallel::TransformerConfig& cfg) {
  return 2.0 * 2.0 * static_cast<double>(cfg.layers) *
         static_cast<double>(cfg.hidden);
}

ReplicaCostModel::ReplicaCostModel(parallel::TransformerConfig cfg,
                                   ReplicaHardware hw,
                                   const comm::CollectiveModel& fabric)
    : cfg_(std::move(cfg)), hw_(hw) {
  ACME_CHECK_MSG(hw_.gpus > 0, "replica needs at least one GPU");
  weight_bytes_ = parallel::mixed_precision_anatomy(cfg_.params()).param_bytes;
  kv_per_token_ = serve::kv_bytes_per_token(cfg_);
  const double usable =
      static_cast<double>(hw_.gpus) *
          (hw_.gpu_memory_bytes - hw_.workspace_bytes_per_gpu) -
      weight_bytes_;
  ACME_CHECK_MSG(usable > kv_per_token_,
                 "model weights do not leave KV-cache room on this replica");
  kv_capacity_tokens_ = static_cast<std::uint64_t>(usable / kv_per_token_);
  forward_flops_per_token_ = cfg_.train_flops_per_token() / 3.0;
  replica_flops_ = static_cast<double>(hw_.gpus) * hw_.peak_flops_per_gpu *
                   hw_.flops_efficiency;
  replica_hbm_ = static_cast<double>(hw_.gpus) * hw_.hbm_bytes_per_second;

  // Linearize the per-layer tensor-parallel all-reduce (Megatron runs two per
  // layer on the token path). The collective cost is affine in payload bytes,
  // so two evaluations recover the latency floor and the per-byte slope; the
  // hot path then prices any batch without touching the fabric again.
  const comm::World tp{hw_.gpus, 0, 0, 1};
  const double bytes1 = 2.0 * static_cast<double>(cfg_.hidden);      // 1 token
  const double bytes2 = 2.0 * bytes1;                                // 2 tokens
  const double c1 = fabric.all_reduce(tp, bytes1).seconds();
  const double c2 = fabric.all_reduce(tp, bytes2).seconds();
  const double per_token = std::max(0.0, c2 - c1);
  const double alpha = std::max(0.0, c1 - per_token);
  const double ops = 2.0 * static_cast<double>(cfg_.layers);
  tp_alpha_per_step_ = ops * alpha;
  tp_beta_per_token_ = ops * per_token;
}

double ReplicaCostModel::prefill_seconds(std::uint64_t prompt_tokens) const {
  const double tokens = static_cast<double>(prompt_tokens);
  const double compute = tokens * forward_flops_per_token_ / replica_flops_;
  const double comm = tp_alpha_per_step_ + tokens * tp_beta_per_token_;
  return compute + comm;
}

double ReplicaCostModel::decode_step_seconds(
    int batch, std::uint64_t resident_kv_tokens) const {
  const double b = static_cast<double>(std::max(batch, 1));
  const double hbm_bytes =
      weight_bytes_ + static_cast<double>(resident_kv_tokens) * kv_per_token_;
  const double memory = hbm_bytes / replica_hbm_;
  const double compute = b * forward_flops_per_token_ / replica_flops_;
  const double comm = tp_alpha_per_step_ + b * tp_beta_per_token_;
  return std::max(memory, compute) + comm;
}

}  // namespace acme::serve
