// Open-loop request arrival from a modeled user population (DESIGN.md §11).
//
// The arrival intensity is a diurnal sinusoid (a day-long period, users sleep)
// modulated by a two-state Markov-modulated Poisson process: a background
// state at the base rate and a burst state at `burst_multiplier` times it,
// with exponential dwell times. The base rate is normalized so the long-run
// mean equals `mean_rps` regardless of burstiness. Arrivals are sampled by
// thinning against the peak envelope, which keeps the process exact for any
// rate shape while costing O(1) amortized draws per request.
//
// Determinism: arrivals and request shapes draw from one forked Rng stream
// ("serve-arrivals") and the MMPP state transitions from another
// ("serve-mmpp"), so the rate trajectory is independent of how many thinning
// candidates were rejected — the same (seed, profile) always yields the same
// request sequence.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace acme::serve {

struct TrafficProfile {
  double mean_rps = 100.0;  // long-run offered requests/second; 0 = no traffic
  // Sinusoid: rate swings ±amplitude around the mean over one period.
  double diurnal_amplitude = 0.5;  // in [0, 1]
  double diurnal_period_seconds = common::kDay;
  // MMPP burst state: rate multiplier, long-run fraction of time bursting,
  // and mean dwell per burst. burst_multiplier == 1 degenerates to an
  // inhomogeneous Poisson process.
  double burst_multiplier = 3.0;  // >= 1
  double burst_fraction = 0.1;    // in [0, 1)
  double burst_dwell_seconds = 60.0;
  // Request shape: exponentially distributed token counts around the means.
  // Outputs are clamped to >= 2 so every request takes at least one decode
  // step (the first output token comes out of prefill).
  double prompt_tokens_mean = 512.0;
  double output_tokens_mean = 256.0;
  int max_tokens = 8192;

  // Thinning envelope: peak diurnal rate in the burst state.
  double peak_rps() const;
  // Base-rate normalization so the burst-weighted long-run mean is mean_rps.
  double rate_norm() const;
};

struct RequestSample {
  std::int32_t prompt_tokens = 0;
  std::int32_t output_tokens = 0;
};

class ArrivalProcess {
 public:
  ArrivalProcess(TrafficProfile profile, std::uint64_t seed);

  const TrafficProfile& profile() const { return profile_; }

  // Deterministic intensity at time t under the current MMPP trajectory;
  // advances the hidden burst state up to t (t must be non-decreasing across
  // calls, which the thinning loop guarantees).
  double rate_at(double t);

  // Seconds until the next arrival after `now`. Returns +infinity when the
  // profile offers no traffic.
  double next_interarrival(double now);

  RequestSample sample_request();

  // Snapshot support (acme::snap): both rng streams plus the hidden MMPP
  // trajectory. norm_/peak_ are pure functions of the profile and are
  // recomputed by the constructor, so a reconstructed process with this
  // state restored continues the arrival sequence bit-identically.
  struct State {
    common::RngState rng;
    common::RngState state_rng;
    bool burst = false;
    double state_until = 0;
  };
  State state() const {
    return State{rng_.state(), state_rng_.state(), burst_, state_until_};
  }
  void set_state(const State& s) {
    rng_.set_state(s.rng);
    state_rng_.set_state(s.state_rng);
    burst_ = s.burst;
    state_until_ = s.state_until;
  }

 private:
  void advance_state(double t);

  TrafficProfile profile_;
  common::Rng rng_;        // thinning + request shapes
  common::Rng state_rng_;  // MMPP dwell times
  bool burst_ = false;
  double state_until_ = 0;
  double norm_ = 1.0;
  double peak_ = 0;
};

}  // namespace acme::serve
