#include "serve/fleet.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/digest.h"
#include "obs/obs.h"
#include "snap/format.h"

namespace acme::serve {

namespace {

// Instrumentation handles are cached in function-local statics per the
// obs::MetricsRegistry contract (registered metrics are never destroyed;
// reset() zeroes them in place).
obs::Counter& serve_counter(const char* name, const char* help) {
  return obs::metrics().counter(name, help);
}

obs::Histogram& ttft_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "acme_serve_ttft_seconds", "Time to first token",
      obs::Histogram::exponential_buckets(0.01, 2.0, 14));
  return h;
}

obs::Histogram& e2e_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "acme_serve_e2e_seconds", "Request end-to-end latency",
      obs::Histogram::exponential_buckets(0.05, 2.0, 14));
  return h;
}

}  // namespace

std::uint64_t FleetReport::digest() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "offered=" << offered << ";completed=" << completed
     << ";rejected=" << rejected << ";failed=" << failed
     << ";attained=" << attained << ";prefill=" << prefill_tokens
     << ";decode=" << decode_tokens << ";steps=" << decode_steps
     << ";epochs=" << epochs << ";kills=" << replica_kills
     << ";rewarms=" << rewarms << ";horizon=" << horizon_seconds
     << ";ttft50=" << ttft_p50 << ";ttft99=" << ttft_p99
     << ";tpot50=" << tpot_p50 << ";tpot99=" << tpot_p99
     << ";e2e50=" << e2e_p50 << ";e2e99=" << e2e_p99
     << ";ttftm=" << ttft_mean << ";e2em=" << e2e_mean
     << ";occ=" << mean_batch_occupancy << ";queue=" << mean_queue_depth;
  return common::fnv1a(os.str());
}

std::string FleetReport::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << "offered " << offered << " ("
     << offered_rps() << " rps), completed " << completed << ", rejected "
     << rejected << ", failed " << failed << ", slo "
     << std::setprecision(1) << 100.0 * slo_attainment() << "%, goodput "
     << goodput_rps() << " rps, ttft p50/p99 " << std::setprecision(3)
     << ttft_p50 << "/" << ttft_p99 << " s, e2e p99 " << e2e_p99 << " s";
  return os.str();
}

ServeFleet::ServeFleet(sim::Engine& engine, ServeConfig config,
                       std::uint64_t seed)
    : engine_(engine),
      config_(std::move(config)),
      cost_(config_.model, config_.hw, comm::CollectiveModel(config_.fabric)),
      arrivals_(config_.traffic, seed),
      ttft_p50_(0.5),
      ttft_p99_(0.99),
      tpot_p50_(0.5),
      tpot_p99_(0.99),
      e2e_p50_(0.5),
      e2e_p99_(0.99) {
  ACME_CHECK_MSG(config_.replicas > 0, "serve fleet needs replicas");
  ACME_CHECK_MSG(config_.max_batch > 0, "max_batch must be positive");
  ACME_CHECK_MSG(config_.queue_cap > 0, "queue_cap must be positive");
  ACME_CHECK_MSG(config_.max_epoch_steps > 0, "max_epoch_steps must be positive");
  ACME_CHECK_MSG(config_.horizon_seconds > 0, "horizon must be positive");
  up_ = config_.replicas;
  reps_.resize(static_cast<std::size_t>(config_.replicas));
  for (Replica& rep : reps_) {
    rep.active.reserve(static_cast<std::size_t>(config_.max_batch));
    rep.ring.resize(static_cast<std::size_t>(config_.queue_cap));
  }
  // Every request in flight or queued owns one pool slot; this bound is the
  // exact maximum, so the free list never grows past its reservation.
  const std::size_t slots =
      static_cast<std::size_t>(config_.replicas) *
      static_cast<std::size_t>(config_.max_batch + config_.queue_cap);
  pool_.resize(slots);
  free_slots_.reserve(slots);
  for (std::size_t i = slots; i-- > 0;)
    free_slots_.push_back(static_cast<std::uint32_t>(i));
}

void ServeFleet::start() {
  // Concurrently pending serve events: one arrival plus one epoch-or-rewarm
  // per replica. Reserving on top of whatever the caller already scheduled
  // keeps the steady state free of engine slot growth.
  engine_.reserve(engine_.pending() + static_cast<std::size_t>(config_.replicas) + 2);
  queue_last_t_ = engine_.now();
  const double t0 = engine_.now() + arrivals_.next_interarrival(engine_.now());
  if (t0 <= config_.horizon_seconds)
    arrival_event_ = engine_.schedule_at(t0, [this] { arrival_fire(); });
}

void ServeFleet::touch_queue_integral() {
  const double now = engine_.now();
  queue_integral_ += static_cast<double>(queued_now_) * (now - queue_last_t_);
  queue_last_t_ = now;
}

int ServeFleet::pick_replica() const {
  int best = -1;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (int r = 0; r < static_cast<int>(reps_.size()); ++r) {
    const Replica& rep = reps_[static_cast<std::size_t>(r)];
    if (!rep.up) continue;
    if (rep.ring_count >= rep.ring.size()) continue;
    const std::size_t load = rep.active.size() + rep.ring_count;
    if (load < best_load) {
      best_load = load;
      best = r;
    }
  }
  return best;
}

void ServeFleet::arrival_fire() {
  arrival_event_ = {};
  const double now = engine_.now();
  last_event_t_ = std::max(last_event_t_, now);
  const RequestSample s = arrivals_.sample_request();
  ++offered_;
  if (obs::enabled())
    serve_counter("acme_serve_requests_offered_total",
                  "Requests offered by the arrival process")
        .inc();
  // Chain the next arrival before dispatching this one so the event order is
  // (arrival, dispatch side effects) regardless of queue state.
  const double next = now + arrivals_.next_interarrival(now);
  if (next <= config_.horizon_seconds)
    arrival_event_ = engine_.schedule_at(next, [this] { arrival_fire(); });

  const std::uint64_t need =
      static_cast<std::uint64_t>(s.prompt_tokens) +
      static_cast<std::uint64_t>(s.output_tokens);
  const int r = pick_replica();
  if (r < 0 || free_slots_.empty() || need > cost_.kv_capacity_tokens()) {
    ++rejected_;
    if (obs::enabled())
      serve_counter("acme_serve_requests_rejected_total",
                    "Requests dropped with no replica able to take them")
          .inc();
    return;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  Request& req = pool_[slot];
  req.arrival = now;
  req.first_token = 0;
  req.prompt = s.prompt_tokens;
  req.output = s.output_tokens;
  req.finish_step = 0;
  req.span_id = next_span_id_++;
  if (obs::enabled())
    obs::tracer().async_begin("serve", "request", req.span_id);

  Replica& rep = reps_[static_cast<std::size_t>(r)];
  touch_queue_integral();
  rep.ring[(rep.ring_head + rep.ring_count) % rep.ring.size()] = slot;
  ++rep.ring_count;
  ++queued_now_;
  if (obs::enabled())
    obs::tracer().counter("serve", "queue_depth",
                          static_cast<double>(queued_now_));
  // Idle wakeup: a replica with no epoch pending admits immediately.
  if (!rep.stepping) plan_epoch(r);
}

void ServeFleet::plan_epoch(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (!rep.up || rep.stepping) return;
  const double now = engine_.now();

  // Admit FCFS from the ring while the batch and the KV budget allow. The
  // reservation is worst-case (prompt + full output), so admitted requests
  // never outgrow the cache mid-flight; the head of the line blocks until
  // enough residents complete.
  double prefill = 0;
  while (rep.ring_count > 0 &&
         rep.active.size() < static_cast<std::size_t>(config_.max_batch)) {
    const std::uint32_t slot = rep.ring[rep.ring_head];
    Request& req = pool_[slot];
    const std::uint64_t need = static_cast<std::uint64_t>(req.prompt) +
                               static_cast<std::uint64_t>(req.output);
    if (rep.resident_tokens + need > cost_.kv_capacity_tokens()) break;
    rep.ring_head = (rep.ring_head + 1) % rep.ring.size();
    --rep.ring_count;
    touch_queue_integral();
    --queued_now_;
    rep.resident_tokens += need;
    // Prefills of one admission round run back to back before decode
    // resumes; the first output token of each request emerges from its own
    // prefill.
    prefill += cost_.prefill_seconds(static_cast<std::uint64_t>(req.prompt));
    prefill_tokens_ += static_cast<std::uint64_t>(req.prompt);
    req.first_token = now + prefill;
    // output >= 2 always (traffic clamps), so at least one decode step.
    req.finish_step =
        rep.steps + static_cast<std::uint64_t>(req.output) - 1;
    rep.active.push_back(slot);
  }
  if (rep.active.empty()) return;  // idle until the next arrival

  // Epoch length: steps until the earliest completion, capped so queued
  // requests get an admission scan at a bounded cadence.
  std::uint64_t kmin = std::numeric_limits<std::uint64_t>::max();
  for (const std::uint32_t slot : rep.active)
    kmin = std::min(kmin, pool_[slot].finish_step - rep.steps);
  const std::uint64_t k =
      std::min<std::uint64_t>(kmin, static_cast<std::uint64_t>(config_.max_epoch_steps));
  const double step_s = cost_.decode_step_seconds(
      static_cast<int>(rep.active.size()), rep.resident_tokens);
  rep.epoch_start = now;
  rep.epoch_prefill = prefill;
  rep.epoch_step_seconds = step_s;
  rep.epoch_base_steps = rep.steps;
  rep.epoch_end_steps = rep.steps + k;
  rep.epoch_end_time = now + prefill + static_cast<double>(k) * step_s;
  rep.stepping = true;
  rep.epoch = engine_.schedule_at(rep.epoch_end_time,
                                  [this, r] { epoch_fire(r); });
}

void ServeFleet::epoch_fire(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  const double now = engine_.now();
  last_event_t_ = std::max(last_event_t_, now);
  rep.stepping = false;
  rep.epoch = {};
  const std::uint64_t k = rep.epoch_end_steps - rep.epoch_base_steps;
  rep.steps = rep.epoch_end_steps;
  ++epochs_;
  decode_steps_ += k;
  decode_tokens_ += k * rep.active.size();
  batch_integral_ +=
      static_cast<double>(rep.active.size()) * (now - rep.epoch_start);
  if (obs::enabled()) {
    serve_counter("acme_serve_epochs_total", "Batching epochs executed").inc();
    serve_counter("acme_serve_decode_tokens_total", "Decode tokens generated")
        .inc(k * rep.active.size());
  }

  // Settle completions. k never exceeds the distance to the earliest finish,
  // so finishers land exactly at the epoch boundary; the arithmetic form
  // stays exact if that invariant is ever relaxed.
  for (std::size_t i = 0; i < rep.active.size();) {
    const std::uint32_t slot = rep.active[i];
    Request& req = pool_[slot];
    if (req.finish_step <= rep.steps) {
      const double t =
          rep.epoch_start + rep.epoch_prefill +
          static_cast<double>(req.finish_step - rep.epoch_base_steps) *
              rep.epoch_step_seconds;
      rep.resident_tokens -= static_cast<std::uint64_t>(req.prompt) +
                             static_cast<std::uint64_t>(req.output);
      rep.active[i] = rep.active.back();
      rep.active.pop_back();
      complete_request(slot, t);
    } else {
      ++i;
    }
  }
  plan_epoch(r);
}

void ServeFleet::complete_request(std::uint32_t slot, double completion_time) {
  Request& req = pool_[slot];
  ++completed_;
  const double ttft = req.first_token - req.arrival;
  const double e2e = completion_time - req.arrival;
  const double tpot = (completion_time - req.first_token) /
                      static_cast<double>(req.output - 1);
  ttft_stats_.add(ttft);
  e2e_stats_.add(e2e);
  ttft_p50_.add(ttft);
  ttft_p99_.add(ttft);
  tpot_p50_.add(tpot);
  tpot_p99_.add(tpot);
  e2e_p50_.add(e2e);
  e2e_p99_.add(e2e);
  if (ttft <= config_.slo_ttft_seconds && tpot <= config_.slo_tpot_seconds)
    ++attained_;
  if (obs::enabled()) {
    serve_counter("acme_serve_requests_completed_total",
                  "Requests that generated their full output")
        .inc();
    ttft_histogram().observe(ttft);
    e2e_histogram().observe(e2e);
    obs::tracer().async_end("serve", "request", req.span_id);
  }
  free_slots_.push_back(slot);
}

void ServeFleet::fail_request(std::uint32_t slot) {
  ++failed_;
  if (obs::enabled()) {
    serve_counter("acme_serve_requests_failed_total",
                  "Requests lost to replica failures")
        .inc();
    obs::tracer().async_end("serve", "request", pool_[slot].span_id);
  }
  free_slots_.push_back(slot);
}

void ServeFleet::kill_replica(int index, double rewarm_seconds) {
  ACME_CHECK_MSG(index >= 0 && index < static_cast<int>(reps_.size()),
                 "replica index out of range");
  ACME_CHECK_MSG(rewarm_seconds >= 0, "negative rewarm time");
  Replica& rep = reps_[static_cast<std::size_t>(index)];
  if (!rep.up) return;  // failure landed on an already-dead replica
  const double now = engine_.now();
  last_event_t_ = std::max(last_event_t_, now);
  rep.up = false;
  --up_;
  ++kills_;
  if (obs::enabled())
    serve_counter("acme_serve_replica_kills_total",
                  "Replica failures injected")
        .inc();
  if (rep.stepping) {
    engine_.cancel(rep.epoch);
    rep.epoch = {};
    rep.stepping = false;
  }
  for (const std::uint32_t slot : rep.active) fail_request(slot);
  rep.active.clear();
  rep.resident_tokens = 0;
  touch_queue_integral();
  while (rep.ring_count > 0) {
    fail_request(rep.ring[rep.ring_head]);
    rep.ring_head = (rep.ring_head + 1) % rep.ring.size();
    --rep.ring_count;
    --queued_now_;
  }
  const int r = index;
  rep.rewarm = engine_.schedule_after(rewarm_seconds, [this, r] { rewarm_fire(r); });
}

void ServeFleet::rewarm_fire(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  rep.rewarm = {};
  const double now = engine_.now();
  last_event_t_ = std::max(last_event_t_, now);
  rep.up = true;
  ++up_;
  ++rewarms_;
  if (obs::enabled())
    serve_counter("acme_serve_rewarms_total", "Replicas brought back up").inc();
  // The ring drained at kill time, so this only matters if arrivals raced the
  // rewarm onto this replica — they cannot (down replicas are unpickable) —
  // but the call keeps the invariant "an up replica with work is stepping".
  plan_epoch(r);
}

namespace {

void write_rng_state(snap::SnapshotWriter& w, const common::RngState& s) {
  for (int i = 0; i < 4; ++i) w.write_u64(s.words[i]);
  w.write_u64(s.seed_material);
}

common::RngState read_rng_state(snap::SnapshotReader& r) {
  common::RngState s;
  for (int i = 0; i < 4; ++i) s.words[i] = r.read_u64();
  s.seed_material = r.read_u64();
  return s;
}

void write_streaming_stats(snap::SnapshotWriter& w,
                           const common::StreamingStats& stats) {
  const common::StreamingStats::State s = stats.state();
  w.write_u64(s.n);
  w.write_f64(s.mean);
  w.write_f64(s.m2);
  w.write_f64(s.min);
  w.write_f64(s.max);
  w.write_f64(s.sum);
}

void read_streaming_stats(snap::SnapshotReader& r,
                          common::StreamingStats& stats) {
  common::StreamingStats::State s;
  s.n = r.read_u64();
  s.mean = r.read_f64();
  s.m2 = r.read_f64();
  s.min = r.read_f64();
  s.max = r.read_f64();
  s.sum = r.read_f64();
  stats.set_state(s);
}

void write_p2(snap::SnapshotWriter& w, const mc::P2Quantile& q) {
  const mc::P2Quantile::State s = q.state();
  w.write_f64(s.q);
  w.write_u64(s.count);
  for (double v : s.heights) w.write_f64(v);
  for (double v : s.positions) w.write_f64(v);
  for (double v : s.desired) w.write_f64(v);
  for (double v : s.increment) w.write_f64(v);
}

void read_p2(snap::SnapshotReader& r, mc::P2Quantile& q) {
  mc::P2Quantile::State s;
  s.q = r.read_f64();
  s.count = r.read_u64();
  for (double& v : s.heights) v = r.read_f64();
  for (double& v : s.positions) v = r.read_f64();
  for (double& v : s.desired) v = r.read_f64();
  for (double& v : s.increment) v = r.read_f64();
  q.set_state(s);
}

}  // namespace

void ServeFleet::save(snap::SnapshotWriter& w) const {
  w.begin_section("serve.fleet");
  const ArrivalProcess::State ap = arrivals_.state();
  write_rng_state(w, ap.rng);
  write_rng_state(w, ap.state_rng);
  w.write_bool(ap.burst);
  w.write_f64(ap.state_until);
  w.write_u64(arrival_event_.raw());
  w.write_u64(static_cast<std::uint64_t>(reps_.size()));
  for (const Replica& rep : reps_) {
    w.write_bool(rep.up);
    w.write_bool(rep.stepping);
    w.write_u64(rep.steps);
    w.write_u64(rep.resident_tokens);
    w.write_pod_vec(rep.active);
    // The ring is written verbatim (head + count), stale tail entries and
    // all: identical memory layout means identical wrap behaviour.
    w.write_pod_vec(rep.ring);
    w.write_u64(static_cast<std::uint64_t>(rep.ring_head));
    w.write_u64(static_cast<std::uint64_t>(rep.ring_count));
    w.write_u64(rep.epoch.raw());
    w.write_u64(rep.rewarm.raw());
    w.write_f64(rep.epoch_start);
    w.write_f64(rep.epoch_prefill);
    w.write_f64(rep.epoch_step_seconds);
    w.write_f64(rep.epoch_end_time);
    w.write_u64(rep.epoch_base_steps);
    w.write_u64(rep.epoch_end_steps);
  }
  w.write_pod_vec(pool_);
  w.write_pod_vec(free_slots_);
  w.write_u64(offered_);
  w.write_u64(completed_);
  w.write_u64(rejected_);
  w.write_u64(failed_);
  w.write_u64(attained_);
  w.write_u64(prefill_tokens_);
  w.write_u64(decode_tokens_);
  w.write_u64(decode_steps_);
  w.write_u64(epochs_);
  w.write_i64(kills_);
  w.write_i64(rewarms_);
  w.write_u64(next_span_id_);
  w.write_f64(batch_integral_);
  w.write_f64(queue_integral_);
  w.write_f64(queue_last_t_);
  w.write_u64(queued_now_);
  w.write_f64(last_event_t_);
  write_streaming_stats(w, ttft_stats_);
  write_streaming_stats(w, e2e_stats_);
  write_p2(w, ttft_p50_);
  write_p2(w, ttft_p99_);
  write_p2(w, tpot_p50_);
  write_p2(w, tpot_p99_);
  write_p2(w, e2e_p50_);
  write_p2(w, e2e_p99_);
  w.end_section();
}

void ServeFleet::restore(snap::SnapshotReader& r) {
  ACME_CHECK_MSG(offered_ == 0 && !arrival_event_.valid(),
                 "ServeFleet::restore requires a freshly constructed fleet "
                 "(start() never called)");
  r.enter_section("serve.fleet");
  ArrivalProcess::State ap;
  ap.rng = read_rng_state(r);
  ap.state_rng = read_rng_state(r);
  ap.burst = r.read_bool();
  ap.state_until = r.read_f64();
  arrivals_.set_state(ap);
  arrival_event_ = sim::EventHandle::from_raw(r.read_u64());
  const std::uint64_t rep_count = r.read_u64();
  ACME_CHECK_MSG(rep_count == reps_.size(),
                 "serve snapshot replica count does not match the config this "
                 "fleet was constructed from");
  up_ = 0;
  for (Replica& rep : reps_) {
    rep.up = r.read_bool();
    rep.stepping = r.read_bool();
    rep.steps = r.read_u64();
    rep.resident_tokens = r.read_u64();
    r.read_pod_vec(rep.active);
    r.read_pod_vec(rep.ring);
    ACME_CHECK_MSG(rep.ring.size() ==
                       static_cast<std::size_t>(config_.queue_cap),
                   "serve snapshot queue_cap does not match the config");
    rep.ring_head = static_cast<std::size_t>(r.read_u64());
    rep.ring_count = static_cast<std::size_t>(r.read_u64());
    rep.epoch = sim::EventHandle::from_raw(r.read_u64());
    rep.rewarm = sim::EventHandle::from_raw(r.read_u64());
    rep.epoch_start = r.read_f64();
    rep.epoch_prefill = r.read_f64();
    rep.epoch_step_seconds = r.read_f64();
    rep.epoch_end_time = r.read_f64();
    rep.epoch_base_steps = r.read_u64();
    rep.epoch_end_steps = r.read_u64();
    if (rep.up) ++up_;
  }
  r.read_pod_vec(pool_);
  r.read_pod_vec(free_slots_);
  offered_ = r.read_u64();
  completed_ = r.read_u64();
  rejected_ = r.read_u64();
  failed_ = r.read_u64();
  attained_ = r.read_u64();
  prefill_tokens_ = r.read_u64();
  decode_tokens_ = r.read_u64();
  decode_steps_ = r.read_u64();
  epochs_ = r.read_u64();
  kills_ = static_cast<int>(r.read_i64());
  rewarms_ = static_cast<int>(r.read_i64());
  next_span_id_ = r.read_u64();
  batch_integral_ = r.read_f64();
  queue_integral_ = r.read_f64();
  queue_last_t_ = r.read_f64();
  queued_now_ = r.read_u64();
  last_event_t_ = r.read_f64();
  read_streaming_stats(r, ttft_stats_);
  read_streaming_stats(r, e2e_stats_);
  read_p2(r, ttft_p50_);
  read_p2(r, ttft_p99_);
  read_p2(r, tpot_p50_);
  read_p2(r, tpot_p99_);
  read_p2(r, e2e_p50_);
  read_p2(r, e2e_p99_);
  r.leave_section();
  // Rebind every pending serve event into the restored spine.
  if (arrival_event_.valid())
    engine_.rebind(arrival_event_, [this] { arrival_fire(); });
  for (int i = 0; i < static_cast<int>(reps_.size()); ++i) {
    Replica& rep = reps_[static_cast<std::size_t>(i)];
    if (rep.epoch.valid()) {
      ACME_CHECK_MSG(rep.stepping, "epoch handle without a stepping replica");
      engine_.rebind(rep.epoch, [this, i] { epoch_fire(i); });
    }
    if (rep.rewarm.valid())
      engine_.rebind(rep.rewarm, [this, i] { rewarm_fire(i); });
  }
}

FleetReport ServeFleet::report() const {
  FleetReport rep;
  rep.offered = offered_;
  rep.completed = completed_;
  rep.rejected = rejected_;
  rep.failed = failed_;
  rep.attained = attained_;
  rep.prefill_tokens = prefill_tokens_;
  rep.decode_tokens = decode_tokens_;
  rep.decode_steps = decode_steps_;
  rep.epochs = epochs_;
  rep.replica_kills = kills_;
  rep.rewarms = rewarms_;
  rep.horizon_seconds = config_.horizon_seconds;
  rep.ttft_p50 = ttft_p50_.value();
  rep.ttft_p99 = ttft_p99_.value();
  rep.tpot_p50 = tpot_p50_.value();
  rep.tpot_p99 = tpot_p99_.value();
  rep.e2e_p50 = e2e_p50_.value();
  rep.e2e_p99 = e2e_p99_.value();
  rep.ttft_mean = ttft_stats_.mean();
  rep.e2e_mean = e2e_stats_.mean();
  // Time-weighted means over the span the fleet was actually live (the drain
  // can outrun the horizon; in a co-located world the engine clock keeps
  // going long after serving stopped).
  const double elapsed = std::max(config_.horizon_seconds, last_event_t_);
  const double queue_final =
      queue_integral_ +
      static_cast<double>(queued_now_) * (elapsed - queue_last_t_);
  rep.mean_queue_depth = queue_final / elapsed;
  rep.mean_batch_occupancy = batch_integral_ / elapsed;
  return rep;
}

}  // namespace acme::serve
