// Continuous-batching inference fleet on the shared event spine
// (DESIGN.md §11).
//
// A ServeFleet is `replicas` independent tensor-parallel serving instances
// fed by one open-loop ArrivalProcess. Each replica runs continuous batching
// with distinct prefill and decode phases priced by ReplicaCostModel, and a
// KV-cache admission rule: a request is admitted only when its worst-case
// resident footprint (prompt + output tokens) fits the replica's remaining
// KV capacity, so nothing is ever evicted mid-flight.
//
// The decode loop is epoch-coalesced so the hot path costs O(1) events per
// request instead of O(output tokens): between admissions the batch
// composition is fixed, every decode step advances every active request by
// exactly one token, and a request therefore finishes when the replica's
// cumulative step counter reaches (steps at admission + output - 1). One
// engine event covers min(steps-to-next-completion, max_epoch_steps) steps;
// completions inside the epoch get exact timestamps by arithmetic, and the
// step cap bounds how long a queued request waits for the next admission
// scan. Requests live in a pre-sized pool with a free list, queues are fixed
// rings, and callbacks capture at most {fleet pointer, replica index} — the
// steady-state request path performs zero heap allocations (pinned by
// bench_serve_spine's operator-new hook).
//
// Determinism: one engine thread, all randomness from the two forked streams
// inside ArrivalProcess, replicas selected by deterministic least-loaded
// scan (lowest index wins ties), and latency quantiles accumulated in event
// order through P² sketches. A fleet run is a pure function of
// (config, seed); FleetReport::digest() pins that for test_determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/collective.h"
#include "comm/topology.h"
#include "common/stats.h"
#include "mc/aggregate.h"
#include "parallel/model_math.h"
#include "serve/model.h"
#include "serve/traffic.h"
#include "sim/engine.h"

namespace acme::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace acme::snap

namespace acme::serve {

struct ServeConfig {
  int replicas = 4;
  ReplicaHardware hw{};
  parallel::TransformerConfig model = parallel::llm_7b();
  comm::FabricConfig fabric = comm::seren_fabric();
  TrafficProfile traffic{};
  // SLO targets: time-to-first-token and per-output-token latency. A request
  // attains its SLO when both hold; rejected and failed requests never do.
  double slo_ttft_seconds = 2.0;
  double slo_tpot_seconds = 0.1;
  // Arrivals stop at the horizon; in-flight requests drain afterwards.
  double horizon_seconds = 3600.0;
  int max_batch = 64;        // concurrent requests per replica
  int queue_cap = 256;       // waiting requests per replica before rejection
  int max_epoch_steps = 32;  // admission-scan cadence in decode steps

  int total_gpus() const { return replicas * hw.gpus; }
};

struct FleetReport {
  std::uint64_t offered = 0;    // arrivals sampled from the traffic process
  std::uint64_t completed = 0;  // full output generated
  std::uint64_t rejected = 0;   // no up replica with queue room (or pool full)
  std::uint64_t failed = 0;     // in flight or queued when a replica died
  std::uint64_t attained = 0;   // completed within both SLO targets
  std::uint64_t prefill_tokens = 0;
  std::uint64_t decode_tokens = 0;
  std::uint64_t decode_steps = 0;  // engine-level batching epochs are fewer
  std::uint64_t epochs = 0;
  int replica_kills = 0;
  int rewarms = 0;
  double horizon_seconds = 0;

  // Latency quantiles from the P² sketches (seconds).
  double ttft_p50 = 0, ttft_p99 = 0;
  double tpot_p50 = 0, tpot_p99 = 0;
  double e2e_p50 = 0, e2e_p99 = 0;
  double ttft_mean = 0, e2e_mean = 0;

  // Time-weighted means over the horizon.
  double mean_batch_occupancy = 0;
  double mean_queue_depth = 0;

  // Fraction of offered requests that completed within SLO; 1.0 with no
  // traffic (nothing was violated).
  double slo_attainment() const {
    return offered > 0 ? static_cast<double>(attained) /
                             static_cast<double>(offered)
                       : 1.0;
  }
  // SLO-attained completions per second of horizon — the serving analogue of
  // the training goodput the paper's §6.1 argues for.
  double goodput_rps() const {
    return horizon_seconds > 0
               ? static_cast<double>(attained) / horizon_seconds
               : 0.0;
  }
  double offered_rps() const {
    return horizon_seconds > 0 ? static_cast<double>(offered) / horizon_seconds
                               : 0.0;
  }

  // FNV-1a over every counter and a fixed-precision rendering of every
  // derived value: byte-identical across runs and mc thread counts.
  std::uint64_t digest() const;
  std::string summary() const;  // one-line human rendering for benches
};

class ServeFleet {
 public:
  // The fleet schedules on the caller's engine so serve events interleave
  // with whatever else (scheduler replay, failure chain) shares the spine.
  ServeFleet(sim::Engine& engine, ServeConfig config, std::uint64_t seed);

  // Arms the arrival chain (and pre-sizes the engine). Call once before the
  // engine runs.
  void start();

  // Failure injection: kills replica `index` — every queued and in-flight
  // request on it fails — and re-warms it after `rewarm_seconds` (NCCL
  // bring-up + weight reload, priced by the caller).
  void kill_replica(int index, double rewarm_seconds);

  int replicas() const { return static_cast<int>(reps_.size()); }
  int up_replicas() const { return up_; }
  bool replica_up(int index) const {
    return reps_[static_cast<std::size_t>(index)].up;
  }
  const ServeConfig& config() const { return config_; }
  const ReplicaCostModel& cost_model() const { return cost_; }

  // Finalizes quantiles and time-weighted means. Call after the engine
  // drained; safe to call repeatedly.
  FleetReport report() const;

  // Snapshot support (acme::snap, DESIGN.md §12). save() is valid at any
  // quiescent point; restore() requires *this freshly constructed from the
  // same (config, seed) with start() never called, and an engine that already
  // holds the restored event spine — the fleet rebinds its pending arrival /
  // epoch / rewarm callbacks into that spine.
  void save(snap::SnapshotWriter& w) const;
  void restore(snap::SnapshotReader& r);

 private:
  struct Request {
    double arrival = 0;
    double first_token = 0;
    std::int32_t prompt = 0;
    std::int32_t output = 0;
    std::uint64_t finish_step = 0;  // replica step count at completion
    std::uint64_t span_id = 0;      // obs async-span key
  };

  struct Replica {
    bool up = true;
    bool stepping = false;  // an epoch event is pending
    std::uint64_t steps = 0;         // cumulative decode steps
    std::uint64_t resident_tokens = 0;  // reserved KV tokens
    std::vector<std::uint32_t> active;  // request slots, reserve(max_batch)
    // Fixed-ring FIFO of waiting request slots.
    std::vector<std::uint32_t> ring;
    std::size_t ring_head = 0;
    std::size_t ring_count = 0;
    // Epoch bookkeeping for exact in-epoch completion timestamps. The epoch
    // and rewarm handles are cleared when their events fire or cancel, so
    // valid() <=> pending (the snapshot rebinds exactly the valid ones).
    sim::EventHandle epoch;
    sim::EventHandle rewarm;
    double epoch_start = 0;
    double epoch_prefill = 0;
    double epoch_step_seconds = 0;
    double epoch_end_time = 0;
    std::uint64_t epoch_base_steps = 0;
    std::uint64_t epoch_end_steps = 0;
  };

  void arrival_fire();
  void plan_epoch(int r);
  void epoch_fire(int r);
  void rewarm_fire(int r);
  int pick_replica() const;  // least loaded up replica, lowest index wins
  void complete_request(std::uint32_t slot, double completion_time);
  void fail_request(std::uint32_t slot);
  void touch_queue_integral();

  sim::Engine& engine_;
  ServeConfig config_;
  ReplicaCostModel cost_;
  ArrivalProcess arrivals_;
  std::vector<Replica> reps_;
  int up_ = 0;
  // Pending arrival-chain event; cleared at fire so valid() <=> pending.
  sim::EventHandle arrival_event_;

  std::vector<Request> pool_;
  std::vector<std::uint32_t> free_slots_;

  // Accounting (event-order deterministic).
  std::uint64_t offered_ = 0, completed_ = 0, rejected_ = 0, failed_ = 0,
                attained_ = 0;
  std::uint64_t prefill_tokens_ = 0, decode_tokens_ = 0, decode_steps_ = 0,
                epochs_ = 0;
  int kills_ = 0, rewarms_ = 0;
  std::uint64_t next_span_id_ = 1;
  double batch_integral_ = 0;  // ∑ batch_size × epoch seconds
  double queue_integral_ = 0;  // ∑ total queued × elapsed
  double queue_last_t_ = 0;
  std::uint64_t queued_now_ = 0;
  double last_event_t_ = 0;  // latest engine time a serve event fired
  common::StreamingStats ttft_stats_, e2e_stats_;
  mc::P2Quantile ttft_p50_, ttft_p99_, tpot_p50_, tpot_p99_, e2e_p50_,
      e2e_p99_;
};

}  // namespace acme::serve
