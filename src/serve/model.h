// Inference replica cost model: KV-cache memory anatomy and prefill/decode
// phase pricing for a tensor-parallel serving replica (DESIGN.md §11).
//
// The serving side reuses the training-side physics instead of inventing new
// constants: forward FLOPs per token derive from
// parallel::TransformerConfig::train_flops_per_token() (forward ≈ 1/3 of the
// train step), resident weights are the 2Ψ fp16 term of
// parallel::mixed_precision_anatomy (inference carries no gradients or
// optimizer states), and the tensor-parallel activation all-reduces on the
// token path are priced by the same comm::CollectiveModel alpha-beta fabric
// the pretrain models use. The KV cache is what is new: every resident token
// pins 2 * 2 bytes * layers * hidden of fp16 K/V state, and whatever HBM the
// weights do not occupy caps how many tokens a replica can hold — the batch
// ceiling of continuous batching.
#pragma once

#include <cstdint>

#include "comm/collective.h"
#include "common/units.h"
#include "parallel/model_math.h"

namespace acme::serve {

// Hardware of one serving replica: `gpus` tensor-parallel A100-class devices.
struct ReplicaHardware {
  int gpus = 8;
  double gpu_memory_bytes = 80.0 * common::kGB;
  double peak_flops_per_gpu = 312e12;        // A100 BF16 dense
  double hbm_bytes_per_second = 2.0e12;      // A100 80GB HBM2e read bandwidth
  double flops_efficiency = 0.45;            // sustained fraction of peak
  // Activation workspace + CUDA context reserved per GPU before the KV cache
  // gets the remainder.
  double workspace_bytes_per_gpu = 4.0 * common::kGB;
};

// fp16 K and V for every layer: 2 tensors * 2 bytes * layers * hidden per
// resident token, across the whole replica (the tensor-parallel shards sum
// back to this). MoE does not change attention state, so the dense formula
// applies to every model family the repo knows.
double kv_bytes_per_token(const parallel::TransformerConfig& cfg);

// Phase pricing for one replica serving `cfg` on `hw`, with tensor-parallel
// collectives charged against `fabric`. All methods are pure O(1) arithmetic
// so the serve hot path can call them per batching epoch.
class ReplicaCostModel {
 public:
  ReplicaCostModel(parallel::TransformerConfig cfg, ReplicaHardware hw,
                   const comm::CollectiveModel& fabric);

  // Resident fp16 weights (the 2Ψ anatomy term), whole replica.
  double weight_bytes() const { return weight_bytes_; }
  // Max tokens of KV state the replica can hold after weights + workspace.
  std::uint64_t kv_capacity_tokens() const { return kv_capacity_tokens_; }
  double kv_bytes_per_token() const { return kv_per_token_; }

  // Prefill of `prompt_tokens` tokens: compute-bound forward pass plus the
  // per-layer tensor-parallel all-reduces. Produces the first output token.
  double prefill_seconds(std::uint64_t prompt_tokens) const;

  // One continuous-batching decode step: every active request advances one
  // token. Roofline of (weights + resident KV) HBM reads vs batched forward
  // compute, plus the per-layer all-reduce latency floor that makes small
  // batches latency-bound.
  double decode_step_seconds(int batch, std::uint64_t resident_kv_tokens) const;

 private:
  parallel::TransformerConfig cfg_;
  ReplicaHardware hw_;
  double weight_bytes_ = 0;
  double kv_per_token_ = 0;
  std::uint64_t kv_capacity_tokens_ = 0;
  double forward_flops_per_token_ = 0;
  double replica_flops_ = 0;       // gpus * peak * efficiency
  double replica_hbm_ = 0;         // gpus * hbm bandwidth
  // Per-decode-step tensor-parallel collective cost, linearized as
  // 2 * layers * (alpha + tokens_in_flight * 2 bytes * hidden * beta).
  double tp_alpha_per_step_ = 0;   // latency floor, all layers
  double tp_beta_per_token_ = 0;   // marginal seconds per in-flight token
};

}  // namespace acme::serve
