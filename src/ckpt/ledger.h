// Checkpoint ledger for the simulated trainer: which steps were snapshotted,
// when they became durable, and which checkpoint a recovery should restart
// from (paper §5.3/§6.1-3: errors restart from the latest durable
// checkpoint; loss spikes roll back to an EARLIER healthy checkpoint and
// skip the offending data batches).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace acme::ckpt {

struct CheckpointRecord {
  std::uint64_t step = 0;
  double snapshot_time = 0;   // when training state was captured
  double durable_time = 0;    // when it finished persisting to remote storage
};

class CheckpointLedger {
 public:
  void record(std::uint64_t step, double snapshot_time, double durable_time);

  // Latest checkpoint durable at `now` (an async checkpoint still persisting
  // when the node dies is useless).
  std::optional<CheckpointRecord> latest_durable(double now) const;

  // For loss-spike recovery: latest durable checkpoint at `now` whose step is
  // at most `before_step` (the spike onset); rolls back past the anomaly.
  std::optional<CheckpointRecord> durable_before_step(std::uint64_t before_step,
                                                      double now) const;

  // Drops checkpoints past `step`: after a rollback, later checkpoints belong
  // to the abandoned timeline (e.g. post-loss-spike states) and must not be
  // offered for future recoveries.
  void invalidate_after(std::uint64_t step);

  std::size_t size() const { return records_.size(); }
  const std::vector<CheckpointRecord>& records() const { return records_; }

 private:
  std::vector<CheckpointRecord> records_;  // ascending by step
};

}  // namespace acme::ckpt
