#include "ckpt/async_writer.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::ckpt {

FileSink::FileSink(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

bool FileSink::persist(std::uint64_t step, std::span<const std::byte> data) {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%llu.bin",
                static_cast<unsigned long long>(step));
  const std::filesystem::path path = std::filesystem::path(dir_) / name;
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out.good()) return false;
  }
  // Atomic publish: a crash mid-write never leaves a truncated checkpoint
  // under the final name.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

bool NullSink::persist(std::uint64_t step, std::span<const std::byte> data) {
  (void)step;
  if (bytes_per_sec_ > 0) {
    const auto wait = std::chrono::duration<double>(
        static_cast<double>(data.size()) / bytes_per_sec_);
    std::this_thread::sleep_for(wait);
  }
  ++count_;
  return true;
}

AsyncCheckpointWriter::AsyncCheckpointWriter(Sink& sink, std::size_t capacity)
    : sink_(sink), capacity_(capacity), thread_([this] { worker(); }) {
  ACME_CHECK(capacity_ >= 1);
}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

bool AsyncCheckpointWriter::snapshot(std::uint64_t step,
                                     std::span<const std::byte> state) {
  ACME_OBS_SPAN_ARG("ckpt", "snapshot", "step", std::to_string(step));
  if (obs::enabled()) {
    static obs::Counter& snapshots = obs::metrics().counter(
        "acme_ckpt_snapshots_total", "Trainer-side checkpoint snapshots staged");
    static obs::Histogram& bytes = obs::metrics().histogram(
        "acme_ckpt_snapshot_bytes", "Size of each staged checkpoint snapshot",
        obs::Histogram::exponential_buckets(1024.0, 8.0, 10));
    snapshots.inc();
    bytes.observe(static_cast<double>(state.size()));
  }
  // The copy happens outside the lock: it is the trainer's "stall" and must
  // not serialize against the persist thread.
  Staged staged{step, {state.begin(), state.end()}};
  bool evicted = false;
  {
    std::lock_guard lock(mu_);
    while (queue_.size() >= capacity_) {
      queue_.pop_front();
      ++stats_.dropped;
      evicted = true;
    }
    queue_.push_back(std::move(staged));
    ++stats_.snapshots;
  }
  cv_.notify_one();
  return !evicted;
}

void AsyncCheckpointWriter::flush() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

AsyncWriterStats AsyncCheckpointWriter::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void AsyncCheckpointWriter::worker() {
  std::unique_lock lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Staged staged = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = true;
    lock.unlock();
    bool ok;
    {
      ACME_OBS_SPAN_ARG("ckpt", "persist", "step", std::to_string(staged.step));
      ok = sink_.persist(staged.step, staged.data);
    }
    if (obs::enabled()) {
      static obs::Counter& persisted = obs::metrics().counter(
          "acme_ckpt_persists_total", "Checkpoints handed to the persist sink");
      persisted.inc();
    }
    lock.lock();
    in_flight_ = false;
    if (ok) {
      ++stats_.persisted;
      stats_.last_persisted_step = staged.step;
    } else {
      ++stats_.failed;
    }
    if (queue_.empty()) drained_.notify_all();
    if (stop_ && queue_.empty()) return;
  }
}

}  // namespace acme::ckpt
