// A real asynchronous checkpoint writer (paper §6.1-1), usable outside the
// simulator.
//
// snapshot() copies the caller's state into a host-memory arena and returns
// immediately (that copy is the only "stall" the trainer sees); a background
// thread drains the queue to a pluggable Sink (file, remote object store,
// ...). The queue is bounded — matching the paper's observation that host
// memory "is capable of accommodating several checkpoints" — and snapshot()
// reports whether it had to drop the oldest staged checkpoint to make room.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace acme::ckpt {

// Destination for persisted checkpoints.
class Sink {
 public:
  virtual ~Sink() = default;
  // Returns true on success. Called from the background thread.
  virtual bool persist(std::uint64_t step, std::span<const std::byte> data) = 0;
};

// Writes checkpoints to `<dir>/ckpt-<step>.bin`.
class FileSink : public Sink {
 public:
  explicit FileSink(std::string dir);
  bool persist(std::uint64_t step, std::span<const std::byte> data) override;

 private:
  std::string dir_;
};

// Swallows data at a configurable throughput; for tests and benchmarks.
class NullSink : public Sink {
 public:
  explicit NullSink(double bytes_per_sec = 0) : bytes_per_sec_(bytes_per_sec) {}
  bool persist(std::uint64_t step, std::span<const std::byte> data) override;
  std::uint64_t persisted_count() const { return count_; }

 private:
  double bytes_per_sec_;
  std::uint64_t count_ = 0;
};

struct AsyncWriterStats {
  std::uint64_t snapshots = 0;
  std::uint64_t persisted = 0;
  std::uint64_t dropped = 0;   // staged checkpoints evicted before persisting
  std::uint64_t failed = 0;    // sink errors
  std::uint64_t last_persisted_step = 0;
};

class AsyncCheckpointWriter {
 public:
  // `capacity` staged checkpoints may wait in host memory at once.
  AsyncCheckpointWriter(Sink& sink, std::size_t capacity = 3);
  ~AsyncCheckpointWriter();
  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  // Stages a snapshot of `state` for step `step`. Returns false if the oldest
  // staged (not yet persisted) checkpoint was evicted to make room.
  bool snapshot(std::uint64_t step, std::span<const std::byte> state);

  // Blocks until everything staged so far is persisted.
  void flush();

  AsyncWriterStats stats() const;

 private:
  struct Staged {
    std::uint64_t step;
    std::vector<std::byte> data;
  };

  void worker();

  Sink& sink_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue state changed
  std::condition_variable drained_;   // queue emptied (for flush)
  std::deque<Staged> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  AsyncWriterStats stats_;
  std::thread thread_;
};

}  // namespace acme::ckpt
