// Checkpoint timing model (paper §6.1-1).
//
// Synchronous checkpointing blocks training while TB-scale model states
// stream to remote storage through the per-node storage NICs; asynchronous
// checkpointing blocks only for the GPU->host-memory snapshot (the paper:
// "store the model state in memory and utilize a separate thread to
// regularly save these states to remote persistent storage"), then persists
// in the background.
#pragma once

#include "parallel/model_math.h"

namespace acme::ckpt {

struct CheckpointTimingConfig {
  double pcie_bytes_per_sec = 22e9;        // effective D2H bandwidth per GPU
  double quiesce_seconds = 0.4;            // stop-the-world snapshot overhead
  double backend_bytes_per_sec = 80e9;     // remote FS aggregate
  double node_nic_bytes_per_sec = 3.125e9; // 25 Gb/s storage NIC (Seren)
  int gpus_per_node = 8;
};

class CheckpointTimingModel {
 public:
  explicit CheckpointTimingModel(CheckpointTimingConfig config = {});

  // Bytes each GPU owns (ZeRO-sharded model states).
  double bytes_per_gpu(double params, int world) const;
  // Full checkpoint payload.
  double total_bytes(double params) const;

  // Training stall per checkpoint under each strategy.
  double sync_blocking_seconds(double params, int world) const;
  double async_blocking_seconds(double params, int world) const;
  // Background persist duration for the async strategy (does not block).
  double async_persist_seconds(double params, int world) const;

  // Fraction of training time lost to checkpointing at a given interval.
  double overhead_fraction(double blocking_seconds, double interval_seconds) const;

  const CheckpointTimingConfig& config() const { return config_; }

 private:
  double storage_bandwidth(int world) const;
  CheckpointTimingConfig config_;
};

}  // namespace acme::ckpt
