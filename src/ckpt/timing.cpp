#include "ckpt/timing.h"

#include <algorithm>

#include "common/check.h"

namespace acme::ckpt {

CheckpointTimingModel::CheckpointTimingModel(CheckpointTimingConfig config)
    : config_(config) {
  ACME_CHECK(config_.pcie_bytes_per_sec > 0);
  ACME_CHECK(config_.backend_bytes_per_sec > 0);
  ACME_CHECK(config_.node_nic_bytes_per_sec > 0);
}

double CheckpointTimingModel::total_bytes(double params) const {
  return parallel::checkpoint_bytes(params);
}

double CheckpointTimingModel::bytes_per_gpu(double params, int world) const {
  ACME_CHECK(world > 0);
  return total_bytes(params) / world;
}

double CheckpointTimingModel::storage_bandwidth(int world) const {
  const int nodes = std::max(1, world / config_.gpus_per_node);
  return std::min(config_.backend_bytes_per_sec,
                  nodes * config_.node_nic_bytes_per_sec);
}

double CheckpointTimingModel::sync_blocking_seconds(double params, int world) const {
  // All writers stream in parallel; the job stalls until the slowest finishes,
  // i.e. the whole payload has crossed the storage fabric.
  return total_bytes(params) / storage_bandwidth(world);
}

double CheckpointTimingModel::async_blocking_seconds(double params, int world) const {
  // Stall = quiesce + device-to-host copy of this GPU's shard (all GPUs copy
  // concurrently over their own PCIe links).
  return config_.quiesce_seconds +
         bytes_per_gpu(params, world) / config_.pcie_bytes_per_sec;
}

double CheckpointTimingModel::async_persist_seconds(double params, int world) const {
  return total_bytes(params) / storage_bandwidth(world);
}

double CheckpointTimingModel::overhead_fraction(double blocking_seconds,
                                                double interval_seconds) const {
  ACME_CHECK(interval_seconds > 0);
  return blocking_seconds / (interval_seconds + blocking_seconds);
}

}  // namespace acme::ckpt
