#include "ckpt/ledger.h"

#include "common/check.h"

namespace acme::ckpt {

void CheckpointLedger::record(std::uint64_t step, double snapshot_time,
                              double durable_time) {
  ACME_CHECK_MSG(records_.empty() || step > records_.back().step,
                 "checkpoint steps must be recorded in ascending order");
  ACME_CHECK(durable_time >= snapshot_time);
  records_.push_back({step, snapshot_time, durable_time});
}

void CheckpointLedger::invalidate_after(std::uint64_t step) {
  while (!records_.empty() && records_.back().step > step) records_.pop_back();
}

std::optional<CheckpointRecord> CheckpointLedger::latest_durable(double now) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (it->durable_time <= now) return *it;
  return std::nullopt;
}

std::optional<CheckpointRecord> CheckpointLedger::durable_before_step(
    std::uint64_t before_step, double now) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (it->durable_time <= now && it->step <= before_step) return *it;
  return std::nullopt;
}

}  // namespace acme::ckpt
