// Discrete-event simulation engine.
//
// A single-threaded priority-queue scheduler: events fire in (time, sequence)
// order so that ties are broken deterministically by insertion order. Events
// are cancellable (needed by the scheduler when a job is killed while its
// completion event is pending) and may schedule further events while firing.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace acme::sim {

using Time = double;  // seconds since simulation start

class Engine;

// Opaque handle for cancelling a scheduled event. Default-constructed handles
// are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now). Returns a handle
  // that can cancel the event before it fires.
  EventHandle schedule_at(Time when, std::function<void()> fn);
  // Schedules `fn` to run `delay` seconds from now.
  EventHandle schedule_after(Time delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventHandle handle);

  // Runs events until the queue is empty or the horizon is reached. Events
  // scheduled exactly at the horizon still fire. Returns number of events run.
  std::size_t run_until(Time horizon);
  // Runs everything (horizon = infinity).
  std::size_t run();
  // Fires at most one event; returns false if queue empty or next event is
  // beyond `horizon`.
  bool step(Time horizon);

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Callbacks keyed by sequence number; kept out of the heap so cancellation
  // is O(1) without heap surgery.
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
};

}  // namespace acme::sim
