// Discrete-event simulation engine.
//
// A single-threaded priority-queue scheduler: events fire in (time, sequence)
// order so that ties are broken deterministically by insertion order. Events
// are cancellable (needed by the scheduler when a job is killed while its
// completion event is pending) and may schedule further events while firing.
//
// The engine is the shared spine of every integrated run (acme::world): all
// subsystems accept an Engine& instead of constructing their own, so failure,
// recovery, scheduling and evaluation events interleave on one clock.
//
// Per-event bookkeeping is a generation-tagged slot vector: a handle is a
// (slot, generation) pair, the slot array owns the callback, and the heap
// entry carries the same pair. Cancellation bumps the slot generation, so a
// stale heap entry or handle is detected with one array load — no hash
// lookups on the hot path, and handles stay O(1)-cancellable and safe to use
// after the event fired (double-cancel / cancel-after-fire return false).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace acme::sim {

using Time = double;  // seconds since simulation start

class Engine;

// Opaque handle for cancelling a scheduled event. Default-constructed handles
// are inert. A handle never dangles: once its event fired or was cancelled,
// the slot generation moved on and every further cancel() is a cheap no-op.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return generation_ != 0; }

 private:
  friend class Engine;
  EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;  // 0 = inert; live slots start at 1
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now). Returns a handle
  // that can cancel the event before it fires.
  EventHandle schedule_at(Time when, std::function<void()> fn);
  // Schedules `fn` to run `delay` seconds from now.
  EventHandle schedule_after(Time delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventHandle handle);

  // Runs events until the queue is empty or the horizon is reached. Events
  // scheduled exactly at the horizon still fire. Returns number of events run.
  std::size_t run_until(Time horizon);
  // Runs everything (horizon = infinity).
  std::size_t run();
  // Fires at most one event; returns false if queue empty or next event is
  // beyond `horizon`.
  bool step(Time horizon);

  // Exact count of live (scheduled, not yet fired or cancelled) events;
  // maintained as a counter, so accuracy does not depend on how many
  // cancelled entries still sit in the heap.
  std::size_t pending() const { return live_; }
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;       // global insertion order, breaks time ties
    std::uint32_t slot;
    std::uint32_t generation;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  // One callback slot, reused across events. The generation increments every
  // time the slot retires (fire or cancel), invalidating outstanding handles
  // and heap entries that still reference the old occupancy.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 0;
  };

  // Retires a slot: drops the callback, bumps the generation and recycles the
  // index. Callers own the fn move-out when they need to run it first.
  void retire(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace acme::sim
