// Discrete-event simulation engine.
//
// A single-threaded priority-queue scheduler: events fire in (time, sequence)
// order so that ties are broken deterministically by insertion order. Events
// are cancellable (needed by the scheduler when a job is killed while its
// completion event is pending) and may schedule further events while firing.
//
// The engine is the shared spine of every integrated run (acme::world): all
// subsystems accept an Engine& instead of constructing their own, so failure,
// recovery, scheduling and evaluation events interleave on one clock.
//
// Per-event bookkeeping is a generation-tagged slot vector: a handle is a
// (slot, seq) pair, the slot array owns the callback, and the heap entry
// carries the same pair. The global insertion sequence doubles as the slot's
// generation tag — it is unique per occupancy — so a stale heap entry or
// handle is detected with one array load, heap entries stay 16 bytes, and
// handles stay O(1)-cancellable and safe to use after the event fired
// (double-cancel / cancel-after-fire return false).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/inline_fn.h"

namespace acme::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace acme::snap

namespace acme::sim {

using Time = double;  // seconds since simulation start

// Event callbacks live inline in the slot vector — no per-event heap
// allocation, ever (a capture that outgrows the budget is a compile error at
// the schedule site, see common::InlineFn). 40 bytes covers the largest
// current capture (evalsched's trial closures: shared_ptr + indices + a
// timestamp) and makes one Slot exactly a cache line: 40-byte buffer +
// invoke/relocate pointers + the generation tag = 64 bytes, so the stale
// check, the callback and its capture are one memory access per event.
inline constexpr std::size_t kEventCaptureBytes = 40;
using EventFn = common::InlineFn<kEventCaptureBytes>;

class Engine;

// One fired event, as recorded by Engine::run_window: the (time, seq) pair
// the two-level queue popped. Within one engine the commit stream is exactly
// the serial pop order; across engines the canonical (time, partition, seq)
// sort of these records is what sim::WindowRunner's merge reproduces.
struct Commit {
  Time time;
  std::uint32_t seq;
};

// Opaque handle for cancelling a scheduled event. Default-constructed handles
// are inert. A handle never dangles: once its event fired or was cancelled,
// the slot's occupancy seq moved on and every further cancel() is a cheap
// no-op.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

  // Snapshot support: a handle round-trips through a u64 so subsystems can
  // persist the handles they hold and rebind their callbacks on restore.
  std::uint64_t raw() const {
    return (static_cast<std::uint64_t>(slot_) << 32) | seq_;
  }
  static EventHandle from_raw(std::uint64_t raw) {
    return EventHandle(static_cast<std::uint32_t>(raw >> 32),
                       static_cast<std::uint32_t>(raw));
  }

 private:
  friend class Engine;
  EventHandle(std::uint32_t slot, std::uint32_t seq) : slot_(slot), seq_(seq) {}
  std::uint32_t slot_ = 0;
  std::uint32_t seq_ = 0;  // 0 = inert; live seqs start at 1
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now). Returns a handle
  // that can cancel the event before it fires. The callable is constructed
  // in place in its slot (no intermediate moves); its capture must fit
  // kEventCaptureBytes — checked at compile time.
  template <typename F>
  EventHandle schedule_at(Time when, F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, std::nullptr_t>) {
      ACME_CHECK_MSG(fn != nullptr, "null event callback");
      return {};
    } else {
      if constexpr (std::is_same_v<std::decay_t<F>, std::function<void()>> ||
                    std::is_same_v<std::decay_t<F>, EventFn>)
        ACME_CHECK_MSG(fn, "null event callback");
      const EventHandle handle = acquire(when);
      if constexpr (std::is_same_v<std::decay_t<F>, EventFn>)
        slots_[handle.slot_].fn = std::forward<F>(fn);
      else
        slots_[handle.slot_].fn.emplace(std::forward<F>(fn));
      return handle;
    }
  }
  // Schedules `fn` to run `delay` seconds from now.
  template <typename F>
  EventHandle schedule_after(Time delay, F&& fn) {
    ACME_CHECK_MSG(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventHandle handle);

  // Pre-sizes the slot vector and heap for `events` concurrently pending
  // events. Purely an optimization: growing past the reservation still
  // works, but bulk schedulers (a replay posts every submission up front)
  // avoid repeated doubling, which move-relocates every live callback slot.
  void reserve(std::size_t events);

  // Returns the engine to its initial state (t = 0, no pending events, seq
  // restarted) while keeping the slot and run-queue capacity. Because the
  // clock restarts at zero, a reused engine produces bit-identical event
  // times to a brand-new one — the basis for Monte Carlo scratch reuse.
  void reset();

  // Runs events until the queue is empty or the horizon is reached. Events
  // scheduled exactly at the horizon still fire. Returns number of events run.
  std::size_t run_until(Time horizon);
  // Runs everything (horizon = infinity).
  std::size_t run();
  // Fires at most one event; returns false if queue empty or next event is
  // beyond `horizon`.
  bool step(Time horizon);

  // Time of the next pending event without firing it; +infinity when idle.
  // Non-const like step(): it lazily drops stale (cancelled) entries from
  // the queue front on the way to the answer.
  Time next_event_time();

  // Fires every pending event with time STRICTLY below `end_exclusive` —
  // the half-open window [now, end) of the conservative parallel drain —
  // appending one Commit per fired event to `log` (which is not cleared
  // here). Unlike run_until, the clock is never advanced to the window edge:
  // it stays at the last fired event, so makespan accounting matches a plain
  // run() drain exactly. Returns the number of events fired.
  std::size_t run_window(Time end_exclusive, std::vector<Commit>& log);

  // Exact count of live (scheduled, not yet fired or cancelled) events;
  // maintained as a counter, so accuracy does not depend on how many
  // cancelled entries still sit in the heap.
  std::size_t pending() const { return live_; }
  std::uint64_t events_fired() const { return fired_; }

  // --- Snapshot support (acme::snap, DESIGN.md §12) ---
  //
  // Callbacks are type-erased closures (InlineFn) and cannot be serialized;
  // instead save() persists the queue STRUCTURE verbatim — clock, sequence
  // counter, slot generations, free list, both run-queue levels — and each
  // subsystem re-installs its own callbacks into the restored slots via
  // rebind(). Because the (time, seq) entries are byte-identical, the
  // restored engine pops events in exactly the original order, which is
  // what makes restored-run digests byte-identical to straight-through runs.
  void save(snap::SnapshotWriter& w) const;
  // Restores into a fresh or reset() engine only (non-empty restore is a
  // loud ACME_CHECK failure); recomputes reserve() bounds from the restored
  // slot count so capacity invariants survive the round-trip.
  void restore(snap::SnapshotReader& r);
  // Re-installs the callback for a restored pending event. The handle must
  // reference a live, not-yet-rebound slot.
  template <typename F>
  void rebind(EventHandle handle, F&& fn) {
    ACME_CHECK_MSG(handle.valid() && handle.slot_ < slots_.size() &&
                       slots_[handle.slot_].seq == handle.seq_,
                   "rebind on a handle that references no pending event");
    Slot& s = slots_[handle.slot_];
    ACME_CHECK_MSG(!s.fn, "rebind on an already-bound event slot");
    s.fn.emplace(std::forward<F>(fn));
    if (unbound_ > 0) --unbound_;
  }
  // Pending events whose callback has not been rebound yet; a fully restored
  // world must bring this to zero before running. Maintained as a counter
  // (restore() arms it with the live-event count, every rebind() retires
  // one) so the check does not re-walk the whole slot vector.
  std::size_t unbound() const { return unbound_; }

 private:
  // 16 bytes: seq both breaks time ties deterministically (insertion order)
  // and tags the slot occupancy for staleness checks. u32 seq uniquely
  // orders ~4.3 billion schedules per Engine; a six-month integrated replay
  // fires ~2 million events, three orders of magnitude of headroom.
  struct Entry {
    Time time;
    std::uint32_t seq;  // global insertion order, breaks time ties
    std::uint32_t slot;
    // Ordered as a min-heap on (time, seq).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  // One callback slot, reused across events; exactly one cache line. seq is
  // the insertion seq of the current occupant (0 = vacant); retiring the
  // slot (fire or cancel) zeroes it, invalidating outstanding handles and
  // heap entries that still reference the old occupancy.
  struct Slot {
    EventFn fn;
    std::uint32_t seq = 0;
  };

  // Claims a slot for an event at `when` (validates the time, pushes the heap
  // entry, bumps the live count) and returns its handle; the caller installs
  // the callback into slots_[handle.slot_].fn.
  EventHandle acquire(Time when);

  // Retires a slot: drops the callback, bumps the generation and recycles the
  // index. Callers own the fn move-out when they need to run it first.
  void retire(std::uint32_t slot);

  // Two-level priority queue. Entries pushed in ascending (time, seq) order
  // append to `sorted_` and pop by advancing a cursor — O(1) and sequential.
  // Out-of-order pushes go to a conventional binary min-heap. The global
  // minimum is the smaller of the two fronts under the identical (time, seq)
  // comparison, so the pop order is exactly that of a single heap. The split
  // pays off because a replay posts every submission up front in submit
  // order: the bulk lives in the cursor run and the heap holds only the live
  // completions — small enough to stay cache-resident.
  void queue_push(const Entry& e) {
    if (sorted_head_ == sorted_.size()) {
      sorted_.clear();
      sorted_head_ = 0;
    }
    if (sorted_.empty() || e > sorted_.back()) {
      sorted_.push_back(e);
    } else {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  }
  bool queue_empty() const {
    return sorted_head_ == sorted_.size() && heap_.empty();
  }
  // Precondition: !queue_empty(). Returns the front entry and whether it
  // comes from the sorted run (pass that flag back to queue_pop).
  const Entry& queue_top(bool& from_sorted) const {
    from_sorted = sorted_head_ < sorted_.size() &&
                  (heap_.empty() || heap_.front() > sorted_[sorted_head_]);
    return from_sorted ? sorted_[sorted_head_] : heap_.front();
  }
  void queue_pop(bool from_sorted) {
    if (from_sorted) {
      ++sorted_head_;
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
  }

  Time now_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::vector<Entry> sorted_;  // ascending run, popped at sorted_head_
  std::size_t sorted_head_ = 0;
  std::vector<Entry> heap_;  // out-of-order pushes, binary min-heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  // Restored-but-not-yet-rebound events (zero outside a restore cycle:
  // schedule_at installs callbacks at acquire time).
  std::size_t unbound_ = 0;
};

}  // namespace acme::sim
