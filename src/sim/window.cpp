#include "sim/window.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>

#include "common/check.h"

namespace acme::sim {

void WindowRunner::add_partition(Engine& engine, std::uint32_t key) {
  ACME_CHECK_MSG(stats_.windows == 0,
                 "add_partition after run() started: a late partition would "
                 "splice a fresh log into an already-running digest");
  for (const Partition& p : parts_) {
    ACME_CHECK_MSG(p.key != key, "duplicate partition key");
    ACME_CHECK_MSG(p.engine != &engine, "engine registered twice");
  }
  Partition part;
  part.engine = &engine;
  part.key = key;
  parts_.push_back(std::move(part));
}

void WindowRunner::reserve(std::size_t commits_per_partition) {
  for (Partition& p : parts_) p.log.reserve(commits_per_partition);
}

WindowStats WindowRunner::run(task::Pool* pool, Time lookahead) {
  ACME_CHECK_MSG(lookahead > 0, "window lookahead must be positive");
  ACME_CHECK_MSG(!parts_.empty(), "WindowRunner has no partitions");
  constexpr Time kInf = std::numeric_limits<Time>::infinity();
  const WindowStats before = stats_;
  std::uint64_t call_max_window_events = 0;
  for (;;) {
    // Window origin: the earliest pending event anywhere. Peeking is done on
    // the coordinating thread; the previous round's barrier ordered it after
    // all worker writes to the engines.
    Time t0 = kInf;
    for (Partition& p : parts_) t0 = std::min(t0, p.engine->next_event_time());
    if (t0 == kInf) break;
    Time end = lookahead == kInf ? kInf : t0 + lookahead;
    // Forward-progress guarantee: at large t0 a small Δ can round t0 + Δ
    // back to exactly t0 (double has ~15 significant digits), which would
    // leave every partition outside the half-open window and spin forever.
    // Widen to the next representable instant so the t0 event itself always
    // drains; determinism is unaffected (Δ only moves window boundaries).
    if (end <= t0) end = std::nextafter(t0, kInf);

    std::size_t active = 0;
    for (Partition& p : parts_) {
      p.log.clear();
      p.cursor = 0;
      if (p.engine->next_event_time() < end) ++active;
    }
    ++stats_.windows;
    if (pool != nullptr) {
      // Even a lone active partition executes as a pool task: the window
      // still crosses a thread boundary, which is what the TSan tier and the
      // workers determinism matrix need exercised; true concurrency simply
      // requires active > 1.
      if (active > 1) ++stats_.parallel_windows;
      task::WaitGroup wg;
      std::size_t hint = 0;
      for (Partition& p : parts_) {
        if (!(p.engine->next_event_time() < end)) continue;
        Partition* part = &p;
        pool->spawn(wg, hint++, [part, end] {
          part->engine->run_window(end, part->log);
        });
      }
      wg.wait();  // the deterministic barrier; rethrows partition errors
    } else {
      for (Partition& p : parts_) {
        if (p.engine->next_event_time() < end) p.engine->run_window(end, p.log);
      }
    }
    call_max_window_events = std::max(call_max_window_events, merge_window());
  }
  WindowStats delta = stats_;
  delta.windows -= before.windows;
  delta.parallel_windows -= before.parallel_windows;
  delta.events -= before.events;
  // The counters above subtract cleanly; a max does not, so the delta's
  // busiest-round figure is tracked per call (stats_ keeps the all-time max).
  delta.max_window_events = call_max_window_events;
  return delta;
}

std::uint64_t WindowRunner::merge_window() {
  // K-way merge by linear min-scan: partition counts are small (node groups,
  // not jobs), so O(K) per commit beats a heap's bookkeeping and allocates
  // nothing. Comparator is the canonical (time, key, seq); within one
  // partition the log is already ascending (time, seq), so advancing one
  // cursor at a time yields the global sort of the window.
  std::uint64_t merged = 0;
  for (;;) {
    Partition* best = nullptr;
    for (Partition& p : parts_) {
      if (p.cursor >= p.log.size()) continue;
      if (best == nullptr) {
        best = &p;
        continue;
      }
      const Commit& a = p.log[p.cursor];
      const Commit& b = best->log[best->cursor];
      if (a.time < b.time ||
          (a.time == b.time &&
           (p.key < best->key || (p.key == best->key && a.seq < b.seq)))) {
        best = &p;
      }
    }
    if (best == nullptr) break;
    const Commit& c = best->log[best->cursor++];
    std::uint64_t time_bits = 0;
    std::memcpy(&time_bits, &c.time, sizeof(time_bits));
    unsigned char buf[16];
    std::memcpy(buf, &time_bits, 8);
    std::memcpy(buf + 8, &best->key, 4);
    std::memcpy(buf + 12, &c.seq, 4);
    digest_.update(
        std::string_view(reinterpret_cast<const char*>(buf), sizeof(buf)));
    if (sink_) sink_(best->key, c);
    ++merged;
  }
  stats_.events += merged;
  stats_.max_window_events = std::max(stats_.max_window_events, merged);
  return merged;
}

}  // namespace acme::sim
