// Conservative parallel drain of independent event partitions.
//
// WindowRunner owns the coordination loop that parallelizes a replay without
// giving up determinism (DESIGN.md §13). It holds N partitions — each an
// Engine whose events provably cannot interact with any other partition's
// (disjoint node groups / failure domains; nothing in the simulation sends
// an event across partitions mid-run) — and drains them in lockstep
// *windows*:
//
//   1. t0   = min over partitions of next_event_time()
//   2. end  = t0 + Δ (the lookahead; +infinity = one window drains all)
//   3. every partition with work below `end` executes run_window(end)
//      concurrently on a task::Pool (or inline when only one is active)
//   4. after the WaitGroup barrier, the per-partition (time, seq) commit
//      logs are k-way merged in the canonical (time, partition key, seq)
//      order into the commit digest (and an optional sink)
//
// Why the merged order is byte-identical at ANY worker count and ANY Δ:
// within a partition the log is the engine's serial pop order (ascending
// (time, seq) — the two-level queue guarantees it), and each window's
// commits occupy the same half-open time interval for every partition, so
// concatenating per-window merges equals one global sort of all commits by
// (time, key, seq). Workers only change *when* a partition executes, never
// what it commits; Δ only changes where the interval boundaries fall. Both
// are therefore invisible in the digest — the invariant test_determinism
// pins across workers ∈ {1, 2, 8} and the window-partitioner property test
// pins against a single-heap reference.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/digest.h"
#include "sim/engine.h"
#include "task/task.h"

namespace acme::sim {

struct WindowStats {
  std::uint64_t windows = 0;           // coordination rounds executed
  std::uint64_t parallel_windows = 0;  // rounds with >= 2 active partitions
  std::uint64_t events = 0;            // total commits merged
  std::uint64_t max_window_events = 0; // busiest single round
};

class WindowRunner {
 public:
  // Observes every commit in merged canonical order (after the barrier, on
  // the coordinating thread). Optional; leave unset on the bench hot path.
  using Sink = std::function<void(std::uint32_t key, const Commit&)>;

  WindowRunner() = default;
  WindowRunner(const WindowRunner&) = delete;
  WindowRunner& operator=(const WindowRunner&) = delete;

  // Registers a partition. Keys must be unique — they are the canonical
  // cross-partition tie-break for same-time commits — and the engine must
  // outlive the runner. Not callable once run() started.
  void add_partition(Engine& engine, std::uint32_t key);

  std::size_t partitions() const { return parts_.size(); }

  // Pre-sizes every partition's commit log so the drain never reallocates
  // mid-window. The bound is per WINDOW (logs are cleared each round); for
  // an all-in-one-window drain (Δ = infinity) pass the whole event count.
  void reserve(std::size_t commits_per_partition);

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Drains every partition to completion. `lookahead` (Δ, simulated seconds,
  // > 0; +infinity legal) bounds each window; `pool` may be null for a
  // fully inline drain (what workers=1 plumbs through). Partition exceptions
  // are rethrown here on the coordinating thread, after the barrier.
  // Cumulative across calls: a second run() continues the same digest/stats,
  // which is what lets a restored world resume mid-stream. The returned
  // stats are this call's delta; its max_window_events is the busiest round
  // of THIS call (stats() keeps the cumulative all-time max).
  WindowStats run(task::Pool* pool, Time lookahead);

  // FNV-1a over the merged (time-bits, key, seq) commit stream so far.
  std::uint64_t commit_digest() const { return digest_.digest(); }
  const WindowStats& stats() const { return stats_; }

 private:
  struct Partition {
    Engine* engine = nullptr;
    std::uint32_t key = 0;
    std::vector<Commit> log;  // commits of the current window only
    std::size_t cursor = 0;   // merge progress within `log`
  };

  // Merges the current window's logs into the digest; returns the commit
  // count of this window.
  std::uint64_t merge_window();

  std::vector<Partition> parts_;
  Sink sink_;
  common::Fnv1a digest_;
  WindowStats stats_;
};

}  // namespace acme::sim
