#include "sim/engine.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::sim {

namespace {

// Cold path behind the obs::enabled() branch in step(): counts dispatches and
// samples queue depth every 4096 events so the trace stays bounded even over
// six-month replays.
void observe_dispatch(std::uint64_t fired, std::size_t pending) {
  static obs::Counter& events = obs::metrics().counter(
      "acme_sim_events_fired_total", "Events dispatched by sim::Engine");
  static obs::Histogram& depth = obs::metrics().histogram(
      "acme_sim_queue_depth", "Pending-event queue depth sampled at dispatch",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  events.inc();
  if ((fired & 0xfff) == 0) {
    depth.observe(static_cast<double>(pending));
    obs::tracer().counter("sim", "pending_events",
                          static_cast<double>(pending));
  }
}

}  // namespace

EventHandle Engine::schedule_at(Time when, std::function<void()> fn) {
  ACME_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  ACME_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().generation = 1;
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push(Entry{when, next_seq_++, slot, s.generation});
  ++live_;
  return EventHandle(slot, s.generation);
}

EventHandle Engine::schedule_after(Time delay, std::function<void()> fn) {
  ACME_CHECK_MSG(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.generation;  // invalidates outstanding handles and stale heap entries
  free_slots_.push_back(slot);
  --live_;
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
  if (slots_[handle.slot_].generation != handle.generation_) return false;
  retire(handle.slot_);
  return true;
}

bool Engine::step(Time horizon) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    if (slots_[top.slot].generation != top.generation) {
      heap_.pop();  // cancelled: the slot moved on before this entry surfaced
      continue;
    }
    if (top.time > horizon) return false;
    heap_.pop();
    auto fn = std::move(slots_[top.slot].fn);
    ACME_CHECK_MSG(fn != nullptr, "event lost its callback");
    retire(top.slot);
    now_ = top.time;
    ++fired_;
    if (obs::enabled()) observe_dispatch(fired_, pending());
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time horizon) {
  std::size_t n = 0;
  while (step(horizon)) ++n;
  // Advance the clock to the horizon even if no event lands exactly there, so
  // successive run_until calls observe monotonically increasing time.
  if (horizon > now_ && horizon < std::numeric_limits<Time>::infinity()) now_ = horizon;
  return n;
}

std::size_t Engine::run() {
  ACME_OBS_SPAN("sim", "run");
  std::size_t n = 0;
  while (step(std::numeric_limits<Time>::infinity())) ++n;
  return n;
}

}  // namespace acme::sim
