#include "sim/engine.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::sim {

namespace {

// Cold path behind the obs::enabled() branch in step(): counts dispatches and
// samples queue depth every 4096 events so the trace stays bounded even over
// six-month replays.
void observe_dispatch(std::uint64_t fired, std::size_t pending) {
  static obs::Counter& events = obs::metrics().counter(
      "acme_sim_events_fired_total", "Events dispatched by sim::Engine");
  static obs::Histogram& depth = obs::metrics().histogram(
      "acme_sim_queue_depth", "Pending-event queue depth sampled at dispatch",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  events.inc();
  if ((fired & 0xfff) == 0) {
    depth.observe(static_cast<double>(pending));
    obs::tracer().counter("sim", "pending_events",
                          static_cast<double>(pending));
  }
}

}  // namespace

EventHandle Engine::acquire(Time when) {
  ACME_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint32_t seq = next_seq_++;
  slots_[slot].seq = seq;
  queue_push(Entry{when, seq, slot});
  ++live_;
  return EventHandle(slot, seq);
}

void Engine::reserve(std::size_t events) {
  slots_.reserve(events);
  free_slots_.reserve(events);
  sorted_.reserve(events);
  heap_.reserve(events);
}

void Engine::reset() {
  now_ = 0;
  next_seq_ = 1;
  fired_ = 0;
  live_ = 0;
  sorted_.clear();
  sorted_head_ = 0;
  heap_.clear();
  free_slots_.clear();
  // Refill the free list descending so acquire() hands out slot 0 first —
  // the same ids a fresh engine would grow into.
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;) {
    slots_[i].fn.reset();
    slots_[i].seq = 0;
    free_slots_.push_back(i);
  }
}

void Engine::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.seq = 0;  // invalidates outstanding handles and stale heap entries
  free_slots_.push_back(slot);
  --live_;
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
  if (slots_[handle.slot_].seq != handle.seq_) return false;
  retire(handle.slot_);
  return true;
}

bool Engine::step(Time horizon) {
  while (!queue_empty()) {
    bool from_sorted = false;
    const Entry top = queue_top(from_sorted);
    if (slots_[top.slot].seq != top.seq) {
      queue_pop(from_sorted);  // cancelled: the slot moved on already
      continue;
    }
    if (top.time > horizon) return false;
    queue_pop(from_sorted);
    // Move the callback out before retiring: the callback may schedule new
    // events, and a freshly recycled slot must not alias the running closure.
    EventFn fn = std::move(slots_[top.slot].fn);
    ACME_CHECK_MSG(fn, "event lost its callback");
    retire(top.slot);
    now_ = top.time;
    ++fired_;
    if (obs::enabled()) observe_dispatch(fired_, pending());
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time horizon) {
  std::size_t n = 0;
  while (step(horizon)) ++n;
  // Advance the clock to the horizon even if no event lands exactly there, so
  // successive run_until calls observe monotonically increasing time.
  if (horizon > now_ && horizon < std::numeric_limits<Time>::infinity()) now_ = horizon;
  return n;
}

std::size_t Engine::run() {
  ACME_OBS_SPAN("sim", "run");
  std::size_t n = 0;
  while (step(std::numeric_limits<Time>::infinity())) ++n;
  return n;
}

}  // namespace acme::sim
