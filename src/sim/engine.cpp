#include "sim/engine.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::sim {

namespace {

// Cold path behind the obs::enabled() branch in step(): counts dispatches and
// samples queue depth every 4096 events so the trace stays bounded even over
// six-month replays.
void observe_dispatch(std::uint64_t fired, std::size_t pending) {
  static obs::Counter& events = obs::metrics().counter(
      "acme_sim_events_fired_total", "Events dispatched by sim::Engine");
  static obs::Histogram& depth = obs::metrics().histogram(
      "acme_sim_queue_depth", "Pending-event queue depth sampled at dispatch",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  events.inc();
  if ((fired & 0xfff) == 0) {
    depth.observe(static_cast<double>(pending));
    obs::tracer().counter("sim", "pending_events",
                          static_cast<double>(pending));
  }
}

}  // namespace

EventHandle Engine::schedule_at(Time when, std::function<void()> fn) {
  ACME_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  ACME_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventHandle(seq);
}

EventHandle Engine::schedule_after(Time delay, std::function<void()> fn) {
  ACME_CHECK_MSG(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  auto it = callbacks_.find(handle.seq_);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(handle.seq_);
  return true;
}

bool Engine::step(Time horizon) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    if (cancelled_.erase(top.seq) > 0) {
      heap_.pop();
      continue;
    }
    if (top.time > horizon) return false;
    heap_.pop();
    auto it = callbacks_.find(top.seq);
    ACME_CHECK_MSG(it != callbacks_.end(), "event lost its callback");
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++fired_;
    if (obs::enabled()) observe_dispatch(fired_, pending());
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time horizon) {
  std::size_t n = 0;
  while (step(horizon)) ++n;
  // Advance the clock to the horizon even if no event lands exactly there, so
  // successive run_until calls observe monotonically increasing time.
  if (horizon > now_ && horizon < std::numeric_limits<Time>::infinity()) now_ = horizon;
  return n;
}

std::size_t Engine::run() {
  ACME_OBS_SPAN("sim", "run");
  std::size_t n = 0;
  while (step(std::numeric_limits<Time>::infinity())) ++n;
  return n;
}

}  // namespace acme::sim
