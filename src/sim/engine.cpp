#include "sim/engine.h"

#include <limits>

#include "common/check.h"
#include "obs/obs.h"
#include "snap/format.h"

namespace acme::sim {

namespace {

// Cold path behind the obs::enabled() branch in step(): counts dispatches and
// samples queue depth every 4096 events so the trace stays bounded even over
// six-month replays.
void observe_dispatch(std::uint64_t fired, std::size_t pending) {
  static obs::Counter& events = obs::metrics().counter(
      "acme_sim_events_fired_total", "Events dispatched by sim::Engine");
  static obs::Histogram& depth = obs::metrics().histogram(
      "acme_sim_queue_depth", "Pending-event queue depth sampled at dispatch",
      obs::Histogram::exponential_buckets(1.0, 4.0, 10));
  events.inc();
  if ((fired & 0xfff) == 0) {
    depth.observe(static_cast<double>(pending));
    obs::tracer().counter("sim", "pending_events",
                          static_cast<double>(pending));
  }
}

}  // namespace

EventHandle Engine::acquire(Time when) {
  ACME_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint32_t seq = next_seq_++;
  slots_[slot].seq = seq;
  queue_push(Entry{when, seq, slot});
  ++live_;
  return EventHandle(slot, seq);
}

void Engine::reserve(std::size_t events) {
  slots_.reserve(events);
  free_slots_.reserve(events);
  sorted_.reserve(events);
  heap_.reserve(events);
}

void Engine::reset() {
  now_ = 0;
  next_seq_ = 1;
  fired_ = 0;
  live_ = 0;
  unbound_ = 0;
  sorted_.clear();
  sorted_head_ = 0;
  heap_.clear();
  free_slots_.clear();
  // Refill the free list descending so acquire() hands out slot 0 first —
  // the same ids a fresh engine would grow into.
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;) {
    slots_[i].fn.reset();
    slots_[i].seq = 0;
    free_slots_.push_back(i);
  }
}

void Engine::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.seq = 0;  // invalidates outstanding handles and stale heap entries
  free_slots_.push_back(slot);
  --live_;
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
  if (slots_[handle.slot_].seq != handle.seq_) return false;
  retire(handle.slot_);
  return true;
}

bool Engine::step(Time horizon) {
  while (!queue_empty()) {
    bool from_sorted = false;
    const Entry top = queue_top(from_sorted);
    if (slots_[top.slot].seq != top.seq) {
      queue_pop(from_sorted);  // cancelled: the slot moved on already
      continue;
    }
    if (top.time > horizon) return false;
    queue_pop(from_sorted);
    // Move the callback out before retiring: the callback may schedule new
    // events, and a freshly recycled slot must not alias the running closure.
    EventFn fn = std::move(slots_[top.slot].fn);
    ACME_CHECK_MSG(fn, "event lost its callback");
    retire(top.slot);
    now_ = top.time;
    ++fired_;
    if (obs::enabled()) observe_dispatch(fired_, pending());
    fn();
    return true;
  }
  return false;
}

Time Engine::next_event_time() {
  while (!queue_empty()) {
    bool from_sorted = false;
    const Entry& top = queue_top(from_sorted);
    if (slots_[top.slot].seq != top.seq) {
      queue_pop(from_sorted);  // cancelled: the slot moved on already
      continue;
    }
    return top.time;
  }
  return std::numeric_limits<Time>::infinity();
}

std::size_t Engine::run_window(Time end_exclusive, std::vector<Commit>& log) {
  std::size_t n = 0;
  while (!queue_empty()) {
    bool from_sorted = false;
    const Entry top = queue_top(from_sorted);
    if (slots_[top.slot].seq != top.seq) {
      queue_pop(from_sorted);
      continue;
    }
    if (!(top.time < end_exclusive)) break;
    queue_pop(from_sorted);
    EventFn fn = std::move(slots_[top.slot].fn);
    ACME_CHECK_MSG(fn, "event lost its callback");
    retire(top.slot);
    now_ = top.time;
    ++fired_;
    if (obs::enabled()) observe_dispatch(fired_, pending());
    log.push_back(Commit{top.time, top.seq});
    fn();
    ++n;
  }
  return n;
}

std::size_t Engine::run_until(Time horizon) {
  std::size_t n = 0;
  while (step(horizon)) ++n;
  // Advance the clock to the horizon even if no event lands exactly there, so
  // successive run_until calls observe monotonically increasing time.
  if (horizon > now_ && horizon < std::numeric_limits<Time>::infinity()) now_ = horizon;
  return n;
}

std::size_t Engine::run() {
  ACME_OBS_SPAN("sim", "run");
  std::size_t n = 0;
  while (step(std::numeric_limits<Time>::infinity())) ++n;
  return n;
}

void Engine::save(snap::SnapshotWriter& w) const {
  w.begin_section("sim.engine");
  w.write_f64(now_);
  w.write_u32(next_seq_);
  w.write_u64(fired_);
  w.write_u64(static_cast<std::uint64_t>(live_));
  // Slot count and the reserve() high-water travel ahead of the bulk arrays
  // so restore can size everything once, before the reads. The capacity hint
  // matters: subsystems re-issue their arm-time reserve() bound after the
  // engine restore, and without the hint that call would reallocate (and
  // move-relocate) the freshly filled slot vector.
  w.write_u64(static_cast<std::uint64_t>(slots_.size()));
  w.write_u64(static_cast<std::uint64_t>(slots_.capacity()));
  // Only the unpopped tail of the sorted run matters; the restore re-bases
  // the cursor at zero. The heap is written verbatim, stale entries and all
  // (they cost 16 bytes each and preserve the exact pop sequence).
  w.write_pod_span(sorted_.data() + sorted_head_, sorted_.size() - sorted_head_);
  w.write_pod_vec(heap_);
  // Slot generations are sparse by construction: retire() zeroes a slot's
  // seq, so only the `live_` occupied slots carry one. Saving (slot, seq)
  // pairs for those reproduces the full vector exactly and keeps the
  // section (and both save/restore passes) proportional to live events,
  // not slot capacity.
  std::vector<std::uint64_t> occupied;
  occupied.reserve(live_);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].seq != 0)
      occupied.push_back(static_cast<std::uint64_t>(i) << 32 | slots_[i].seq);
  w.write_pod_vec(occupied);
  w.write_pod_vec(free_slots_);
  w.end_section();
}

void Engine::restore(snap::SnapshotReader& r) {
  ACME_CHECK_MSG(live_ == 0 && queue_empty() && now_ == 0 && next_seq_ == 1 &&
                     fired_ == 0,
                 "Engine::restore requires a fresh (or reset()) engine; "
                 "restoring over live events would orphan them");
  r.enter_section("sim.engine");
  now_ = r.read_f64();
  next_seq_ = r.read_u32();
  fired_ = r.read_u64();
  live_ = static_cast<std::size_t>(r.read_u64());
  // Recompute capacity bounds from the restored slot count before the bulk
  // reads, so restored replays keep the no-mid-run-reallocation guarantee
  // arm_replay established in the original run.
  const auto slot_count = static_cast<std::size_t>(r.read_u64());
  // The hint is advisory (a corrupt value costs memory, not correctness), so
  // clamp it; an under-reserve just means a later reserve() grows the pools.
  const auto capacity_hint =
      std::min(static_cast<std::size_t>(r.read_u64()), slot_count * 2 + 65536);
  reserve(std::max(slot_count, capacity_hint));
  r.read_pod_vec(sorted_);
  sorted_head_ = 0;
  r.read_pod_vec(heap_);
  std::vector<std::uint64_t> occupied;
  r.read_pod_vec(occupied);
  r.read_pod_vec(free_slots_);
  r.leave_section();
  slots_.clear();
  slots_.resize(slot_count);  // callbacks start empty; subsystems rebind
  for (const std::uint64_t packed : occupied) {
    const auto slot = static_cast<std::size_t>(packed >> 32);
    ACME_CHECK_MSG(slot < slots_.size(),
                   "snapshot slot generation references a slot out of range");
    slots_[slot].seq = static_cast<std::uint32_t>(packed);
  }
  unbound_ = live_;
}

}  // namespace acme::sim
