#include "mc/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

namespace acme::mc {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

void BenchReport::set_timing(const RunTiming& timing, std::size_t replicas) {
  timing_ = timing;
  replicas_ = replicas;
}

void BenchReport::add_metric(const std::string& name,
                             const MetricAggregator& agg,
                             const std::string& unit) {
  MetricSummary m;
  m.metric = name;
  m.unit = unit;
  m.mean = agg.mean();
  m.ci95 = agg.ci95();
  m.p50 = agg.p50();
  m.p90 = agg.p90();
  m.p99 = agg.p99();
  m.min = agg.min();
  m.max = agg.max();
  m.replicas = agg.count();
  metrics_.push_back(std::move(m));
}

std::string BenchReport::to_json() const {
  std::string out;
  out += "{\n  \"bench\": ";
  append_escaped(out, bench_);
  out += ",\n  \"replicas\": " + std::to_string(replicas_);
  out += ",\n  \"threads\": " + std::to_string(timing_.threads_used);
  out += ",\n  \"workers\": " + std::to_string(timing_.workers_used);
  out += ",\n  \"wall_seconds\": ";
  append_number(out, timing_.wall_seconds);
  out += ",\n  \"serial_seconds\": ";
  append_number(out, timing_.serial_seconds);
  out += ",\n  \"speedup\": ";
  append_number(out, timing_.speedup());
  out += ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const auto& m = metrics_[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"metric\": ";
    append_escaped(out, m.metric);
    if (!m.unit.empty()) {
      out += ", \"unit\": ";
      append_escaped(out, m.unit);
    }
    out += ", \"mean\": ";
    append_number(out, m.mean);
    out += ", \"ci95\": ";
    append_number(out, m.ci95);
    out += ", \"p50\": ";
    append_number(out, m.p50);
    out += ", \"p90\": ";
    append_number(out, m.p90);
    out += ", \"p99\": ";
    append_number(out, m.p99);
    out += ", \"min\": ";
    append_number(out, m.min);
    out += ", \"max\": ";
    append_number(out, m.max);
    out += ", \"replicas\": " + std::to_string(m.replicas);
    out += "}";
  }
  out += metrics_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "[mc] cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << to_json();
  if (!f.good()) {
    std::fprintf(stderr, "[mc] short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void add_mc_flags(common::FlagSet& flags, McCli& cli) {
  flags.add("--replicas", &cli.options.replicas,
            "number of Monte Carlo replicas");
  flags.add("--threads", &cli.options.threads,
            "worker threads (0 = hardware concurrency, 1 = serial)");
  flags.add("--workers", &cli.options.workers,
            "per-replica window-drain workers (1 = serial event drain, "
            "0 = hardware concurrency; see DESIGN.md §13)");
  flags.add("--seed", &cli.options.seed, "base seed for the replica streams");
  flags.add("--json", &cli.json_path, "write the BenchReport JSON here");
}

std::optional<McCli> parse_mc_cli_strict(int argc, char** argv,
                                         const ReplicationOptions& defaults,
                                         std::string* error) {
  McCli cli;
  cli.options = defaults;
  common::FlagSet flags(argc > 0 ? argv[0] : "bench");
  add_mc_flags(flags, cli);
  if (!flags.parse(argc, argv, error)) return std::nullopt;
  if (cli.options.replicas == 0) cli.options.replicas = 1;
  return cli;
}

McCli parse_mc_cli(int argc, char** argv, const ReplicationOptions& defaults) {
  McCli cli;
  cli.options = defaults;
  common::FlagSet flags(argc > 0 ? argv[0] : "bench");
  add_mc_flags(flags, cli);
  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.usage().c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage().c_str());
    std::exit(0);
  }
  if (cli.options.replicas == 0) cli.options.replicas = 1;
  return cli;
}

std::string format_with_ci(double value, double ci95, const std::string& unit,
                           int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value << " ±" << ci95;
  if (!unit.empty()) os << " " << unit;
  return os.str();
}

}  // namespace acme::mc
