// Deterministic parallel Monte Carlo replication.
//
// A ReplicationPlan runs N independent replicas of a simulation body on a
// ThreadPool. Determinism is by construction: replica i always draws from
// Rng(seed).fork("<label>-<i>") and writes its result into slot i of a
// pre-sized vector, so per-replica results are bit-identical to serial
// execution regardless of thread count or scheduling order. Aggregation
// (aggregate.h) then folds the slots in replica order on the calling thread,
// making merged statistics equally schedule-independent.
//
// The body owns all per-replica state (its own sim::Engine, synthesizer,
// scratch buffers). Nothing is shared across replicas except the read-only
// plan inputs — which is what makes the parallelism safe and the results
// reproducible.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mc/thread_pool.h"
#include "obs/obs.h"

namespace acme::mc {

struct ReplicationOptions {
  std::size_t replicas = 8;
  // 0 picks hardware_concurrency; 1 runs inline on the calling thread.
  std::size_t threads = 0;
  std::uint64_t seed = 42;
  // Fork label prefix: replica i draws from fork("<stream_label>-<i>").
  std::string stream_label = "replica";
  // Replicas dispatched per pool task; >1 amortizes queue traffic when each
  // replica is cheap.
  std::size_t chunk = 1;
  // Width of the per-replica window-drain pool (acme::task; sim/window.h):
  // each replica's event spine drains through World::run_parallel on this
  // many workers. 1 = the classic serial drain; 0 = hardware concurrency.
  // Composes with `threads` via effective_workers() below — replica results
  // are digest-identical at any width (DESIGN.md §13), so the clamp is a
  // pure scheduling decision.
  std::size_t workers = 1;
};

// Resolves options.workers against the replica-pool width so the composition
// never oversubscribes: with threads == 1 (or a single replica) the request
// passes through untouched — one drain may own the whole machine, and the
// determinism matrix deliberately runs workers=8 on any box — otherwise the
// width shrinks until replicas-in-flight × workers fits the core count.
inline std::size_t effective_workers(const ReplicationOptions& options) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers = options.workers == 0 ? hw : options.workers;
  if (options.threads == 1 || options.replicas == 1) return workers;
  const std::size_t in_flight = std::min(
      options.threads == 0 ? hw : options.threads, options.replicas);
  return std::max<std::size_t>(
      1, std::min(workers, hw / std::max<std::size_t>(1, in_flight)));
}

// CPU seconds consumed by the calling thread. Replica costs are measured
// with this clock, not wall time: on an oversubscribed machine a replica's
// wall time includes waiting for the CPU, which would overstate the serial
// baseline and fabricate speedup. Thread CPU time is immune to time-slicing.
inline double thread_cpu_seconds() {
#if defined(__linux__) || defined(_POSIX_THREAD_CPUTIME)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Timing accountancy for one plan execution. serial_seconds is the sum of
// per-replica thread-CPU times, i.e. what a one-thread run would cost;
// speedup is the measured parallel efficiency against that.
struct RunTiming {
  double wall_seconds = 0;
  double serial_seconds = 0;
  std::size_t threads_used = 1;
  // Per-replica window-drain width actually used (post-clamp); drivers that
  // plumb --workers fill this in so reports record it next to threads.
  std::size_t workers_used = 1;
  double speedup() const {
    return wall_seconds > 0 ? serial_seconds / wall_seconds : 1.0;
  }
};

template <typename Result>
struct ReplicaRun {
  std::vector<Result> results;          // indexed by replica, always full size
  std::vector<double> replica_seconds;  // per-replica thread-CPU time
  RunTiming timing;
};

template <typename Result>
class ReplicationPlan {
 public:
  using Body = std::function<Result(common::Rng&, std::size_t replica)>;

  explicit ReplicationPlan(ReplicationOptions options, Body body)
      : options_(std::move(options)), body_(std::move(body)) {
    ACME_CHECK(body_ != nullptr);
    ACME_CHECK(options_.replicas > 0);
  }

  const ReplicationOptions& options() const { return options_; }

  // Runs every replica and returns results in replica order.
  ReplicaRun<Result> run() const {
    ReplicaRun<Result> out;
    out.results.resize(options_.replicas);
    out.replica_seconds.resize(options_.replicas, 0.0);
    const common::Rng root(options_.seed);

    const auto run_replica = [&](std::size_t i) {
      // Wall-clock worker timing goes to the tracer only; metrics stay a
      // deterministic function of the replica count so snapshots match
      // byte-for-byte across thread counts.
      ACME_OBS_SPAN_ARG("mc", "replica", "index", std::to_string(i));
      if (obs::enabled()) {
        static obs::Counter& replicas = obs::metrics().counter(
            "acme_mc_replicas_total", "Monte Carlo replicas executed");
        replicas.inc();
      }
      const double t0 = thread_cpu_seconds();
      common::Rng rng =
          root.fork(options_.stream_label + "-" + std::to_string(i));
      out.results[i] = body_(rng, i);
      out.replica_seconds[i] = thread_cpu_seconds() - t0;
    };

    const auto wall0 = std::chrono::steady_clock::now();
    if (options_.threads == 1) {
      for (std::size_t i = 0; i < options_.replicas; ++i) run_replica(i);
      out.timing.threads_used = 1;
    } else {
      ThreadPool pool(options_.threads);
      pool.parallel_for(options_.replicas, options_.chunk, run_replica);
      out.timing.threads_used = pool.size();
    }
    out.timing.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    for (double s : out.replica_seconds) out.timing.serial_seconds += s;
    return out;
  }

 private:
  ReplicationOptions options_;
  Body body_;
};

// One-shot convenience wrapper.
template <typename Result>
ReplicaRun<Result> run_replicas(
    const ReplicationOptions& options,
    const std::function<Result(common::Rng&, std::size_t)>& body) {
  return ReplicationPlan<Result>(options, body).run();
}

// Worker-scoped scratch reuse: replicas borrow a Scratch from a pool sized
// to the concurrency and return it when done (LIFO, so consecutive replicas
// on a thread get the warm one back). The contract is capacity-only reuse —
// the body must fully reinitialize any state it reads, which keeps results
// bit-identical no matter which scratch a replica drew. This is what lets a
// Monte Carlo sweep recycle million-record replay buffers (engines, per-job
// runtime tables) instead of regrowing them for every replica.
template <typename Result, typename Scratch>
ReplicaRun<Result> run_replicas_scratch(
    const ReplicationOptions& options,
    const std::function<Result(common::Rng&, std::size_t, Scratch&)>& body) {
  const std::size_t workers =
      options.threads == 1
          ? 1
          : (options.threads > 0
                 ? options.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  struct Pool {
    std::mutex mu;
    std::vector<Scratch> scratches;
    std::vector<std::size_t> free_slots;
  };
  auto pool = std::make_shared<Pool>();
  pool->scratches.resize(std::max<std::size_t>(
      1, std::min(workers, options.replicas)));
  for (std::size_t i = pool->scratches.size(); i-- > 0;)
    pool->free_slots.push_back(i);

  return run_replicas<Result>(
      options, [pool, body](common::Rng& rng, std::size_t i) -> Result {
        std::size_t slot;
        {
          std::lock_guard<std::mutex> lock(pool->mu);
          // Never empty: at most `workers` replicas run at once.
          slot = pool->free_slots.back();
          pool->free_slots.pop_back();
        }
        Result result = body(rng, i, pool->scratches[slot]);
        {
          std::lock_guard<std::mutex> lock(pool->mu);
          pool->free_slots.push_back(slot);
        }
        return result;
      });
}

// Folds a per-replica scalar metric into a streaming aggregator in replica
// order (the deterministic merge order).
template <typename Result, typename Extract, typename Aggregator>
void fold_metric(const ReplicaRun<Result>& run, Extract&& extract,
                 Aggregator& agg) {
  for (std::size_t i = 0; i < run.results.size(); ++i)
    agg.add(extract(run.results[i]));
}

}  // namespace acme::mc
