#include "mc/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace acme::mc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    dropped_ += queue_.size();
    queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ACME_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_ || shutdown_) {
      ++dropped_;
      return;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    dropped_ += queue_.size();
    queue_.clear();
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

bool ThreadPool::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

std::size_t ThreadPool::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ACME_CHECK(fn != nullptr);
  if (chunk == 0) chunk = 1;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace acme::mc
