// Streaming replica-level statistics for Monte Carlo replication: Welford
// moments with Student-t confidence intervals (common/stats.h) plus P²
// quantile sketches (Jain & Chlamtac, CACM 1985) so per-metric p50/p90/p99
// are available in O(1) memory no matter how many replicas stream through.
//
// Aggregation is deterministic as long as values are added in replica order —
// ReplicationPlan guarantees that by collecting results per replica index and
// folding them serially after the parallel phase.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/stats.h"

namespace acme::mc {

// Single-quantile P² estimator. Exact for the first five observations, then
// maintains five markers whose heights approximate the q-quantile via
// piecewise-parabolic interpolation. Deterministic: same input sequence, same
// estimate.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return count_; }
  double quantile() const { return q_; }
  // Current estimate; exact while count() <= 5.
  double value() const;

  // Snapshot support (acme::snap): the full marker state as a POD, so a
  // restored sketch continues the stream bit-identically. `q` must match the
  // sketch's configured quantile — checked on set_state.
  struct State {
    double q = 0;
    std::uint64_t count = 0;
    std::array<double, 5> heights{};
    std::array<double, 5> positions{};
    std::array<double, 5> desired{};
    std::array<double, 5> increment{};
  };
  State state() const {
    return State{q_, count_, heights_, positions_, desired_, increment_};
  }
  void set_state(const State& s);

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (sorted)
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increment_{};  // desired-position increments
};

// Per-metric streaming summary: mean/CI from Welford moments, tail behaviour
// from three P² sketches. Values must be added in a deterministic order for
// reproducible output (ReplicationPlan feeds replica order).
class MetricAggregator {
 public:
  MetricAggregator();

  void add(double x);
  std::size_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double stddev() const { return moments_.stddev(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  // Half-width of the t-based 95% confidence interval of the mean; 0 until
  // two values have been seen.
  double ci95() const { return common::ci95_halfwidth(moments_); }
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }
  double p99() const { return p99_.value(); }

  const common::StreamingStats& moments() const { return moments_; }

 private:
  common::StreamingStats moments_;
  P2Quantile p50_;
  P2Quantile p90_;
  P2Quantile p99_;
};

}  // namespace acme::mc
