// Fixed-size worker thread pool with a chunked task queue and cooperative
// cancellation — the execution substrate for Monte Carlo replication
// (replication.h). Replicas are CPU-bound and independent, so the pool is a
// plain mutex/condvar FIFO: no work stealing, no futures, just deterministic
// completion accounting (wait_idle) and a cancel flag that running tasks may
// poll to stop early.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acme::mc {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  // Cancels pending work and joins the workers.
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Tasks submitted after cancel() are dropped (counted in
  // dropped()). Safe to call from worker threads.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. Exceptions
  // thrown by tasks are captured; the first one is rethrown here.
  void wait_idle();

  // Cooperative cancellation: discards queued tasks (counted in dropped())
  // and raises the flag that in-flight tasks may poll via cancelled().
  // Does not interrupt running tasks.
  void cancel();
  bool cancelled() const;
  std::size_t dropped() const;

  // Runs fn(i) for every i in [0, n), dispatched in contiguous chunks of
  // `chunk` indices so short tasks amortize queue traffic. Blocks until all
  // chunks finish (or are dropped by cancel()); rethrows the first task
  // exception. Must not be called from inside a pool task.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable idle_cv_;   // wait_idle/parallel_for wait here
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0;      // tasks currently executing
  std::size_t dropped_ = 0;      // tasks discarded by cancel()
  bool cancelled_ = false;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace acme::mc
