// JSON bench reports for Monte Carlo replication runs.
//
// Every converted bench emits one BenchReport: run-level timing (replicas,
// threads, wall/serial seconds, speedup) plus one record per metric
// {metric, mean, ci95, p50, p90, p99, min, max, replicas}. Reports are written
// as pretty-printed JSON so BENCH_*.json files diff cleanly and downstream
// tooling can track a perf trajectory across commits.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "mc/aggregate.h"
#include "mc/replication.h"

namespace acme::mc {

struct MetricSummary {
  std::string metric;
  std::string unit;  // optional, "" when dimensionless
  double mean = 0;
  double ci95 = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
  std::size_t replicas = 0;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void set_timing(const RunTiming& timing, std::size_t replicas);
  void add_metric(const std::string& name, const MetricAggregator& agg,
                  const std::string& unit = "");

  const std::string& bench() const { return bench_; }
  const std::vector<MetricSummary>& metrics() const { return metrics_; }
  const RunTiming& timing() const { return timing_; }

  // Serializes the full report. Non-finite numbers are emitted as null so the
  // output is always valid JSON.
  std::string to_json() const;
  // Writes to_json() to `path`; returns false (and prints a warning) on I/O
  // failure instead of throwing — bench output must not die on a bad path.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  std::size_t replicas_ = 0;
  RunTiming timing_;
  std::vector<MetricSummary> metrics_;
};

// Command-line options shared by the converted benches:
//   --replicas N   number of Monte Carlo replicas (default per bench)
//   --threads K    worker threads (0 = hardware concurrency, 1 = serial)
//   --seed S       base seed for the replica streams
//   --json PATH    write the BenchReport JSON here
// Unknown flags, missing values and stray positionals are parse errors —
// silently ignoring them masked typos like `--replica` for `--replicas`.
struct McCli {
  ReplicationOptions options;
  std::string json_path;
};

// Registers the four shared flags on `flags`, writing through to `cli` (which
// must outlive parsing). bench_util.h composes these with the obs flags into
// one strict FlagSet so a bench has a single flat flag namespace.
void add_mc_flags(common::FlagSet& flags, McCli& cli);

// Strict parse: returns nullopt and fills `error` on an unknown flag, a bad
// or missing value, or a positional argument; never exits. `--replicas 0`
// clamps to 1.
std::optional<McCli> parse_mc_cli_strict(int argc, char** argv,
                                         const ReplicationOptions& defaults,
                                         std::string* error = nullptr);

// Exiting wrapper for standalone benches: a parse error prints the reason and
// usage to stderr and exits 2; --help prints usage and exits 0.
McCli parse_mc_cli(int argc, char** argv, const ReplicationOptions& defaults);

// Formats "v ±ci" with a unit suffix, e.g. "12.3 ±0.8 s".
std::string format_with_ci(double value, double ci95, const std::string& unit,
                           int precision = 2);

}  // namespace acme::mc
