#include "mc/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace acme::mc {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {}

void P2Quantile::set_state(const State& s) {
  ACME_CHECK_MSG(s.q == q_, "P2Quantile restore into a sketch with a "
                            "different configured quantile");
  count_ = static_cast<std::size_t>(s.count);
  heights_ = s.heights;
  positions_ = s.positions;
  desired_ = s.desired;
  increment_ = s.increment;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    std::sort(heights_.begin(), heights_.begin() + static_cast<long>(count_));
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) positions_[static_cast<std::size_t>(i)] = i + 1;
      desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
      increment_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
    }
    return;
  }
  ++count_;

  // Find the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[static_cast<std::size_t>(k + 1)]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[static_cast<std::size_t>(i)] += 1;
  for (int i = 0; i < 5; ++i) desired_[static_cast<std::size_t>(i)] += increment_[static_cast<std::size_t>(i)];

  // Adjust interior markers towards their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double d = desired_[u] - positions_[u];
    const bool room_right = positions_[u + 1] - positions_[u] > 1;
    const bool room_left = positions_[u - 1] - positions_[u] < -1;
    if ((d >= 1 && room_right) || (d <= -1 && room_left)) {
      const double step = d >= 1 ? 1 : -1;
      double candidate = parabolic(i, step);
      if (heights_[u - 1] < candidate && candidate < heights_[u + 1]) {
        heights_[u] = candidate;
      } else {
        heights_[u] = linear(i, step);
      }
      positions_[u] += step;
    }
  }
}

double P2Quantile::parabolic(int i, double d) const {
  const auto u = static_cast<std::size_t>(i);
  const double qp = heights_[u + 1], qc = heights_[u], qm = heights_[u - 1];
  const double np = positions_[u + 1], nc = positions_[u], nm = positions_[u - 1];
  return qc + d / (np - nm) *
                  ((nc - nm + d) * (qp - qc) / (np - nc) +
                   (np - nc - d) * (qc - qm) / (nc - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto u = static_cast<std::size_t>(i);
  const auto v = static_cast<std::size_t>(i + static_cast<int>(d));
  return heights_[u] + d * (heights_[v] - heights_[u]) / (positions_[v] - positions_[u]);
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the retained prefix (nearest-rank interpolation,
    // matching common::SampleStats::quantile's linear scheme).
    const std::size_t n = count_;
    const double pos = q_ * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

MetricAggregator::MetricAggregator() : p50_(0.5), p90_(0.9), p99_(0.99) {}

void MetricAggregator::add(double x) {
  moments_.add(x);
  p50_.add(x);
  p90_.add(x);
  p99_.add(x);
}

}  // namespace acme::mc
