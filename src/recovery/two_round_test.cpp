#include "recovery/two_round_test.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"

namespace acme::recovery {

namespace {

// Cost of one localization round as a function of how many nodes take part.
using RoundCost = std::function<double(int)>;

TwoRoundResult localize_impl(const std::vector<cluster::NodeId>& nodes,
                             const std::function<bool(cluster::NodeId)>& is_faulty,
                             const RoundCost& round_cost) {
  TwoRoundResult result;
  if (nodes.empty()) return result;

  // Round 1: pair nodes into worlds; a trailing odd node joins the last
  // world, making it a three-node world (paper: "If the total number of
  // servers is odd, we leave one world size as three").
  std::vector<std::vector<cluster::NodeId>> worlds;
  for (std::size_t i = 0; i + 1 < nodes.size(); i += 2)
    worlds.push_back({nodes[i], nodes[i + 1]});
  if (nodes.size() % 2 == 1) {
    if (worlds.empty()) {
      worlds.push_back({nodes.back()});
    } else {
      worlds.back().push_back(nodes.back());
    }
  }
  result.round1_worlds = static_cast<int>(worlds.size());

  std::vector<cluster::NodeId> clean;
  for (const auto& world : worlds) {
    const bool failed =
        std::any_of(world.begin(), world.end(), [&](cluster::NodeId n) {
          return is_faulty(n);
        });
    for (cluster::NodeId n : world)
      (failed ? result.suspects : clean).push_back(n);
  }
  result.duration_seconds = round_cost(static_cast<int>(nodes.size()));
  if (result.suspects.empty()) {  // fabric-wide pass, one round
    if (obs::enabled()) {
      static obs::Counter& rounds = obs::metrics().counter(
          "acme_recovery_probe_rounds_total",
          "All-gather probe rounds run during two-round localization");
      rounds.inc(1);
    }
    return result;
  }

  // Round 2: each suspect pairs with a known-clean node; the all-gather then
  // fails iff the suspect itself is faulty. If NO clean world survived round
  // 1 there is no healthy witness to pair with, so each suspect instead runs
  // an intra-node self-test (single-node NCCL world exercising its own GPUs
  // and NVLinks) — still one parallel round.
  result.round2_worlds = static_cast<int>(result.suspects.size());
  const int round2_nodes = clean.empty()
                               ? result.round2_worlds
                               : 2 * result.round2_worlds;
  result.duration_seconds += round_cost(round2_nodes);
  for (cluster::NodeId suspect : result.suspects)
    if (is_faulty(suspect)) result.faulty.push_back(suspect);
  std::sort(result.faulty.begin(), result.faulty.end());
  if (obs::enabled()) {
    static obs::Counter& rounds = obs::metrics().counter(
        "acme_recovery_probe_rounds_total",
        "All-gather probe rounds run during two-round localization");
    static obs::Counter& suspects = obs::metrics().counter(
        "acme_recovery_suspect_nodes_total",
        "Round-1 suspect nodes escalated to round 2");
    rounds.inc(2);  // round 1 ran above; round 2 just ran
    suspects.inc(result.suspects.size());
  }
  return result;
}

}  // namespace

TwoRoundResult two_round_localize(
    const std::vector<cluster::NodeId>& nodes,
    const std::function<bool(cluster::NodeId)>& is_faulty,
    double per_round_seconds) {
  return localize_impl(nodes, is_faulty,
                       [per_round_seconds](int) { return per_round_seconds; });
}

TwoRoundResult two_round_localize(
    const std::vector<cluster::NodeId>& nodes,
    const std::function<bool(cluster::NodeId)>& is_faulty,
    const comm::CollectiveModel& model) {
  return localize_impl(nodes, is_faulty, [&model](int probe_nodes) {
    return model.probe_round_seconds(probe_nodes);
  });
}

}  // namespace acme::recovery
