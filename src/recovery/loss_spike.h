// Loss-spike detection (paper §5.3: "a sudden increase in the loss that was
// previously decreasing normally, and does not recover over a certain
// period" triggers a restart from an earlier healthy checkpoint with the
// offending batches skipped).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

namespace acme::recovery {

struct LossSpikeOptions {
  // The loss must exceed the recent rolling minimum by this factor...
  double spike_factor = 1.15;
  // ...for at least this many consecutive steps to count as a spike (brief
  // jitters recover on their own).
  int sustain_steps = 20;
  // Rolling window over which the reference minimum is tracked.
  int window = 200;
};

class LossSpikeDetector {
 public:
  explicit LossSpikeDetector(LossSpikeOptions options = LossSpikeOptions());

  // Feeds one (step, loss) observation; returns the spike-onset step when a
  // sustained spike is confirmed (once per spike).
  std::optional<std::uint64_t> observe(std::uint64_t step, double loss);

  void reset();

 private:
  LossSpikeOptions options_;
  std::deque<double> window_;
  double rolling_min_ = 0;
  int elevated_streak_ = 0;
  std::uint64_t spike_onset_ = 0;
  bool fired_ = false;
};

}  // namespace acme::recovery
