#include "recovery/loss_spike.h"

#include <algorithm>

namespace acme::recovery {

LossSpikeDetector::LossSpikeDetector(LossSpikeOptions options) : options_(options) {}

void LossSpikeDetector::reset() {
  window_.clear();
  elevated_streak_ = 0;
  spike_onset_ = 0;
  fired_ = false;
}

std::optional<std::uint64_t> LossSpikeDetector::observe(std::uint64_t step,
                                                        double loss) {
  if (!window_.empty()) {
    const double reference =
        *std::min_element(window_.begin(), window_.end());
    if (loss > reference * options_.spike_factor) {
      if (elevated_streak_ == 0) spike_onset_ = step;
      ++elevated_streak_;
    } else {
      elevated_streak_ = 0;
      fired_ = false;
    }
  }
  window_.push_back(loss);
  while (static_cast<int>(window_.size()) > options_.window) window_.pop_front();

  if (elevated_streak_ >= options_.sustain_steps && !fired_) {
    fired_ = true;
    return spike_onset_;
  }
  return std::nullopt;
}

}  // namespace acme::recovery
