// Two-round all-gather fault localization (paper §6.1-3).
//
// Round 1: split all nodes into two-node worlds (one three-node world if the
// count is odd) and run an all-gather in each. A world fails iff it contains
// a faulty node, so every member of a failing world becomes a suspect.
// Round 2: pair each suspect with a node from a world that PASSED round 1;
// the all-gather now fails iff the suspect itself is faulty. Identified
// nodes are cordoned off.
//
// The predicate abstracts the fabric: in production it is a real NCCL
// all-gather; here it is evaluated against the simulated cluster's fault
// set. The protocol's correctness is independent of the transport.
#pragma once

#include <functional>
#include <vector>

#include "cluster/state.h"
#include "comm/collective.h"

namespace acme::recovery {

struct TwoRoundResult {
  std::vector<cluster::NodeId> faulty;       // confirmed faulty nodes
  std::vector<cluster::NodeId> suspects;     // round-1 suspects
  int round1_worlds = 0;
  int round2_worlds = 0;
  // Wall-clock estimate: each world runs its test in parallel, two rounds.
  double duration_seconds = 0;
};

// `is_faulty` answers whether a node is faulty; `nodes` is the probe set.
// `per_round_seconds` is the flat cost of one all-gather round (default:
// NCCL bring-up + test on a full-scale world, ~90 s — the documented
// fallback when no fabric model is supplied).
TwoRoundResult two_round_localize(const std::vector<cluster::NodeId>& nodes,
                                  const std::function<bool(cluster::NodeId)>& is_faulty,
                                  double per_round_seconds = 90.0);

// Fabric-derived variant: each round's cost comes from
// `comm::CollectiveModel::probe_round_seconds` sized to the nodes actually
// participating in that round (all probed nodes in round 1; suspects plus
// their clean witnesses in round 2), so localization over a small probe set
// is proportionally cheaper than over the whole cluster.
TwoRoundResult two_round_localize(const std::vector<cluster::NodeId>& nodes,
                                  const std::function<bool(cluster::NodeId)>& is_faulty,
                                  const comm::CollectiveModel& model);

}  // namespace acme::recovery
