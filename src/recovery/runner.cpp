#include "recovery/runner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/units.h"
#include "obs/obs.h"
#include "recovery/two_round_test.h"

namespace acme::recovery {

using common::kDay;
using common::kHour;
using common::kMinute;

FaultTolerantRunner::FaultTolerantRunner(RunnerConfig config)
    : config_(std::move(config)), injector_(config_.seed) {
  ACME_CHECK(config_.gpus > 0 && config_.step_seconds > 0);
  if (config_.fabric) comm_.emplace(*config_.fabric);
  std::vector<const failure::FailureSpec*> specs;
  for (const auto& s : failure::failure_table()) specs.push_back(&s);
  agent_.seed_rules(specs);
}

bool FaultTolerantRunner::is_night(double t) {
  const double hour = std::fmod(t, kDay) / kHour;
  return hour < 8.0 || hour >= 22.0;
}

double FaultTolerantRunner::checkpoint_blocking() const {
  const double params = config_.model.params();
  return config_.async_ckpt
             ? timing_.async_blocking_seconds(params, config_.gpus)
             : timing_.sync_blocking_seconds(params, config_.gpus);
}

double FaultTolerantRunner::checkpoint_persist_lag() const {
  // Sync checkpoints are durable the moment the stall ends; async ones keep
  // persisting in the background.
  return config_.async_ckpt
             ? timing_.async_persist_seconds(config_.model.params(), config_.gpus)
             : 0.0;
}

double FaultTolerantRunner::recovery_stall(const failure::FailureSpec& spec,
                                           double now, RunnerReport& report,
                                           std::string* detail) {
  ACME_OBS_SPAN_ARG("recovery", "recovery_stall", "reason", spec.reason);
  if (obs::enabled()) {
    static obs::Counter& restarts = obs::metrics().counter(
        "acme_recovery_restarts_total", "Failure recoveries run by the runner");
    restarts.inc();
  }
  common::Rng rng = injector_.make_rng("recovery-" + std::to_string(now));
  // Checkpoint reload is paid either way.
  const double reload = timing_.async_persist_seconds(config_.model.params(),
                                                      config_.gpus);
  if (!config_.auto_recovery) {
    ++report.manual_interventions;
    double ttr = injector_.sample_ttr(spec, rng);
    if (is_night(now) && rng.bernoulli(0.7)) {
      // Nobody awake: the job sits until the on-call engineer wakes up
      // (Fig 14's flat overnight segments).
      ttr += rng.uniform(1 * kHour, 6 * kHour);
    }
    *detail = spec.reason + " (manual restart)";
    return ttr + reload;
  }

  // Automatic path: diagnose from the (synthesized) runtime log, then run
  // fault detection if the verdict calls for it.
  auto log = log_synth_.failed_run(spec, rng);
  diagnosis::FilterRules rules;  // per-job rules; compression is cheap here
  const auto diagnosis = agent_.diagnose(log.lines);
  if (diagnosis.reason == spec.reason) ++report.diagnosis_correct;

  double stall = 45.0;  // log collection + agent latency
  if (diagnosis.needs_node_detection ||
      (diagnosis.reason.empty() && spec.needs_node_detection)) {
    // Probe the job's actual nodes when the caller listed them; the
    // contiguous [0, nodes) default keeps fabric-less and single-pod
    // behaviour unchanged.
    std::vector<cluster::NodeId> probe = config_.probe_nodes;
    if (probe.empty()) {
      const int nodes = std::max(1, config_.gpus / 8);
      probe.resize(static_cast<std::size_t>(nodes));
      for (int i = 0; i < nodes; ++i) probe[static_cast<std::size_t>(i)] = i;
    }
    const int nodes = static_cast<int>(probe.size());
    const int bad =
        static_cast<int>(rng.uniform_int(0, 1)) + 1;  // 1-2 faulty nodes
    auto faulty = [&](cluster::NodeId id) { return id < bad; };
    TwoRoundResult localization;
    {
      ACME_OBS_SPAN_ARG("recovery", "two_round_localize", "nodes",
                        std::to_string(nodes));
      localization = comm_ ? two_round_localize(probe, faulty, *comm_)
                           : two_round_localize(probe, faulty);
    }
    if (obs::enabled()) {
      static obs::Counter& localizations = obs::metrics().counter(
          "acme_recovery_localizations_total",
          "Two-round fault localizations triggered by recoveries");
      static obs::Histogram& stall_hist = obs::metrics().histogram(
          "acme_recovery_localization_seconds",
          "Simulated duration of each two-round localization",
          obs::Histogram::exponential_buckets(1.0, 2.0, 12));
      localizations.inc();
      stall_hist.observe(localization.duration_seconds);
    }
    stall += localization.duration_seconds;
    report.nodes_cordoned += static_cast<int>(localization.faulty.size());
  }
  if (diagnosis.reason.empty()) {
    // Agent could not classify: a human gets paged, but armed with the
    // compressed log (still far cheaper than the manual baseline).
    ++report.manual_interventions;
    stall += injector_.sample_ttr(spec, rng) * 0.5;
  }
  // Scheduler resubmit + NCCL bring-up of the full training world. The
  // fabric model lands on ~90 s for the 2048-GPU scale (the value this used
  // to hard-code); without a fabric, that flat 90 s is the fallback.
  if (comm_) {
    comm::World job_world;
    job_world.gpus = config_.gpus;
    stall += comm_->bringup_seconds(job_world);
  } else {
    stall += 90.0;
  }
  *detail = spec.reason + " -> " +
            (diagnosis.reason.empty() ? std::string("undiagnosed")
                                      : diagnosis.reason + " [" + diagnosis.source + "]");
  return stall + reload;
}

RunnerReport FaultTolerantRunner::run() {
  ACME_OBS_SPAN_ARG("recovery", "run", "gpus", std::to_string(config_.gpus));
  RunnerReport report;
  common::Rng rng = injector_.make_rng("runner");

  ckpt::CheckpointLedger ledger;
  double t = 0;
  std::uint64_t step = 0;
  double since_ckpt = 0;
  report.progress.emplace_back(0.0, 0);

  double next_spike = rng.exponential(1.0 / config_.loss_spike_mean_interval);
  double next_pause = rng.exponential(1.0 / config_.user_pause_mean_interval);
  auto next_failure_event = injector_.sample_pretrain_failure(config_.gpus, rng);
  double next_failure = next_failure_event.ttf_seconds *
                        config_.mean_failure_interval_scale;

  const double ckpt_block = checkpoint_blocking();
  const double persist_lag = checkpoint_persist_lag();

  while (t < config_.horizon_seconds) {
    // Next interruption of any kind (relative to accumulated training time
    // for failures; absolute for spikes and pauses is approximated the same
    // way for simplicity).
    const double until_interrupt =
        std::min({next_failure, next_spike, next_pause,
                  config_.horizon_seconds - t});

    // Train until the interruption, checkpointing on the interval.
    double remaining = until_interrupt;
    while (remaining > 0 && t < config_.horizon_seconds) {
      const double chunk = std::min(remaining, config_.ckpt_interval_seconds - since_ckpt);
      const std::uint64_t steps_in_chunk =
          static_cast<std::uint64_t>(chunk / config_.step_seconds);
      step += steps_in_chunk;
      t += chunk;
      report.time_training += chunk;
      since_ckpt += chunk;
      remaining -= chunk;
      if (since_ckpt >= config_.ckpt_interval_seconds - 1e-9) {
        t += ckpt_block;
        report.time_ckpt_stall += ckpt_block;
        ledger.record(step, t, t + persist_lag);
        since_ckpt = 0;
      }
    }
    report.progress.emplace_back(t, step);
    if (t >= config_.horizon_seconds) break;

    next_failure -= until_interrupt;
    next_spike -= until_interrupt;
    next_pause -= until_interrupt;

    RunnerEvent event;
    event.time = t;
    event.step = step;

    if (next_failure <= 1e-9) {
      const auto& spec = *next_failure_event.spec;
      ++report.failures;
      if (spec.category == failure::FailureCategory::kInfrastructure)
        ++report.infra_failures;
      if (config_.proactive_validation && config_.auto_recovery &&
          spec.needs_node_detection &&
          rng.bernoulli(config_.proactive_catch_prob)) {
        // Scheduled validation caught the degrading hardware before it took
        // the job down: graceful drain, cordon, resume — no rollback.
        ++report.proactive_catches;
        ++report.nodes_cordoned;
        event.kind = "proactive-maintenance";
        event.detail = spec.reason + " (caught by validation)";
        event.stall_seconds = config_.validation_stall_seconds +
                              timing_.async_persist_seconds(
                                  config_.model.params(), config_.gpus);
        t += event.stall_seconds;
        report.time_recovery += event.stall_seconds;
        since_ckpt = 0;
        // Training state is saved at the drain, so no steps are lost, but
        // the checkpoint cadence restarts from here.
        ledger.invalidate_after(step);
        if (ledger.records().empty() || ledger.records().back().step < step) {
          const double lag = checkpoint_persist_lag();
          ledger.record(step, t, t + lag);
        }
        report.events.push_back(event);
        report.progress.emplace_back(t, step);
        next_failure_event = injector_.sample_pretrain_failure(config_.gpus, rng);
        next_failure =
            next_failure_event.ttf_seconds * config_.mean_failure_interval_scale;
        continue;
      }
      event.kind = "failure";
      const double stall = recovery_stall(spec, t, report, &event.detail);
      // Roll back to the latest durable checkpoint.
      const auto durable = ledger.latest_durable(t);
      const std::uint64_t resume = durable ? durable->step : 0;
      ledger.invalidate_after(resume);
      event.steps_lost = step - resume;
      report.steps_lost_to_rollback += event.steps_lost;
      step = resume;
      t += stall;
      report.time_recovery += stall;
      event.stall_seconds = stall;
      since_ckpt = 0;
      next_failure_event = injector_.sample_pretrain_failure(config_.gpus, rng);
      next_failure =
          next_failure_event.ttf_seconds * config_.mean_failure_interval_scale;
    } else if (next_spike <= 1e-9) {
      event.kind = "loss-spike";
      // Roll back PAST the spike onset (~30 min of steps) and skip batches.
      const std::uint64_t onset_margin =
          static_cast<std::uint64_t>(30 * kMinute / config_.step_seconds);
      const std::uint64_t onset = step > onset_margin ? step - onset_margin : 0;
      const auto durable = ledger.durable_before_step(onset, t);
      const std::uint64_t resume = durable ? durable->step : 0;
      ledger.invalidate_after(resume);
      event.steps_lost = step - resume;
      report.steps_lost_to_rollback += event.steps_lost;
      step = resume;
      const double stall =
          (config_.auto_recovery ? 2 * kMinute : 40 * kMinute) +
          timing_.async_persist_seconds(config_.model.params(), config_.gpus);
      if (!config_.auto_recovery) ++report.manual_interventions;
      t += stall;
      report.time_recovery += stall;
      event.stall_seconds = stall;
      event.detail = "rollback past spike, skipping batches";
      since_ckpt = 0;
      next_spike = rng.exponential(1.0 / config_.loss_spike_mean_interval);
    } else {
      event.kind = "pause";
      double lost_progress = 0;
      if (config_.graceful_cancel) {
        // Save before terminating: no steps lost.
        ledger.record(step + 1, t, t + persist_lag);
        step += 1;
      } else {
        const auto durable = ledger.latest_durable(t);
        const std::uint64_t resume = durable ? durable->step : 0;
        event.steps_lost = step - resume;
        report.steps_lost_to_rollback += event.steps_lost;
        lost_progress = static_cast<double>(event.steps_lost);
        step = resume;
      }
      (void)lost_progress;
      const double stall = rng.uniform(1 * kHour, 4 * kHour);  // user adjusts config
      ++report.manual_interventions;  // pauses are user-driven by definition
      t += stall;
      report.time_recovery += stall;
      event.stall_seconds = stall;
      event.detail = config_.graceful_cancel ? "graceful cancel + config change"
                                             : "hard cancel + config change";
      since_ckpt = 0;
      next_pause = rng.exponential(1.0 / config_.user_pause_mean_interval);
    }
    report.events.push_back(event);
    report.progress.emplace_back(t, step);
  }

  report.final_step = step;
  return report;
}

}  // namespace acme::recovery
