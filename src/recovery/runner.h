// Fault-tolerant pretraining runner: the integration of §6.1's three modules
// (asynchronous checkpointing, failure diagnosis, fast detection & recovery)
// driving a long pretraining campaign over the simulated cluster. Running it
// with manual on-call recovery reproduces Fig 14; flipping auto_recovery on
// quantifies the paper's "reduces manual intervention by ~90%".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/ledger.h"
#include "comm/collective.h"
#include "ckpt/timing.h"
#include "diagnosis/failure_agent.h"
#include "failure/injector.h"
#include "failure/log_synth.h"
#include "parallel/model_math.h"

namespace acme::recovery {

struct RunnerConfig {
  parallel::TransformerConfig model;
  int gpus = 2048;
  double step_seconds = 13.0;
  double ckpt_interval_seconds = 30 * 60;
  bool async_ckpt = true;
  // true: §6.1 pipeline (diagnose -> localize -> cordon -> auto-restart).
  // false: manual on-call restart with Table 3 TTRs, amplified at night.
  bool auto_recovery = true;
  // Gracefully save state when the user cancels/pauses (the 123B campaign's
  // improvement over the 104B one in Fig 14).
  bool graceful_cancel = true;
  // Proactive infrastructure validation (Anubis-style, cited by the paper's
  // §5.2 discussion of Microsoft's reliability work): periodic light-weight
  // node checks catch a fraction of brewing hardware faults at a scheduled
  // boundary — a short drain instead of a mid-run crash and rollback.
  bool proactive_validation = false;
  double proactive_catch_prob = 0.45;
  double validation_stall_seconds = 120.0;
  double horizon_seconds = 14 * 24 * 3600.0;
  double mean_failure_interval_scale = 1.0;  // stretch TTFs for ablations
  double loss_spike_mean_interval = 5 * 24 * 3600.0;
  double user_pause_mean_interval = 2 * 24 * 3600.0;
  // Fabric used to price fault-localization rounds and the post-restart NCCL
  // bring-up. nullopt falls back to the legacy flat 90 s per round / per
  // bring-up, so fabric-less callers keep the old behaviour.
  std::optional<comm::FabricConfig> fabric = comm::kalos_fabric();
  // Explicit probe set for fault localization. Empty = the historical
  // contiguous [0, gpus/8) span; non-contiguous multi-pod placements list
  // their actual nodes so slowest-member pacing and datacenter crossings
  // price correctly (the span form was a latent contiguity assumption).
  std::vector<cluster::NodeId> probe_nodes;
  std::uint64_t seed = 2024;
};

struct RunnerEvent {
  double time = 0;
  std::uint64_t step = 0;
  std::string kind;    // "failure", "loss-spike", "pause", "restart"
  std::string detail;  // failure reason / diagnosis outcome
  double stall_seconds = 0;
  std::uint64_t steps_lost = 0;
};

struct RunnerReport {
  std::vector<std::pair<double, std::uint64_t>> progress;  // (time, iteration)
  std::vector<RunnerEvent> events;
  std::uint64_t final_step = 0;
  double time_training = 0;
  double time_ckpt_stall = 0;
  double time_recovery = 0;
  std::uint64_t steps_lost_to_rollback = 0;
  int failures = 0;
  int infra_failures = 0;
  int manual_interventions = 0;  // times a human had to act
  int nodes_cordoned = 0;
  int proactive_catches = 0;     // faults defused by scheduled validation
  int diagnosis_correct = 0;     // agent verdict matched injected root cause
  double goodput() const {       // useful training time / wall clock
    const double wall = time_training + time_ckpt_stall + time_recovery;
    return wall > 0 ? time_training / wall : 0;
  }
};

class FaultTolerantRunner {
 public:
  explicit FaultTolerantRunner(RunnerConfig config);

  RunnerReport run();

 private:
  double checkpoint_blocking() const;
  double checkpoint_persist_lag() const;
  double recovery_stall(const failure::FailureSpec& spec, double now,
                        RunnerReport& report, std::string* detail);
  static bool is_night(double t);

  RunnerConfig config_;
  std::optional<comm::CollectiveModel> comm_;
  ckpt::CheckpointTimingModel timing_;
  failure::FailureInjector injector_;
  failure::LogSynthesizer log_synth_;
  diagnosis::FailureAgent agent_;
};

}  // namespace acme::recovery
