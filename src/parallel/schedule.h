// Pretraining step execution models (paper §4.1, Figs 10-12, 19, 20, 22).
//
// Two strategies, mirroring InternEvo V1 and V2:
//  - V1: 3D parallelism (tensor x pipeline x data) with the 1F1B pipeline
//    schedule. Bubbles ((p-1)/(m+p-1) of the pipeline span), tensor-parallel
//    collectives on the critical path, and a data-parallel gradient
//    all-reduce + optimizer step per iteration.
//  - V2: hierarchical ZeRO — parameter sharding confined to subgroups (64
//    GPUs) so all-gathers stay intra-group and overlap with compute, with
//    selective recomputation. Higher sustained SM activity, shorter steps.
//
// The models emit phase-structured step timelines that, sampled at 1 ms,
// reproduce the shape of the paper's DCGM SM-utilization profiles.
#pragma once

#include <string>
#include <vector>

#include "comm/collective.h"
#include "common/rng.h"
#include "parallel/model_math.h"

namespace acme::parallel {

struct Phase {
  std::string kind;   // "warmup", "steady", "cooldown", "grad-sync", "optim", ...
  double duration;    // seconds
  double sm_level;    // mean SM activity during the phase, 0..1
};

struct StepTimeline {
  std::vector<Phase> phases;
  double step_time() const;
  double mean_sm() const;   // time-weighted
  // Fraction of the step with SM activity below `threshold`.
  double idle_fraction(double threshold = 0.05) const;
  // Samples SM activity at `dt` resolution over `horizon` seconds, repeating
  // the step; `rng` adds counter noise around each phase level.
  std::vector<double> sample(double dt, double horizon, common::Rng& rng) const;
};

struct ThreeDConfig {
  int world = 2048;        // total GPUs
  int tensor_parallel = 8;
  int pipeline_parallel = 4;
  int micro_batches = 32;  // per pipeline round (m)
  int microbatch_size = 1; // sequences
  bool recompute = false;
  // Megatron-style sequence parallelism: partitions the residual-stream
  // activations across the tensor-parallel group.
  bool sequence_parallel = false;
  int data_parallel() const {
    return world / (tensor_parallel * pipeline_parallel);
  }
};

struct HierZeroConfig {
  int world = 2048;
  int shard_group = 64;    // parameter-sharding subgroup size
  int microbatch_size = 1;
  int accum_steps = 1;     // gradient accumulation micro-steps
  bool recompute = true;
  // Context parallelism for long-sequence pretraining (§7 future work):
  // splits each sequence across cp GPUs (ring attention style), dividing
  // per-GPU activation memory by cp at the cost of extra communication.
  int context_parallel = 1;
};

class PretrainExecutionModel {
 public:
  // Phase durations involving communication (tensor-parallel collectives,
  // gradient all-reduce, ZeRO all-gather/reduce-scatter) are derived from
  // `fabric`; the default is the Kalos fabric the paper's pretraining
  // analyses ran on.
  explicit PretrainExecutionModel(TransformerConfig cfg,
                                  comm::FabricConfig fabric = comm::kalos_fabric());

  const TransformerConfig& config() const { return cfg_; }
  // Mutable so callers can inject degraded links (straggler experiments).
  comm::CollectiveModel& collectives() { return comm_; }
  const comm::CollectiveModel& collectives() const { return comm_; }

  // InternEvo V1: 3D parallelism with 1F1B.
  StepTimeline step_3d(const ThreeDConfig& pc) const;
  // InternEvo V2: hierarchical ZeRO.
  StepTimeline step_hier_zero(const HierZeroConfig& pc) const;
  // MoE on a single-NIC-per-node cluster (Fig 22): all-to-all dominated.
  StepTimeline step_moe(int world, double nic_bytes_per_sec) const;

  // RLHF iteration (paper §7 future work, "efficient RLHF"): a long rollout
  // generation phase (autoregressive decoding — memory-bound, low SM), then
  // reward/critic scoring, then a PPO training burst. The generation phase
  // dominates wall-clock while leaving most FLOPs idle — which is why the
  // paper calls RLHF out as needing dedicated system support.
  struct RlhfConfig {
    int world = 1024;
    int rollout_tokens = 512;   // generated tokens per prompt
    int prompts_per_gpu = 8;
    double decode_tokens_per_sec_per_gpu = 240.0;  // batched decoding rate
  };
  StepTimeline step_rlhf(const RlhfConfig& pc) const;

  // Per-pipeline-rank peak GPU memory (bytes) under 1F1B (Fig 12): rank r
  // holds min(m, p - r) in-flight microbatches of activations plus its
  // static shard.
  std::vector<double> per_rank_memory_1f1b(const ThreeDConfig& pc) const;

  // Static (params/grads/optimizer) per-GPU bytes for each strategy.
  double static_bytes_3d(const ThreeDConfig& pc) const;
  double static_bytes_hier_zero(const HierZeroConfig& pc) const;
  // Peak dynamic (activation) bytes per GPU.
  double activation_bytes_3d(const ThreeDConfig& pc) const;
  double activation_bytes_hier_zero(const HierZeroConfig& pc) const;

  // GPU memory snapshot over one step (Fig 11/20): allocated bytes sampled at
  // `samples` points, split into (static, dynamic) stacked values.
  struct MemorySnapshot {
    std::vector<double> time;           // seconds within the step
    std::vector<double> static_bytes;   // constant floor
    std::vector<double> dynamic_bytes;  // activations + transient grads
  };
  MemorySnapshot memory_snapshot_3d(const ThreeDConfig& pc, int samples = 240) const;
  MemorySnapshot memory_snapshot_hier_zero(const HierZeroConfig& pc,
                                           int samples = 240) const;

 private:
  // Seconds of compute for `tokens` tokens on `gpus` GPUs at sustained
  // efficiency `eff` of peak throughput.
  double compute_time(double flops, int gpus, double eff) const;

  TransformerConfig cfg_;
  comm::CollectiveModel comm_;
  double peak_flops_per_gpu_ = 312e12;  // A100 BF16 dense
};

}  // namespace acme::parallel
