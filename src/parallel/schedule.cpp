#include "parallel/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace acme::parallel {

namespace {

// Fraction of the data-parallel gradient all-reduce hidden under the backward
// pass (bucketed async all-reduce; only the tail buckets are exposed).
constexpr double kGradAllreduceOverlap = 0.75;
// Fraction of the hierarchical-ZeRO parameter all-gather / gradient
// reduce-scatter hidden by prefetch (the design point of InternEvo V2:
// intra-subgroup collectives overlap with compute almost entirely).
constexpr double kZeroCommOverlap = 0.90;
// At most this share of the steady 1F1B span can be re-attributed to the
// tensor-parallel stall phase; the sustained-efficiency constant already
// prices the collectives in, so carving more would double-count. Wire time
// beyond the cap (degraded NVLink) extends the step instead.
constexpr double kTpStallCarveCap = 0.30;

}  // namespace

double StepTimeline::step_time() const {
  double t = 0;
  for (const auto& p : phases) t += p.duration;
  return t;
}

double StepTimeline::mean_sm() const {
  double t = 0, acc = 0;
  for (const auto& p : phases) {
    t += p.duration;
    acc += p.duration * p.sm_level;
  }
  return t > 0 ? acc / t : 0;
}

double StepTimeline::idle_fraction(double threshold) const {
  double t = 0, idle = 0;
  for (const auto& p : phases) {
    t += p.duration;
    if (p.sm_level < threshold) idle += p.duration;
  }
  return t > 0 ? idle / t : 0;
}

std::vector<double> StepTimeline::sample(double dt, double horizon,
                                         common::Rng& rng) const {
  ACME_CHECK(dt > 0 && horizon > 0 && !phases.empty());
  const double step = step_time();
  ACME_CHECK(step > 0);
  const auto count = static_cast<std::size_t>(horizon / dt);
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) * dt;
    double in_step = std::fmod(t, step);
    double level = 0;
    for (const auto& p : phases) {
      if (in_step < p.duration) {
        level = p.sm_level;
        break;
      }
      in_step -= p.duration;
    }
    // DCGM counter jitter; compute phases fluctuate more than idle ones.
    const double noise = level > 0.05 ? rng.normal(0.0, 0.05) : rng.normal(0.0, 0.005);
    out.push_back(std::clamp(level + noise, 0.0, 1.0));
  }
  return out;
}

PretrainExecutionModel::PretrainExecutionModel(TransformerConfig cfg,
                                               comm::FabricConfig fabric)
    : cfg_(std::move(cfg)), comm_(std::move(fabric)) {}

double PretrainExecutionModel::compute_time(double flops, int gpus, double eff) const {
  return flops / (static_cast<double>(gpus) * peak_flops_per_gpu_ * eff);
}

StepTimeline PretrainExecutionModel::step_3d(const ThreeDConfig& pc) const {
  ACME_CHECK(pc.world % (pc.tensor_parallel * pc.pipeline_parallel) == 0);
  const int p = pc.pipeline_parallel;
  const int m = pc.micro_batches;
  // Global tokens per step: dp replicas x m microbatches x mb sequences.
  const double tokens = static_cast<double>(pc.data_parallel()) * m *
                        pc.microbatch_size * cfg_.seq_len;
  double flops = cfg_.train_flops_per_token() * tokens;
  if (pc.recompute) flops *= 4.0 / 3.0;  // extra forward pass
  // TP collectives on the critical path cut sustained efficiency (paper: V1's
  // "relatively low utilization ... due to the impact of communication").
  const double compute = compute_time(flops, pc.world, 0.38);

  // 1F1B structure: total pipeline span = compute x (m + p - 1)/m; the extra
  // (p-1)/m share is bubble. We emit warmup (ramping), steady, cooldown.
  const double per_mb = compute / m;             // one fwd+bwd microbatch slot
  const double warmup = per_mb * (p - 1) * 0.5;  // ramping halves occupancy
  const double steady = compute - per_mb * (p - 1) * 0.0;  // full 1F1B body
  const double cooldown = per_mb * (p - 1) * 0.5;

  // Tensor-parallel collectives on one pipeline stage's critical path: four
  // ring all-reduces per layer per microbatch (attention + MLP, forward +
  // backward) of the microbatch activations, confined to the tp group's
  // NVLink island. Sequence parallelism swaps each all-reduce for an
  // all-gather + reduce-scatter pair with identical ring traffic.
  const int layers_per_stage = cfg_.layers / p;
  comm::World tp_world;
  tp_world.gpus = pc.tensor_parallel;
  const double act_bytes =
      2.0 * pc.microbatch_size * cfg_.seq_len * cfg_.hidden;
  const double tp_wire =
      4.0 * layers_per_stage * m * comm_.all_reduce(tp_world, act_bytes).seconds();
  // The sustained-efficiency constant already pays for healthy-fabric
  // collectives, so the stall is carved out of the steady span up to a cap;
  // wire time beyond the cap (e.g. a degraded NVLink) extends the step.
  const double carved = std::min(tp_wire, kTpStallCarveCap * steady);
  const double body = steady * 0.92 - carved;

  // Gradient all-reduce across dp and the optimizer step close the step.
  // Each ring places one rank per node (the tp x pp replica fills whole
  // nodes) and shares the node's NICs with the other co-resident rings.
  const double grad_bytes = 2.0 * cfg_.params() / (pc.tensor_parallel * p);
  const int model_ranks = pc.tensor_parallel * p;
  const int per_node = comm_.topology().gpus_per_node();
  comm::World dp_world;
  dp_world.gpus = pc.data_parallel();
  dp_world.ranks_per_node = std::max(1, per_node / model_ranks);
  dp_world.nic_share = std::min(per_node, model_ranks);
  const double ar_wire = comm_.all_reduce(dp_world, grad_bytes).seconds();
  const double allreduce = ar_wire * (1.0 - kGradAllreduceOverlap);
  const double optim = compute * 0.035;

  StepTimeline tl;
  tl.phases.push_back({"warmup-bubble", warmup, 0.22});
  tl.phases.push_back({"steady-1f1b", body * (0.46 / 0.84), 0.52});
  tl.phases.push_back({"tp-comm-stall", tp_wire, 0.08});
  tl.phases.push_back({"steady-1f1b", body * (0.38 / 0.84), 0.50});
  tl.phases.push_back({"pp-bubble", steady * 0.08, 0.03});
  tl.phases.push_back({"cooldown-bubble", cooldown, 0.20});
  tl.phases.push_back({"grad-allreduce", allreduce, 0.04});
  tl.phases.push_back({"optimizer", optim, 0.30});
  return tl;
}

StepTimeline PretrainExecutionModel::step_hier_zero(const HierZeroConfig& pc) const {
  ACME_CHECK(pc.world % pc.context_parallel == 0);
  // With context parallelism, cp GPUs cooperate on each sequence, so the
  // data-parallel width (and tokens per step) shrinks by cp.
  const double tokens = static_cast<double>(pc.world / pc.context_parallel) *
                        pc.accum_steps * pc.microbatch_size * cfg_.seq_len;
  double flops = cfg_.train_flops_per_token() * tokens;
  if (pc.recompute) flops *= 4.0 / 3.0;
  // All-gathers stay within the 64-GPU shard subgroup (NVLink-heavy) and are
  // prefetched, so sustained efficiency is higher; ~16% faster end-to-end
  // than V1 at the same global batch (paper Fig 10). Ring-attention exchanges
  // shave efficiency as cp grows.
  const double cp_penalty = 1.0 - 0.03 * std::log2(static_cast<double>(pc.context_parallel));
  const double compute = compute_time(flops, pc.world, 0.52 * std::max(0.3, cp_penalty));

  // Parameter all-gathers (forward + backward) and the gradient
  // reduce-scatter run hierarchically inside the shard subgroup — intra-node
  // NVLink stage, then inter-node IB — and are mostly hidden by prefetch;
  // only the exposed residue shows up in the timeline.
  comm::World shard_world;
  shard_world.gpus = pc.shard_group;
  const double param_bytes = 2.0 * cfg_.params();
  const double ag_wire =
      2.0 * comm_.all_gather(shard_world, param_bytes, comm::Algorithm::kHierarchical)
                .seconds();
  const double rs_wire =
      comm_.reduce_scatter(shard_world, param_bytes, comm::Algorithm::kHierarchical)
          .seconds();
  const double exposed_ag = ag_wire * (1.0 - kZeroCommOverlap);
  const double reduce_scatter = rs_wire * (1.0 - kZeroCommOverlap);
  const double optim = compute * 0.03;

  StepTimeline tl;
  // Prefetched all-gather keeps SM high with brief per-accum dips; the dips
  // re-attribute part of the compute span rather than extending it.
  const int chunks = std::max(8, pc.accum_steps);
  const double body = compute / chunks;
  const double dip = std::min(exposed_ag, 0.3 * compute) / chunks;
  for (int i = 0; i < chunks; ++i) {
    tl.phases.push_back({"fwd-bwd-overlap", body - dip, 0.60});
    tl.phases.push_back({"allgather-dip", dip, 0.25});
  }
  tl.phases.push_back({"reduce-scatter", reduce_scatter, 0.06});
  tl.phases.push_back({"optimizer", optim, 0.32});
  return tl;
}

StepTimeline PretrainExecutionModel::step_moe(int world,
                                              double nic_bytes_per_sec) const {
  ACME_CHECK(cfg_.moe);
  // Expert parallelism: every layer routes tokens all-to-all across nodes.
  // With one shared NIC per 8 GPUs (Seren), the all-to-all dominates the
  // step (Appendix A.6: "our single IB NIC server cannot efficiently handle
  // such job").
  const double tokens = static_cast<double>(world) * cfg_.seq_len;
  const double flops = cfg_.train_flops_per_token() * tokens;
  const double compute = compute_time(flops, world, 0.40);
  // Per layer: tokens/world per GPU, hidden-size fp16 payload, twice per
  // direction, twice per layer (dispatch + combine), through 1/8 NIC share.
  const double bytes_per_gpu_layer = cfg_.seq_len * cfg_.hidden * 2.0 * 2.0 * 2.0;
  const double a2a_per_layer = bytes_per_gpu_layer / (nic_bytes_per_sec / 8.0);
  const double a2a = a2a_per_layer * cfg_.layers;

  StepTimeline tl;
  const int segs = 8;
  for (int i = 0; i < segs; ++i) {
    tl.phases.push_back({"expert-compute", compute / segs, 0.38});
    tl.phases.push_back({"all-to-all", a2a / segs, 0.03});
  }
  tl.phases.push_back({"grad-sync", compute * 0.1, 0.05});
  tl.phases.push_back({"optimizer", compute * 0.05, 0.25});
  return tl;
}

StepTimeline PretrainExecutionModel::step_rlhf(const RlhfConfig& pc) const {
  ACME_CHECK(pc.world > 0 && pc.rollout_tokens > 0 && pc.prompts_per_gpu > 0);
  // 1. Rollout generation: one token at a time; each decode step is a
  //    bandwidth-bound pass over the weights, so SM activity is low.
  const double generation = static_cast<double>(pc.rollout_tokens) *
                            pc.prompts_per_gpu /
                            pc.decode_tokens_per_sec_per_gpu;
  // 2. Reward + critic scoring: one dense forward over the rollouts.
  const double scored_tokens = static_cast<double>(pc.world) *
                               pc.prompts_per_gpu * pc.rollout_tokens;
  const double scoring =
      compute_time(2.0 * cfg_.active_params() * scored_tokens, pc.world, 0.45);
  // 3. PPO update: fwd+bwd over the same tokens.
  const double training =
      compute_time(cfg_.train_flops_per_token() * scored_tokens, pc.world, 0.45);
  // 4. Weight sync from trainer to the rollout workers.
  const double weight_sync = 2.0 * cfg_.params() / 64 / 40e9;

  StepTimeline tl;
  const int gen_segments = 6;
  for (int i = 0; i < gen_segments; ++i)
    tl.phases.push_back({"rollout-decode", generation / gen_segments, 0.12});
  tl.phases.push_back({"reward-scoring", scoring, 0.45});
  tl.phases.push_back({"ppo-train", training, 0.50});
  tl.phases.push_back({"weight-sync", weight_sync, 0.05});
  return tl;
}

double PretrainExecutionModel::static_bytes_3d(const ThreeDConfig& pc) const {
  // Megatron-style: fp16 params + grads sharded by tp x pp; optimizer states
  // additionally sharded across dp (distributed optimizer / ZeRO-1).
  const auto anatomy = mixed_precision_anatomy(cfg_.params());
  const double model_shard = pc.tensor_parallel * pc.pipeline_parallel;
  return (anatomy.param_bytes + anatomy.grad_bytes) / model_shard +
         anatomy.optimizer_bytes / (model_shard * pc.data_parallel());
}

double PretrainExecutionModel::static_bytes_hier_zero(const HierZeroConfig& pc) const {
  // All three state classes sharded within the subgroup only (redundant
  // across subgroups, by design, to keep all-gathers intra-group).
  const auto anatomy = mixed_precision_anatomy(cfg_.params());
  return anatomy.total() / pc.shard_group;
}

double PretrainExecutionModel::activation_bytes_3d(const ThreeDConfig& pc) const {
  const int layers_per_stage = cfg_.layers / pc.pipeline_parallel;
  const double per_layer = activation_bytes_per_layer(
      cfg_, pc.microbatch_size, pc.tensor_parallel, pc.recompute,
      pc.sequence_parallel);
  // Rank 0 holds the most in-flight microbatches: min(m, p).
  const int in_flight = std::min(pc.micro_batches, pc.pipeline_parallel);
  return per_layer * layers_per_stage * in_flight;
}

double PretrainExecutionModel::activation_bytes_hier_zero(
    const HierZeroConfig& pc) const {
  const double per_layer = activation_bytes_per_layer(
      cfg_, pc.microbatch_size, 1, pc.recompute, false, pc.context_parallel);
  // One microbatch in flight; recompute keeps only layer inputs plus the
  // working set of the active layer.
  const double working_set = activation_bytes_per_layer(
      cfg_, pc.microbatch_size, 1, false, false, pc.context_parallel);
  return per_layer * cfg_.layers + working_set;
}

std::vector<double> PretrainExecutionModel::per_rank_memory_1f1b(
    const ThreeDConfig& pc) const {
  const int p = pc.pipeline_parallel;
  const int layers_per_stage = cfg_.layers / p;
  const double per_layer = activation_bytes_per_layer(
      cfg_, pc.microbatch_size, pc.tensor_parallel, pc.recompute);
  const double static_share = static_bytes_3d(pc);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const int in_flight = std::min(pc.micro_batches, p - r);
    double bytes = static_share + per_layer * layers_per_stage * in_flight;
    // First and last stages hold the embedding / LM-head shards.
    if (r == 0 || r == p - 1)
      bytes += 2.0 * static_cast<double>(cfg_.vocab) * cfg_.hidden * 2.0 /
               pc.tensor_parallel;
    out.push_back(bytes);
  }
  return out;
}

namespace {

PretrainExecutionModel::MemorySnapshot make_snapshot(double step_time,
                                                     double static_bytes,
                                                     double act_peak, int samples,
                                                     double rise_frac,
                                                     double plateau_frac) {
  PretrainExecutionModel::MemorySnapshot snap;
  snap.time.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double t = step_time * i / (samples - 1);
    const double x = static_cast<double>(i) / (samples - 1);
    double dyn;
    if (x < rise_frac) {
      dyn = act_peak * (x / rise_frac);  // forward: activations accumulate
    } else if (x < rise_frac + plateau_frac) {
      dyn = act_peak;  // 1F1B steady: holding peak in-flight set
    } else {
      const double y = (x - rise_frac - plateau_frac) / (1.0 - rise_frac - plateau_frac);
      dyn = act_peak * std::max(0.0, 1.0 - y);  // backward frees
    }
    snap.time.push_back(t);
    snap.static_bytes.push_back(static_bytes);
    snap.dynamic_bytes.push_back(dyn);
  }
  return snap;
}

}  // namespace

PretrainExecutionModel::MemorySnapshot PretrainExecutionModel::memory_snapshot_3d(
    const ThreeDConfig& pc, int samples) const {
  return make_snapshot(step_3d(pc).step_time(), static_bytes_3d(pc),
                       activation_bytes_3d(pc), samples, 0.35, 0.40);
}

PretrainExecutionModel::MemorySnapshot
PretrainExecutionModel::memory_snapshot_hier_zero(const HierZeroConfig& pc,
                                                  int samples) const {
  return make_snapshot(step_hier_zero(pc).step_time(), static_bytes_hier_zero(pc),
                       activation_bytes_hier_zero(pc), samples, 0.45, 0.10);
}

}  // namespace acme::parallel
