#include "parallel/model_math.h"

#include "common/check.h"

namespace acme::parallel {

double TransformerConfig::params() const {
  const double h = hidden;
  const double attn = 4.0 * h * h;  // QKV + output projections
  const double ffn = 8.0 * h * h;   // two 4h matrices (per expert for MoE)
  const double per_layer = attn + (moe ? ffn * experts : ffn) + 4.0 * h;
  const double embeddings = static_cast<double>(vocab) * h;
  return layers * per_layer + 2.0 * embeddings;  // tied in/out embeddings kept separate
}

double TransformerConfig::active_params() const {
  if (!moe) return params();
  const double h = hidden;
  const double per_layer = 4.0 * h * h + 8.0 * h * h * 2.0 + 4.0 * h;  // top-2
  return layers * per_layer + 2.0 * static_cast<double>(vocab) * h;
}

double TransformerConfig::train_flops_per_token() const {
  // Matmul term plus attention score/context matmuls: 12 * l * h * s FLOPs
  // per token (fwd+bwd), negligible at 2k context but dominant at 100k+.
  const double attention =
      12.0 * static_cast<double>(layers) * hidden * seq_len;
  return 6.0 * active_params() + attention;
}

TransformerConfig llm_7b() {
  TransformerConfig c;
  c.name = "llm-7b";
  c.layers = 32;
  c.hidden = 4096;
  c.heads = 32;
  c.vocab = 100000;
  c.seq_len = 2048;
  return c;  // ~7.2B params
}

TransformerConfig llm_104b() {
  TransformerConfig c;
  c.name = "llm-104b";
  c.layers = 72;
  c.hidden = 10240;
  c.heads = 80;
  c.vocab = 100000;
  c.seq_len = 2048;
  return c;  // ~93B + embeddings ~ 104B
}

TransformerConfig llm_123b() {
  TransformerConfig c;
  c.name = "llm-123b";
  c.layers = 80;
  c.hidden = 11264;
  c.heads = 88;
  c.vocab = 100000;
  c.seq_len = 2048;
  return c;  // ~122B + embeddings ~ 124B
}

TransformerConfig moe_mistral_7b() {
  TransformerConfig c;
  c.name = "moe-mistral-7b";
  c.layers = 32;
  c.hidden = 4096;
  c.heads = 32;
  c.vocab = 32000;
  c.seq_len = 4096;
  c.moe = true;
  c.experts = 8;
  return c;
}

MemoryAnatomy mixed_precision_anatomy(double params) {
  ACME_CHECK(params > 0);
  MemoryAnatomy m;
  m.param_bytes = 2.0 * params;
  m.grad_bytes = 2.0 * params;
  m.optimizer_bytes = 12.0 * params;  // fp32 master + momentum + variance
  return m;
}

double checkpoint_bytes(double params) {
  // fp16 params + fp32 (master, momentum, variance).
  return 2.0 * params + 12.0 * params;
}

double activation_bytes_per_layer(const TransformerConfig& cfg, int microbatch,
                                  int tensor_parallel, bool recompute,
                                  bool sequence_parallel, int context_parallel) {
  ACME_CHECK(microbatch > 0 && tensor_parallel > 0 && context_parallel > 0);
  const double s = static_cast<double>(cfg.seq_len) / context_parallel;
  const double b = microbatch;
  const double h = cfg.hidden;
  const double a = cfg.heads;
  const double t = tensor_parallel;
  if (recompute) return 2.0 * s * b * h;  // retain layer input only
  const double residual_term = sequence_parallel ? 10.0 / t : 10.0;
  return s * b * h * (residual_term + 24.0 / t + 5.0 * a * s / (h * t));
}

}  // namespace acme::parallel
