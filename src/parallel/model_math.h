// Transformer sizing math: parameter counts, FLOPs, and the mixed-precision
// memory anatomy the paper quotes (§4.1: "the memory footprint of the
// parameters, gradients, and optimizer states are 2Ψ, 2Ψ, and 12Ψ").
#pragma once

#include <string>

namespace acme::parallel {

struct TransformerConfig {
  std::string name;
  int layers = 0;
  int hidden = 0;
  int heads = 0;
  int vocab = 100000;
  int seq_len = 2048;
  // MoE extensions (Appendix A.6): top-2 routing over `experts` FFNs.
  bool moe = false;
  int experts = 1;

  // Decoder-only parameter count: embeddings + per-layer attention (4 h^2)
  // and FFN (8 h^2, or per-expert for MoE).
  double params() const;
  // Parameters active per token (MoE activates top-2 experts only).
  double active_params() const;
  // Training FLOPs per token: ~6x active params for the matmuls plus the
  // attention term, which grows linearly in sequence length per token
  // (quadratic per sequence) — the cost driver of long-sequence pretraining.
  double train_flops_per_token() const;
};

// The InternLM-style model family used in the paper's profiling sections.
TransformerConfig llm_7b();
TransformerConfig llm_104b();
TransformerConfig llm_123b();
// Mistral-7B-like MoE (8 experts, top-2) for Appendix A.6 / Fig 22.
TransformerConfig moe_mistral_7b();

// Mixed-precision Adam memory anatomy, in bytes for a model of `params`
// parameters: fp16 params (2Psi), fp16 grads (2Psi), fp32 master params +
// momentum + variance (12Psi).
struct MemoryAnatomy {
  double param_bytes = 0;
  double grad_bytes = 0;
  double optimizer_bytes = 0;
  double total() const { return param_bytes + grad_bytes + optimizer_bytes; }
};
MemoryAnatomy mixed_precision_anatomy(double params);

// Checkpoint payload (fp16 params + fp32 optimizer trio): what must be saved
// to resume training, per the paper's TB-scale model states (§6.1).
double checkpoint_bytes(double params);

// Activation bytes per transformer layer for one microbatch under tensor
// parallelism degree t (Korthikanti et al.: sbh(10 + 24/t + 5as/(ht))).
// With sequence parallelism the residual/layer-norm activations (the "10"
// term) are also partitioned across t: sbh(34/t + 5as/(ht)). With full
// recomputation only the layer input (2sbh) is retained. Context parallelism
// (degree cp) splits the sequence itself across GPUs for long-sequence
// training, dividing every term by cp.
double activation_bytes_per_layer(const TransformerConfig& cfg, int microbatch,
                                  int tensor_parallel, bool recompute,
                                  bool sequence_parallel = false,
                                  int context_parallel = 1);

}  // namespace acme::parallel
