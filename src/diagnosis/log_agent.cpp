#include "diagnosis/log_agent.h"

#include <algorithm>
#include <map>

namespace acme::diagnosis {

LogAgent::LogAgent(LogAgentOptions options) : options_(options) {}

bool LogAgent::looks_like_error(const std::string& line) {
  static const char* kMarkers[] = {
      "Error",    "error",   "Traceback", "Exception", "exception", "WARN",
      "CRITICAL", "FATAL",   "fatal",     "failed",    "Failed",    "killed",
      "Killed",   "timeout", "Timeout",   "abort",     "unreachable",
  };
  for (const char* marker : kMarkers)
    if (line.find(marker) != std::string::npos) return true;
  return false;
}

std::vector<std::string> LogAgent::update_rules(
    const std::vector<std::string>& segment, FilterRules& rules) const {
  // Count template support per sub-sample (lines are dealt round-robin: each
  // voter sees an interleaved slice, mimicking independent passes over the
  // stream).
  const int voters = std::max(1, options_.voters);
  std::vector<std::map<std::string, std::size_t>> counts(
      static_cast<std::size_t>(voters));
  for (std::size_t i = 0; i < segment.size(); ++i) {
    const auto& line = segment[i];
    if (options_.protect_error_lines && looks_like_error(line)) continue;
    counts[i % static_cast<std::size_t>(voters)][line_template(line)] += 1;
  }

  // Self-consistency vote: a template is promoted only if enough voters saw
  // it with proportional support.
  const std::size_t per_voter_support =
      std::max<std::size_t>(1, options_.min_support / static_cast<std::size_t>(voters));
  std::map<std::string, int> votes;
  for (const auto& voter : counts)
    for (const auto& [tmpl, n] : voter)
      if (n >= per_voter_support) votes[tmpl] += 1;

  std::vector<std::string> promoted;
  for (const auto& [tmpl, v] : votes) {
    if (v >= options_.votes_required && !rules.contains(tmpl)) {
      rules.add(tmpl);
      promoted.push_back(tmpl);
    }
  }
  return promoted;
}

}  // namespace acme::diagnosis
