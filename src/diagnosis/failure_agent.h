// FailureAgent: the end of the diagnosis pipeline (paper Fig 15, §6.1-2).
//
// Pipeline: compressed error log -> rule-based diagnosis (signature patterns
// accumulated over time) -> if rules disagree or miss, retrieval over the
// vector store of previously diagnosed incidents (our stand-in for the
// paper's GPT-4 Query Engine) -> verdict with recoverability and a
// mitigation suggestion. Each resolved incident feeds back: the agent writes
// a new signature rule, so rule coverage grows over time ("continuous
// learning of the failure diagnosis system").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "diagnosis/embedding.h"
#include "diagnosis/log_template.h"
#include "failure/taxonomy.h"

namespace acme::diagnosis {

struct SignatureRule {
  std::string pattern;  // substring matched against raw log lines
  std::string reason;
  double weight = 1.0;  // root-cause signatures weigh more than collateral
};

struct Diagnosis {
  std::string reason;                  // "" if undiagnosed
  failure::FailureCategory category = failure::FailureCategory::kScript;
  bool infrastructure = false;         // drives the recovery path
  bool needs_node_detection = false;
  std::string source;                  // "rules" | "retrieval" | "none"
  std::string suggestion;
  double confidence = 0;
};

struct FailureAgentOptions {
  std::size_t knn = 5;
  float min_similarity = 0.25f;
  // Error-tail window embedded for retrieval.
  std::size_t tail_lines = 24;
  // Rules win outright when their weighted score reaches this value.
  double rule_score_threshold = 2.0;
};

class FailureAgent {
 public:
  using Options = FailureAgentOptions;

  explicit FailureAgent(Options options = Options());

  // Seeds the rule set with the canonical signatures of `specs` (the rules
  // "defined over time through the diagnosis of errors from past failed
  // jobs"). Collateral signatures get lower weight.
  void seed_rules(const std::vector<const failure::FailureSpec*>& specs);
  void add_rule(SignatureRule rule);
  std::size_t rule_count() const { return rules_.size(); }

  // Adds a labeled incident (compressed log) to the retrieval store.
  void add_incident(const std::vector<std::string>& compressed_lines,
                    const std::string& reason);
  std::size_t incident_count() const { return store_.size(); }

  // Diagnoses a compressed log. Never throws; returns source="none" when
  // both stages miss.
  Diagnosis diagnose(const std::vector<std::string>& compressed_lines) const;

  // Feedback loop: after an incident is resolved with ground truth `reason`,
  // stores it for retrieval and promotes its most characteristic error line
  // into a new signature rule. Returns the learned pattern ("" if none).
  std::string learn(const std::vector<std::string>& compressed_lines,
                    const std::string& reason);

 private:
  std::vector<std::string> error_tail(const std::vector<std::string>& lines) const;
  static std::string suggestion_for(const failure::FailureSpec& spec);

  Options options_;
  std::vector<SignatureRule> rules_;
  VectorStore store_;
};

}  // namespace acme::diagnosis
