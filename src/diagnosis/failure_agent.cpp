#include "diagnosis/failure_agent.h"

#include <algorithm>
#include <map>

#include "diagnosis/log_agent.h"

namespace acme::diagnosis {
namespace {

// Seeded rules are raw substrings; learned rules are line templates. A rule
// fires if either form matches.
bool rule_matches(const SignatureRule& rule, const std::string& line) {
  if (line.find(rule.pattern) != std::string::npos) return true;
  return rule.pattern.find("<*>") != std::string::npos &&
         line_template(line) == rule.pattern;
}

}  // namespace

FailureAgent::FailureAgent(Options options) : options_(options) {}

void FailureAgent::seed_rules(
    const std::vector<const failure::FailureSpec*>& specs) {
  for (const auto* spec : specs) {
    bool root = true;
    for (const auto& sig : spec->log_signatures) {
      // The canonical (first) signature identifies the root cause; later
      // entries also appear as collateral in other failures' logs, so they
      // carry less weight.
      add_rule({sig, spec->reason, root ? 2.0 : 0.6});
      root = false;
    }
  }
}

void FailureAgent::add_rule(SignatureRule rule) { rules_.push_back(std::move(rule)); }

void FailureAgent::add_incident(const std::vector<std::string>& compressed_lines,
                                const std::string& reason) {
  store_.add(embed_lines(error_tail(compressed_lines)), reason);
}

std::vector<std::string> FailureAgent::error_tail(
    const std::vector<std::string>& lines) const {
  // Keep the trailing window, biased to error-looking lines.
  std::vector<std::string> tail;
  for (auto it = lines.rbegin(); it != lines.rend() && tail.size() < options_.tail_lines;
       ++it) {
    tail.push_back(*it);
  }
  std::reverse(tail.begin(), tail.end());
  return tail;
}

std::string FailureAgent::suggestion_for(const failure::FailureSpec& spec) {
  switch (spec.category) {
    case failure::FailureCategory::kInfrastructure:
      return spec.needs_node_detection
                 ? "run two-round collective test, cordon faulty nodes, auto-restart "
                   "from the latest durable checkpoint"
                 : "retry with backoff; check auxiliary service/storage health";
    case failure::FailureCategory::kFramework:
      return "inspect job configuration (parallelism degrees, batch sizes, dataloader "
             "workers) and resubmit";
    case failure::FailureCategory::kScript:
      return "fix the user script; no infrastructure action needed";
  }
  return {};
}

Diagnosis FailureAgent::diagnose(
    const std::vector<std::string>& compressed_lines) const {
  Diagnosis d;
  d.source = "none";

  // Stage 1: rule-based scoring over the error tail. Later lines weigh more:
  // the root-cause traceback is flushed after the collateral rank noise.
  const auto tail = error_tail(compressed_lines);
  std::map<std::string, double> scores;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const double recency = 0.5 + 0.5 * static_cast<double>(i + 1) /
                                     static_cast<double>(tail.size());
    for (const auto& rule : rules_)
      if (rule_matches(rule, tail[i])) scores[rule.reason] += rule.weight * recency;
  }
  if (!scores.empty()) {
    auto best = std::max_element(
        scores.begin(), scores.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (best->second >= options_.rule_score_threshold) {
      const auto& spec = failure::spec_for(best->first);
      d.reason = best->first;
      d.category = spec.category;
      d.infrastructure = spec.category == failure::FailureCategory::kInfrastructure;
      d.needs_node_detection = spec.needs_node_detection;
      d.source = "rules";
      d.suggestion = suggestion_for(spec);
      d.confidence = best->second;
      return d;
    }
  }

  // Stage 2: retrieval over past incidents.
  const std::string label =
      store_.vote(embed_lines(tail), options_.knn, options_.min_similarity);
  if (!label.empty()) {
    const auto& spec = failure::spec_for(label);
    d.reason = label;
    d.category = spec.category;
    d.infrastructure = spec.category == failure::FailureCategory::kInfrastructure;
    d.needs_node_detection = spec.needs_node_detection;
    d.source = "retrieval";
    d.suggestion = suggestion_for(spec);
    d.confidence = 1.0;
    return d;
  }
  return d;
}

std::string FailureAgent::learn(const std::vector<std::string>& compressed_lines,
                                const std::string& reason) {
  add_incident(compressed_lines, reason);
  // Promote the most characteristic error line into a rule: the last line
  // that looks like an error and is not already covered by a rule for a
  // DIFFERENT reason (to avoid poisoning collateral patterns).
  const auto tail = error_tail(compressed_lines);
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    if (!LogAgent::looks_like_error(*it)) continue;
    bool conflicted = false;
    for (const auto& rule : rules_) {
      if (rule_matches(rule, *it) && rule.reason != reason) {
        conflicted = true;
        break;
      }
    }
    if (conflicted) continue;
    const std::string pattern = line_template(*it);
    bool already = false;
    for (const auto& rule : rules_)
      if (rule.pattern == pattern && rule.reason == reason) already = true;
    if (already) return {};
    add_rule({pattern, reason, 1.5});
    return pattern;
  }
  return {};
}

}  // namespace acme::diagnosis
