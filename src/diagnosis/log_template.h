// Log template extraction and the Filter Rules used for real-time log
// compression (paper §6.1-2, "Real-time Log Compression").
//
// A template is the line with volatile tokens (numbers, hex ids, paths,
// floats) replaced by a wildcard. Routine output — training metric records,
// init banners, debug chatter — collapses onto a small set of templates; the
// LogAgent promotes high-support templates to Filter Rules, and compression
// drops every line whose template matches a rule. Error lines are rare and
// survive.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace acme::diagnosis {

// Normalizes one line to its template, e.g.
//   "step=412 loss=2.0131 lr=3.00e-04" -> "step=<*> loss=<*> lr=<*>".
std::string line_template(const std::string& line);

// Splits a line into whitespace tokens.
std::vector<std::string> tokenize(const std::string& line);

class FilterRules {
 public:
  void add(const std::string& tmpl) { templates_.insert(tmpl); }
  bool matches(const std::string& line) const {
    return templates_.count(line_template(line)) > 0;
  }
  std::size_t size() const { return templates_.size(); }
  bool contains(const std::string& tmpl) const { return templates_.count(tmpl) > 0; }

  // Drops every line matching a rule; returns the surviving lines.
  std::vector<std::string> compress(const std::vector<std::string>& lines) const;

 private:
  std::unordered_set<std::string> templates_;
};

}  // namespace acme::diagnosis
