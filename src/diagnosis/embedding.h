// Hashing-trick bag-of-tokens embeddings and a cosine-similarity vector
// store (paper §6.1-2: "the compressed log is vectorized through an
// embedding model and stored in a vector store, serving as a retrieval
// repository"). We substitute a deterministic feature hasher for the paper's
// neural embedding model; retrieval semantics (top-k cosine) are identical.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace acme::diagnosis {

constexpr std::size_t kEmbeddingDim = 256;
using Embedding = std::array<float, kEmbeddingDim>;

// Embeds a chunk of log lines: tokens are template-normalized, hashed into
// the feature space with signed hashing, then L2-normalized.
Embedding embed_lines(const std::vector<std::string>& lines);
Embedding embed_text(const std::string& text);

float cosine(const Embedding& a, const Embedding& b);

class VectorStore {
 public:
  struct Hit {
    std::size_t index;
    float similarity;
    const std::string* label;
  };

  void add(Embedding embedding, std::string label);
  std::size_t size() const { return entries_.size(); }

  // Top-k nearest by cosine similarity, descending.
  std::vector<Hit> query(const Embedding& query, std::size_t k) const;

  // Majority label among top-k, weighted by similarity; empty if the store is
  // empty or the best similarity is below `min_similarity`.
  std::string vote(const Embedding& query, std::size_t k,
                   float min_similarity = 0.0f) const;

  const std::string& label(std::size_t index) const { return entries_[index].label; }

 private:
  struct Entry {
    Embedding embedding;
    std::string label;
  };
  std::vector<Entry> entries_;
};

}  // namespace acme::diagnosis
