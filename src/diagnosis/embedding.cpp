#include "diagnosis/embedding.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "diagnosis/log_template.h"

namespace acme::diagnosis {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void accumulate(const std::string& line, Embedding& acc) {
  // Template-normalize so volatile tokens (ranks, addresses) don't scatter
  // otherwise-identical errors across the feature space.
  for (const auto& token : tokenize(line_template(line))) {
    if (token == "<*>") continue;
    const std::uint64_t h = fnv1a(token);
    const std::size_t idx = h % kEmbeddingDim;
    const float sign = (h >> 63) ? 1.0f : -1.0f;
    acc[idx] += sign;
    // A second hash position reduces collisions (2-way feature hashing).
    const std::uint64_t h2 = fnv1a(token + "#2");
    acc[h2 % kEmbeddingDim] += (h2 >> 63) ? 1.0f : -1.0f;
  }
}

void l2_normalize(Embedding& e) {
  float norm = 0;
  for (float v : e) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0)
    for (float& v : e) v /= norm;
}

}  // namespace

Embedding embed_lines(const std::vector<std::string>& lines) {
  Embedding e{};
  for (const auto& line : lines) accumulate(line, e);
  l2_normalize(e);
  return e;
}

Embedding embed_text(const std::string& text) {
  Embedding e{};
  accumulate(text, e);
  l2_normalize(e);
  return e;
}

float cosine(const Embedding& a, const Embedding& b) {
  float dot = 0;
  for (std::size_t i = 0; i < kEmbeddingDim; ++i) dot += a[i] * b[i];
  return dot;  // both inputs are L2-normalized
}

void VectorStore::add(Embedding embedding, std::string label) {
  entries_.push_back({embedding, std::move(label)});
}

std::vector<VectorStore::Hit> VectorStore::query(const Embedding& query,
                                                 std::size_t k) const {
  std::vector<Hit> hits;
  hits.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i)
    hits.push_back({i, cosine(query, entries_[i].embedding), &entries_[i].label});
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.index < b.index;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::string VectorStore::vote(const Embedding& q, std::size_t k,
                              float min_similarity) const {
  auto hits = query(q, k);
  std::erase_if(hits, [&](const Hit& h) { return h.similarity < min_similarity; });
  if (hits.empty()) return {};
  std::map<std::string, float> scores;
  for (const auto& hit : hits) scores[*hit.label] += hit.similarity;
  std::string best;
  float best_score = -1;
  for (const auto& [label, score] : scores) {
    if (score > best_score) {
      best_score = score;
      best = label;
    }
  }
  return best;
}

}  // namespace acme::diagnosis
