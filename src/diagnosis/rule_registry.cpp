#include "diagnosis/rule_registry.h"

namespace acme::diagnosis {

FilterRuleRegistry::FilterRuleRegistry(LogAgentOptions agent_options)
    : agent_(agent_options) {}

std::vector<std::string> FilterRuleRegistry::compress(
    const std::string& task_signature, const std::vector<std::string>& lines) {
  auto it = rules_.find(task_signature);
  if (it == rules_.end()) {
    ++misses_;
    it = rules_.emplace(task_signature, FilterRules{}).first;
  } else {
    ++hits_;
  }
  // Keep refining: resubmissions may add new routine patterns (new metrics,
  // new banners after a framework upgrade).
  agent_.update_rules(lines, it->second);
  return it->second.compress(lines);
}

const FilterRules* FilterRuleRegistry::rules_for(
    const std::string& task_signature) const {
  auto it = rules_.find(task_signature);
  return it == rules_.end() ? nullptr : &it->second;
}

}  // namespace acme::diagnosis
