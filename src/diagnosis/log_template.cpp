#include "diagnosis/log_template.h"

#include <cctype>
#include <sstream>

namespace acme::diagnosis {
namespace {

bool is_volatile_token(const std::string& token) {
  // Tokens containing digits, paths or hex-ish ids are volatile: they vary
  // between occurrences of the same template.
  bool has_digit = false;
  for (char c : token)
    if (std::isdigit(static_cast<unsigned char>(c))) has_digit = true;
  if (has_digit) return true;
  if (token.find('/') != std::string::npos) return true;
  return false;
}

}  // namespace

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string line_template(const std::string& line) {
  std::string out;
  for (const auto& token : tokenize(line)) {
    if (!out.empty()) out += ' ';
    out += is_volatile_token(token) ? "<*>" : token;
  }
  return out;
}

std::vector<std::string> FilterRules::compress(
    const std::vector<std::string>& lines) const {
  std::vector<std::string> out;
  for (const auto& line : lines)
    if (!matches(line)) out.push_back(line);
  return out;
}

}  // namespace acme::diagnosis
