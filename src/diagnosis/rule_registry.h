// Filter-rule reuse across repetitive tasks (paper §6.1-2: "the system can
// utilize metadata from tasks to identify repetitive or similar tasks,
// directly applying existing Filter Rules for log filtering, thereby
// avoiding redundant work ... particularly beneficial in large model cluster
// environments, where fewer tenants and task resubmissions are common").
//
// Rules are keyed by a task signature (e.g. the model tag or job template);
// resubmissions of the same campaign reuse — and keep refining — one rule
// set instead of re-mining from scratch.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "diagnosis/log_agent.h"
#include "diagnosis/log_template.h"

namespace acme::diagnosis {

class FilterRuleRegistry {
 public:
  explicit FilterRuleRegistry(LogAgentOptions agent_options = LogAgentOptions());

  // Compresses `lines` using the rule set for `task_signature`, mining new
  // rules from this segment first. A repeated signature is a registry hit:
  // existing rules apply immediately.
  std::vector<std::string> compress(const std::string& task_signature,
                                    const std::vector<std::string>& lines);

  // Read-only access to a signature's rules (nullptr if unseen).
  const FilterRules* rules_for(const std::string& task_signature) const;

  std::size_t signatures() const { return rules_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  LogAgent agent_;
  std::map<std::string, FilterRules> rules_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace acme::diagnosis
