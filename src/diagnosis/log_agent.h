// LogAgent (paper §6.1-2): watches real-time log segments, identifies lines
// that follow fixed patterns, and writes new Filter Rules so the log shrinks
// as the job runs. The paper uses an LLM with self-consistency voting for
// this; we substitute deterministic template mining with the same voting
// structure (see DESIGN.md's substitution table): a segment is split into
// several sub-samples, each mined independently, and only templates
// confirmed by a majority of sub-samples are promoted — guarding against
// one-off lines masquerading as routine output.
#pragma once

#include <string>
#include <vector>

#include "diagnosis/log_template.h"

namespace acme::diagnosis {

struct LogAgentOptions {
  // A template must cover at least this many lines of a segment...
  std::size_t min_support = 5;
  // ...and be confirmed by this many of the `voters` sub-samples.
  int voters = 3;
  int votes_required = 2;
  // Never promote templates that look like errors — they must survive
  // compression for the FailureAgent.
  bool protect_error_lines = true;
};

class LogAgent {
 public:
  explicit LogAgent(LogAgentOptions options = {});

  // Mines a log segment and adds confirmed templates to `rules`. Returns the
  // newly promoted templates.
  std::vector<std::string> update_rules(const std::vector<std::string>& segment,
                                        FilterRules& rules) const;

  // Heuristic: does this line look like (part of) an error report?
  static bool looks_like_error(const std::string& line);

 private:
  LogAgentOptions options_;
};

}  // namespace acme::diagnosis
