// Structured trace recorder for the simulator itself (DESIGN.md §8).
//
// Records Chrome trace-event JSON — loadable in Perfetto / chrome://tracing —
// with scoped B/E spans, instant events, counter samples and async spans
// keyed by simulated entities (job id, trial id, collective op). Timestamps
// are wall-clock microseconds from a steady clock, so the trace shows where
// *real* time went while the simulation replayed months of *simulated* time;
// simulated-time quantities belong in the metrics registry instead.
//
// Thread-safe: events append under a mutex; thread ids are small dense
// integers assigned at a thread's first event. The buffer is bounded
// (drop-newest past `capacity`) so an over-instrumented run degrades to a
// truncated trace instead of unbounded memory growth; dropped() reports how
// many events were discarded.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace acme::obs {

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kAsyncBegin = 'b',
    kAsyncEnd = 'e',
    kCounter = 'C',
  };
  std::string name;
  std::string category;
  Phase phase = Phase::kInstant;
  double ts_us = 0;        // microseconds since recorder start (steady clock)
  std::uint32_t tid = 0;
  std::uint64_t id = 0;    // async span key (entity id); unused otherwise
  // Small argument payload rendered into "args". Values are emitted as JSON
  // strings, which Perfetto displays fine and keeps the writer trivial.
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1u << 21);

  void begin(const std::string& category, const std::string& name,
             std::vector<std::pair<std::string, std::string>> args = {});
  void end(const std::string& category, const std::string& name);
  void instant(const std::string& category, const std::string& name,
               std::vector<std::pair<std::string, std::string>> args = {});
  // Async spans: `id` keys the simulated entity (job id, trial id, ...).
  void async_begin(const std::string& category, const std::string& name,
                   std::uint64_t id,
                   std::vector<std::pair<std::string, std::string>> args = {});
  void async_end(const std::string& category, const std::string& name,
                 std::uint64_t id);
  void counter(const std::string& category, const std::string& name, double value);

  // Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  // Structural well-formedness: every tid's B/E events balance like brackets
  // (matching category+name on pop), timestamps are monotone per tid, and
  // every async 'b' has a matching 'e' on (category, name, id). Returns
  // nullopt when well-formed, else a description of the first violation.
  static std::optional<std::string> well_formed_error(
      const std::vector<TraceEvent>& events);
  std::optional<std::string> well_formed_error() const;

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  std::size_t dropped() const;
  void clear();

 private:
  void push(TraceEvent event);
  double now_us() const;
  std::uint32_t current_tid();

  const std::size_t capacity_;
  std::int64_t epoch_ns_ = 0;  // steady-clock origin
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
  std::uint32_t next_tid_ = 1;
};

}  // namespace acme::obs
