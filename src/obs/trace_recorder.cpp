#include "obs/trace_recorder.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace acme::obs {

namespace {

// Thread ids are process-wide and never reused: a cleared recorder keeps
// handing out fresh ids, which keeps per-tid monotonicity trivially true.
std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double TraceRecorder::now_us() const {
  const std::int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count();
  return static_cast<double>(ns - epoch_ns_) / 1e3;
}

void TraceRecorder::push(TraceEvent event) {
  event.tid = thread_id();
  std::lock_guard lock(mu_);
  // The timestamp is taken under the lock so the global event order and the
  // per-tid timestamp order agree (steady_clock is monotone).
  event.ts_us = now_us();
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::begin(const std::string& category, const std::string& name,
                          std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kBegin;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::end(const std::string& category, const std::string& name) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kEnd;
  push(std::move(e));
}

void TraceRecorder::instant(const std::string& category, const std::string& name,
                            std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kInstant;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::async_begin(
    const std::string& category, const std::string& name, std::uint64_t id,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kAsyncBegin;
  e.id = id;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceRecorder::async_end(const std::string& category, const std::string& name,
                              std::uint64_t id) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kAsyncEnd;
  e.id = id;
  push(std::move(e));
}

void TraceRecorder::counter(const std::string& category, const std::string& name,
                            double value) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kCounter;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  e.args.emplace_back("value", buf);
  push(std::move(e));
}

std::string TraceRecorder::to_json() const {
  std::vector<TraceEvent> snapshot = events();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    out << (i ? ",\n" : "\n");
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%.3f", e.ts_us);
    out << "  {\"name\": \"" << escape_json(e.name) << "\", \"cat\": \""
        << escape_json(e.category) << "\", \"ph\": \""
        << static_cast<char>(e.phase) << "\", \"ts\": " << ts
        << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.phase == TraceEvent::Phase::kAsyncBegin ||
        e.phase == TraceEvent::Phase::kAsyncEnd)
      out << ", \"id\": " << e.id;
    if (e.phase == TraceEvent::Phase::kInstant) out << ", \"s\": \"t\"";
    if (!e.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a) out << ", ";
        out << "\"" << escape_json(e.args[a].first) << "\": ";
        // Counter samples are numeric tracks; everything else is a string.
        if (e.phase == TraceEvent::Phase::kCounter)
          out << e.args[a].second;
        else
          out << "\"" << escape_json(e.args[a].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool TraceRecorder::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "[obs] cannot write %s\n", path.c_str());
    return false;
  }
  out << to_json();
  return out.good();
}

std::optional<std::string> TraceRecorder::well_formed_error(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint32_t, std::vector<const TraceEvent*>> stacks;  // per tid
  std::map<std::uint32_t, double> last_ts;
  std::map<std::tuple<std::string, std::string, std::uint64_t>, int> async_open;
  for (const TraceEvent& e : events) {
    auto ts_it = last_ts.find(e.tid);
    if (ts_it != last_ts.end() && e.ts_us < ts_it->second)
      return "timestamp regression on tid " + std::to_string(e.tid) + " at " +
             e.name;
    last_ts[e.tid] = e.ts_us;
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        stacks[e.tid].push_back(&e);
        break;
      case TraceEvent::Phase::kEnd: {
        auto& stack = stacks[e.tid];
        if (stack.empty())
          return "E without matching B: " + e.category + "/" + e.name;
        const TraceEvent* open = stack.back();
        if (open->name != e.name || open->category != e.category)
          return "mismatched span nesting: B " + open->category + "/" +
                 open->name + " closed by E " + e.category + "/" + e.name;
        stack.pop_back();
        break;
      }
      case TraceEvent::Phase::kAsyncBegin:
        ++async_open[{e.category, e.name, e.id}];
        break;
      case TraceEvent::Phase::kAsyncEnd: {
        auto it = async_open.find({e.category, e.name, e.id});
        if (it == async_open.end() || it->second == 0)
          return "async end without begin: " + e.category + "/" + e.name +
                 " id " + std::to_string(e.id);
        --it->second;
        break;
      }
      case TraceEvent::Phase::kInstant:
      case TraceEvent::Phase::kCounter:
        break;
    }
  }
  for (const auto& [tid, stack] : stacks)
    if (!stack.empty())
      return "unclosed span on tid " + std::to_string(tid) + ": " +
             stack.back()->category + "/" + stack.back()->name;
  for (const auto& [key, open] : async_open)
    if (open != 0)
      return "unclosed async span: " + std::get<0>(key) + "/" +
             std::get<1>(key) + " id " + std::to_string(std::get<2>(key));
  return std::nullopt;
}

std::optional<std::string> TraceRecorder::well_formed_error() const {
  return well_formed_error(events());
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::size_t TraceRecorder::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace acme::obs
