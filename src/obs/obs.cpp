#include "obs/obs.h"

namespace acme::obs {

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  // Intentionally leaked: instrumentation sites cache references in
  // function-local statics and may fire during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

TraceRecorder& tracer() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void reset() {
  metrics().reset();
  tracer().clear();
}

}  // namespace acme::obs
