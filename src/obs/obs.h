// acme::obs — self-observability for the simulator (DESIGN.md §8).
//
// One include gives instrumentation sites everything they need:
//
//   if (acme::obs::enabled()) { ... }             // runtime toggle, one
//                                                 // relaxed atomic load
//   ACME_OBS_SPAN("sched", "replay");             // RAII B/E trace span
//   ACME_OBS_SPAN_ARG("ckpt", "persist", "step", std::to_string(step));
//   obs::metrics().counter(...).inc();            // global registry
//   obs::tracer().async_begin("evalsched", "trial", id);
//
// Disabled (the default) every hook is a single predictable branch; the
// acceptance bar is <2% overhead on the event-dispatch micro-benchmark.
// Defining ACME_OBS_COMPILED_OUT at build time additionally lets the
// compiler fold obs::enabled() to false and dead-strip the hooks entirely.
//
// This layer observes the *program* (where wall-clock time and events go
// while simulating); acme::telemetry models the *cluster's* monitors
// (DCGM/IPMI signals of the simulated datacenter). Keep them separate.
#pragma once

#include <atomic>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace acme::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() {
#ifdef ACME_OBS_COMPILED_OUT
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

void set_enabled(bool on);

// Process-wide registry and recorder. Never destroyed: instrumentation sites
// cache references in function-local statics, which must outlive every
// consumer including static destructors.
MetricsRegistry& metrics();
TraceRecorder& tracer();

// Zeroes every metric and clears the trace buffer (registrations and cached
// handles stay valid). Tests use this between golden runs.
void reset();

// RAII scoped span: emits a B event at construction and the matching E at
// destruction. Captures the enabled state at entry so a mid-span toggle
// cannot unbalance the trace.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name)
      : category_(category), name_(name), active_(enabled()) {
    if (active_) tracer().begin(category_, name_);
  }
  ScopedSpan(const char* category, const char* name, const char* arg_key,
             std::string arg_value)
      : category_(category), name_(name), active_(enabled()) {
    if (active_) tracer().begin(category_, name_, {{arg_key, std::move(arg_value)}});
  }
  ~ScopedSpan() {
    if (active_) tracer().end(category_, name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_;
  const char* name_;
  bool active_;
};

}  // namespace acme::obs

#define ACME_OBS_CONCAT_IMPL(a, b) a##b
#define ACME_OBS_CONCAT(a, b) ACME_OBS_CONCAT_IMPL(a, b)

// Scoped profiling span covering the rest of the enclosing block.
#define ACME_OBS_SPAN(category, name) \
  ::acme::obs::ScopedSpan ACME_OBS_CONCAT(acme_obs_span_, __LINE__)(category, name)
// Same, with one key/value argument shown in the trace viewer.
#define ACME_OBS_SPAN_ARG(category, name, key, value)                 \
  ::acme::obs::ScopedSpan ACME_OBS_CONCAT(acme_obs_span_, __LINE__)(  \
      category, name, key, value)
