// Self-observability metrics for the simulator itself (DESIGN.md §8).
//
// A small Prometheus-flavoured registry: counters, gauges and fixed-bucket
// histograms with text exposition and a JSON snapshot writer. This observes
// the *program* — event-dispatch rates, queue depths, placement decisions —
// and is deliberately distinct from acme::telemetry, which models the
// *cluster's* monitoring stack (DCGM/IPMI/Prometheus signals of the simulated
// datacenter).
//
// Determinism contract: snapshots must be byte-identical across runs and
// across mc thread counts (tests/test_obs.cpp pins this). Counters and
// histogram bucket counts are integer atomics, whose concurrent increments
// commute; histogram sums are accumulated in fixed-point microunits (int64)
// for the same reason — floating-point addition does not commute, a
// fixed-point sum does. Gauges are last-write-wins and therefore must only be
// set from deterministic (single-threaded) contexts.
//
// Instrumentation points cache the returned references in function-local
// statics; the registry never destroys a registered metric, so the handles
// stay valid for the life of the process (reset() zeroes values in place).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace acme::obs {

// Fixed label set attached to a metric at registration; part of its identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotone integer counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins double. Only set gauges from single-threaded contexts if
// the snapshot must stay deterministic (see the contract above).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over a fixed bucket layout (upper bounds, ascending; an implicit
// +Inf bucket is appended). Observation is two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  // Cumulative count of observations <= upper_bounds()[i] (Prometheus `le`
  // semantics); index upper_bounds().size() is the +Inf bucket == count().
  std::uint64_t cumulative(std::size_t bucket) const;
  std::uint64_t count() const;
  // Sum of observed values, rounded per observation to 1e-6 (the fixed-point
  // accumulation grain).
  double sum() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  void reset();

  // Standard layouts: `count` buckets starting at `start`, multiplied by
  // `factor` (exponential) or advanced by `width` (linear).
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 int count);
  static std::vector<double> linear_buckets(double start, double width, int count);

 private:
  std::vector<double> bounds_;
  // counts_[i] is the per-bucket (non-cumulative) count; size bounds+1.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::int64_t> sum_micro_{0};
};

// One exposition line parsed back from Prometheus text format.
struct PromSample {
  std::string name;    // metric name including any _bucket/_sum/_count suffix
  Labels labels;
  double value = 0;
};

// Parses Prometheus text exposition (as produced by MetricsRegistry). Returns
// nullopt and fills `error` on malformed input. Comment lines are skipped.
std::optional<std::vector<PromSample>> parse_prometheus(const std::string& text,
                                                        std::string* error = nullptr);

class MetricsRegistry {
 public:
  // Registration is idempotent: the same (name, labels) returns the same
  // object. Registering the same identity as a different metric kind (or a
  // histogram with a different bucket layout) throws CheckError.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds, const Labels& labels = {});

  // Prometheus text exposition, metrics sorted by (name, labels) so the bytes
  // are a deterministic function of the recorded values.
  std::string prometheus_text() const;
  // JSON snapshot with the same ordering guarantee.
  std::string json_snapshot() const;
  bool write_prometheus(const std::string& path) const;
  bool write_json(const std::string& path) const;

  // Zeroes every registered metric in place; handles stay valid.
  void reset();
  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, Kind kind);

  mutable std::mutex mu_;
  // Keyed by name + serialized labels; ordered so exposition is sorted.
  std::map<std::string, Entry> entries_;
};

}  // namespace acme::obs
