#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace acme::obs {

namespace {

constexpr double kSumGrain = 1e6;  // fixed-point microunits per unit

// Escapes a HELP string: backslash and newline (Prometheus text format §help).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

// Escapes a label value: backslash, double-quote and newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

// Shortest round-trippable decimal form: lowest %g precision whose strtod
// recovers the exact bits. Keeps bucket bounds readable (le="0.1", not
// le="0.10000000000000001") while the bytes stay a pure function of the bits.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + escape_label(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// `le` bucket block: existing labels plus the bound.
std::string bucket_block(const Labels& labels, double bound) {
  std::string le = std::isinf(bound) ? "+Inf" : format_value(bound);
  std::string out = "{";
  for (const auto& [k, v] : labels) out += k + "=\"" + escape_label(v) + "\",";
  out += "le=\"" + le + "\"}";
  return out;
}

std::string identity_key(const std::string& name, const Labels& labels) {
  return name + label_block(labels);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  ACME_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  sum_micro_.fetch_add(std::llround(value * kSumGrain),
                       std::memory_order_relaxed);
}

std::uint64_t Histogram::cumulative(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bucket && i < counts_.size(); ++i)
    total += counts_[i].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::count() const { return cumulative(counts_.size() - 1); }

double Histogram::sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) /
         kSumGrain;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_buckets(double start, double factor,
                                                   int count) {
  ACME_CHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i, bound *= factor) out.push_back(bound);
  return out;
}

std::vector<double> Histogram::linear_buckets(double start, double width,
                                              int count) {
  ACME_CHECK(width > 0 && count > 0);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(start + width * i);
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        const std::string& help,
                                                        const Labels& labels,
                                                        Kind kind) {
  const std::string key = identity_key(name, labels);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (inserted) {
    e.name = name;
    e.help = help;
    e.labels = labels;
    e.kind = kind;
  } else {
    ACME_CHECK_MSG(e.kind == kind, "metric re-registered as a different kind");
  }
  return e;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = find_or_create(name, help, labels, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = find_or_create(name, help, labels, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = find_or_create(name, help, labels, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    ACME_CHECK_MSG(e.histogram->upper_bounds() == upper_bounds,
                   "histogram re-registered with a different bucket layout");
  }
  return *e.histogram;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  std::string last_name;  // HELP/TYPE emitted once per metric family
  for (const auto& [key, e] : entries_) {
    if (e.name != last_name) {
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      out << "# HELP " << e.name << " " << escape_help(e.help) << "\n";
      out << "# TYPE " << e.name << " " << type << "\n";
      last_name = e.name;
    }
    switch (e.kind) {
      case Kind::kCounter:
        out << e.name << label_block(e.labels) << " " << e.counter->value()
            << "\n";
        break;
      case Kind::kGauge:
        out << e.name << label_block(e.labels) << " "
            << format_value(e.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        const auto& bounds = h.upper_bounds();
        for (std::size_t i = 0; i < bounds.size(); ++i)
          out << e.name << "_bucket" << bucket_block(e.labels, bounds[i]) << " "
              << h.cumulative(i) << "\n";
        out << e.name << "_bucket"
            << bucket_block(e.labels, std::numeric_limits<double>::infinity())
            << " " << h.count() << "\n";
        out << e.name << "_sum" << label_block(e.labels) << " "
            << format_value(h.sum()) << "\n";
        out << e.name << "_count" << label_block(e.labels) << " " << h.count()
            << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::json_snapshot() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << e.name << "\"";
    if (!e.labels.empty()) {
      out << ", \"labels\": {";
      for (std::size_t i = 0; i < e.labels.size(); ++i) {
        if (i) out << ", ";
        out << "\"" << e.labels[i].first << "\": \""
            << escape_label(e.labels[i].second) << "\"";
      }
      out << "}";
    }
    switch (e.kind) {
      case Kind::kCounter:
        out << ", \"type\": \"counter\", \"value\": " << e.counter->value();
        break;
      case Kind::kGauge:
        out << ", \"type\": \"gauge\", \"value\": "
            << format_value(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        out << ", \"type\": \"histogram\", \"count\": " << h.count()
            << ", \"sum\": " << format_value(h.sum()) << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          if (i) out << ", ";
          out << "{\"le\": " << format_value(h.upper_bounds()[i])
              << ", \"cumulative\": " << h.cumulative(i) << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

namespace {
bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "[obs] cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return out.good();
}
}  // namespace

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  return write_text(path, prometheus_text());
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_text(path, json_snapshot());
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [key, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::optional<std::vector<PromSample>> parse_prometheus(const std::string& text,
                                                        std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<std::vector<PromSample>> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::vector<PromSample> samples;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    PromSample sample;
    std::size_t pos = 0;
    while (pos < line.size() && (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                                 line[pos] == '_' || line[pos] == ':'))
      ++pos;
    if (pos == 0) return fail("line " + std::to_string(lineno) + ": no metric name");
    sample.name = line.substr(0, pos);
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= line.size() || line[eq + 1] != '"')
          return fail("line " + std::to_string(lineno) + ": malformed label");
        std::string key = line.substr(pos, eq - pos);
        std::string value;
        std::size_t i = eq + 2;  // past the opening quote
        for (; i < line.size() && line[i] != '"'; ++i) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;
            if (line[i] == 'n') value += '\n';
            else value += line[i];  // \" and \\ unescape to the raw char
          } else {
            value += line[i];
          }
        }
        if (i >= line.size())
          return fail("line " + std::to_string(lineno) + ": unterminated label value");
        sample.labels.emplace_back(std::move(key), std::move(value));
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size())
        return fail("line " + std::to_string(lineno) + ": unterminated label block");
      ++pos;  // past '}'
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size())
      return fail("line " + std::to_string(lineno) + ": missing value");
    const std::string value_str = line.substr(pos);
    if (value_str == "+Inf") sample.value = std::numeric_limits<double>::infinity();
    else if (value_str == "-Inf") sample.value = -std::numeric_limits<double>::infinity();
    else if (value_str == "NaN") sample.value = std::nan("");
    else {
      char* end = nullptr;
      sample.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str() || *end != '\0')
        return fail("line " + std::to_string(lineno) + ": bad value '" + value_str + "'");
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace acme::obs
