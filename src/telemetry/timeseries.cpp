#include "telemetry/timeseries.h"

#include <algorithm>

#include "common/check.h"

namespace acme::telemetry {

void TimeSeries::append(double time, double value) {
  ACME_CHECK_MSG(points_.empty() || time >= points_.back().time,
                 "time series must be appended in order");
  points_.push_back({time, value});
}

double TimeSeries::at(double time) const {
  if (points_.empty() || time < points_.front().time) return 0.0;
  auto it = std::upper_bound(points_.begin(), points_.end(), time,
                             [](double t, const Point& p) { return t < p.time; });
  return std::prev(it)->value;
}

double TimeSeries::mean_over(double t0, double t1) const {
  if (points_.empty() || !(t1 > t0)) return 0.0;
  double acc = 0.0;
  double prev_t = t0;
  double prev_v = at(t0);
  for (const auto& p : points_) {
    if (p.time <= t0) continue;
    if (p.time >= t1) break;
    acc += prev_v * (p.time - prev_t);
    prev_t = p.time;
    prev_v = p.value;
  }
  acc += prev_v * (t1 - prev_t);
  return acc / (t1 - t0);
}

common::SampleStats TimeSeries::values() const {
  common::SampleStats s;
  for (const auto& p : points_) s.add(p.value);
  return s;
}

TimeSeries& MetricStore::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) it = series_.emplace(name, TimeSeries(name)).first;
  return it->second;
}

const TimeSeries* MetricStore::find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ts] : series_) out.push_back(name);
  return out;
}

}  // namespace acme::telemetry
