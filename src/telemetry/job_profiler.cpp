#include "telemetry/job_profiler.h"

#include <fstream>

#include "common/check.h"
#include "common/csv.h"

namespace acme::telemetry {

JobProfiler::JobProfiler(JobProfilerOptions options) : options_(options) {
  ACME_CHECK(options_.sample_interval > 0);
}

std::size_t JobProfiler::profile(const parallel::StepTimeline& timeline,
                                 const std::string& prefix,
                                 MetricStore& store) const {
  const double horizon =
      options_.horizon > 0 ? options_.horizon : 2.0 * timeline.step_time();
  common::Rng rng(options_.seed);
  const auto samples = timeline.sample(options_.sample_interval, horizon, rng);

  auto& sm = store.series(prefix + ".sm_activity");
  auto& power = store.series(prefix + ".power_w");
  cluster::GpuPowerModel power_model;
  common::Rng power_rng = rng.fork("power");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = static_cast<double>(i) * options_.sample_interval;
    sm.append(t, samples[i]);
    power.append(t, power_model.power_w(samples[i] * 2.0,
                                        options_.memory_fraction, power_rng));
  }
  return samples.size();
}

void write_csv(std::ostream& out, const MetricStore& store) {
  common::CsvWriter writer(out);
  writer.write_row({"series", "time", "value"});
  for (const auto& name : store.names()) {
    const TimeSeries* series = store.find(name);
    for (const auto& point : series->points())
      writer.write_row({name, std::to_string(point.time),
                        std::to_string(point.value)});
  }
}

void write_csv_file(const std::string& path, const MetricStore& store) {
  std::ofstream out(path);
  ACME_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_csv(out, store);
}

}  // namespace acme::telemetry
