// Per-job fine-grained profiling (paper §2.3 "Profiling Data": DCGM counters
// at 1 ms for representative jobs). Records a step timeline's SM-activity
// samples — plus derived power draw — into a MetricStore, and exports stores
// to CSV for offline plotting.
#pragma once

#include <iosfwd>
#include <string>

#include "cluster/power.h"
#include "common/rng.h"
#include "parallel/schedule.h"
#include "telemetry/timeseries.h"

namespace acme::telemetry {

struct JobProfilerOptions {
  double sample_interval = 0.001;  // 1 ms DCGM cadence
  double horizon = 0;              // 0 => two full steps
  double memory_fraction = 0.8;    // GPU memory footprint during the job
  std::uint64_t seed = 7;
};

class JobProfiler {
 public:
  explicit JobProfiler(JobProfilerOptions options = JobProfilerOptions());

  // Samples `timeline` and appends series into `store` under
  // `<prefix>.sm_activity` and `<prefix>.power_w`. Returns number of samples.
  std::size_t profile(const parallel::StepTimeline& timeline,
                      const std::string& prefix, MetricStore& store) const;

 private:
  JobProfilerOptions options_;
};

// Exports every series in the store as long-format CSV:
//   series,time,value
void write_csv(std::ostream& out, const MetricStore& store);
void write_csv_file(const std::string& path, const MetricStore& store);

}  // namespace acme::telemetry
