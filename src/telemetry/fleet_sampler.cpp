#include "telemetry/fleet_sampler.h"

#include <algorithm>
#include <cmath>

#include "comm/collective.h"
#include "common/check.h"
#include "common/units.h"
#include "parallel/schedule.h"

namespace acme::telemetry {

using trace::WorkloadType;

namespace {

// Bucketed gradient sync overlaps with the backward pass, so the NICs are
// live during roughly this share of a pretraining step (the rest is forward
// compute, NVLink-only tensor-parallel traffic, and the optimizer).
constexpr double kGradSyncSpanFraction = 0.45;
// Share of SFT / debug jobs large enough to span nodes at all; the rest fit
// inside one NVLink island and never touch IB (Fig 9: most non-pretrain jobs
// are single-node).
constexpr double kMultiNodeSftShare = 0.15;
constexpr double kMultiNodeDebugShare = 0.05;

}  // namespace

FleetSampler::FleetSampler(FleetSamplerConfig config)
    : config_(std::move(config)),
      gpu_power_(cluster::GpuSpec{}),
      server_power_(config_.spec.node) {
  ACME_CHECK(config_.busy_fraction >= 0 && config_.busy_fraction <= 1);
  for (const auto& [type, weight] : config_.gputime_mix) {
    mix_types_.push_back(type);
    mix_weights_.push_back(weight);
  }
  ACME_CHECK_MSG(!mix_types_.empty(), "empty workload mix");

  // Derive per-type IB counter profiles from the fabric's collective costs,
  // anchored on the flagship 3D-parallel pretraining job: each node carries
  // gpus_per_node co-resident gradient rings, so its per-step IB volume is
  // the per-rank ring traffic times the node's GPU count, spread over the
  // backward span of the step.
  const comm::FabricConfig fabric = comm::fabric_from_cluster(config_.spec);
  parallel::PretrainExecutionModel exec(parallel::llm_123b(), fabric);
  const parallel::ThreeDConfig flagship;
  const double step = exec.step_3d(flagship).step_time();
  const int dp = flagship.data_parallel();
  const double grad_bytes =
      2.0 * exec.config().params() /
      (flagship.tensor_parallel * flagship.pipeline_parallel);
  const double ring_bytes = 2.0 * (dp - 1) / dp * grad_bytes;  // per rank
  const double per_node_bytes = config_.spec.node.gpus * ring_bytes;
  const double raw_line = common::gbps_to_Bps(config_.spec.node.nic_gbps) *
                          config_.spec.node.compute_nics;
  // Counters can never read above what collectives actually sustain.
  const double peak_frac = exec.collectives().topology().node_nic_bytes_per_sec(0) /
                           raw_line;
  IbProfile pretrain;
  pretrain.duty = kGradSyncSpanFraction;
  pretrain.level =
      std::min(per_node_bytes / (step * raw_line) / pretrain.duty, peak_frac);
  pretrain.sd = pretrain.level / 3.0;
  ib_profiles_[WorkloadType::kPretrain] = pretrain;
  ib_profiles_[WorkloadType::kMLLM] = pretrain;
  // The multi-node minority of SFT / debug jobs runs the same collective
  // pattern at smaller scale; evaluation loads models through the storage
  // path and leaves the compute IB quiet.
  IbProfile sft = pretrain;
  sft.duty = pretrain.duty * kMultiNodeSftShare;
  ib_profiles_[WorkloadType::kSFT] = sft;
  IbProfile debug = pretrain;
  debug.duty = pretrain.duty * kMultiNodeDebugShare;
  debug.level = pretrain.level * 0.5;
  debug.sd = debug.level / 3.0;
  ib_profiles_[WorkloadType::kDebug] = debug;
  ib_profiles_[WorkloadType::kOther] = debug;
}

FleetSampler::IbProfile FleetSampler::ib_profile(WorkloadType type) const {
  const auto it = ib_profiles_.find(type);
  return it == ib_profiles_.end() ? IbProfile{} : it->second;
}

FleetSampler::GpuObservation FleetSampler::observe_gpu(WorkloadType type,
                                                       common::Rng& rng) const {
  GpuObservation o{};
  switch (type) {
    case WorkloadType::kPretrain:
    case WorkloadType::kMLLM:
      // Transformer pretraining saturates the coarse utilization counter
      // while the finer SM activity hovers near 40% (compute/communication
      // interleave); HBM is nearly full (ZeRO states + activations).
      o.util = std::clamp(rng.normal(99.0, 1.5), 80.0, 100.0);
      o.sm = std::clamp(rng.normal(0.42, 0.14), 0.05, 1.0);
      o.tc = std::clamp(o.sm * rng.uniform(0.55, 0.85), 0.0, 1.0);
      o.mem_gb = std::clamp(rng.normal(61.0, 9.0), 20.0, 79.5);
      break;
    case WorkloadType::kSFT:
      o.util = std::clamp(rng.normal(97.0, 4.0), 40.0, 100.0);
      o.sm = std::clamp(rng.normal(0.38, 0.12), 0.05, 1.0);
      o.tc = std::clamp(o.sm * rng.uniform(0.5, 0.8), 0.0, 1.0);
      o.mem_gb = std::clamp(rng.normal(55.0, 12.0), 10.0, 79.5);
      break;
    case WorkloadType::kEvaluation:
      // Inference alternates between generation bursts and idle phases
      // (model loading, metric computation — Fig 13), so samples land on
      // either side.
      if (rng.bernoulli(0.48)) {
        o.util = std::clamp(rng.normal(95.0, 6.0), 30.0, 100.0);
        o.sm = std::clamp(rng.normal(0.30, 0.10), 0.03, 1.0);
      } else {
        o.util = std::clamp(rng.normal(4.0, 4.0), 0.0, 25.0);
        o.sm = std::clamp(rng.normal(0.02, 0.02), 0.0, 0.2);
      }
      o.tc = std::clamp(o.sm * rng.uniform(0.4, 0.7), 0.0, 1.0);
      o.mem_gb = std::clamp(rng.normal(28.0, 14.0), 2.0, 79.5);
      break;
    case WorkloadType::kDebug:
    case WorkloadType::kOther:
      o.util = rng.bernoulli(0.6) ? std::clamp(rng.normal(90.0, 15.0), 0.0, 100.0)
                                  : std::clamp(rng.normal(15.0, 15.0), 0.0, 100.0);
      o.sm = std::clamp(rng.normal(0.25, 0.15), 0.0, 1.0);
      o.tc = std::clamp(o.sm * rng.uniform(0.3, 0.7), 0.0, 1.0);
      o.mem_gb = std::clamp(rng.normal(35.0, 20.0), 1.0, 79.5);
      break;
  }
  return o;
}

FleetMetrics FleetSampler::sample(std::size_t n, common::Rng& rng) const {
  FleetMetrics m;
  const auto& node = config_.spec.node;
  for (std::size_t i = 0; i < n; ++i) {
    // Occupancy at this observation: diurnal-ish jitter around the mean.
    const double occ =
        config_.busy_fraction <= 0.0
            ? 0.0
            : std::clamp(config_.busy_fraction + rng.normal(0.0, 0.08), 0.0, 1.0);
    const bool busy = rng.bernoulli(occ);

    GpuObservation o{};
    WorkloadType type = WorkloadType::kOther;
    if (busy) {
      type = mix_types_[rng.categorical(mix_weights_)];
      o = observe_gpu(type, rng);
    } else {
      o.util = rng.bernoulli(0.9) ? 0.0 : rng.uniform(0.0, 3.0);
      o.sm = 0.0;
      o.tc = 0.0;
      o.mem_gb = rng.uniform(0.0, 1.5);
    }
    m.gpu_util.add(o.util);
    m.sm_activity.add(o.sm);
    m.tc_activity.add(o.tc);
    m.gpu_mem_gb.add(o.mem_gb);

    const double power = gpu_power_.power_w(o.sm * (o.util / 100.0) * 2.0,
                                            o.mem_gb / 80.0, rng);
    m.gpu_power_w.add(power);
    const double core = thermal_.core_temp_c(power, config_.ambient_temp_c, rng);
    m.gpu_core_temp_c.add(core);
    m.gpu_mem_temp_c.add(thermal_.mem_temp_c(core, rng));

    // Node-level metrics, sampled at the same cadence (one per observation).
    // Host memory: dataloaders + file-system cache + checkpoints stay well
    // under 50% even on busy pretraining nodes (Fig 7b, Fig 18).
    const double node_busy_gpus = occ * node.gpus;
    double host_mem_gb =
        20.0 + node_busy_gpus * rng.uniform(8.0, 22.0) + std::max(0.0, rng.normal(20, 15));
    m.host_mem_frac.add(std::clamp(host_mem_gb / node.host_memory_gb, 0.0, 1.0));
    // CPUs: 16 CPUs per GPU, mostly idle dataloader workers.
    const double cpu_util =
        std::clamp(0.01 + 0.08 * occ * rng.uniform(0.3, 1.6), 0.0, 1.0);
    m.cpu_util.add(cpu_util);
    // IB: per-type collective traffic profile (idle >60% of the time;
    // bursts rarely exceed 25% of line rate). Send/recv overlap because
    // ring collectives are symmetric.
    double ib = 0.0;
    if (busy) {
      const IbProfile prof = ib_profile(type);
      if (prof.duty > 0 && rng.bernoulli(prof.duty))
        ib = std::clamp(rng.normal(prof.level, prof.sd), 0.0, 0.45);
    }
    m.ib_send_frac.add(ib);
    m.ib_recv_frac.add(std::clamp(ib + rng.normal(0.0, 0.004), 0.0, 1.0));

    // Server power: 8 GPUs at correlated load.
    double gpus_w = 0.0;
    for (int g = 0; g < node.gpus; ++g) {
      if (rng.bernoulli(occ)) {
        auto go = observe_gpu(type, rng);
        gpus_w += gpu_power_.power_w(go.sm * (go.util / 100.0) * 2.0,
                                     go.mem_gb / 80.0, rng);
      } else {
        gpus_w += gpu_power_.power_w(0.0, 0.01, rng);
      }
    }
    m.server_power_w.add(server_power_.gpu_server(gpus_w, cpu_util).total());
  }
  return m;
}

}  // namespace acme::telemetry
