// Fleet-level monitor sampling (paper Fig 2b, Fig 7, Fig 8, Fig 9, Fig 21).
//
// Models what DCGM / Prometheus / IPMI observe across the cluster: for each
// (time, GPU) observation, the GPU is either idle or running a job of some
// workload type; per-type signal models then produce SM/TC activity, memory
// footprints, coarse GPU utilization, power and temperature. Calibration
// targets are listed in DESIGN.md §4 (median SM activity ~40%, polarized GPU
// utilization, Kalos median GPU memory 60 GB/75%, CPUs and IB underutilized,
// 30% of GPUs idle at 60 W, TDP excursions, HBM hotter than core).
#pragma once

#include <map>

#include "cluster/power.h"
#include "cluster/spec.h"
#include "common/rng.h"
#include "common/stats.h"
#include "trace/job.h"

namespace acme::telemetry {

struct FleetMetrics {
  common::SampleStats gpu_util;        // coarse NVML-style utilization, 0..100
  common::SampleStats sm_activity;     // DCGM PROF_SM_ACTIVE, 0..1
  common::SampleStats tc_activity;     // DCGM PROF_PIPE_TENSOR_ACTIVE, 0..1
  common::SampleStats gpu_mem_gb;      // DCGM DEV_FB_USED
  common::SampleStats host_mem_frac;   // host memory utilization, 0..1
  common::SampleStats cpu_util;        // 0..1
  common::SampleStats ib_send_frac;    // of peak NIC bandwidth, 0..1
  common::SampleStats ib_recv_frac;
  common::SampleStats gpu_power_w;
  common::SampleStats server_power_w;
  common::SampleStats gpu_core_temp_c;
  common::SampleStats gpu_mem_temp_c;
};

struct FleetSamplerConfig {
  cluster::ClusterSpec spec;
  // Fraction of GPUs busy (time-averaged occupancy from the scheduler
  // replay); per-sample occupancy jitters around this.
  double busy_fraction = 0.8;
  // GPU-time mix across workload types: what a busy GPU is running.
  std::map<trace::WorkloadType, double> gputime_mix;
  double ambient_temp_c = 32.0;  // warm server room (paper §5.2, July 2023)
};

class FleetSampler {
 public:
  explicit FleetSampler(FleetSamplerConfig config);

  // Draws n (time, GPU) observations and accumulates every monitor metric.
  FleetMetrics sample(std::size_t n, common::Rng& rng) const;

 private:
  struct GpuObservation {
    double util;     // 0..100
    double sm;       // 0..1
    double tc;       // 0..1
    double mem_gb;
  };
  // What a node's IB counters show for a GPU running workload `type`:
  // duty is the probability an observation lands inside a collective burst,
  // level the mean fraction of the raw NIC line rate while bursting. Both
  // are derived from comm::CollectiveModel traffic in the constructor.
  struct IbProfile {
    double duty = 0;
    double level = 0;
    double sd = 0.01;
  };
  GpuObservation observe_gpu(trace::WorkloadType type, common::Rng& rng) const;
  IbProfile ib_profile(trace::WorkloadType type) const;

  FleetSamplerConfig config_;
  std::map<trace::WorkloadType, IbProfile> ib_profiles_;
  std::vector<trace::WorkloadType> mix_types_;
  std::vector<double> mix_weights_;
  cluster::GpuPowerModel gpu_power_;
  cluster::GpuThermalModel thermal_;
  cluster::ServerPowerModel server_power_;
};

}  // namespace acme::telemetry
