// Prometheus-like time-series store (paper §2.3: hardware monitor data is
// collected into Prometheus at a 15 s sampling interval; DCGM profiling runs
// at 1 ms for selected jobs).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace acme::telemetry {

struct Point {
  double time;
  double value;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void append(double time, double value);
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::vector<Point>& points() const { return points_; }

  // Value at or before `time` (steps hold); 0 if none.
  double at(double time) const;
  // Mean over [t0, t1] assuming step interpolation.
  double mean_over(double t0, double t1) const;
  common::SampleStats values() const;

 private:
  std::string name_;
  std::vector<Point> points_;  // strictly increasing time
};

class MetricStore {
 public:
  TimeSeries& series(const std::string& name);
  const TimeSeries* find(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace acme::telemetry
