// Work-stealing task runtime — the execution substrate for parallelizing a
// SINGLE replay (sim::WindowRunner), as opposed to acme::mc::ThreadPool which
// parallelizes across independent Monte Carlo replicas.
//
// Shape (marl-style, scaled to this codebase's needs):
//  - a fixed pool of worker threads, each owning a ring deque of tasks;
//  - owners pop LIFO from the back (cache-warm continuation order), thieves
//    steal HALF the victim's queue from the front (oldest first), so one
//    imbalanced spawn burst redistributes in O(log n) steals instead of one
//    task per steal;
//  - tasks are common::InlineFn closures stored inline in the rings — after
//    Pool::reserve() the steady-state spawn/run cycle performs no heap
//    allocation, which is what lets bench_parallel_replay keep the measured
//    drain at 0 allocations with --workers 8;
//  - a WaitGroup is the deterministic barrier: the window runtime spawns one
//    task per partition, waits, and only then merges commits, so merge order
//    never depends on execution interleaving.
//
// Determinism contract: the POOL is not deterministic (steal order races);
// everything built on it must derive its outputs from task RESULTS combined
// in a canonical order after a WaitGroup barrier, never from completion
// order. sim::WindowRunner's (time, partition, seq) merge is the canonical
// example and test_determinism pins the resulting digests at every worker
// count.
//
// Exceptions: every task is spawned against a WaitGroup; a throwing task is
// captured into the group (first error wins) and rethrown from wait() on the
// coordinating thread, after the barrier — so a mid-window ACME_CHECK
// failure in one partition surfaces exactly like it does serially.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/inline_fn.h"

namespace acme::task {

// 56 bytes of capture + the two InlineFn pointers = 72-byte task slots. The
// budget covers the WaitGroup wrapper (one pointer) plus a typical window
// closure (partition pointer, horizon, a couple of indices) with room to
// spare; outgrowing it is a compile error at the spawn site.
inline constexpr std::size_t kTaskCaptureBytes = 56;
using Task = common::InlineFn<kTaskCaptureBytes>;

// Completion barrier with exception transport. add() before (or at) spawn,
// done() exactly once per task, wait() blocks until the count returns to
// zero and rethrows the first captured task exception.
class WaitGroup {
 public:
  WaitGroup() = default;
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::size_t n = 1) {
    std::lock_guard<std::mutex> g(mu_);
    count_ += n;
  }

  void done() {
    // Notify while still holding mu_: the groups are stack-local in their
    // waiters (WindowRunner::run, parallel_for), so the waiter may destroy
    // the group the instant wait()'s predicate turns true. Keeping the
    // notify inside the lock means wait() cannot observe count_ == 0 until
    // this thread is past every touch of the group's members.
    std::lock_guard<std::mutex> g(mu_);
    ACME_CHECK_MSG(count_ > 0, "WaitGroup::done without a matching add");
    if (--count_ == 0) cv_.notify_all();
  }

  // Stashes std::current_exception() (first one wins). Called from inside a
  // task's catch block, before done().
  void capture_current_exception() {
    std::lock_guard<std::mutex> g(mu_);
    if (!error_) error_ = std::current_exception();
  }

  // Blocks until the count reaches zero, then rethrows the first captured
  // task exception (clearing it, so the group is reusable after a failure).
  void wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return count_ == 0; });
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      lk.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
  std::exception_ptr error_;
};

class Pool {
 public:
  // workers == 0 picks std::thread::hardware_concurrency() (min 1). The pool
  // always spawns exactly `workers` threads; the coordinating thread does not
  // execute tasks (it blocks in WaitGroup::wait), so workers == N means N
  // concurrent partitions. More workers than cores is legal — the
  // determinism tests run workers=8 on any box — it just oversubscribes.
  explicit Pool(std::size_t workers = 0);
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  // Joins the workers. The pool must be quiescent (every spawned task waited
  // on) — leftover tasks are still drained, but submitting concurrently with
  // destruction is a caller bug.
  ~Pool();

  std::size_t size() const { return workers_.size(); }

  // Pre-grows every worker's ring to hold `tasks_per_worker` tasks so the
  // steady-state spawn path never allocates. Call before the measured
  // region; growing later still works, it just mallocs once per doubling.
  void reserve(std::size_t tasks_per_worker);

  // Spawns fn on the deque of worker `hint % size()` (callers round-robin
  // their own counter for deterministic placement), tied to `wg`: add(1) now,
  // exceptions captured into the group, done() when the task finishes.
  template <typename F>
  void spawn(WaitGroup& wg, std::size_t hint, F&& fn) {
    wg.add(1);
    WaitGroup* group = &wg;
    Task t([group, f = std::forward<F>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        group->capture_current_exception();
      }
      group->done();
    });
    enqueue(std::move(t), hint);
  }

  // Runs fn(i) for every i in [0, n) in contiguous chunks of `grain`
  // indices, blocking until all of them finish; rethrows the first task
  // exception. Must not be called from inside a pool task (the caller
  // blocks; a worker blocking on its own pool can deadlock).
  template <typename F>
  void parallel_for(std::size_t n, std::size_t grain, F&& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    WaitGroup wg;
    const F* body = &fn;  // caller blocks below, so the reference outlives
    std::size_t chunk = 0;
    for (std::size_t begin = 0; begin < n; begin += grain, ++chunk) {
      const std::size_t end = std::min(begin + grain, n);
      spawn(wg, chunk, [body, begin, end] {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      });
    }
    wg.wait();
  }

  // Diagnostics (relaxed counters; exact once the pool is quiescent).
  std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  // Per-worker ring deque. All access is under `mu` — with steal-half the
  // lock is taken once per ~batch of tasks, not once per task, so a plain
  // mutex beats a lock-free Chase-Lev deque in both simplicity and TSan
  // auditability at this grain size. head/tail are monotone; ring indices
  // are masked.
  struct alignas(64) Deque {
    std::mutex mu;
    std::vector<Task> ring;  // capacity always a power of two
    std::size_t head = 0;    // next steal slot (oldest task)
    std::size_t tail = 0;    // next push slot
  };

  static constexpr std::size_t kStealBatch = 8;

  void enqueue(Task&& t, std::size_t hint);
  bool try_pop_own(std::size_t self, Task& out);
  bool try_steal(std::size_t self, Task& out);
  void worker_loop(std::size_t self);
  static void grow_locked(Deque& d, std::size_t min_capacity);

  std::vector<Deque> deques_;
  std::vector<std::thread> workers_;

  // Count of queued-but-not-yet-taken tasks; the condvar predicate. Stealing
  // moves tasks between deques without touching it — only taking a task to
  // run decrements — so "pending == 0" exactly means "nothing to pick up".
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool shutdown_ = false;  // guarded by idle_mu_
};

}  // namespace acme::task
