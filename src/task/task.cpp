#include "task/task.h"

#include <algorithm>

namespace acme::task {

Pool::Pool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  deques_ = std::vector<Deque>(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> g(idle_mu_);
    shutdown_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Pool::grow_locked(Deque& d, std::size_t min_capacity) {
  std::size_t cap = std::max<std::size_t>(16, d.ring.size());
  while (cap < min_capacity) cap *= 2;
  if (cap == d.ring.size()) return;
  std::vector<Task> next(cap);
  const std::size_t old_mask = d.ring.size() - 1;
  const std::size_t count = d.tail - d.head;
  for (std::size_t i = 0; i < count; ++i) {
    next[i] = std::move(d.ring[(d.head + i) & old_mask]);
  }
  d.ring = std::move(next);
  d.head = 0;
  d.tail = count;
}

void Pool::reserve(std::size_t tasks_per_worker) {
  for (Deque& d : deques_) {
    std::lock_guard<std::mutex> g(d.mu);
    grow_locked(d, std::max<std::size_t>(1, tasks_per_worker));
  }
}

void Pool::enqueue(Task&& t, std::size_t hint) {
  Deque& d = deques_[hint % deques_.size()];
  {
    std::lock_guard<std::mutex> g(d.mu);
    if (d.ring.empty() || d.tail - d.head == d.ring.size()) {
      grow_locked(d, d.tail - d.head + 1);
    }
    d.ring[d.tail & (d.ring.size() - 1)] = std::move(t);
    ++d.tail;
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section pairs the notify with the predicate re-check in
  // worker_loop: a worker between its pending_ load and its wait() cannot
  // miss this wakeup.
  { std::lock_guard<std::mutex> g(idle_mu_); }
  idle_cv_.notify_one();
}

bool Pool::try_pop_own(std::size_t self, Task& out) {
  Deque& d = deques_[self];
  std::lock_guard<std::mutex> g(d.mu);
  if (d.head == d.tail) return false;
  --d.tail;
  out = std::move(d.ring[d.tail & (d.ring.size() - 1)]);
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool Pool::try_steal(std::size_t self, Task& out) {
  const std::size_t n = deques_.size();
  for (std::size_t i = 1; i < n; ++i) {
    Deque& victim = deques_[(self + i) % n];
    Task batch[kStealBatch];
    std::size_t took = 0;
    {
      std::lock_guard<std::mutex> g(victim.mu);
      const std::size_t avail = victim.tail - victim.head;
      if (avail == 0) continue;
      took = std::min((avail + 1) / 2, kStealBatch);
      const std::size_t mask = victim.ring.size() - 1;
      for (std::size_t j = 0; j < took; ++j) {
        batch[j] = std::move(victim.ring[(victim.head + j) & mask]);
      }
      victim.head += took;
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    // Run the oldest stolen task now; requeue the rest on our own deque
    // (they stay "pending" — only the one we take to run decrements).
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    out = std::move(batch[0]);
    if (took > 1) {
      Deque& own = deques_[self];
      {
        std::lock_guard<std::mutex> g(own.mu);
        if (own.ring.empty() || own.tail - own.head + took - 1 > own.ring.size()) {
          grow_locked(own, own.tail - own.head + took - 1);
        }
        const std::size_t mask = own.ring.size() - 1;
        for (std::size_t j = 1; j < took; ++j) {
          own.ring[own.tail & mask] = std::move(batch[j]);
          ++own.tail;
        }
      }
      // Other sleepers can now steal from us.
      { std::lock_guard<std::mutex> g(idle_mu_); }
      idle_cv_.notify_all();
    }
    return true;
  }
  return false;
}

void Pool::worker_loop(std::size_t self) {
  for (;;) {
    Task t;
    if (try_pop_own(self, t) || try_steal(self, t)) {
      t();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

}  // namespace acme::task
