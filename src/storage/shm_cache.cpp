#include "storage/shm_cache.h"

#include <algorithm>

#include "common/check.h"

namespace acme::storage {

ShmCache::ShmCache(double capacity_gb) : capacity_gb_(capacity_gb) {
  ACME_CHECK(capacity_gb > 0);
}

bool ShmCache::put(cluster::NodeId node, const std::string& artifact, double size_gb) {
  ACME_CHECK(size_gb >= 0);
  if (size_gb > capacity_gb_) return false;
  auto& list = entries_[node];
  for (const auto& e : list)
    if (e.artifact == artifact) return true;
  double used = used_gb(node);
  while (used + size_gb > capacity_gb_ && !list.empty()) {
    used -= list.front().size_gb;
    list.erase(list.begin());
  }
  list.push_back({artifact, size_gb});
  return true;
}

bool ShmCache::contains(cluster::NodeId node, const std::string& artifact) const {
  auto it = entries_.find(node);
  if (it == entries_.end()) return false;
  for (const auto& e : it->second)
    if (e.artifact == artifact) return true;
  return false;
}

void ShmCache::erase(cluster::NodeId node, const std::string& artifact) {
  auto it = entries_.find(node);
  if (it == entries_.end()) return;
  auto& list = it->second;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const Entry& e) { return e.artifact == artifact; }),
             list.end());
}

void ShmCache::clear_node(cluster::NodeId node) { entries_.erase(node); }

double ShmCache::used_gb(cluster::NodeId node) const {
  auto it = entries_.find(node);
  if (it == entries_.end()) return 0;
  double used = 0;
  for (const auto& e : it->second) used += e.size_gb;
  return used;
}

}  // namespace acme::storage
