// Per-node host shared-memory staging area (paper §6.2-1: precursor jobs load
// the model once per node into /dev/shm; evaluation trials then read it over
// PCIe instead of the storage NIC).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/state.h"

namespace acme::storage {

class ShmCache {
 public:
  // capacity_gb: host memory budget reserved for staged artifacts per node.
  explicit ShmCache(double capacity_gb);

  // Returns true if the artifact now resides on the node (inserted or already
  // present). Fails only when the artifact alone exceeds capacity; existing
  // entries are evicted LRU-insertion-order to make room.
  bool put(cluster::NodeId node, const std::string& artifact, double size_gb);
  bool contains(cluster::NodeId node, const std::string& artifact) const;
  void erase(cluster::NodeId node, const std::string& artifact);
  void clear_node(cluster::NodeId node);
  double used_gb(cluster::NodeId node) const;
  double capacity_gb() const { return capacity_gb_; }

 private:
  struct Entry {
    std::string artifact;
    double size_gb;
  };
  double capacity_gb_;
  std::map<cluster::NodeId, std::vector<Entry>> entries_;  // insertion order
};

}  // namespace acme::storage
