// Remote parallel-filesystem network model with max-min fair bandwidth
// sharing (paper Fig 16-left, §6.1 checkpoint persistence, §6.2 model
// loading).
//
// Topology: every node reaches the storage backend through its own storage
// NIC (25 Gb/s on Seren, where storage shares the single HDR HCA's dedicated
// lane; 200 Gb/s on Kalos); the backend itself has an aggregate cap. Active
// flows receive max-min fair rates subject to both constraints — this is the
// standard fluid-flow ("progressive filling") model, recomputed on every
// arrival/departure and integrated exactly between events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "cluster/state.h"
#include "sim/engine.h"

namespace acme::storage {

using FlowId = std::uint64_t;

struct StorageNetworkConfig {
  double backend_bytes_per_sec = 0;   // aggregate backend bandwidth
  double node_nic_bytes_per_sec = 0;  // per-node storage NIC bandwidth
};

// Defaults derived from the paper: Seren's storage NIC is 25 Gb/s; the
// all-NVMe backend sustains ~80 GB/s aggregate.
StorageNetworkConfig seren_storage_config();
StorageNetworkConfig kalos_storage_config();

class StorageNetwork {
 public:
  StorageNetwork(sim::Engine& engine, StorageNetworkConfig config);
  StorageNetwork(const StorageNetwork&) = delete;
  StorageNetwork& operator=(const StorageNetwork&) = delete;

  // Starts a transfer of `bytes` between the backend and `node` (direction is
  // symmetric in this model). `on_done` fires at the completion time.
  FlowId start_flow(cluster::NodeId node, double bytes,
                    std::function<void()> on_done);
  // Cancels an in-flight transfer; its completion callback never fires.
  void cancel(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }
  // Instantaneous fair-share rate of a flow (bytes/s); 0 if unknown.
  double flow_rate(FlowId id) const;
  const StorageNetworkConfig& config() const { return config_; }

 private:
  struct Flow {
    cluster::NodeId node;
    double remaining_bytes;
    double rate = 0;
    std::function<void()> on_done;
  };

  // Advances all flows to `now`, recomputes max-min fair rates, and
  // (re)schedules the next completion event.
  void reschedule();
  void advance_to_now();
  void compute_rates();
  void on_completion_event();

  sim::Engine& engine_;
  StorageNetworkConfig config_;
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  sim::Time last_update_ = 0;
  sim::EventHandle pending_completion_;
};

}  // namespace acme::storage
